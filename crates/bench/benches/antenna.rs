//! Benchmarks of the antenna physics layer (the HFSS substitute).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ros_antenna::stack::PsvaaStack;
use ros_antenna::vaa::{ArrayKind, VanAttaArray};
use ros_em::constants::F_CENTER_HZ;
use ros_em::jones::Polarization;

fn bench_vaa_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("vaa_monostatic_field");
    for &pairs in &[1usize, 3, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, |b, &p| {
            let vaa = VanAttaArray::new(ArrayKind::Psvaa, p);
            b.iter(|| {
                black_box(vaa.monostatic_field(
                    0.35,
                    F_CENTER_HZ,
                    Polarization::H,
                    Polarization::V,
                ))
            });
        });
    }
    group.finish();
}

fn bench_azimuth_sweep(c: &mut Criterion) {
    // The Fig. 4a sweep: 181 azimuths, one frequency.
    let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
    c.bench_function("fig4a_sweep_181pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for deg in -90..=90 {
                let th = (deg as f64).to_radians();
                acc += vaa.monostatic_rcs_dbsm(th, F_CENTER_HZ, Polarization::V, Polarization::V);
            }
            black_box(acc)
        })
    });
}

fn bench_stack_pattern(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_elevation_factor");
    for &rows in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &r| {
            let stack = PsvaaStack::uniform(r);
            b.iter(|| black_box(stack.elevation_array_factor(0.05, F_CENTER_HZ)));
        });
    }
    group.finish();
}

fn bench_shaping_cost_landscape(c: &mut Criterion) {
    // One DE objective evaluation for an 8-row flat-top (the §4.3
    // search's inner loop).
    c.bench_function("flat_top_optimize_8row_small", |b| {
        b.iter(|| {
            // A miniature DE run (small budget) exercising the full
            // objective path deterministically.
            let profile = ros_antenna::shaping::optimize_flat_top_with_budget(
                8,
                (10.0f64).to_radians(),
                12,
                10,
            );
            black_box(profile.phases[0])
        })
    });
}

criterion_group!(antenna, bench_vaa_response, bench_azimuth_sweep, bench_stack_pattern, bench_shaping_cost_landscape);
criterion_main!(antenna);
