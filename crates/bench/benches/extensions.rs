//! Benchmarks of the extension modules (CZT, MUSIC, Doppler, FEC,
//! near-field decoding).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ros_dsp::czt::zoom_spectrum;
use ros_dsp::music::{covariance, music_spectrum};
use ros_em::Complex64;

fn bench_czt(c: &mut Criterion) {
    let signal: Vec<f64> = (0..512)
        .map(|i| (i as f64 * 0.61).sin() + (i as f64 * 0.13).cos())
        .collect();
    c.bench_function("czt_zoom_512_to_1024", |b| {
        b.iter(|| black_box(zoom_spectrum(&signal, 0.1, 0.2, 1024).len()))
    });
}

fn bench_music(c: &mut Criterion) {
    let snaps: Vec<Vec<Complex64>> = (0..128)
        .map(|t| {
            (0..4)
                .map(|k| {
                    Complex64::cis((t * k) as f64 * 0.37)
                        + Complex64::cis(t as f64 * 0.91 - k as f64 * 1.2)
                })
                .collect()
        })
        .collect();
    c.bench_function("music_covariance_128snap", |b| {
        b.iter(|| black_box(covariance(&snaps).n))
    });
    let r = covariance(&snaps);
    c.bench_function("music_spectrum_1024", |b| {
        b.iter(|| black_box(music_spectrum(&r, 2, 0.5, 1024).1.len()))
    });
}

fn bench_doppler(c: &mut Criterion) {
    use ros_radar::doppler::{range_doppler_map, synthesize_burst, BurstConfig, MovingEcho};
    use ros_radar::echo::{Echo, Pose};
    let chirp = ros_radar::chirp::ChirpConfig::ti_default();
    let array = ros_radar::array::RadarArray::ti_default();
    let budget = ros_em::radar_eq::RadarLinkBudget::ti_eval();
    let burst_cfg = BurstConfig::default();
    let mut rng = StdRng::seed_from_u64(1);
    let echoes = [MovingEcho {
        echo: Echo::new(
            ros_em::Vec3::new(0.0, 4.0, 0.0),
            Complex64::from_polar(1e-2, 0.0),
        ),
        radial_speed_mps: 5.0,
    }];
    let burst = synthesize_burst(
        &chirp,
        &array,
        &budget,
        &burst_cfg,
        Pose::side_looking(ros_em::Vec3::ZERO),
        &echoes,
        &mut rng,
    );
    c.bench_function("range_doppler_map_32x256", |b| {
        b.iter(|| black_box(range_doppler_map(&burst).len()))
    });
}

fn bench_fec(c: &mut Criterion) {
    use ros_core::fec::{protect, recover};
    let msg: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
    c.bench_function("hamming74_protect_recover_64bits", |b| {
        b.iter(|| {
            let coded = protect(&msg);
            black_box(recover(&coded, msg.len()).map(|(bits, _)| bits.len()).unwrap_or(0))
        })
    });
}

criterion_group!(extensions, bench_czt, bench_music, bench_doppler, bench_fec);
criterion_main!(extensions);
