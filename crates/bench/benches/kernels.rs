//! Micro-benchmarks of the DSP/EM kernels on the radar hot path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ros_dsp::cfar::{ca_cfar, CfarParams};
use ros_dsp::dbscan::{dbscan, DbscanParams};
use ros_dsp::fft::fft_in_place;
use ros_dsp::peaks::{find_peaks, PeakParams};
use ros_em::Complex64;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let data: Vec<Complex64> = (0..n)
                .map(|i| Complex64::cis(i as f64 * 0.37))
                .collect();
            b.iter(|| {
                let mut buf = data.clone();
                fft_in_place(&mut buf);
                black_box(buf[0])
            });
        });
    }
    group.finish();
}

fn bench_cfar(c: &mut Criterion) {
    let profile: Vec<f64> = (0..512)
        .map(|i| 1.0 + ((i * 7919) % 97) as f64 / 97.0 + if i == 300 { 100.0 } else { 0.0 })
        .collect();
    c.bench_function("cfar_512", |b| {
        b.iter(|| black_box(ca_cfar(&profile, &CfarParams::default()).len()))
    });
}

fn bench_peaks(c: &mut Criterion) {
    let spectrum: Vec<f64> = (0..4096)
        .map(|i| (i as f64 * 0.013).sin().abs() + ((i * 31) % 17) as f64 * 0.01)
        .collect();
    c.bench_function("find_peaks_4096", |b| {
        b.iter(|| {
            black_box(
                find_peaks(
                    &spectrum,
                    &PeakParams {
                        min_prominence: 0.2,
                        ..Default::default()
                    },
                )
                .len(),
            )
        })
    });
}

fn bench_dbscan(c: &mut Criterion) {
    // A merged point cloud the size the detector sees (~300 points).
    let points: Vec<[f64; 2]> = (0..300)
        .map(|i| {
            let a = i as f64 * 2.399963;
            let r = 0.2 + ((i % 3) as f64) * 1.5;
            [r * a.cos(), 3.0 + 0.3 * a.sin()]
        })
        .collect();
    c.bench_function("dbscan_300", |b| {
        b.iter(|| black_box(dbscan(&points, &DbscanParams::default()).1))
    });
}

criterion_group!(kernels, bench_fft, bench_cfar, bench_peaks, bench_dbscan);
criterion_main!(kernels);
