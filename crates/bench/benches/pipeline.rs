//! System-level benchmarks: the radar front-end, the detector flow,
//! and full drive-by decodes — one per headline experiment family.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::{Complex64, Vec3};
use ros_radar::echo::{Echo, Pose};
use ros_radar::radar::FmcwRadar;

fn bench_if_synthesis(c: &mut Criterion) {
    let radar = FmcwRadar::ti_eval();
    let echoes: Vec<Echo> = (0..160)
        .map(|i| {
            Echo::new(
                Vec3::new(i as f64 * 0.001, 3.0, 1.0),
                Complex64::from_polar(1e-3, i as f64),
            )
        })
        .collect();
    c.bench_function("if_synthesis_160_echoes", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let f = radar.capture(Pose::side_looking(Vec3::ZERO), &echoes, &mut rng);
            black_box(f.data[0][0])
        })
    });
}

fn bench_frame_detection(c: &mut Criterion) {
    let radar = FmcwRadar::ti_eval();
    let mut rng = StdRng::seed_from_u64(2);
    let echoes = [
        Echo::new(Vec3::new(0.0, 3.0, 0.0), Complex64::from_polar(1e-2, 0.0)),
        Echo::new(Vec3::new(1.5, 4.0, 0.0), Complex64::from_polar(5e-3, 1.0)),
    ];
    let frame = radar.capture(Pose::side_looking(Vec3::ZERO), &echoes, &mut rng);
    c.bench_function("frame_detect", |b| {
        b.iter(|| black_box(radar.detect(&frame).len()))
    });
    c.bench_function("frame_spotlight", |b| {
        b.iter(|| black_box(radar.spotlight(&frame, Vec3::new(0.0, 3.0, 0.0))))
    });
}

fn bench_drive_by_decode(c: &mut Criterion) {
    // Figure-15-style runs: one fast drive-by per stack size.
    let mut group = c.benchmark_group("drive_by_fast_decode");
    group.sample_size(10);
    for &rows in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let code = SpatialCode {
                rows_per_stack: rows,
                ..SpatialCode::paper_4bit()
            };
            b.iter(|| {
                let tag = code.encode(&[true; 4]).unwrap();
                let outcome = DriveBy::new(tag, 3.0).run(&ReaderConfig::fast());
                black_box(outcome.bits.len())
            });
        });
    }
    group.finish();
}

fn bench_encode_decode_analytic(c: &mut Criterion) {
    // Figure-10-style analytic model: RCS sampling + spectrum.
    use ros_core::rcs_model;
    use ros_em::constants::LAMBDA_CENTER_M;
    let code = SpatialCode::paper_4bit();
    let tag = code.encode(&[true; 4]).unwrap();
    let pos = tag.stack_positions_m().to_vec();
    c.bench_function("rcs_model_sample_and_spectrum", |b| {
        b.iter(|| {
            let rcs = rcs_model::sample_rcs_factor(&pos, LAMBDA_CENTER_M, 1.0, 512);
            let (s, m) = rcs_model::rcs_spectrum(&rcs, 1.0, LAMBDA_CENTER_M, 8);
            black_box((s.len(), m.len()))
        })
    });
}

criterion_group!(
    pipeline,
    bench_if_synthesis,
    bench_frame_detection,
    bench_drive_by_decode,
    bench_encode_decode_analytic
);
criterion_main!(pipeline);
