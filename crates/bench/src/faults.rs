//! `bench faults` — the fault-injection conformance sweep.
//!
//! Runs the canonical fault matrix ([`FaultPlan::canonical_matrix`])
//! against a frozen full-pipeline drive-by fixture and reports how
//! each fault kind × rate degrades the link: BER against the known
//! 4-bit word, detection rate, degraded-frame counts, erasures, and
//! the typed pass verdict. Every cell is executed twice — pinned to 1
//! thread and to the sweep's high thread count — and the two runs must
//! be bit-identical (decoded bits *and* the raw RSS trace); any
//! mismatch fails the command.
//!
//! `--smoke` shrinks the matrix to four kinds at one rate with pins
//! {1, 2} so `verify.sh` can run it in seconds under `ROS_OBS=1`.

use crate::util::{f, Table};
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, Outcome, ReaderConfig};
use ros_exec::ThreadGuard;
use ros_fault::{FaultPlan, TimeWindow};

/// The word encoded on the fixture tag.
const EXPECTED_BITS: [bool; 4] = [true, false, true, true];

/// Master seed of the canonical matrix (shared with the determinism
/// test suite so both sweep identical plans).
const MATRIX_SEED: u64 = 0xfa17;

/// The frozen drive-by fixture: the same 32-row tag, seed, geometry,
/// and stride as `tests/obs_trace.rs` and the `smoke` subcommand.
fn fixture() -> Option<(DriveBy, ReaderConfig)> {
    let code = SpatialCode {
        rows_per_stack: 32,
        ..SpatialCode::paper_4bit()
    };
    let Ok(tag) = code.encode(&EXPECTED_BITS) else {
        eprintln!("faults: fixture word failed to encode");
        return None;
    };
    let mut drive = DriveBy::new(tag, 3.0).with_seed(90125);
    drive.half_span_m = 3.0;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    Some((drive, cfg))
}

/// Runs one pass with the executor pinned to `threads`.
fn run_pinned(drive: &DriveBy, cfg: &ReaderConfig, threads: usize) -> Outcome {
    let _pin = ThreadGuard::pin(Some(threads));
    drive.run(cfg)
}

/// Bit-exact fingerprint of the spotlight trace.
fn trace_bits(o: &Outcome) -> Vec<(u64, u64)> {
    o.rss_trace
        .iter()
        .map(|s| (s.rss.re.to_bits(), s.rss.im.to_bits()))
        .collect()
}

/// Bit error rate against the fixture word; a failed decode counts as
/// all bits wrong.
fn ber(o: &Outcome) -> f64 {
    if o.bits().len() != EXPECTED_BITS.len() {
        return 1.0;
    }
    let errors = o
        .bits()
        .iter()
        .zip(&EXPECTED_BITS)
        .filter(|(a, b)| a != b)
        .count();
    errors as f64 / EXPECTED_BITS.len() as f64
}

/// Short stable label for a plan in the canonical matrix.
fn label(plan: &FaultPlan) -> String {
    match plan.specs.as_slice() {
        [] => "clean".to_string(),
        [spec] if spec.window != TimeWindow::ALWAYS => {
            format!("{}_windowed", spec.kind.name())
        }
        [spec] => spec.kind.name().to_string(),
        _ => "storm".to_string(),
    }
}

/// The fault sweep. `smoke` trims the matrix for CI.
pub fn run(smoke: bool) {
    let Some((base, cfg)) = fixture() else {
        std::process::exit(1);
    };

    let matrix = FaultPlan::canonical_matrix(MATRIX_SEED);
    let (plans, pins): (Vec<FaultPlan>, [usize; 2]) = if smoke {
        const SMOKE_KINDS: [&str; 4] = [
            "frame_drop",
            "adc_saturation",
            "interference_burst",
            "point_corruption",
        ];
        let picked = matrix
            .into_iter()
            .filter(|p| {
                p.specs.len() == 1
                    && (p.specs[0].rate - 0.2).abs() < 1e-12
                    && SMOKE_KINDS.contains(&p.specs[0].kind.name())
                    && p.specs[0].window == TimeWindow::ALWAYS
            })
            .collect();
        (picked, [1, 2])
    } else {
        (matrix, [1, 8])
    };

    let mut table = Table::new(
        if smoke {
            "bench faults --smoke: fault matrix vs frozen drive-by"
        } else {
            "bench faults: canonical fault matrix vs frozen drive-by"
        },
        &[
            "plan",
            "rate",
            "verdict",
            "ber",
            "detected",
            "frames_degraded",
            "erasures",
            "deterministic",
        ],
    );

    let mut all_deterministic = true;
    // A clean baseline row leads the table so degradation is readable
    // as a delta.
    let mut all_plans = vec![FaultPlan::new(MATRIX_SEED)];
    all_plans.extend(plans);

    for plan in &all_plans {
        let mut drive = base.clone();
        if !plan.is_empty() {
            drive = drive.with_faults(plan.clone());
        }
        let lo = run_pinned(&drive, &cfg, pins[0]);
        let hi = run_pinned(&drive, &cfg, pins[1]);
        let identical = lo.bits() == hi.bits()
            && trace_bits(&lo) == trace_bits(&hi)
            && lo.verdict == hi.verdict
            && lo.frame_verdicts == hi.frame_verdicts;
        if !identical {
            all_deterministic = false;
            eprintln!(
                "faults: plan `{}` diverges between {} and {} threads",
                label(plan),
                pins[0],
                pins[1]
            );
        }
        let degraded = lo
            .frame_verdicts
            .iter()
            .filter(|v| v.is_degraded())
            .count();
        let erasures = lo
            .decode
            .as_ref()
            .map(|d| d.erasures.len())
            .unwrap_or(0);
        let rate = match plan.specs.as_slice() {
            [spec] => f(spec.rate, 2),
            [] => "-".to_string(),
            _ => "mixed".to_string(),
        };
        table.row(vec![
            label(plan),
            rate,
            lo.verdict.name().to_string(),
            f(ber(&lo), 2),
            if lo.detected_center.is_some() { "1" } else { "0" }.to_string(),
            degraded.to_string(),
            erasures.to_string(),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }

    table.emit(if smoke { "faults_smoke" } else { "faults" });
    println!(
        "faults: {} plan(s), pins {{{}, {}}} threads — {}",
        all_plans.len(),
        pins[0],
        pins[1],
        if all_deterministic {
            "all bit-identical"
        } else {
            "DETERMINISM FAILURE"
        }
    );
    if !all_deterministic {
        std::process::exit(1);
    }
}
