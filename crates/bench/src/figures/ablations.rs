//! Ablations and §8 extensions — design-choice studies beyond the
//! paper's own figures.
//!
//! * `ablate_decoder` — FFT spectrum decoder vs the near-field matched
//!   filter, across distance and tag capacity,
//! * `ablate_window` — spectral taper choice,
//! * `ablate_sampling` — frame-rate (Nyquist) margin,
//! * `ask_demo` — the §8 multi-level ASK extension over distance,
//! * `cp_analysis` — circular-polarization range gains,
//! * `fec_analysis` — Hamming(7,4) residual error rates,
//! * `optimizer_ablation` — DE vs PSO on the beam-shaping objective,
//! * `ground_effect` — two-ray asphalt multipath,
//! * `impairments` — front-end phase noise / ADC / IQ imbalance,
//! * `tag_yaw` — mounting-yaw robustness from retroreflectivity.

use crate::util::{f, note, Table};
use ros_core::ask::AskCode;
use ros_core::capacity;
use ros_core::decode::{decode, DecoderConfig};
use ros_core::encode::SpatialCode;
use ros_core::fec;
use ros_core::nearfield::decode_nearfield;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_dsp::window::Window;
use ros_em::radar_eq::RadarLinkBudget;
use ros_em::Vec3;

fn tag_for(bits: &[bool], rows: usize, m_stacks: usize) -> (SpatialCode, ros_core::tag::Tag) {
    let code = SpatialCode {
        m_stacks,
        rows_per_stack: rows,
        ..SpatialCode::paper_4bit()
    };
    (code, code.encode(bits).unwrap_or_else(|e| panic!("tag encode: {e}")))
}

/// FFT decoder vs near-field matched filter, per distance and capacity.
pub fn ablate_decoder() {
    let mut t = Table::new(
        "Ablation — FFT vs near-field matched-filter decoder",
        &["tag", "dist_m", "FFT ok", "FFT SNR", "MF ok", "MF SNR"],
    );
    let cases = [
        ("4-bit", 4usize, vec![true, false, true, true]),
        ("6-bit", 6, vec![true, true, false, true, false, true]),
    ];
    for (label, bits_n, bits) in &cases {
        for d in [2.0, 3.0, 4.0, 5.0] {
            let (code, tag) = tag_for(bits, 8, bits_n + 1);
            let mut drive = DriveBy::new(tag, d).with_seed(8800 + d as u64);
            drive.half_span_m = (2.5 * d).min(10.0);
            if *bits_n == 6 {
                // 6-bit tags need more link budget (§5.3).
                drive.radar.budget = RadarLinkBudget::commercial();
            }
            let outcome = drive.run(&ReaderConfig::fast());
            let center = Vec3::new(0.0, d, 1.0);
            let cfg = DecoderConfig::default();
            let fft = decode(&outcome.rss_trace, center, 0.0, &code, &cfg);
            let mf = decode_nearfield(&outcome.rss_trace, center, 0.0, &code, &cfg);
            let okf = fft
                .as_ref()
                .map(|r| r.bits == *bits)
                .unwrap_or(false);
            let okm = mf
                .as_ref()
                .map(|r| r.bits == *bits)
                .unwrap_or(false);
            t.row(vec![
                label.to_string(),
                f(d, 1),
                format!("{okf}"),
                fft.map(|r| f(r.snr_db(), 1)).unwrap_or_default(),
                format!("{okm}"),
                mf.map(|r| f(r.snr_db(), 1)).unwrap_or_default(),
            ]);
        }
    }
    t.emit("ablate_decoder");
    note("the matched filter extends decoding inside the far-field bound (§8's NFFA goal, radar-side).");
}

/// Spectral taper ablation.
pub fn ablate_window() {
    let mut t = Table::new(
        "Ablation — spectral window vs decoding SNR (4-bit tag, 3 m)",
        &["window", "SNR (dB)", "bits ok"],
    );
    for (name, win) in [
        ("Rect", Window::Rect),
        ("Hann", Window::Hann),
        ("Hamming", Window::Hamming),
        ("Blackman", Window::Blackman),
    ] {
        let (_, tag) = tag_for(&[true, false, true, true], 32, 5);
        let mut drive = DriveBy::new(tag.with_column_bow(0.0004, 42), 3.0).with_seed(8900);
        drive.half_span_m = 8.0;
        let mut cfg = ReaderConfig::fast();
        cfg.decoder.window = win;
        let o = drive.run(&cfg);
        t.row(vec![
            name.into(),
            f(o.snr_db().unwrap_or(f64::NAN), 1),
            format!("{}", o.bits() == vec![true, false, true, true]),
        ]);
    }
    t.emit("ablate_window");
    note("Hann is the default: the rectangular window's sidelobes leak envelope energy into the coding band.");
}

/// Frame-stride (sampling-rate) ablation — the §5.3 Nyquist margin.
pub fn ablate_sampling() {
    let mut t = Table::new(
        "Ablation — frame stride vs decoding (30 mph, 3 m)",
        &["stride", "frame_rate_Hz", "SNR (dB)", "bits ok"],
    );
    for stride in [1usize, 2, 4, 8, 16, 32] {
        let (_, tag) = tag_for(&[true; 4], 32, 5);
        let mut drive = DriveBy::new(tag.with_column_bow(0.0004, 42), 3.0)
            .with_speed(ros_em::constants::mph_to_mps(30.0))
            .with_seed(9000 + stride as u64);
        drive.half_span_m = 8.0;
        let mut cfg = ReaderConfig::fast();
        cfg.frame_stride = stride;
        let o = drive.run(&cfg);
        t.row(vec![
            format!("{stride}"),
            f(1000.0 / stride as f64, 0),
            f(o.snr_db().unwrap_or(f64::NAN), 1),
            format!("{}", o.bits() == vec![true; 4]),
        ]);
    }
    t.emit("ablate_sampling");
    note("decoding survives until the effective frame rate violates the §5.3 Nyquist bound.");
}

/// The ASK (multi-level) extension over distance.
pub fn ask_demo() {
    let code = AskCode::four_level();
    let mut t = Table::new(
        "Extension — 4-level ASK (6 data bits in the 4-bit footprint)",
        &["dist_m", "symbols sent", "symbols decoded", "ok"],
    );
    let symbols = [3u8, 1, 2];
    for d in [2.0, 2.5, 3.0, 3.5, 4.0] {
        let tag = code.encode(&symbols).unwrap_or_else(|e| panic!("ASK encode: {e}"));
        let mut drive = DriveBy::new(tag, d).with_seed(9100 + d as u64);
        drive.half_span_m = 8.0;
        let outcome = drive.run(&ReaderConfig::fast());
        let got = decode(
            &outcome.rss_trace,
            Vec3::new(0.0, d, 1.0),
            0.0,
            &code.geometry,
            &DecoderConfig::default(),
        )
        .map(|r| code.classify(&r.slot_amplitudes))
        .unwrap_or_default();
        t.row(vec![
            f(d, 1),
            format!("{symbols:?}"),
            format!("{got:?}"),
            format!("{}", got == symbols.to_vec()),
        ]);
    }
    t.emit("ask_demo");
    note(&format!(
        "4 levels × {} data slots = {} bits (vs 4 OOK bits) in the same footprint.",
        code.data_slots(),
        code.data_bits()
    ));
}

/// Circular polarization range gains (§8).
pub fn cp_analysis() {
    use ros_em::circular::{
        conjugating_channel_power, mirror_channel_power, Handedness, CP_RCS_GAIN_DB,
    };
    let mut t = Table::new(
        "Extension — circular polarization channels (power fraction)",
        &["reflector", "same-handed port", "cross-handed port"],
    );
    let tx = Handedness::Right;
    t.row(vec![
        "CP Van Atta (tag)".into(),
        f(conjugating_channel_power(tx, tx), 3),
        f(conjugating_channel_power(tx, tx.flip()), 3),
    ]);
    t.row(vec![
        "ordinary reflector".into(),
        f(mirror_channel_power(tx, tx), 3),
        f(mirror_channel_power(tx, tx.flip()), 3),
    ]);
    t.emit("cp_channels");

    let mut r = Table::new(
        "Extension — CP range gain (commercial radar, 5×32 tag)",
        &["tag", "RCS (dBsm)", "max range (m)"],
    );
    let base = capacity::estimated_tag_rcs_dbsm(5, 32, true);
    let com = RadarLinkBudget::commercial();
    r.row(vec![
        "linear PSVAA".into(),
        f(base, 1),
        f(capacity::max_decode_range_m(&com, base), 1),
    ]);
    r.row(vec![
        "CP PSVAA".into(),
        f(base + CP_RCS_GAIN_DB, 1),
        f(capacity::max_decode_range_m(&com, base + CP_RCS_GAIN_DB), 1),
    ]);
    r.emit("cp_range");
    note("CP recovers the 6 dB polarization-switching penalty → ≈41% more range (§8).");
}

/// Meta-optimizer ablation: DE (the paper's §4.3 choice) vs PSO on the
/// flat-top beam-shaping objective.
pub fn optimizer_ablation() {
    use ros_antenna::shaping::{flat_top_objective, mirror_profile};
    use ros_antenna::stack::PsvaaStack;
    use ros_em::constants::F_CENTER_HZ;
    use ros_em::geom::{deg_to_rad, rad_to_deg};
    use ros_optim::{minimize, minimize_pso, DeConfig, PsoConfig, Strategy};

    let mut t = Table::new(
        "Ablation — DE (paper's choice) vs PSO for beam shaping (8-row stack)",
        &["optimizer", "cost", "evaluations", "beamwidth (°)", "worst in-window (dB)"],
    );
    let n_rows = 8;
    let target = deg_to_rad(10.0);
    let bounds = vec![(0.0, std::f64::consts::TAU * 0.9); n_rows / 2];

    let summarize = |label: &str, x: &[f64], cost: f64, evals: usize, t: &mut Table| {
        let stack = PsvaaStack::with_phases(&mirror_profile(x, n_rows));
        let bw = rad_to_deg(stack.measured_beamwidth_rad(F_CENTER_HZ));
        let mut worst = f64::INFINITY;
        for i in -10..=10 {
            let eps = deg_to_rad(0.5 * i as f64);
            worst = worst.min(stack.elevation_pattern_db(eps, F_CENTER_HZ));
        }
        t.row(vec![
            label.into(),
            f(cost, 3),
            format!("{evals}"),
            f(bw, 1),
            f(worst, 1),
        ]);
    };

    let de = minimize(
        |h| flat_top_objective(h, n_rows, target),
        &bounds,
        &DeConfig {
            population: 32,
            max_generations: 120,
            strategy: Strategy::RandToBest1Bin,
            ..Default::default()
        },
    );
    summarize("DE (rand-to-best/1)", &de.x, de.cost, de.evaluations, &mut t);

    let pso = minimize_pso(
        |h| flat_top_objective(h, n_rows, target),
        &bounds,
        &PsoConfig {
            particles: 32,
            max_iterations: 120,
            ..Default::default()
        },
    );
    summarize("PSO (global-best)", &pso.x, pso.cost, pso.evaluations, &mut t);

    t.emit("optimizer_ablation");
    note("at equal evaluation budgets DE reaches a flatter, wider top than PSO — supporting the paper's §4.3 DE-GA choice.");
}

/// Tag mounting-yaw robustness: the Van Atta retroreflection makes the
/// tag nearly insensitive to how squarely it faces the road — the
/// property that motivates VAAs over specular barcodes (§3.2/§4.1).
pub fn tag_yaw() {
    let mut t = Table::new(
        "Ablation — tag mounting yaw vs decoding (32-row tag, 3 m)",
        &["yaw_deg", "median RSS (dBm)", "SNR (dB)", "bits ok"],
    );
    for yaw_deg in [0.0f64, 10.0, 20.0, 30.0, 40.0] {
        let (_, tag) = tag_for(&[true; 4], 32, 5);
        let tag = tag
            .with_column_bow(0.0004, 42)
            .with_yaw(ros_em::geom::deg_to_rad(yaw_deg));
        let mut drive = DriveBy::new(tag, 3.0).with_seed(9600 + yaw_deg as u64);
        drive.half_span_m = 8.0;
        let o = drive.run(&ReaderConfig::fast());
        t.row(vec![
            f(yaw_deg, 0),
            f(o.median_rss_dbm(), 1),
            f(o.snr_db().unwrap_or(f64::NAN), 1),
            format!("{}", o.bits() == vec![true; 4]),
        ]);
    }
    t.emit("tag_yaw");
    note("a specular barcode would die at the first degree of yaw; the retroreflective tag decodes to ≥30°.");
}

/// Two-ray ground-bounce study: RSS and SNR with and without the
/// asphalt multipath model (off by default in every paper figure).
pub fn ground_effect() {
    let mut t = Table::new(
        "Ablation — two-ray ground bounce (32-row tag, 3 m)",
        &["radar_height_m", "RSS flat-earth", "RSS two-ray", "SNR flat", "SNR two-ray"],
    );
    for h in [0.5, 0.75, 1.0, 1.25, 1.5] {
        let mut row = vec![f(h, 2)];
        let mut rss = Vec::new();
        let mut snr = Vec::new();
        for ground in [None, Some(-0.2)] {
            let (_, tag) = tag_for(&[true; 4], 32, 5);
            let mut drive = DriveBy::new(tag.with_column_bow(0.0004, 42), 3.0)
                .with_radar_height(h)
                .with_seed(9400 + (h * 100.0) as u64);
            if let Some(g) = ground {
                drive = drive.with_ground(g);
            }
            drive.half_span_m = 8.0;
            let o = drive.run(&ReaderConfig::fast());
            rss.push(o.median_rss_dbm());
            snr.push(o.snr_db().unwrap_or(f64::NAN));
        }
        row.push(f(rss[0], 1));
        row.push(f(rss[1], 1));
        row.push(f(snr[0], 1));
        row.push(f(snr[1], 1));
        t.row(row);
    }
    t.emit("ground_effect");
    note("79 GHz asphalt is rough (|Γ|≈0.2): the two-ray ripple shifts RSS a few dB but decoding holds.");
}

/// Front-end impairment study on the full IF pipeline.
pub fn impairments_ablation() {
    use ros_radar::impairments::Impairments;
    let mut t = Table::new(
        "Ablation — front-end impairments (full IF pipeline, 3 m)",
        &["front-end", "detected", "bits ok", "SNR (dB)"],
    );
    for (label, imp) in [
        ("ideal", Impairments::default()),
        ("eval board (PN + 12-bit ADC + IQ)", Impairments::eval_board()),
    ] {
        let (_, tag) = tag_for(&[true, false, true, true], 32, 5);
        let mut drive =
            DriveBy::new(tag.with_column_bow(0.0004, 42), 3.0).with_seed(9500);
        drive.half_span_m = 3.0;
        drive.radar.impairments = imp;
        let mut cfg = ReaderConfig::full();
        cfg.frame_stride = 8;
        let o = drive.run(&cfg);
        t.row(vec![
            label.into(),
            format!("{}", o.detected_center.is_some()),
            format!("{}", o.bits() == vec![true, false, true, true]),
            f(o.snr_db().unwrap_or(f64::NAN), 1),
        ]);
    }
    t.emit("impairments");
    note("the decode chain tolerates evaluation-board phase noise, quantization and IQ imbalance.");
}

/// Traffic-blockage study (§7.3: full blockage fails; redundancy and
/// mounting height are the mitigations).
pub fn blockage() {
    use ros_core::reader::Blockage;
    let mut t = Table::new(
        "Ablation — passing-traffic blockage vs decoding (32-row tag, 3 m)",
        &["blocked fraction", "SNR (dB)", "bits ok"],
    );
    // The decoder uses the ±30°-FoV window of the pass: at 3 m standoff
    // and ±8 m span that is x ∈ ±1.73 m, i.e. t ∈ [3.13, 4.87] s at
    // 2 m/s. The blockage shadows a fraction of that window (a vehicle
    // overtaking from behind shadows its leading edge first).
    let (w_lo, w_hi) = (3.13, 4.87);
    for frac in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let width = (w_hi - w_lo) * frac;
        let (_, tag) = tag_for(&[true; 4], 32, 5);
        let mut drive = DriveBy::new(tag.with_column_bow(0.0004, 42), 3.0)
            .with_blockage(Blockage {
                t_start_s: w_lo,
                t_end_s: w_lo + width,
                attenuation_db: 40.0,
            })
            .with_seed(9700 + (frac * 10.0) as u64);
        drive.half_span_m = 8.0;
        let o = drive.run(&ReaderConfig::fast());
        t.row(vec![
            f(frac, 1),
            f(o.snr_db().unwrap_or(f64::NAN), 1),
            format!("{}", o.bits() == vec![true; 4]),
        ]);
    }
    t.emit("blockage");
    note("decoding survives ≈40% of the FoV window shadowed; total occlusion fails (§7.3) — mount tags high / deploy redundantly.");
}

/// FEC residual-error analysis at the paper's SNR operating points.
pub fn fec_analysis() {
    let mut t = Table::new(
        "Extension — Hamming(7,4) protection at the paper's SNR anchors",
        &["SNR (dB)", "raw BER", "protected block error"],
    );
    for snr_db in [10.0, 14.0, 15.0, 15.8, 20.0] {
        let ber = ros_dsp::stats::ook_ber(ros_em::db::db_to_pow(snr_db));
        t.row(vec![
            f(snr_db, 1),
            format!("{:.3}%", ber * 100.0),
            format!("{:.5}%", fec::block_error_probability(ber) * 100.0),
        ]);
    }
    t.emit("fec_analysis");
    note("§8: larger capacity admits error correction; one flipped coding peak per block is recovered.");
}
