//! The paper's in-text design numbers (§4–§5, §8), regenerated.

use crate::util::{f, Table};
use ros_antenna::design;
use ros_core::capacity;
use ros_core::encode::SpatialCode;
use ros_em::constants::{LAMBDA_CENTER_M, F_CENTER_HZ};
use ros_em::geom::rad_to_deg;
use ros_em::radar_eq::RadarLinkBudget;

/// Prints every checkable in-text design figure next to the paper's value.
pub fn design() {
    let mut t = Table::new(
        "In-text design numbers — paper vs reproduced",
        &["quantity", "paper", "ours"],
    );

    let dl = design::max_tl_length_difference_m(4.0e9, F_CENTER_HZ);
    t.row(vec![
        "max TL length difference (λg)".into(),
        "4.94".into(),
        f(dl / ros_em::constants::LAMBDA_GUIDED_79GHZ_M, 2),
    ]);
    t.row(vec![
        "optimal antenna pairs".into(),
        "3".into(),
        format!("{}", design::optimal_antenna_pairs(4.0e9, F_CENTER_HZ)),
    ]);
    let bw = design::stack_beamwidth_rad(32, 0.725 * LAMBDA_CENTER_M, LAMBDA_CENTER_M);
    t.row(vec![
        "32-stack beamwidth (°)".into(),
        "1.1".into(),
        f(rad_to_deg(bw), 2),
    ]);
    t.row(vec![
        "height tolerance at 3 m (cm)".into(),
        "3".into(),
        f(design::height_tolerance_m(bw, 3.0) * 100.0, 1),
    ]);

    let code = SpatialCode::paper_4bit();
    t.row(vec![
        "4-bit tag width (λ)".into(),
        "22.5".into(),
        f(code.width_lambda(), 1),
    ]);
    let a = capacity::analyze(&code, 1000.0);
    t.row(vec![
        "4-bit far-field distance (m)".into(),
        "2.9".into(),
        f(a.far_field_m, 2),
    ]);
    let six = SpatialCode::with_bits(6, 32);
    t.row(vec![
        "6-bit tag width (λ)".into(),
        "34.5".into(),
        f(six.width_lambda(), 1),
    ]);
    t.row(vec![
        "max vehicle speed (m/s)".into(),
        "38.5".into(),
        f(a.max_speed_mps, 1),
    ]);
    t.row(vec![
        "min side-by-side tag spacing at 6 m (m)".into(),
        "1.53".into(),
        f(a.min_tag_separation_m, 2),
    ]);

    let ti = RadarLinkBudget::ti_eval();
    t.row(vec![
        "TI noise floor (dBm)".into(),
        "-62".into(),
        f(ti.noise_floor_dbm(), 1),
    ]);
    t.row(vec![
        "TI max decode range, σ=−23 dBsm (m)".into(),
        "6.9".into(),
        f(capacity::max_decode_range_m(&ti, -23.0), 2),
    ]);
    t.row(vec![
        "commercial radar range (m)".into(),
        "52".into(),
        f(
            capacity::max_decode_range_m(&RadarLinkBudget::commercial(), -23.0),
            1,
        ),
    ]);
    t.row(vec![
        "estimated 32-row tag RCS (dBsm)".into(),
        "-23".into(),
        f(capacity::estimated_tag_rcs_dbsm(5, 32, true), 1),
    ]);

    // SNR↔BER anchors.
    for (snr, paper) in [(15.8, "0.10%"), (15.0, "0.30%"), (14.0, "0.60%"), (10.0, "5.7%")] {
        let ber = ros_dsp::stats::ook_ber(ros_em::db::db_to_pow(snr));
        t.row(vec![
            format!("BER at {snr} dB SNR"),
            paper.into(),
            format!("{:.2}%", ber * 100.0),
        ]);
    }

    t.emit("design");
}
