//! Figures 3–6: array-level RCS characterization (§4.1–§4.2).
//!
//! * Fig. 3 — RCS per antenna pair vs frequency for 1–6 pairs,
//! * Fig. 4a — monostatic RCS vs azimuth, VAA vs ULA,
//! * Fig. 4b — bistatic RCS with 30° incidence,
//! * Fig. 5a/5b — PSVAA vs VAA, cross-/co-polarized Tx/Rx,
//! * Fig. 6a/6b — PSVAA RCS across 76–81 GHz, cross-/co-polarized.

use crate::util::{f, note, Table};
use ros_antenna::tl;
use ros_antenna::vaa::{ArrayKind, VanAttaArray};
use ros_cache::GeomCache;
use ros_em::constants::F_CENTER_HZ;
use ros_em::geom::deg_to_rad;
use ros_em::jones::Polarization;

const V: Polarization = Polarization::V;
const H: Polarization = Polarization::H;

/// The Fig. 4/5 azimuth grid: −90°..=90° in 5° steps, as radians.
fn azimuth_grid_rad() -> Vec<f64> {
    (-90..=90).step_by(5).map(|d| deg_to_rad(f64::from(d))).collect()
}

/// Fig. 3: per-pair RCS vs frequency for 1..6 antenna pairs.
pub fn fig3(cache: &GeomCache) {
    let mut t = Table::new(
        "Fig. 3 — RCS per antenna pair vs frequency (dB, relative)",
        &[
            "freq_GHz", "1 pair", "2 pairs", "3 pairs", "4 pairs", "5 pairs", "6 pairs",
        ],
    );
    let arrays: Vec<VanAttaArray> = (1..=6)
        .map(|n| VanAttaArray::new(ArrayKind::VanAtta, n))
        .collect();
    let th = deg_to_rad(30.0);
    for k in 0..=10 {
        let freq = 76.0e9 + 0.5e9 * k as f64;
        let mut cells = vec![f(freq / 1e9, 1)];
        for (n, arr) in arrays.iter().enumerate() {
            let field = arr.monostatic_field(th, freq, V, V);
            let per_pair_db = 10.0 * (field.norm_sqr() / (n + 1) as f64).log10();
            cells.push(f(per_pair_db, 2));
        }
        t.row(cells);
    }
    t.emit("fig3");

    // Summary: worst-case-over-band per-pair figure of merit.
    let mut s = Table::new(
        "Fig. 3 summary — worst-case per-pair RCS over 76–81 GHz",
        &["pairs", "per-pair (dB)", "optimal?"],
    );
    let mut best = (0usize, f64::NEG_INFINITY);
    let mut vals = Vec::new();
    for (n, arr) in arrays.iter().enumerate() {
        let mut worst = f64::INFINITY;
        for k in 0..=20 {
            let freq = 76.0e9 + 0.25e9 * k as f64;
            let p = arr.monostatic_field(th, freq, V, V).norm_sqr() / (n + 1) as f64;
            worst = worst.min(p);
        }
        let db = 10.0 * worst.log10();
        vals.push(db);
        if db > best.1 {
            best = (n + 1, db);
        }
    }
    for (n, db) in vals.iter().enumerate() {
        s.row(vec![
            format!("{}", n + 1),
            f(*db, 2),
            if n + 1 == best.0 { "← max".into() } else { String::new() },
        ]);
    }
    s.emit("fig3_summary");
    note("RCS contribution per antenna pair is maximized with 3 pairs (§4.1).");

    // Mechanism behind the roll-off: TL dispersion misalignment. The
    // design-rule lines (§4.1, adjacent lines 2λg apart) are phase-
    // aligned only at 79 GHz; at the band edges the outermost line
    // drifts away from the innermost, and past ≈90° the pair's
    // contribution turns destructive. The transfer table is memoized
    // per (lengths, grid) in the run-wide cache.
    let lengths = tl::design_tl_lengths_m(6);
    let grid: Vec<f64> = (0..=10).map(|k| 76.0e9 + 0.5e9 * f64::from(k)).collect();
    let table = tl::dispersion_table_in(cache, &lengths, &grid);
    let mut d = Table::new(
        "Fig. 3 aside — TL phase misalignment vs innermost line (deg)",
        &["freq_GHz", "pair 2", "pair 3", "pair 4", "pair 5", "pair 6"],
    );
    for (j, freq) in grid.iter().enumerate() {
        let mut cells = vec![f(freq / 1e9, 1)];
        let reference = table[j].arg();
        for i in 1..lengths.len() {
            let mis = ros_em::geom::wrap_angle(table[i * grid.len() + j].arg() - reference);
            cells.push(f(ros_em::geom::rad_to_deg(mis).abs(), 1));
        }
        d.row(cells);
    }
    d.emit("fig3_dispersion");
    note("misalignment grows with line-length difference; 90° marks the §4.1 destructive-addition bound.");
}

/// Fig. 4a: monostatic RCS vs azimuth, VAA vs ULA.
pub fn fig4a(cache: &GeomCache) {
    let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
    let ula = VanAttaArray::new(ArrayKind::Ula, 3);
    let mut t = Table::new(
        "Fig. 4a — monostatic RCS vs azimuth (dBsm)",
        &["azimuth_deg", "VAA", "ULA"],
    );
    // The VAA azimuth sweep here is the same table Fig. 5b evaluates —
    // with the shared cache it builds once per bench run.
    let thetas = azimuth_grid_rad();
    let vaa_rcs = vaa.monostatic_rcs_table_in(cache, &thetas, F_CENTER_HZ, V, V);
    let ula_rcs = ula.monostatic_rcs_table_in(cache, &thetas, F_CENTER_HZ, V, V);
    for (i, deg) in (-90..=90).step_by(5).enumerate() {
        t.row(vec![format!("{deg}"), f(vaa_rcs[i], 1), f(ula_rcs[i], 1)]);
    }
    t.emit("fig4a");
    note("VAA: flat plateau across ≈120° FoV; ULA: specular, strong only near 0°.");
}

/// Fig. 4b: bistatic RCS, incidence fixed at 30°.
pub fn fig4b() {
    let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
    let ula = VanAttaArray::new(ArrayKind::Ula, 3);
    let th_in = deg_to_rad(30.0);
    let mut t = Table::new(
        "Fig. 4b — bistatic RCS, incidence 30° (dBsm)",
        &["obs_deg", "VAA", "ULA"],
    );
    for deg in (-90..=90).step_by(5) {
        let th = deg_to_rad(deg as f64);
        t.row(vec![
            format!("{deg}"),
            f(vaa.bistatic_rcs_dbsm(th_in, th, F_CENTER_HZ, V, V), 1),
            f(ula.bistatic_rcs_dbsm(th_in, th, F_CENTER_HZ, V, V), 1),
        ]);
    }
    t.emit("fig4b");
    note("VAA redirects back to +30° (retro); ULA reflects to −30° (specular); VAA leakage 5–13 dB down.");
}

/// Fig. 5a/5b: PSVAA vs original VAA, cross- and co-polarized.
pub fn fig5(cache: &GeomCache, cross: bool) {
    let psvaa = VanAttaArray::new(ArrayKind::Psvaa, 3);
    let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
    let (tx, rx, name, paper) = if cross {
        (V, H, "Fig. 5a — RCS, Tx/Rx orthogonal polarization (dBsm)",
         "PSVAA ≈ −43 dBsm flat across 120°; VAA ≈ −55 dBsm (12 dB lower).")
    } else {
        (V, V, "Fig. 5b — RCS, Tx/Rx same polarization (dBsm)",
         "PSVAA acts as a specular reflector: only the normal direction returns.")
    };
    let mut t = Table::new(name, &["azimuth_deg", "PSVAA", "VAA"]);
    let thetas = azimuth_grid_rad();
    let psvaa_rcs = psvaa.monostatic_rcs_table_in(cache, &thetas, F_CENTER_HZ, tx, rx);
    let vaa_rcs = vaa.monostatic_rcs_table_in(cache, &thetas, F_CENTER_HZ, tx, rx);
    for (i, deg) in (-90..=90).step_by(5).enumerate() {
        t.row(vec![format!("{deg}"), f(psvaa_rcs[i], 1), f(vaa_rcs[i], 1)]);
    }
    t.emit(if cross { "fig5a" } else { "fig5b" });
    note(paper);
}

/// Fig. 6a/6b: PSVAA RCS across the band, cross- and co-polarized.
pub fn fig6(cross: bool) {
    let psvaa = VanAttaArray::paper_psvaa();
    let (tx, rx, name, paper) = if cross {
        (V, H, "Fig. 6a — PSVAA RCS across 76–81 GHz, orthogonal pol (dBsm)",
         "cross-pol RCS varies by <4 dB across the band.")
    } else {
        (V, V, "Fig. 6b — PSVAA RCS across 76–81 GHz, same pol (dBsm)",
         "strong specular main lobe and side lobes across the band.")
    };
    let mut t = Table::new(
        name,
        &["azimuth_deg", "76GHz", "77.25GHz", "78.5GHz", "79.75GHz", "81GHz"],
    );
    for deg in (-90..=90).step_by(10) {
        let th = deg_to_rad(deg as f64);
        let mut cells = vec![format!("{deg}")];
        for k in 0..5 {
            let freq = 76.0e9 + 1.25e9 * k as f64;
            cells.push(f(psvaa.monostatic_rcs_dbsm(th, freq, tx, rx), 1));
        }
        t.row(cells);
    }
    t.emit(if cross { "fig6a" } else { "fig6b" });
    note(paper);

    if cross {
        // Band ripple summary at a plateau angle.
        let th = deg_to_rad(15.0);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in 0..=40 {
            let freq = 76.0e9 + 5.0e9 * k as f64 / 40.0;
            let r = psvaa.monostatic_rcs_dbsm(th, freq, tx, rx);
            lo = lo.min(r);
            hi = hi.max(r);
        }
        println!("   measured band ripple at 15°: {:.2} dB (paper: <4 dB)\n", hi - lo);
    }
}
