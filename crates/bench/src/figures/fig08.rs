//! Figure 8: elevation beam shaping (§4.3).
//!
//! Compares the elevation power pattern of an 8-PSVAA stack with the
//! DE-GA flat-top phase profile against the uniform (un-shaped) stack,
//! and prints the optimized layout next to the paper's published
//! example.

use crate::util::{f, note, Table};
use ros_antenna::shaping::{standard_profile_in, ShapingProfile};
use ros_antenna::stack::PsvaaStack;
use ros_cache::GeomCache;
use ros_em::constants::F_CENTER_HZ;
use ros_em::geom::{deg_to_rad, rad_to_deg};

/// Fig. 8a: the optimized stack layout.
pub fn fig8a(cache: &GeomCache) {
    // The DE-GA profile is the most expensive table in the repo; the
    // shared cache means fig8a and fig8b run it once between them.
    let profile = standard_profile_in(cache, 8);
    let paper = ShapingProfile::paper_example_8();
    let shaped = profile.build();
    let mut t = Table::new(
        "Fig. 8a — 8-row stack layout: DE-GA phases and row spacings",
        &["row", "phase_deg (ours)", "phase_deg (paper)", "row_z (λ)"],
    );
    let lam = ros_em::constants::LAMBDA_CENTER_M;
    for (i, row) in shaped.rows().iter().enumerate() {
        t.row(vec![
            format!("{}", i + 1),
            f(rad_to_deg(row.phase_rad), 1),
            f(rad_to_deg(paper.phases[i]), 1),
            f(row.z_m / lam, 3),
        ]);
    }
    t.emit("fig8a");
    note("paper example: (152.9°, 37.6°, 0, 0, 0, 0, 37.6°, 152.9°); spacings 0.725–0.867λ.");
}

/// Fig. 8b: elevation pattern with and without beam shaping.
pub fn fig8b(cache: &GeomCache) {
    let shaped = standard_profile_in(cache, 8).build();
    let flat = PsvaaStack::uniform(8);
    let mut t = Table::new(
        "Fig. 8b — elevation power pattern (dB, peak-normalized)",
        &["elev_deg", "with shaping", "without shaping"],
    );
    let epsilons: Vec<f64> = (-20..=20).map(|i| deg_to_rad(f64::from(i))).collect();
    let shaped_db = shaped.elevation_pattern_table_in(cache, &epsilons, F_CENTER_HZ);
    let flat_db = flat.elevation_pattern_table_in(cache, &epsilons, F_CENTER_HZ);
    for (k, i) in (-20..=20).enumerate() {
        t.row(vec![f(f64::from(i), 0), f(shaped_db[k], 1), f(flat_db[k], 1)]);
    }
    t.emit("fig8b");

    let bw_shaped = rad_to_deg(shaped.measured_beamwidth_rad(F_CENTER_HZ));
    let bw_flat = rad_to_deg(flat.measured_beamwidth_rad(F_CENTER_HZ));
    println!(
        "   measured −3 dB beamwidth: shaped {bw_shaped:.1}°, uniform {bw_flat:.1}°"
    );
    note("beam flattened to ≈10° (from ≈2°), symmetric pattern.");
}
