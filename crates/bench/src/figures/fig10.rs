//! Figure 10: the example 4-bit tag (§5.2).
//!
//! * Fig. 10a layout: 4 coding stacks at +6λ, −7.5λ, +9λ, −10.5λ plus
//!   the reference stack,
//! * Fig. 10b: normalized RCS vs direction,
//! * Fig. 10c: RCS frequency spectrum with the 4 coding peaks.

use crate::util::{f, note, Table};
use ros_cache::GeomCache;
use ros_core::encode::SpatialCode;
use ros_core::rcs_model;
use ros_em::constants::LAMBDA_CENTER_M;

/// Fig. 10b: the multi-stack RCS factor vs azimuth.
pub fn fig10b() {
    let code = SpatialCode::paper_4bit();
    let tag = code.encode(&[true; 4]).unwrap_or_else(|e| panic!("tag encode: {e}"));
    let pos = tag.stack_positions_m().to_vec();
    let mut t = Table::new(
        "Fig. 10b — 4-bit tag RCS (normalized) vs azimuth",
        &["azimuth_deg", "normalized RCS"],
    );
    let peak = rcs_model::multi_stack_factor(&pos, 0.0, LAMBDA_CENTER_M);
    for deg in (-60..=60).step_by(2) {
        let u = ros_em::geom::deg_to_rad(deg as f64).sin();
        let r = rcs_model::multi_stack_factor(&pos, u, LAMBDA_CENTER_M) / peak;
        t.row(vec![format!("{deg}"), f(r, 4)]);
    }
    t.emit("fig10b");
    note("rapid multi-lobe fringing across azimuth — the spatial code's signature.");
}

/// Fig. 10c: the RCS frequency spectrum of the 4-bit tag.
pub fn fig10c(cache: &GeomCache) {
    let code = SpatialCode::paper_4bit();
    for (label, bits) in [("1111", [true; 4]), ("1010", [true, false, true, false])] {
        let tag = code
            .encode_with(cache, &bits)
            .unwrap_or_else(|e| panic!("tag encode: {e}"));
        let pos = tag.stack_positions_m().to_vec();
        let rcs = rcs_model::sample_rcs_factor_cached(cache, &pos, LAMBDA_CENTER_M, 1.0, 1024);
        let spectrum = rcs_model::rcs_spectrum_cached(cache, &rcs, 1.0, LAMBDA_CENTER_M, 8);
        let (spacings, mags) = (&spectrum.0, &spectrum.1);
        let mut t = Table::new(
            &format!("Fig. 10c — RCS frequency spectrum, bits {label}"),
            &["spacing_lambda", "normalized magnitude"],
        );
        let peak = mags.iter().cloned().fold(1e-30, f64::max);
        let mut last = -1.0f64;
        for (s, m) in spacings.iter().zip(mags.iter()) {
            let sl = s / LAMBDA_CENTER_M;
            if sl > 25.0 {
                break;
            }
            if sl - last >= 0.25 {
                t.row(vec![f(sl, 2), f(m / peak, 3)]);
                last = sl;
            }
        }
        t.emit(&format!("fig10c_{label}"));
        // Slot readout.
        let mut s = Table::new(
            &format!("Fig. 10c slots — bits {label}"),
            &["slot_lambda", "bit", "normalized amplitude"],
        );
        for (k, slot) in code.slot_spacings_lambda().iter().enumerate() {
            let m = rcs_model::magnitude_at_spacing(spacings, mags, slot * LAMBDA_CENTER_M);
            s.row(vec![
                f(*slot, 1),
                format!("{}", bits[k] as u8),
                f(m / peak, 3),
            ]);
        }
        s.emit(&format!("fig10c_slots_{label}"));
    }
    note("4 coding peaks at 6/7.5/9/10.5λ for 1111; secondary peaks fall outside the coding band.");
}
