//! Figures 11 and 13: detection among clutter (§6, §7.2).
//!
//! * Fig. 11b — merged multi-frame point cloud of a tag + tripod scene,
//! * Fig. 11c — spotlighted object RSS versus azimuth,
//! * Fig. 11d — RSS frequency spectrum of the tag vs the tripod,
//! * Fig. 13a — polarization RSS loss per object class,
//! * Fig. 13b — point-cloud size per object class.

use crate::util::{f, note, Table};
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_dsp::stats::BoxStats;
use ros_em::constants::LAMBDA_CENTER_M;
use ros_em::Vec3;
use ros_scene::objects::{ClutterObject, ObjectClass};

fn scene_tag() -> ros_core::tag::Tag {
    SpatialCode::paper_4bit()
        .encode(&[true; 4])
        .unwrap_or_else(|e| panic!("tag encode: {e}"))
        .with_column_bow(0.0004, 42)
}

fn tripod_scene() -> DriveBy {
    DriveBy::new(scene_tag(), 3.0)
        .with_clutter(ClutterObject::new(
            ObjectClass::Tripod,
            Vec3::new(1.4, 3.1, 1.0),
            7,
        ))
        .with_seed(1101)
}

/// Fig. 11b: the merged point cloud and its clusters.
pub fn fig11b() {
    let drive = tripod_scene();
    let outcome = drive.run(&ReaderConfig::full());
    let mut t = Table::new(
        "Fig. 11b — clustered point cloud (tag + tripod scene)",
        &["cluster", "cx_m", "cy_m", "points", "size_m2", "rss_loss_dB", "is_tag"],
    );
    for (i, c) in outcome.clusters.iter().enumerate() {
        t.row(vec![
            format!("{i}"),
            f(c.features.center.x, 2),
            f(c.features.center.y, 2),
            format!("{}", c.features.n_points),
            f(c.features.size_m2, 4),
            f(c.features.rss_loss_db(), 1),
            format!("{}", c.is_tag),
        ]);
    }
    t.emit("fig11b");
    println!(
        "   detected tag centre: {:?}; decoded bits: {:?}",
        outcome.detected_center.map(|c| (f(c.x, 2), f(c.y, 2))),
        outcome.bits().iter().map(|b| *b as u8).collect::<Vec<_>>()
    );
    note("two prominent clusters (tag ≈(0, 3), tripod ≈(1.4, 3.1)); tag correctly singled out.");
}

/// Fig. 11c: spotlighted RSS vs azimuth for the tag and the tripod.
pub fn fig11c() {
    let drive = tripod_scene();
    let cfg = ReaderConfig::full();
    let outcome = drive.run(&cfg);
    // Reconstruct per-frame azimuth for both ground-truth objects.
    let (_, truth, _) = drive.track(&cfg);
    let tag_c = Vec3::new(0.0, 3.0, 1.0);
    let tri_c = Vec3::new(1.4, 3.1, 1.0);
    let mut t = Table::new(
        "Fig. 11c — spotlighted RSS vs azimuth (dBm, switched-pol Tx)",
        &["azimuth_deg", "tag", "tripod(approx)"],
    );
    // The outcome's rss_trace spotlights the tag; tripod RSS falls out
    // of the cluster probe — rerun quickly at a few azimuths using the
    // cluster features instead.
    let n = outcome.rss_trace.len();
    for i in (0..n).step_by((n / 25).max(1)) {
        let s = &outcome.rss_trace[i];
        let az_tag = ros_em::geom::rad_to_deg((tag_c.x - truth[i].x).atan2(tag_c.y - truth[i].y));
        let rss = 10.0 * s.rss.norm_sqr().max(1e-300).log10();
        let az_tri = ros_em::geom::rad_to_deg((tri_c.x - truth[i].x).atan2(tri_c.y - truth[i].y));
        let tri_loss = outcome
            .clusters
            .iter()
            .find(|c| (c.features.center.x - tri_c.x).abs() < 0.5)
            .map(|c| c.features.rss_switched_dbm)
            .unwrap_or(f64::NEG_INFINITY);
        t.row(vec![f(az_tag, 1), f(rss, 1), f(tri_loss + (az_tri - az_tag) * 0.0, 1)]);
    }
    t.emit("fig11c");
    note("tag RSS well above the suppressed (cross-pol) tripod across the pass.");
}

/// Fig. 11d: frequency spectra of the tag vs tripod RSS traces.
pub fn fig11d() {
    let drive = tripod_scene();
    let outcome = drive.run(&ReaderConfig::full());
    if let Ok(dec) = &outcome.decode {
        let mut t = Table::new(
            "Fig. 11d — measured RSS frequency spectrum (tag)",
            &["spacing_lambda", "normalized magnitude"],
        );
        let mut last = -1.0f64;
        for (s, m) in dec.spectrum_spacings_m.iter().zip(&dec.spectrum_mags) {
            let sl = s / LAMBDA_CENTER_M;
            if sl > 22.0 {
                break;
            }
            if sl - last >= 0.5 {
                t.row(vec![f(sl, 2), f(*m, 2)]);
                last = sl;
            }
        }
        t.emit("fig11d");
        println!(
            "   coding-slot amplitudes: {:?}  (SNR {:.1} dB)",
            dec.slot_amplitudes
                .iter()
                .map(|a| (a * 10.0).round() / 10.0)
                .collect::<Vec<_>>(),
            dec.snr_db()
        );
    }
    note("4 coding peaks near 6/7.5/9/10.5λ, matching the simulated spectrum of Fig. 10c.");
}

/// Figs. 13a/13b: detection features per object class.
pub fn fig13() {
    let mut loss_t = Table::new(
        "Fig. 13a — polarization RSS loss per object (dB)",
        &["object", "q1", "median", "q3"],
    );
    let mut size_t = Table::new(
        "Fig. 13b — point-cloud bbox size per object (m²)",
        &["object", "q1", "median", "q3"],
    );

    // The tag itself first.
    let mut tag_losses = Vec::new();
    let mut tag_sizes = Vec::new();
    for seed in 0..5u64 {
        let drive = DriveBy::new(scene_tag(), 3.0).with_seed(3000 + seed);
        let outcome = drive.run(&ReaderConfig::full());
        if let Some(c) = outcome.clusters.iter().find(|c| c.is_tag) {
            tag_losses.push(c.features.rss_loss_db());
            tag_sizes.push(c.features.size_m2);
        }
    }
    let bl = BoxStats::from(&tag_losses);
    let bs = BoxStats::from(&tag_sizes);
    loss_t.row(vec!["RoS".into(), f(bl.q1, 1), f(bl.median, 1), f(bl.q3, 1)]);
    size_t.row(vec!["RoS".into(), f(bs.q1, 3), f(bs.median, 3), f(bs.q3, 3)]);

    for class in ObjectClass::ALL {
        let mut losses = Vec::new();
        let mut sizes = Vec::new();
        for seed in 0..5u64 {
            let drive = DriveBy::new(scene_tag(), 3.0)
                .with_clutter(ClutterObject::new(
                    class,
                    Vec3::new(1.6, 3.2, 1.0),
                    40 + seed,
                ))
                .with_seed(4000 + seed);
            let outcome = drive.run(&ReaderConfig::full());
            // Pick the cluster nearest the clutter ground truth.
            if let Some(c) = outcome
                .clusters
                .iter()
                .filter(|c| (c.features.center.x - 1.6).abs() < 0.8)
                .min_by(|a, b| {
                    (a.features.center.x - 1.6)
                        .abs()
                        .total_cmp(&(b.features.center.x - 1.6).abs())
                })
            {
                losses.push(c.features.rss_loss_db());
                sizes.push(c.features.size_m2);
            }
        }
        let bl = BoxStats::from(&losses);
        let bs = BoxStats::from(&sizes);
        loss_t.row(vec![
            class.label().into(),
            f(bl.q1, 1),
            f(bl.median, 1),
            f(bl.q3, 1),
        ]);
        size_t.row(vec![
            class.label().into(),
            f(bs.q1, 3),
            f(bs.median, 3),
            f(bs.q3, 3),
        ]);
    }
    loss_t.emit("fig13a");
    note("tag ≈13 dB median loss; background objects 16–19 dB.");
    size_t.emit("fig13b");
    note("tag's point cloud much smaller than every class except pedestrians.");
}
