//! Figures 14 and 15: elevation beam shaping and distance (§7.2).
//!
//! * Fig. 14a/b — RSS and SNR versus elevation misalignment, tags with
//!   and without beam shaping (radar fixed 3 m away),
//! * Fig. 15a/b — RSS and SNR versus radar-to-tag distance for tags
//!   with 8, 16, and 32 PSVAAs per stack.

use crate::util::{f, note, Table};
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::geom::deg_to_rad;

fn tag_with(rows: usize, shaped: bool, seed: u64) -> ros_core::tag::Tag {
    let code = SpatialCode {
        rows_per_stack: rows,
        beam_shaped: shaped,
        ..SpatialCode::paper_4bit()
    };
    // Column bow grows with column length (§7.2's bending/sway).
    let bow = 0.0004 * (rows as f64 / 32.0).powi(2);
    code.encode(&[true; 4])
        .unwrap_or_else(|e| panic!("tag encode: {e}"))
        .with_column_bow(bow, seed)
}

/// Figs. 14a/14b: elevation misalignment with/without beam shaping.
pub fn fig14() {
    let mut t = Table::new(
        "Fig. 14a/b — RSS and SNR vs elevation angle (3 m standoff, 32-row stacks)",
        &[
            "elev_deg",
            "RSS w/ shaping",
            "RSS w/o shaping",
            "SNR w/ shaping",
            "SNR w/o shaping",
        ],
    );
    for tenth in 0..=8 {
        let elev_deg = 0.5 * tenth as f64;
        let dz = 3.0 * deg_to_rad(elev_deg).tan();
        let mut row = vec![f(elev_deg, 1)];
        let mut rss_pair = Vec::new();
        let mut snr_pair = Vec::new();
        for shaped in [true, false] {
            let mut rss = Vec::new();
            let mut snr = Vec::new();
            for seed in 0..3u64 {
                let drive = DriveBy::new(tag_with(32, shaped, 42 + seed), 3.0)
                    .with_radar_height(1.0 + dz)
                    .with_seed(1400 + 10 * tenth as u64 + seed);
                let o = drive.run(&ReaderConfig::fast());
                rss.push(o.median_rss_dbm());
                snr.push(o.snr_db().unwrap_or(0.0));
            }
            rss_pair.push(ros_dsp::stats::median(&rss));
            snr_pair.push(ros_dsp::stats::median(&snr));
        }
        row.push(f(rss_pair[0], 1));
        row.push(f(rss_pair[1], 1));
        row.push(f(snr_pair[0], 1));
        row.push(f(snr_pair[1], 1));
        t.row(row);
    }
    t.emit("fig14");
    note("with shaping: SNR stays >15 dB to ±4°; without: RSS swings ≈13 dB, SNR dips to ≈10 dB.");
}

/// Figs. 15a/15b: distance sweep for 8/16/32-row tags.
pub fn fig15() {
    let mut t = Table::new(
        "Fig. 15a/b — RSS (dBm) and SNR (dB) vs radar-to-tag distance",
        &[
            "dist_m", "RSS 8", "RSS 16", "RSS 32", "SNR 8", "SNR 16", "SNR 32", "bits ok 8/16/32",
        ],
    );
    for step in 0..=8 {
        let d = 2.0 + 0.5 * step as f64;
        let mut rss = Vec::new();
        let mut snr = Vec::new();
        let mut ok = Vec::new();
        for rows in [8usize, 16, 32] {
            let mut rss_s = Vec::new();
            let mut snr_s = Vec::new();
            let mut n_ok = 0;
            for seed in 0..3u64 {
                let mut drive = DriveBy::new(tag_with(rows, true, 42 + seed), d)
                    .with_seed(1500 + 10 * step as u64 + seed);
                drive.half_span_m = (2.0 * d).min(8.0);
                let o = drive.run(&ReaderConfig::fast());
                rss_s.push(o.median_rss_dbm());
                snr_s.push(o.snr_db().unwrap_or(0.0));
                if o.bits() == vec![true; 4] {
                    n_ok += 1;
                }
            }
            rss.push(ros_dsp::stats::median(&rss_s));
            snr.push(ros_dsp::stats::median(&snr_s));
            ok.push(if n_ok >= 2 { '1' } else { '0' });
        }
        t.row(vec![
            f(d, 1),
            f(rss[0], 1),
            f(rss[1], 1),
            f(rss[2], 1),
            f(snr[0], 1),
            f(snr[1], 1),
            f(snr[2], 1),
            format!("{}/{}/{}", ok[0], ok[1], ok[2]),
        ]);
    }
    t.emit("fig15");
    note("detect ranges ≈4/5/6 m for 8/16/32 rows; all SNR >14 dB in range; 32-row SNR statistically lower (near-field + column bending).");
}
