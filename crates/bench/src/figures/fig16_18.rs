//! Figures 16–18: practical vehicular scenarios (§7.3).
//!
//! * Fig. 16a — adjacent-tag interference vs spread angle,
//! * Fig. 16b — adjacent-radar interference vs radar spacing,
//! * Fig. 16c — fog levels,
//! * Fig. 16d — self-tracking error,
//! * Fig. 17 — angular field of view,
//! * Fig. 18 — vehicle speed.

use crate::util::{f, note, Table};
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::constants::mph_to_mps;
use ros_em::geom::deg_to_rad;
use ros_em::Vec3;
use ros_scene::tracking::TrackingError;
use ros_scene::weather::FogLevel;

fn paper_tag(seed: u64) -> ros_core::tag::Tag {
    SpatialCode::paper_4bit()
        .encode(&[true; 4])
        .unwrap_or_else(|e| panic!("tag encode: {e}"))
        .with_column_bow(0.0004, seed)
}

/// Fig. 16a: two tags side by side, spread angle 10°–30° at 3 m.
///
/// Cross-tag fringes appear at the tag-to-tag spacing (≈140–460λ),
/// far above the coding band — but only if the RSS trace satisfies
/// their Nyquist rate. The 1 kHz frame rate does (≈2 mm per frame);
/// the experiment therefore keeps every frame and uses a dense `u`
/// grid, exactly like the real system.
pub fn fig16a() {
    let mut t = Table::new(
        "Fig. 16a — SNR vs adjacent-tag spread angle (dB)",
        &["spread_deg", "SNR"],
    );
    let mut cfg = ReaderConfig::fast();
    cfg.frame_stride = 1;
    cfg.decoder.n_grid = 4096;
    for spread in [10.0, 15.0, 20.0, 25.0, 30.0] {
        let dx = 3.0 * deg_to_rad(spread).tan();
        let second = paper_tag(77).mounted_at(Vec3::new(dx, 3.0, 1.0));
        let drive = DriveBy::new(paper_tag(42), 3.0)
            .with_extra_tag(second)
            .with_seed(1600 + spread as u64);
        let o = drive.run(&cfg);
        t.row(vec![f(spread, 0), f(o.snr_db().unwrap_or(f64::NAN), 1)]);
    }
    t.emit("fig16a");
    note("SNR only slightly increases with spread angle; cross-tag interference negligible.");
}

/// Fig. 16b: a second radar interrogating simultaneously, 1–3 m away.
///
/// The second radar's chirps are asynchronous, so its energy appears
/// as a raised noise floor. The rise is bounded by the tag's
/// retro-directivity (Fig. 4b: 5–13 dB leakage suppression) and falls
/// off with radar separation; we model it as
/// `floor_rise = 7 dB − 2 dB/m · spacing` (clamped at 0).
pub fn fig16b() {
    let mut t = Table::new(
        "Fig. 16b — SNR vs adjacent-radar spacing (dB)",
        &["spacing_m", "floor_rise_dB", "SNR"],
    );
    for step in 0..=4 {
        let spacing = 1.0 + 0.5 * step as f64;
        let rise = (7.0 - 2.0 * spacing).max(0.0);
        let mut drive = DriveBy::new(paper_tag(42), 3.0)
            .with_interference_db(rise)
            .with_seed(1660 + step as u64);
        drive.half_span_m = 8.0;
        let o = drive.run(&ReaderConfig::fast());
        t.row(vec![
            f(spacing, 1),
            f(rise, 1),
            f(o.snr_db().unwrap_or(f64::NAN), 1),
        ]);
    }
    t.emit("fig16b");
    note("SNR slightly increases with separation but stays >15 dB even at 1 m.");
}

/// Fig. 16c: fog levels.
pub fn fig16c() {
    let mut t = Table::new("Fig. 16c — SNR vs fog level (dB)", &["fog", "SNR"]);
    for fog in FogLevel::ALL {
        let mut snrs = Vec::new();
        for seed in 0..4u64 {
            let mut drive = DriveBy::new(paper_tag(42 + seed), 3.0)
                .with_fog(fog)
                .with_seed(1700 + seed);
            drive.half_span_m = 8.0;
            let o = drive.run(&ReaderConfig::fast());
            if let Some(s) = o.snr_db() {
                snrs.push(s);
            }
        }
        t.row(vec![
            fog.label().into(),
            f(ros_dsp::stats::median(&snrs), 1),
        ]);
    }
    t.emit("fig16c");
    note("median SNR stays above 15 dB across all fog levels.");
}

/// Fig. 16d: relative tracking error 2–10 %.
pub fn fig16d() {
    let mut t = Table::new(
        "Fig. 16d — SNR vs relative tracking error (dB)",
        &["drift_pct", "SNR"],
    );
    for pct in [0.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let mut snrs = Vec::new();
        for seed in 0..4u64 {
            let mut drive = DriveBy::new(paper_tag(42 + seed), 3.0)
                .with_tracking(TrackingError {
                    drift: pct / 100.0,
                    jitter_m: 0.0,
                    seed,
                })
                .with_seed(1800 + seed);
            drive.half_span_m = 8.0;
            let o = drive.run(&ReaderConfig::fast());
            snrs.push(o.snr_db().unwrap_or(0.0));
        }
        t.row(vec![f(pct, 0), f(ros_dsp::stats::median(&snrs), 1)]);
    }
    t.emit("fig16d");
    note("≈20 dB below 6% drift, degrading beyond as coding peaks distort.");
}

/// Beyond Fig. 16c: rain rates (the paper cites 3.2 dB/100 m at
/// 100 mm/h but only tests fog; the model covers both).
pub fn rain_sweep() {
    let mut t = Table::new(
        "Extension — rain rate vs link margin at 79 GHz",
        &["rain_mm_h", "2-way loss @6m (dB)", "2-way loss @52m (dB)"],
    );
    for rate in [0.0, 10.0, 25.0, 50.0, 100.0] {
        let l6 = 2.0 * ros_em::atten::rain_one_way_db(rate, 6.0);
        let l52 = 2.0 * ros_em::atten::rain_one_way_db(rate, 52.0);
        t.row(vec![f(rate, 0), f(l6, 2), f(l52, 2)]);
    }
    t.emit("rain_sweep");
    note("even 100 mm/h rain costs <0.4 dB at 6 m and <3.5 dB at 52 m — radar keeps reading.");
}

/// End-to-end §8 claim: a commercial-grade radar (N_F 9 dB, EIRP
/// 50 dBm) reads the tag from tens of metres.
pub fn commercial_range() {
    let mut t = Table::new(
        "Extension — commercial radar decode range (32-row tag, 30 mph)",
        &["dist_m", "median RSS (dBm)", "SNR (dB)", "bits ok"],
    );
    for d in [10.0, 20.0, 30.0, 40.0, 50.0] {
        let tag = paper_tag(42);
        let mut drive = DriveBy::new(tag, d)
            .with_speed(mph_to_mps(30.0))
            .with_seed(2100 + d as u64);
        drive.half_span_m = (1.2 * d).min(60.0);
        drive.radar.budget = ros_em::radar_eq::RadarLinkBudget::commercial();
        let mut cfg = ReaderConfig::fast();
        cfg.frame_stride = 2;
        let o = drive.run(&cfg);
        t.row(vec![
            f(d, 0),
            f(o.median_rss_dbm(), 1),
            f(o.snr_db().unwrap_or(f64::NAN), 1),
            format!("{}", o.bits() == vec![true; 4]),
        ]);
    }
    t.emit("commercial_range");
    note("§8 predicts ≈52 m from the link budget; the end-to-end simulation confirms decoding at highway standoffs.");
}

/// Fig. 17: angular field of view 20°–100°.
pub fn fig17() {
    let mut t = Table::new("Fig. 17 — SNR vs angular FoV (dB)", &["fov_deg", "SNR"]);
    for fov in [20.0, 40.0, 60.0, 80.0, 100.0] {
        let mut cfg = ReaderConfig::fast();
        cfg.decoder.fov_rad = deg_to_rad(fov);
        let mut drive = DriveBy::new(paper_tag(42), 3.0).with_seed(1900 + fov as u64);
        drive.half_span_m = 8.0;
        let o = drive.run(&cfg);
        t.row(vec![f(fov, 0), f(o.snr_db().unwrap_or(f64::NAN), 1)]);
    }
    t.emit("fig17");
    note("SNR rises slightly from 20° to 80°; 60° FoV is sufficient to decode.");
}

/// Fig. 18: vehicle speed 10–30 mph.
pub fn fig18() {
    let mut t = Table::new("Fig. 18 — SNR vs vehicle speed (dB)", &["speed_mph", "SNR"]);
    for mph in [10.0, 15.0, 20.0, 25.0, 30.0] {
        let mut snrs = Vec::new();
        for seed in 0..3u64 {
            let mut drive = DriveBy::new(paper_tag(42), 3.0)
                .with_speed(mph_to_mps(mph))
                .with_seed(2000 + seed);
            drive.half_span_m = 8.0;
            // Keep every frame at driving speed (the 1 kHz rate is no
            // longer oversampled).
            let mut cfg = ReaderConfig::fast();
            cfg.frame_stride = 1;
            let o = drive.run(&cfg);
            snrs.push(o.snr_db().unwrap_or(0.0));
        }
        t.row(vec![f(mph, 0), f(ros_dsp::stats::median(&snrs), 1)]);
    }
    t.emit("fig18");
    note("SNR consistently above 14 dB at 10–30 mph (larger spread than cart tests).");
}
