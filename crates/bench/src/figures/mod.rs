//! One module per paper figure (or figure group).

pub mod ablations;
pub mod design;
pub mod fig03_06;
pub mod fig08;
pub mod fig10;
pub mod fig11_13;
pub mod fig14_15;
pub mod fig16_18;
pub mod validation;
