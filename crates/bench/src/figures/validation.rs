//! Model-validation experiments.
//!
//! * `ber_validation` — Monte-Carlo bit errors vs the analytic OOK
//!   model `BER = ½·erfc(√SNR/2√2)` the paper uses (§7.1). The paper
//!   could not drive past its tag millions of times; the simulator
//!   can, closing that loop.
//! * `music_separation` — MUSIC vs beamforming for side-by-side tags
//!   closer than the §5.3 spacing bound.

use crate::util::{f, note, Table};
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_dsp::music::music_doa;
use ros_em::Complex64;

/// Monte-Carlo BER at several interference-degraded SNR points.
pub fn ber_validation() {
    let mut t = Table::new(
        "Validation — Monte-Carlo bit errors vs the analytic OOK model",
        &[
            "floor_rise_dB",
            "median SNR (dB)",
            "bit errors",
            "bits",
            "empirical BER",
            "model BER",
        ],
    );
    // Randomized 4-bit patterns; interference raises the floor to pull
    // the SNR down into the region where errors are observable.
    let patterns: Vec<[bool; 4]> = (1u8..16)
        .map(|w| [w & 1 != 0, w & 2 != 0, w & 4 != 0, w & 8 != 0])
        .collect();
    for rise in [0.0, 4.0, 7.0] {
        let mut errors = 0usize;
        let mut total = 0usize;
        let mut snrs = Vec::new();
        let mut trial = 0u64;
        for _round in 0..12 {
            for bits in &patterns {
                trial += 1;
                let tag = SpatialCode {
                    rows_per_stack: 8,
                    ..SpatialCode::paper_4bit()
                }
                .encode(bits)
                .unwrap_or_else(|e| panic!("tag encode: {e}"));
                let mut drive = DriveBy::new(tag, 3.0)
                    .with_interference_db(rise)
                    .with_seed(0xbe7 + trial * 31);
                drive.half_span_m = 8.0;
                let outcome = drive.run(&ReaderConfig::fast());
                if let Ok(dec) = &outcome.decode {
                    snrs.push(dec.snr_db());
                    for (got, want) in dec.bits.iter().zip(bits) {
                        total += 1;
                        if got != want {
                            errors += 1;
                        }
                    }
                } else {
                    total += 4;
                    errors += 4;
                }
            }
        }
        let med_snr = ros_dsp::stats::median(&snrs);
        let empirical = errors as f64 / total.max(1) as f64;
        let model = ros_dsp::stats::ook_ber(ros_em::db::db_to_pow(med_snr));
        t.row(vec![
            f(rise, 0),
            f(med_snr, 1),
            format!("{errors}"),
            format!("{total}"),
            format!("{:.3}%", empirical * 100.0),
            format!("{:.3}%", model * 100.0),
        ]);
    }
    t.emit("ber_validation");
    note("near the ≥14 dB operating region the erfc model holds; below it, threshold and peak-search errors push the empirical rate above the ideal-OOK bound.");
}

/// MUSIC vs beamforming for two tags at sub-beamwidth separation.
pub fn music_separation() {
    let mut t = Table::new(
        "Validation — MUSIC resolves sub-beamwidth tag separation",
        &["separation (Δu)", "beamforming resolves", "MUSIC error (Δu)"],
    );
    let spacing = 0.5; // λ/2 array
    let beam_res = 1.0 / 4.0 / spacing; // λ/(N·d) in u units = 0.5
    for sep in [0.15, 0.25, 0.35, 0.55] {
        let (u1, u2) = (-sep / 2.0, sep / 2.0);
        // Snapshots as the radar would collect them frame to frame:
        // per-frame random relative phases (the tags' range fringes).
        let snaps: Vec<Vec<Complex64>> = (0..256)
            .map(|tix| {
                let p1 = (tix as f64 * 0.731).rem_euclid(std::f64::consts::TAU);
                let p2 = (tix as f64 * 1.947).rem_euclid(std::f64::consts::TAU);
                (0..4)
                    .map(|k| {
                        Complex64::from_polar(
                            1.0,
                            p1 - std::f64::consts::TAU * k as f64 * spacing * u1,
                        ) + Complex64::from_polar(
                            1.0,
                            p2 - std::f64::consts::TAU * k as f64 * spacing * u2,
                        ) + Complex64::from_polar(0.05, (tix * (k + 3)) as f64)
                    })
                    .collect()
            })
            .collect();
        let mut doa = music_doa(&snaps, 2, spacing);
        doa.sort_by(|a, b| a.total_cmp(b));
        let err = if doa.len() == 2 {
            ((doa[0] - u1).abs() + (doa[1] - u2).abs()) / 2.0
        } else {
            f64::NAN
        };
        t.row(vec![
            f(sep, 2),
            format!("{}", sep > beam_res),
            f(err, 3),
        ]);
    }
    t.emit("music_separation");
    note("beamforming needs Δu > 0.5 (→ 1.53 m at 6 m, §5.3); MUSIC locates tags at Δu ≈ 0.15.");
}
