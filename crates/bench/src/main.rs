//! The RoS experiment harness: regenerates every figure of the paper.
//!
//! ```text
//! cargo run --release -p bench -- all         # every figure ("figures" works too)
//! cargo run --release -p bench -- fig15
//! cargo run --release -p bench -- design
//! cargo run --release -p bench -- --par all   # figure-level fan-out
//! cargo run --release -p bench -- perf        # serial-vs-parallel timings
//! cargo run --release -p bench -- perf --require-valid   # canonical multi-core record
//! cargo run --release -p bench -- perf --force   # may replace a valid record with an invalid one
//! cargo run --release -p bench -- serve       # corridor reader service benchmark
//! cargo run --release -p bench -- serve --smoke   # reduced CI corridor
//! cargo run --release -p bench -- smoke       # one full-pipeline drive-by
//! cargo run --release -p bench -- faults      # fault-injection sweep
//! cargo run --release -p bench -- faults --smoke   # reduced CI matrix
//! ```
//!
//! Tables print to stdout and are mirrored as CSVs under `results/`.
//! With `--par`, independent figure jobs fan out over the
//! [`ros_exec`] scoped-thread executor (console tables from different
//! figures may interleave; the CSV mirrors are per-figure files and
//! unaffected). `perf` times each parallelized pipeline stage at one
//! thread versus the full thread pool and writes `BENCH_pipeline.json`
//! at the repository root.
//!
//! Telemetry: `ROS_OBS=1` (summary) or `ROS_OBS=2` (per-frame detail)
//! streams ndjson from every pipeline stage to stderr, or to
//! `ROS_OBS_FILE` when set — see `ros-obs` and DESIGN.md §10. `smoke`
//! runs a single 3-stack full-pipeline drive-by, the smallest command
//! that exercises capture → CFAR → DBSCAN → discrimination → decode.

mod faults;
mod figures;
mod perf;
mod serve;
mod util;

use figures::*;
use ros_cache::GeomCache;

fn main() {
    ros_obs::init_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let parallel = args.iter().any(|a| a == "--par");
    args.retain(|a| a != "--par");

    if args.iter().any(|a| a == "perf") {
        perf::run(
            args.iter().any(|a| a == "--require-valid"),
            args.iter().any(|a| a == "--force"),
        );
        ros_obs::flush();
        return;
    }
    if args.iter().any(|a| a == "serve") {
        serve::run(
            args.iter().any(|a| a == "--smoke"),
            args.iter().any(|a| a == "--require-valid"),
            args.iter().any(|a| a == "--force"),
        );
        ros_obs::flush();
        return;
    }
    if args.iter().any(|a| a == "smoke") {
        smoke();
        ros_obs::flush();
        return;
    }
    if args.iter().any(|a| a == "faults") {
        faults::run(args.iter().any(|a| a == "--smoke"));
        ros_obs::flush();
        return;
    }

    let which: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all" || a == "figures")
    {
        vec![
            "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig8a", "fig8b",
            "fig10b", "fig10c", "fig11b", "fig11c", "fig11d", "fig13", "fig14", "fig15",
            "fig16a", "fig16b", "fig16c", "fig16d", "fig17", "fig18", "design",
            "ablate_decoder", "ablate_window", "ablate_sampling", "ask_demo",
            "cp_analysis", "fec_analysis", "ber_validation", "music_separation", "optimizer_ablation", "rain_sweep", "commercial_range", "ground_effect", "impairments", "tag_yaw", "blockage",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    // One geometry/EM table cache shared by every figure job: repeated
    // designs (fig4a's VAA azimuth table reappears in fig5b, the 8-row
    // shaping profile spans fig8a/fig8b) build exactly once per run.
    let cache = GeomCache::new();
    if parallel {
        // Figure jobs are independent (each writes its own CSVs), so
        // they fan out across the executor's thread pool.
        ros_exec::par_map(&which, |name| run_one(name, &cache));
    } else {
        for name in which {
            run_one(name, &cache);
        }
    }
    ros_obs::flush();
}

/// `smoke` sub-command: one 5-stack full-pipeline drive-by — the
/// smallest run that touches every instrumented stage with a genuine
/// tag classification (IF capture, CFAR, DBSCAN, two-feature
/// discrimination, spotlight, OOK decode). With `ROS_OBS=1` the trace
/// doubles as the telemetry smoke test wired into `verify.sh`.
fn smoke() {
    use ros_core::encode::SpatialCode;
    use ros_core::reader::{DriveBy, ReaderConfig};

    // 32 rows per stack: large enough for the size feature to
    // classify the cluster as a tag (mirrors tests/obs_trace.rs).
    let code = SpatialCode {
        rows_per_stack: 32,
        ..SpatialCode::paper_4bit()
    };
    let Ok(tag) = code.encode(&[true, false, true, true]) else {
        eprintln!("smoke: 4-bit word failed to encode");
        return;
    };
    let mut drive = DriveBy::new(tag, 3.0).with_seed(90125);
    drive.half_span_m = 3.0;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    let outcome = drive.run(&cfg);
    println!(
        "smoke: bits={:?} clusters={} detected={} snr_db={:.2}",
        outcome.bits(),
        outcome.clusters.len(),
        outcome.detected_center.is_some(),
        outcome.snr_db().unwrap_or(f64::NAN),
    );
}

/// Dispatches one experiment by name (the unit of figure-level
/// parallelism). `cache` is the run-wide geometry/EM table cache;
/// figures that evaluate memoizable tables draw from it.
fn run_one(name: &str, cache: &GeomCache) {
    match name {
        "fig3" => fig03_06::fig3(cache),
        "fig4a" => fig03_06::fig4a(cache),
        "fig4b" => fig03_06::fig4b(),
        "fig5a" => fig03_06::fig5(cache, true),
        "fig5b" => fig03_06::fig5(cache, false),
        "fig6a" => fig03_06::fig6(true),
        "fig6b" => fig03_06::fig6(false),
        "fig8a" => fig08::fig8a(cache),
        "fig8b" => fig08::fig8b(cache),
        "fig10b" => fig10::fig10b(),
        "fig10c" => fig10::fig10c(cache),
        "fig11b" => fig11_13::fig11b(),
        "fig11c" => fig11_13::fig11c(),
        "fig11d" => fig11_13::fig11d(),
        "fig13" | "fig13a" | "fig13b" => fig11_13::fig13(),
        "fig14" | "fig14a" | "fig14b" => fig14_15::fig14(),
        "fig15" | "fig15a" | "fig15b" => fig14_15::fig15(),
        "fig16a" => fig16_18::fig16a(),
        "fig16b" => fig16_18::fig16b(),
        "fig16c" => fig16_18::fig16c(),
        "fig16d" => fig16_18::fig16d(),
        "fig17" => fig16_18::fig17(),
        "fig18" => fig16_18::fig18(),
        "design" => design::design(),
        "ablate_decoder" => ablations::ablate_decoder(),
        "ablate_window" => ablations::ablate_window(),
        "ablate_sampling" => ablations::ablate_sampling(),
        "ask_demo" => ablations::ask_demo(),
        "cp_analysis" => ablations::cp_analysis(),
        "fec_analysis" => ablations::fec_analysis(),
        "ber_validation" => validation::ber_validation(),
        "music_separation" => validation::music_separation(),
        "optimizer_ablation" => ablations::optimizer_ablation(),
        "rain_sweep" => fig16_18::rain_sweep(),
        "commercial_range" => fig16_18::commercial_range(),
        "ground_effect" => ablations::ground_effect(),
        "impairments" => ablations::impairments_ablation(),
        "tag_yaw" => ablations::tag_yaw(),
        "blockage" => ablations::blockage(),
        other => eprintln!("unknown experiment: {other}"),
    }
}
