//! The RoS experiment harness: regenerates every figure of the paper.
//!
//! ```text
//! cargo run --release -p bench -- all
//! cargo run --release -p bench -- fig15
//! cargo run --release -p bench -- design
//! cargo run --release -p bench -- --par all   # figure-level fan-out
//! cargo run --release -p bench -- perf        # serial-vs-parallel timings
//! ```
//!
//! Tables print to stdout and are mirrored as CSVs under `results/`.
//! With `--par`, independent figure jobs fan out over the
//! [`ros_exec`] scoped-thread executor (console tables from different
//! figures may interleave; the CSV mirrors are per-figure files and
//! unaffected). `perf` times each parallelized pipeline stage at one
//! thread versus the full thread pool and writes `BENCH_pipeline.json`
//! at the repository root.

mod figures;
mod perf;
mod util;

use figures::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let parallel = args.iter().any(|a| a == "--par");
    args.retain(|a| a != "--par");

    if args.iter().any(|a| a == "perf") {
        perf::run();
        return;
    }

    let which: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig8a", "fig8b",
            "fig10b", "fig10c", "fig11b", "fig11c", "fig11d", "fig13", "fig14", "fig15",
            "fig16a", "fig16b", "fig16c", "fig16d", "fig17", "fig18", "design",
            "ablate_decoder", "ablate_window", "ablate_sampling", "ask_demo",
            "cp_analysis", "fec_analysis", "ber_validation", "music_separation", "optimizer_ablation", "rain_sweep", "commercial_range", "ground_effect", "impairments", "tag_yaw", "blockage",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    if parallel {
        // Figure jobs are independent (each writes its own CSVs), so
        // they fan out across the executor's thread pool.
        ros_exec::par_map(&which, |name| run_one(name));
    } else {
        for name in which {
            run_one(name);
        }
    }
}

/// Dispatches one experiment by name (the unit of figure-level
/// parallelism).
fn run_one(name: &str) {
    match name {
        "fig3" => fig03_06::fig3(),
        "fig4a" => fig03_06::fig4a(),
        "fig4b" => fig03_06::fig4b(),
        "fig5a" => fig03_06::fig5(true),
        "fig5b" => fig03_06::fig5(false),
        "fig6a" => fig03_06::fig6(true),
        "fig6b" => fig03_06::fig6(false),
        "fig8a" => fig08::fig8a(),
        "fig8b" => fig08::fig8b(),
        "fig10b" => fig10::fig10b(),
        "fig10c" => fig10::fig10c(),
        "fig11b" => fig11_13::fig11b(),
        "fig11c" => fig11_13::fig11c(),
        "fig11d" => fig11_13::fig11d(),
        "fig13" | "fig13a" | "fig13b" => fig11_13::fig13(),
        "fig14" | "fig14a" | "fig14b" => fig14_15::fig14(),
        "fig15" | "fig15a" | "fig15b" => fig14_15::fig15(),
        "fig16a" => fig16_18::fig16a(),
        "fig16b" => fig16_18::fig16b(),
        "fig16c" => fig16_18::fig16c(),
        "fig16d" => fig16_18::fig16d(),
        "fig17" => fig16_18::fig17(),
        "fig18" => fig16_18::fig18(),
        "design" => design::design(),
        "ablate_decoder" => ablations::ablate_decoder(),
        "ablate_window" => ablations::ablate_window(),
        "ablate_sampling" => ablations::ablate_sampling(),
        "ask_demo" => ablations::ask_demo(),
        "cp_analysis" => ablations::cp_analysis(),
        "fec_analysis" => ablations::fec_analysis(),
        "ber_validation" => validation::ber_validation(),
        "music_separation" => validation::music_separation(),
        "optimizer_ablation" => ablations::optimizer_ablation(),
        "rain_sweep" => fig16_18::rain_sweep(),
        "commercial_range" => fig16_18::commercial_range(),
        "ground_effect" => ablations::ground_effect(),
        "impairments" => ablations::impairments_ablation(),
        "tag_yaw" => ablations::tag_yaw(),
        "blockage" => ablations::blockage(),
        other => eprintln!("unknown experiment: {other}"),
    }
}
