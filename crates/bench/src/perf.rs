//! `perf` sub-command: serial-vs-parallel timings for every pipeline
//! stage wired into the [`ros_exec`] executor.
//!
//! Each path runs the *same* code twice — once pinned to one worker
//! (a scoped [`ros_exec::ThreadGuard`]), once on the full thread pool —
//! so the comparison isolates the executor fan-out from any algorithm
//! difference (the outputs are bit-identical by construction; see
//! `tests/determinism.rs`). Timings use the vendored criterion stub's
//! measurement loop via [`criterion::bench_median_ns`].
//!
//! Results print as a table and are mirrored to `BENCH_pipeline.json`
//! at the repository root:
//!
//! ```json
//! {
//!   "requested_threads": 4,
//!   "effective_threads": 4,
//!   "available_parallelism": 4,
//!   "valid": true,
//!   "paths": [
//!     {"name": "...", "serial_median_ns": 1.0, "parallel_median_ns": 1.0,
//!      "speedup": 1.0, "telemetry": [...]}
//!   ]
//! }
//! ```
//!
//! A "parallel" run on a machine whose pool resolves to one worker is
//! not a parallel measurement at all — the executor degrades to the
//! serial loop and every speedup trivially reads ~1.0x. The record
//! keeps both the requested and the effective worker counts and is
//! marked `"valid": false` when the effective count is 1, so a
//! single-core artifact can never be mistaken for a real scaling
//! result. The canonical multi-core invocation,
//! `cargo run --release -p bench -- perf --require-valid`, goes one
//! step further: it exits non-zero on an invalid record, so CI or a
//! results-collection script cannot accidentally bless one.
//! Each row also embeds the telemetry counters (`ros-obs`)
//! from one instrumented run of the path, tying the timing to the
//! amount of work it performed.

use crate::util::should_overwrite;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_core::rcs_model;
use ros_em::constants::LAMBDA_CENTER_M;
use ros_em::{Complex64, Vec3};
use ros_optim::{minimize_par, DeConfig, Strategy};
use ros_radar::echo::{Echo, Pose};
use ros_radar::radar::FmcwRadar;

/// One timed pipeline path.
struct PerfRow {
    name: &'static str,
    serial_ns: f64,
    parallel_ns: f64,
    /// JSON array of the `ros-obs` metrics one run of the path touched.
    telemetry: String,
}

impl PerfRow {
    fn speedup(&self) -> f64 {
        if self.parallel_ns > 0.0 {
            self.serial_ns / self.parallel_ns
        } else {
            f64::NAN
        }
    }
}

/// Times `work` at one thread and at the full pool, then captures one
/// instrumented run's telemetry.
///
/// The pins are scoped guards, so the prior override (if the caller
/// holds one) is restored even if `work` panics mid-measurement. The
/// telemetry capture happens *outside* the timed loops — instrumented
/// iterations are never part of the median.
fn time_pair(name: &'static str, mut work: impl FnMut()) -> PerfRow {
    let serial_ns = {
        let _pin = ros_exec::ThreadGuard::pin(Some(1));
        criterion::bench_median_ns(&mut work)
    };
    let parallel_ns = criterion::bench_median_ns(&mut work);
    let ((), report) = ros_obs::capture_scope(ros_obs::Level::Summary, &mut work);
    PerfRow {
        name,
        serial_ns,
        parallel_ns,
        telemetry: report.metrics,
    }
}

/// DE-GA population evaluation: one beam-shaping search with the
/// per-generation trial batch fanned out ([`minimize_par`]).
fn de_population_eval() {
    let n_rows = 8;
    let bounds = vec![(0.0, std::f64::consts::TAU * 0.9); 4];
    let cfg = DeConfig {
        population: 24,
        f: 0.6,
        cr: 0.9,
        max_generations: 20,
        strategy: Strategy::RandToBest1Bin,
        seed: 0x9e4f,
        ..Default::default()
    };
    let target = ros_em::geom::deg_to_rad(10.0);
    let r = minimize_par(
        |half| ros_antenna::shaping::flat_top_objective(half, n_rows, target),
        &bounds,
        &cfg,
    );
    criterion::black_box(r.cost);
}

/// Per-frame echo synthesis + range-FFT batch over a 16-frame,
/// 12-echo scene, measured the way a steady-state pipeline runs it:
/// the capture arena, frames, FFT plan and spectra buffers live in the
/// returned closure and are reused across iterations, so after the
/// first (warm-up) pass every timed iteration hits the planned,
/// allocation-free hot path (`capture_batch_with` +
/// `range_spectra_into`; see `tests/alloc_budget.rs` for the pinned
/// zero-allocation invariant).
fn radar_frame_batch() -> impl FnMut() {
    let radar = FmcwRadar::ti_eval();
    let jobs: Vec<(Pose, Vec<Echo>)> = (0..16)
        .map(|i| {
            let echoes: Vec<Echo> = (0..12)
                .map(|k| {
                    let x = -1.5 + 0.25 * k as f64 + 0.01 * i as f64;
                    Echo::new(
                        Vec3::new(x, 3.0 + 0.1 * k as f64, 0.0),
                        Complex64::from_polar(ros_em::db::db_to_lin(-38.0), 0.2 * k as f64),
                    )
                })
                .collect();
            (Pose::side_looking(Vec3::new(0.02 * i as f64, 0.0, 0.0)), echoes)
        })
        .collect();
    let n_fft = radar.chirp.n_samples.next_power_of_two();
    let mut plans = ros_dsp::plan::PlanCache::new();
    plans.fft(n_fft);
    let mut capture = ros_radar::radar::CaptureScratch::default();
    let mut frames: Vec<ros_radar::frontend::Frame> = Vec::new();
    let mut spectra: Vec<Vec<Vec<Complex64>>> = (0..jobs.len()).map(|_| Vec::new()).collect();
    let mut units: Vec<()> = vec![(); jobs.len()];
    move || {
        let mut rng = StdRng::seed_from_u64(0xfeed);
        radar.capture_batch_with(&jobs, &mut rng, &mut capture, &mut frames);
        let plan = plans.fft(n_fft);
        let frames = &frames[..];
        ros_exec::par_for_each_mut(&mut units, &mut spectra, |(), i, out| {
            ros_radar::processing::range_spectra_into(&frames[i], plan, out);
        });
        criterion::black_box(spectra.len());
    }
}

/// u-grid RCS sweep: the Eq.-6 array factor on a 16 384-point grid.
fn rcs_u_grid() {
    let positions: Vec<f64> = (0..12).map(|k| 0.06 * k as f64).collect();
    let rcs = rcs_model::sample_rcs_factor(&positions, LAMBDA_CENTER_M, 1.0, 16_384);
    criterion::black_box(rcs.len());
}

/// Figure-level fan-out: six independent fast-mode drive-bys, the unit
/// of work `--par all` distributes.
fn figure_fanout() {
    let seeds: Vec<u64> = (0..6).collect();
    let outcomes = ros_exec::par_map(&seeds, |&s| {
        let code = SpatialCode {
            rows_per_stack: 8,
            ..SpatialCode::paper_4bit()
        };
        let Ok(tag) = code.encode(&[true, false, true, true]) else {
            return 0usize;
        };
        let outcome = DriveBy::new(tag, 2.0)
            .with_seed(0x51ee_d000 + s)
            .run(&ReaderConfig::fast());
        outcome.bits().len()
    });
    criterion::black_box(outcomes.len());
}

/// Runs all four wired paths and writes `BENCH_pipeline.json`.
///
/// With `require_valid`, a run whose thread pool resolves to a single
/// effective worker exits non-zero after writing the artifact — the
/// canonical multi-core invocation is
/// `cargo run --release -p bench -- perf --require-valid`, which can
/// never silently publish a serial-vs-serial record. Independently of
/// that flag, an invalid record never replaces an existing valid one
/// (see [`should_overwrite`]) unless `force` is set.
pub fn run(require_valid: bool, force: bool) {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let requested = ros_exec::threads();
    let effective = requested.min(available);
    let valid = effective > 1;
    println!(
        "pipeline perf: serial (1 thread) vs parallel \
         ({requested} requested, {effective} effective of {available} cores)"
    );
    if !valid {
        eprintln!(
            "WARNING: the thread pool resolves to a single effective worker on this \
             machine; the \"parallel\" columns below measure the serial path again. \
             Speedups are meaningless and BENCH_pipeline.json will be marked \
             \"valid\": false. Re-run on a multi-core machine for a real record."
        );
    }
    println!();

    let rows = vec![
        time_pair("de_population_eval", de_population_eval),
        time_pair("radar_frame_batch", radar_frame_batch()),
        time_pair("rcs_u_grid", rcs_u_grid),
        time_pair("figure_fanout", figure_fanout),
    ];

    println!(
        "{:<22} {:>14} {:>14} {:>9}",
        "path", "serial", "parallel", "speedup"
    );
    for r in &rows {
        println!(
            "{:<22} {:>11.3} ms {:>11.3} ms {:>8.2}x",
            r.name,
            r.serial_ns / 1e6,
            r.parallel_ns / 1e6,
            r.speedup()
        );
    }

    let json = render_json(requested, effective, available, valid, &rows);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    let existing = std::fs::read_to_string(&path).ok();
    if should_overwrite(existing.as_deref(), valid, force) {
        match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
        }
    } else {
        eprintln!(
            "\nrefusing to overwrite {}: the checked-in record is \"valid\": true and \
             this run is not (single effective worker). Pass --force to replace it anyway.",
            path.display()
        );
    }

    if require_valid && !valid {
        eprintln!(
            "error: --require-valid was set and this record is \"valid\": false \
             (single effective worker). Refusing to bless it."
        );
        ros_obs::flush();
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (the workspace carries no serde).
fn render_json(
    requested: usize,
    effective: usize,
    available: usize,
    valid: bool,
    rows: &[PerfRow],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"requested_threads\": {requested},\n"));
    s.push_str(&format!("  \"effective_threads\": {effective},\n"));
    s.push_str(&format!("  \"available_parallelism\": {available},\n"));
    s.push_str(&format!("  \"valid\": {valid},\n"));
    if !valid {
        s.push_str(
            "  \"invalid_reason\": \"thread pool resolves to one effective worker; \
             parallel timings duplicate the serial path\",\n",
        );
    }
    s.push_str("  \"paths\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_median_ns\": {:.1}, \"parallel_median_ns\": {:.1}, \"speedup\": {:.4},\n     \"telemetry\": {}}}{comma}\n",
            r.name,
            r.serial_ns,
            r.parallel_ns,
            r.speedup(),
            r.telemetry
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::record_is_valid;

    /// A minimal record as [`render_json`] emits it.
    fn record(valid: bool) -> String {
        render_json(4, if valid { 4 } else { 1 }, 4, valid, &[])
    }

    #[test]
    fn valid_record_round_trips_through_the_token_scan() {
        assert!(record_is_valid(&record(true)));
        assert!(!record_is_valid(&record(false)));
    }

    #[test]
    fn invalid_never_clobbers_valid_without_force() {
        let valid = record(true);
        assert!(!should_overwrite(Some(&valid), false, false));
        assert!(should_overwrite(Some(&valid), false, true)); // --force
    }

    #[test]
    fn every_other_transition_is_allowed() {
        let valid = record(true);
        let invalid = record(false);
        // Valid results always land.
        assert!(should_overwrite(Some(&valid), true, false));
        assert!(should_overwrite(Some(&invalid), true, false));
        // Invalid over invalid keeps the freshest diagnostics.
        assert!(should_overwrite(Some(&invalid), false, false));
        // First write of any kind.
        assert!(should_overwrite(None, true, false));
        assert!(should_overwrite(None, false, false));
    }
}
