//! `perf` sub-command: serial-vs-parallel timings for every pipeline
//! stage wired into the [`ros_exec`] executor.
//!
//! Each path runs the *same* code twice — once pinned to one worker
//! (`ros_exec::set_threads(Some(1))`), once on the full thread pool —
//! so the comparison isolates the executor fan-out from any algorithm
//! difference (the outputs are bit-identical by construction; see
//! `tests/determinism.rs`). Timings use the vendored criterion stub's
//! measurement loop via [`criterion::bench_median_ns`].
//!
//! Results print as a table and are mirrored to `BENCH_pipeline.json`
//! at the repository root:
//!
//! ```json
//! {
//!   "threads": 4,
//!   "paths": [
//!     {"name": "...", "serial_median_ns": 1.0, "parallel_median_ns": 1.0, "speedup": 1.0}
//!   ]
//! }
//! ```
//!
//! On a single-core runner the speedups sit near 1.0 (the executor
//! degrades to the serial loop); multi-core runners should see the
//! embarrassingly-parallel paths (RCS grid, capture batch) approach
//! the core count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_core::rcs_model;
use ros_em::constants::LAMBDA_CENTER_M;
use ros_em::{Complex64, Vec3};
use ros_optim::{minimize_par, DeConfig, Strategy};
use ros_radar::echo::{Echo, Pose};
use ros_radar::radar::FmcwRadar;

/// One timed pipeline path.
struct PerfRow {
    name: &'static str,
    serial_ns: f64,
    parallel_ns: f64,
}

impl PerfRow {
    fn speedup(&self) -> f64 {
        if self.parallel_ns > 0.0 {
            self.serial_ns / self.parallel_ns
        } else {
            f64::NAN
        }
    }
}

/// Times `work` at one thread and at the full pool.
fn time_pair(name: &'static str, mut work: impl FnMut()) -> PerfRow {
    ros_exec::set_threads(Some(1));
    let serial_ns = criterion::bench_median_ns(&mut work);
    ros_exec::set_threads(None);
    let parallel_ns = criterion::bench_median_ns(&mut work);
    PerfRow {
        name,
        serial_ns,
        parallel_ns,
    }
}

/// DE-GA population evaluation: one beam-shaping search with the
/// per-generation trial batch fanned out ([`minimize_par`]).
fn de_population_eval() {
    let n_rows = 8;
    let bounds = vec![(0.0, std::f64::consts::TAU * 0.9); 4];
    let cfg = DeConfig {
        population: 24,
        f: 0.6,
        cr: 0.9,
        max_generations: 20,
        strategy: Strategy::RandToBest1Bin,
        seed: 0x9e4f,
        ..Default::default()
    };
    let target = ros_em::geom::deg_to_rad(10.0);
    let r = minimize_par(
        |half| ros_antenna::shaping::flat_top_objective(half, n_rows, target),
        &bounds,
        &cfg,
    );
    criterion::black_box(r.cost);
}

/// Per-frame echo synthesis + range-FFT batch: `capture_batch` then
/// `range_spectra_batch` over a 16-frame, 12-echo scene.
fn radar_frame_batch() {
    let radar = FmcwRadar::ti_eval();
    let jobs: Vec<(Pose, Vec<Echo>)> = (0..16)
        .map(|i| {
            let echoes: Vec<Echo> = (0..12)
                .map(|k| {
                    let x = -1.5 + 0.25 * k as f64 + 0.01 * i as f64;
                    Echo::new(
                        Vec3::new(x, 3.0 + 0.1 * k as f64, 0.0),
                        Complex64::from_polar(ros_em::db::db_to_lin(-38.0), 0.2 * k as f64),
                    )
                })
                .collect();
            (Pose::side_looking(Vec3::new(0.02 * i as f64, 0.0, 0.0)), echoes)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xfeed);
    let frames = radar.capture_batch(&jobs, &mut rng);
    let spectra = radar.range_spectra_batch(&frames);
    criterion::black_box(spectra.len());
}

/// u-grid RCS sweep: the Eq.-6 array factor on a 16 384-point grid.
fn rcs_u_grid() {
    let positions: Vec<f64> = (0..12).map(|k| 0.06 * k as f64).collect();
    let rcs = rcs_model::sample_rcs_factor(&positions, LAMBDA_CENTER_M, 1.0, 16_384);
    criterion::black_box(rcs.len());
}

/// Figure-level fan-out: six independent fast-mode drive-bys, the unit
/// of work `--par all` distributes.
fn figure_fanout() {
    let seeds: Vec<u64> = (0..6).collect();
    let outcomes = ros_exec::par_map(&seeds, |&s| {
        let code = SpatialCode {
            rows_per_stack: 8,
            ..SpatialCode::paper_4bit()
        };
        let Ok(tag) = code.encode(&[true, false, true, true]) else {
            return 0usize;
        };
        let outcome = DriveBy::new(tag, 2.0)
            .with_seed(0x51ee_d000 + s)
            .run(&ReaderConfig::fast());
        outcome.bits.len()
    });
    criterion::black_box(outcomes.len());
}

/// Runs all four wired paths and writes `BENCH_pipeline.json`.
pub fn run() {
    let threads = ros_exec::threads();
    println!("pipeline perf: serial (1 thread) vs parallel ({threads} threads)");
    println!();

    let rows = vec![
        time_pair("de_population_eval", de_population_eval),
        time_pair("radar_frame_batch", radar_frame_batch),
        time_pair("rcs_u_grid", rcs_u_grid),
        time_pair("figure_fanout", figure_fanout),
    ];

    println!(
        "{:<22} {:>14} {:>14} {:>9}",
        "path", "serial", "parallel", "speedup"
    );
    for r in &rows {
        println!(
            "{:<22} {:>11.3} ms {:>11.3} ms {:>8.2}x",
            r.name,
            r.serial_ns / 1e6,
            r.parallel_ns / 1e6,
            r.speedup()
        );
    }

    let json = render_json(threads, &rows);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}

/// Hand-rolled JSON (the workspace carries no serde).
fn render_json(threads: usize, rows: &[PerfRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str("  \"paths\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_median_ns\": {:.1}, \"parallel_median_ns\": {:.1}, \"speedup\": {:.4}}}{comma}\n",
            r.name, r.serial_ns, r.parallel_ns, r.speedup()
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
