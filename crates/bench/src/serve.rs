//! `serve` sub-command: the fleet-scale corridor service benchmark.
//!
//! Runs a corridor (`ros-serve`) end to end — sharded streaming
//! producers, bounded channels, per-worker streaming decoders — and
//! writes `BENCH_serve.json` at the repository root:
//!
//! ```json
//! {
//!   "requested_threads": 4,
//!   "effective_threads": 4,
//!   "available_parallelism": 4,
//!   "valid": true,
//!   "corridor": {"radars": 3, "vehicles": 8, "tags": 2, "passes": 48},
//!   "workers": 4,
//!   "frames": 40000, "reads": 48, "decodes": 48,
//!   "frames_per_sec": 1.0, "decodes_per_sec": 1.0,
//!   "decode_latency_p50_ns": 1.0, "decode_latency_p99_ns": 1.0,
//!   "backpressure_stalls": 0, "channel_max_occupancy": 8,
//!   "channel_capacity": 256, "peak_open_passes": 1,
//!   "peak_buffered_frames": 2000,
//!   "worker_invariance": {"digest_lo": "…", "digest_hi": "…", "equal": true}
//! }
//! ```
//!
//! Latency quantiles come from the `serve.decode_latency_ns` histogram
//! via `ros_obs::hist_quantile` (the log₂-bucket sketch, ~9% relative
//! error). A run whose thread pool resolves to one effective worker
//! measures no concurrency at all, so — exactly like `perf` — the
//! record is marked `"valid": false`, never replaces a checked-in
//! valid record without `--force`, and `--require-valid` exits
//! non-zero on it. The worker-invariance block re-runs the corridor at
//! 1 worker and at `max(8, auto)` workers and proves the canonical
//! read logs digest-equal — the service's output is a function of the
//! scenario, not of the sharding.

use crate::util::should_overwrite;
use ros_cache::GeomCache;
use ros_serve::{
    run_corridor, run_corridor_uncached, run_corridor_with, CorridorConfig, ServeReport,
};

/// Corridor shape for the full benchmark (the ISSUE acceptance
/// scenario): 3 radars × 8 vehicles × 2 tags = 48 passes.
fn full_corridor() -> CorridorConfig {
    CorridorConfig {
        n_radars: 3,
        n_vehicles: 8,
        n_tags: 2,
        channel_capacity: 256,
        ..CorridorConfig::default()
    }
}

/// Corridor shape for the cache comparison (the ISSUE 9 acceptance
/// scenario): K = 4 tags, 5 radars × 10 vehicles × 4 tags = 200
/// encounters over at most 20 distinct mounted-tag designs.
fn cache_corridor() -> CorridorConfig {
    CorridorConfig {
        n_radars: 5,
        n_vehicles: 10,
        n_tags: 4,
        channel_capacity: 256,
        ..CorridorConfig::default()
    }
}

/// Reduced CI matrix: 2 radars × 2 vehicles × 1 tag = 4 passes.
fn smoke_corridor() -> CorridorConfig {
    CorridorConfig {
        n_radars: 2,
        n_vehicles: 2,
        n_tags: 1,
        channel_capacity: 64,
        ..CorridorConfig::default()
    }
}

/// Runs the corridor service benchmark and writes `BENCH_serve.json`.
///
/// `smoke` shrinks the corridor for CI; `require_valid` exits non-zero
/// when the record is invalid (single effective worker); `force`
/// allows an invalid record to replace a checked-in valid one.
pub fn run(smoke: bool, require_valid: bool, force: bool) {
    // The latency histogram and throughput clock need live telemetry;
    // keep whatever the user configured, otherwise record quietly into
    // the in-process registry.
    if !ros_obs::enabled() {
        ros_obs::install_memory_sink();
        ros_obs::set_level(ros_obs::Level::Summary);
    }
    ros_obs::install_monotonic_clock();

    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let requested = ros_exec::threads();
    let effective = requested.min(available);
    let valid = effective > 1;
    let cfg = if smoke { smoke_corridor() } else { full_corridor() };
    let passes = cfg.encounters().len();
    println!(
        "corridor serve: {} radars x {} vehicles x {} tags = {passes} passes \
         ({requested} requested, {effective} effective of {available} cores)",
        cfg.n_radars, cfg.n_vehicles, cfg.n_tags
    );
    if !valid {
        eprintln!(
            "WARNING: the thread pool resolves to a single effective worker on this \
             machine; producer/worker concurrency is cooperative only and throughput \
             is not a scaling result. BENCH_serve.json will be marked \"valid\": false."
        );
    }

    let report = run_corridor(&cfg, 0);
    let secs = report.elapsed_ns as f64 / 1e9;
    let fps = if secs > 0.0 {
        report.frames_consumed as f64 / secs
    } else {
        f64::NAN
    };
    let dps = if secs > 0.0 {
        report.decodes as f64 / secs
    } else {
        f64::NAN
    };
    let p50 = ros_obs::hist_quantile("serve.decode_latency_ns", 0.5);
    let p99 = ros_obs::hist_quantile("serve.decode_latency_ns", 0.99);

    println!(
        "  {} frames, {} reads ({} decoded) in {:.2} ms with {} workers",
        report.frames_consumed,
        report.reads.len(),
        report.decoded_reads(),
        secs * 1e3,
        report.workers,
    );
    println!("  throughput: {fps:.0} frames/s, {dps:.1} decodes/s");
    println!(
        "  decode latency: p50 {} us, p99 {} us",
        p50.map_or("-".to_string(), |v| format!("{:.0}", v / 1e3)),
        p99.map_or("-".to_string(), |v| format!("{:.0}", v / 1e3)),
    );
    println!(
        "  backpressure: {} stalls, channel high-water {}/{} items, \
         peak {} open passes / {} buffered frames",
        report.stalls,
        report.max_occupancy,
        report.capacity,
        report.peak_open,
        report.peak_buffered,
    );

    // Worker-count invariance: the canonical read log must be
    // bit-identical however the encounters shard.
    let lo = run_corridor(&cfg, 1);
    let hi = run_corridor(&cfg, report.workers.max(8));
    let equal = lo.log() == hi.log() && lo.log() == report.log();
    println!(
        "  worker invariance (1 vs {} workers): {}",
        report.workers.max(8),
        if equal { "logs identical" } else { "LOGS DIVERGE" },
    );

    // Cache-temperature comparison: cold shared cache, the same cache
    // pre-warmed (a second corridor in the same process — the
    // verify.sh cache stage greps this run's nonzero `cache.hit`), and
    // the no-memoization baseline.
    let ccfg = if smoke { smoke_corridor() } else { cache_corridor() };
    let cb = run_cache_bench(&ccfg);
    let ratio = cb.hit_miss_ratio();
    println!(
        "  cache: {} passes x2, {} hits / {} misses (ratio {ratio:.0}x)",
        cb.passes, cb.hits, cb.misses
    );
    println!(
        "  cache decodes/s: cold {:.1}, warm {:.1}, uncached {:.1} ({})",
        cb.cold_dps,
        cb.warm_dps,
        cb.uncached_dps,
        if cb.logs_equal { "logs identical" } else { "LOGS DIVERGE" },
    );

    let json = render_json(
        requested, effective, available, valid, &cfg, passes, &report, fps, dps, p50, p99, &lo,
        &hi, equal, &cb,
    );
    // The smoke matrix is a CI check, not a benchmark record: its
    // artifact goes under target/ so a verify run can never touch the
    // checked-in corridor record. The overwrite guard protects the
    // real record only.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if smoke {
        let path = root.join("target/BENCH_serve_smoke.json");
        match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
        }
    } else {
        let path = root.join("BENCH_serve.json");
        let existing = std::fs::read_to_string(&path).ok();
        if should_overwrite(existing.as_deref(), valid, force) {
            match std::fs::write(&path, json) {
                Ok(()) => println!("\nwrote {}", path.display()),
                Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
            }
        } else {
            eprintln!(
                "\nrefusing to overwrite {}: the checked-in record is \"valid\": true and \
                 this run is not (single effective worker). Pass --force to replace it anyway.",
                path.display()
            );
        }
    }

    if !equal {
        eprintln!("error: read log diverged across worker counts — determinism bug.");
        ros_obs::flush();
        std::process::exit(1);
    }
    if !cb.logs_equal {
        eprintln!("error: read log diverged across cache temperatures — memoization bug.");
        ros_obs::flush();
        std::process::exit(1);
    }
    if require_valid && !valid {
        eprintln!(
            "error: --require-valid was set and this record is \"valid\": false \
             (single effective worker). Refusing to bless it."
        );
        ros_obs::flush();
        std::process::exit(1);
    }
}

/// Results of the cache-temperature comparison: one corridor decoded
/// with a cold shared cache, again with the (now warm) cache, and once
/// with memoization disabled.
struct CacheBench {
    /// Encounters per corridor run.
    passes: usize,
    /// Cache hits across the cold + warm runs.
    hits: u64,
    /// Cache misses across the cold + warm runs (the distinct tables).
    misses: u64,
    /// Decodes/sec of the cold-cache run.
    cold_dps: f64,
    /// Decodes/sec of the warm-cache run.
    warm_dps: f64,
    /// Decodes/sec of the uncached baseline.
    uncached_dps: f64,
    /// Whether all three read logs are bit-identical (they must be:
    /// cache temperature is not allowed to change physics).
    logs_equal: bool,
}

impl CacheBench {
    fn hit_miss_ratio(&self) -> f64 {
        if self.misses == 0 {
            f64::INFINITY
        } else {
            self.hits as f64 / self.misses as f64
        }
    }
}

/// Runs the corridor three times — cold cache, warm cache, no cache —
/// and gathers the comparison.
fn run_cache_bench(cfg: &CorridorConfig) -> CacheBench {
    let decodes_per_sec = |r: &ServeReport| {
        let secs = r.elapsed_ns as f64 / 1e9;
        if secs > 0.0 {
            r.decodes as f64 / secs
        } else {
            f64::NAN
        }
    };
    let cache = GeomCache::new();
    let cold = run_corridor_with(cfg, 0, &cache);
    let warm = run_corridor_with(cfg, 0, &cache);
    let uncached = run_corridor_uncached(cfg, 0);
    CacheBench {
        passes: cfg.encounters().len(),
        hits: cold.cache_hits + warm.cache_hits,
        misses: cold.cache_misses + warm.cache_misses,
        cold_dps: decodes_per_sec(&cold),
        warm_dps: decodes_per_sec(&warm),
        uncached_dps: decodes_per_sec(&uncached),
        logs_equal: cold.log() == warm.log() && cold.log() == uncached.log(),
    }
}

/// Hand-rolled JSON (the workspace carries no serde).
#[allow(clippy::too_many_arguments)] // one artifact, one call site
fn render_json(
    requested: usize,
    effective: usize,
    available: usize,
    valid: bool,
    cfg: &CorridorConfig,
    passes: usize,
    report: &ServeReport,
    fps: f64,
    dps: f64,
    p50: Option<f64>,
    p99: Option<f64>,
    lo: &ServeReport,
    hi: &ServeReport,
    equal: bool,
    cb: &CacheBench,
) -> String {
    let q = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.1}"));
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"requested_threads\": {requested},\n"));
    s.push_str(&format!("  \"effective_threads\": {effective},\n"));
    s.push_str(&format!("  \"available_parallelism\": {available},\n"));
    s.push_str(&format!("  \"valid\": {valid},\n"));
    if !valid {
        s.push_str(
            "  \"invalid_reason\": \"thread pool resolves to one effective worker; \
             service concurrency is cooperative only and throughput is not a scaling \
             result\",\n",
        );
    }
    s.push_str(&format!(
        "  \"corridor\": {{\"radars\": {}, \"vehicles\": {}, \"tags\": {}, \"passes\": {passes}}},\n",
        cfg.n_radars, cfg.n_vehicles, cfg.n_tags
    ));
    s.push_str(&format!("  \"workers\": {},\n", report.workers));
    s.push_str(&format!(
        "  \"frames\": {}, \"reads\": {}, \"decodes\": {},\n",
        report.frames_consumed,
        report.reads.len(),
        report.decodes
    ));
    s.push_str(&format!(
        "  \"frames_per_sec\": {fps:.1}, \"decodes_per_sec\": {dps:.2},\n"
    ));
    s.push_str(&format!(
        "  \"decode_latency_p50_ns\": {}, \"decode_latency_p99_ns\": {},\n",
        q(p50),
        q(p99)
    ));
    s.push_str(&format!(
        "  \"backpressure_stalls\": {}, \"channel_max_occupancy\": {},\n",
        report.stalls, report.max_occupancy
    ));
    s.push_str(&format!(
        "  \"channel_capacity\": {}, \"peak_open_passes\": {}, \"peak_buffered_frames\": {},\n",
        report.capacity, report.peak_open, report.peak_buffered
    ));
    s.push_str(&format!(
        "  \"worker_invariance\": {{\"digest_lo\": \"{:016x}\", \"digest_hi\": \"{:016x}\", \"equal\": {equal}}},\n",
        lo.log_digest(),
        hi.log_digest()
    ));
    let ratio = cb.hit_miss_ratio();
    let ratio_json = if ratio.is_finite() {
        format!("{ratio:.1}")
    } else {
        "null".to_string()
    };
    s.push_str(&format!(
        "  \"cache\": {{\"passes\": {}, \"hits\": {}, \"misses\": {}, \"hit_miss_ratio\": {ratio_json}, \
         \"cold_decodes_per_sec\": {:.2}, \"warm_decodes_per_sec\": {:.2}, \
         \"uncached_decodes_per_sec\": {:.2}, \"logs_equal\": {}}}\n",
        cb.passes, cb.hits, cb.misses, cb.cold_dps, cb.warm_dps, cb.uncached_dps, cb.logs_equal
    ));
    s.push_str("}\n");
    s
}
