//! Output helpers for the experiment harness: aligned console tables
//! and CSV files under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple experiment table: header row + data rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row of already-formatted cells.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        let dir = Path::new("results");
        if fs::create_dir_all(dir).is_ok() {
            let _ = fs::write(dir.join(format!("{name}.csv")), csv);
        }
    }
}

/// Formats a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// True when `json` is a benchmark record marked valid.
///
/// Every `BENCH_*.json` artifact in this repository is written by a
/// hand-rolled renderer in this crate, so a plain token scan is an
/// exact parse of our own output format.
pub fn record_is_valid(json: &str) -> bool {
    json.contains("\"valid\": true")
}

/// The overwrite policy shared by every `BENCH_*.json` writer (`perf`,
/// `serve`): a valid (multi-core) record is never clobbered by an
/// invalid (single-effective-worker) one unless the caller passes
/// `--force`. Every other transition — valid over anything, invalid
/// over invalid, first write — proceeds.
pub fn should_overwrite(existing: Option<&str>, new_valid: bool, force: bool) -> bool {
    force || new_valid || !existing.is_some_and(record_is_valid)
}

/// Prints a paper-comparison note under a table.
pub fn note(text: &str) {
    println!("   paper: {text}\n");
}
