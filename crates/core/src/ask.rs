//! ASK (amplitude-shift-keyed) spatial coding — the §8 capacity
//! extension.
//!
//! §8: *"The RCS levels of each encoding bit '1' can be adjusted by
//! varying the number of PSVAAs within a stack. Multiple RCS levels
//! can enable ASK modulation which can improve the encoding capacity
//! by multi-folds."*
//!
//! An [`AskCode`] keeps the §5.2 slot geometry but mounts stacks of
//! *different row counts* in the slots: each slot carries
//! `log2(levels)` bits. A slot's coding-peak amplitude scales with its
//! stack's coherent row gain, so the decoder can discriminate the
//! levels — provided it has an amplitude reference. The first slot is
//! therefore always a **pilot** at the top level, and the remaining
//! `capacity − 1` slots carry data.
//!
//! With the paper's 4-slot geometry and 4 levels (0/8/16/32 rows),
//! the tag carries 3 data slots × 2 bits = **6 bits** in the footprint
//! that OOK limits to 4 — without growing the far-field distance.

use crate::encode::{EncodeError, SpatialCode};
use crate::tag::{Tag, TagStack};
use ros_antenna::shaping;
use ros_antenna::stack::PsvaaStack;
use ros_em::units::cast::AsF64;

/// An amplitude-shift-keyed spatial code.
#[derive(Clone, Debug, PartialEq)]
pub struct AskCode {
    /// Slot geometry (positions, δc, stack styling).
    pub geometry: SpatialCode,
    /// Rows per amplitude level, ascending; `level_rows[0]` must be 0
    /// (empty slot).
    pub level_rows: Vec<usize>,
}

impl AskCode {
    /// The paper-geometry 4-slot code with 4 amplitude levels
    /// (0 / 8 / 16 / 32 rows): 2 bits per slot, 1 pilot slot,
    /// 6 data bits total.
    pub fn four_level() -> Self {
        AskCode {
            geometry: SpatialCode::paper_4bit(),
            level_rows: vec![0, 8, 16, 32],
        }
    }

    /// Number of amplitude levels.
    pub fn n_levels(&self) -> usize {
        self.level_rows.len()
    }

    /// Bits carried per data slot.
    pub fn bits_per_slot(&self) -> f64 {
        (self.n_levels().as_f64()).log2()
    }

    /// Data symbols per tag (slots minus the pilot).
    pub fn data_slots(&self) -> usize {
        self.geometry.capacity_bits().saturating_sub(1)
    }

    /// Total data bits per tag.
    pub fn data_bits(&self) -> f64 {
        self.data_slots().as_f64() * self.bits_per_slot()
    }

    /// Relative coding-peak amplitude of a stack with `rows` rows,
    /// normalized to the top level.
    ///
    /// For beam-shaped stacks the flat-top *width* is held at ≈10°
    /// regardless of row count, so the drive-by-integrated coding-peak
    /// amplitude scales linearly with rows (each row contributes equal
    /// energy into the same angular window). For uniform stacks the
    /// boresight array factor is the row count, linear as well.
    pub fn relative_level_amplitude(&self, rows: usize) -> f64 {
        // A degenerate (empty) level table reads as a single level.
        let max_rows = self.level_rows.last().copied().unwrap_or(1).max(1);
        rows.as_f64() / max_rows.as_f64()
    }

    fn build_stack(&self, rows: usize) -> PsvaaStack {
        if self.geometry.beam_shaped && rows >= 2 {
            shaping::shaped_stack(rows)
        } else {
            PsvaaStack::uniform(rows.max(1))
        }
    }

    /// Encodes data symbols (`0..n_levels`) into a tag. The pilot slot
    /// (slot 1) is added automatically at the top level; `symbols`
    /// fills slots `2..=capacity`.
    ///
    /// # Errors
    /// [`EncodeError::WrongBitCount`] when `symbols.len()` differs from
    /// [`Self::data_slots`], [`EncodeError::SymbolOutOfRange`] when a
    /// symbol exceeds the level count, and [`EncodeError::NoLevels`]
    /// when the code has an empty level table.
    pub fn encode(&self, symbols: &[u8]) -> Result<Tag, EncodeError> {
        if symbols.len() != self.data_slots() {
            return Err(EncodeError::WrongBitCount {
                got: symbols.len(),
                expected: self.data_slots(),
            });
        }
        if let Some(&symbol) = symbols.iter().find(|&&s| usize::from(s) >= self.n_levels()) {
            return Err(EncodeError::SymbolOutOfRange {
                symbol,
                levels: self.n_levels(),
            });
        }

        let top = *self.level_rows.last().ok_or(EncodeError::NoLevels)?;
        let mut stacks = vec![TagStack {
            x_m: 0.0,
            stack: self.build_stack(top),
        }];
        let mut bits = Vec::new();

        // Pilot.
        stacks.push(TagStack {
            x_m: self.geometry.slot_position_m(1),
            stack: self.build_stack(top),
        });
        bits.push(true);

        for (i, &sym) in symbols.iter().enumerate() {
            let rows = self.level_rows[usize::from(sym)];
            bits.push(rows > 0);
            if rows > 0 {
                stacks.push(TagStack {
                    x_m: self.geometry.slot_position_m(i + 2),
                    stack: self.build_stack(rows),
                });
            }
        }

        Ok(Tag::from_stacks(self.geometry, stacks, bits))
    }

    /// Classifies normalized slot amplitudes into symbols.
    ///
    /// `slot_amplitudes` come from the OOK decoder
    /// ([`crate::decode::DecodeResult::slot_amplitudes`]) in bit order;
    /// slot 1 is the pilot. Returns the data symbols.
    pub fn classify(&self, slot_amplitudes: &[f64]) -> Vec<u8> {
        assert!(
            slot_amplitudes.len() >= self.geometry.capacity_bits(),
            "need one amplitude per slot"
        );
        let pilot = slot_amplitudes[0].max(1e-12);
        slot_amplitudes[1..self.geometry.capacity_bits()]
            .iter()
            .map(|&a| {
                let rel = a / pilot;
                // Nearest level in relative amplitude.
                let mut best = 0u8;
                let mut best_err = f64::INFINITY;
                for (lvl, &rows) in self.level_rows.iter().enumerate() {
                    let expect = self.relative_level_amplitude(rows);
                    let err = (rel - expect).abs();
                    if err < best_err {
                        best_err = err;
                        best = u8::try_from(lvl).unwrap_or(u8::MAX);
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode, DecoderConfig};
    use crate::reader::{DriveBy, ReaderConfig};

    #[test]
    fn capacity_accounting() {
        let code = AskCode::four_level();
        assert_eq!(code.n_levels(), 4);
        assert_eq!(code.bits_per_slot(), 2.0);
        assert_eq!(code.data_slots(), 3);
        assert_eq!(code.data_bits(), 6.0);
    }

    #[test]
    fn level_amplitudes_monotone() {
        let code = AskCode::four_level();
        let amps: Vec<f64> = code
            .level_rows
            .iter()
            .map(|&r| code.relative_level_amplitude(r))
            .collect();
        assert_eq!(amps[0], 0.0);
        for w in amps.windows(2) {
            assert!(w[1] > w[0], "levels not monotone: {amps:?}");
        }
        assert!((amps[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn encode_builds_heterogeneous_stacks() {
        let code = AskCode::four_level();
        let tag = code.encode(&[3, 1, 2]).unwrap();
        // Reference + pilot + 3 data stacks.
        assert_eq!(tag.stacks().len(), 5);
        let rows: Vec<usize> = tag.stacks().iter().map(|s| s.stack.n_rows()).collect();
        assert_eq!(rows, vec![32, 32, 32, 8, 16]);
    }

    #[test]
    fn encode_zero_level_leaves_slot_empty() {
        let code = AskCode::four_level();
        let tag = code.encode(&[0, 3, 0]).unwrap();
        assert_eq!(tag.stacks().len(), 3); // reference + pilot + one data
    }

    #[test]
    fn wrong_symbol_count_rejected() {
        let code = AskCode::four_level();
        assert!(code.encode(&[1, 2]).is_err());
    }

    #[test]
    fn out_of_range_symbol_is_an_error() {
        let err = AskCode::four_level().encode(&[4, 0, 0]).unwrap_err();
        assert_eq!(err, EncodeError::SymbolOutOfRange { symbol: 4, levels: 4 });
    }

    #[test]
    fn ask_roundtrip_over_the_air() {
        // Full physics roundtrip: encode symbols, drive by, decode the
        // slot amplitudes, classify back.
        let code = AskCode::four_level();
        for symbols in [[3u8, 1, 2], [2, 3, 1], [1, 2, 3], [3, 0, 2]] {
            let tag = code.encode(&symbols).unwrap();
            let mut drive = DriveBy::new(tag, 3.0).with_seed(7000 + symbols[0] as u64);
            drive.half_span_m = 8.0;
            let outcome = drive.run(&ReaderConfig::fast());
            let dec = decode(
                &outcome.rss_trace,
                ros_em::Vec3::new(0.0, 3.0, 1.0),
                0.0,
                &code.geometry,
                &DecoderConfig::default(),
            )
            .unwrap();
            let got = code.classify(&dec.slot_amplitudes);
            assert_eq!(got, symbols.to_vec(), "amps {:?}", dec.slot_amplitudes);
        }
    }
}
