//! §5.3 design tradeoffs: encoding capacity, ranges, speeds.
//!
//! Thin, tag-aware wrappers over the `ros-antenna` design rules plus
//! the link-budget corner of §5.3/§8.

use crate::encode::SpatialCode;
use ros_antenna::design;
use ros_em::constants::LAMBDA_CENTER_M;
use ros_em::radar_eq::RadarLinkBudget;
use ros_em::units::cast::AsF64;

/// Complete §5.3 capacity/limit analysis of a spatial code.
#[derive(Clone, Copy, Debug)]
pub struct CapacityAnalysis {
    /// Bits the tag encodes.
    pub bits: usize,
    /// Overall tag width \[m\].
    pub width_m: f64,
    /// Far-field distance of the coding aperture \[m\].
    pub far_field_m: f64,
    /// Maximum vehicle speed at a 1 kHz frame rate \[m/s\].
    pub max_speed_mps: f64,
    /// Minimum side-by-side tag separation at 6 m for a 4-Rx radar \[m\].
    pub min_tag_separation_m: f64,
}

/// Analyzes a spatial code's §5.3 limits.
pub fn analyze(code: &SpatialCode, frame_rate_hz: f64) -> CapacityAnalysis {
    let aperture = code.max_pair_spacing_m();
    let far_field = design::far_field_distance_m(aperture, LAMBDA_CENTER_M);
    CapacityAnalysis {
        bits: code.capacity_bits(),
        width_m: code.width_m(),
        far_field_m: far_field,
        max_speed_mps: design::max_vehicle_speed_mps(
            aperture,
            LAMBDA_CENTER_M,
            far_field.max(1.0),
            frame_rate_hz,
        ),
        min_tag_separation_m: design::min_tag_separation_m(6.0, 4),
    }
}

/// Maximum decode range of a tag of RCS `rcs_dbsm` for a radar \[m\]
/// (§5.3's link-budget bound).
pub fn max_decode_range_m(budget: &RadarLinkBudget, rcs_dbsm: f64) -> f64 {
    budget.max_range_m(rcs_dbsm)
}

/// Approximate tag RCS \[dBsm\] versus stack configuration: the single
/// PSVAA anchor (−43 dBsm) plus the coherent stack gain, minus the
/// beam-shaping spreading loss, plus the multi-stack average gain.
pub fn estimated_tag_rcs_dbsm(n_stacks: usize, rows_per_stack: usize, beam_shaped: bool) -> f64 {
    let single = -43.0;
    let stack_gain = 20.0 * (rows_per_stack.as_f64()).log10();
    // Spreading a ≈1–4° pencil into a ≈10° flat-top costs its peak.
    let shaping_loss = if beam_shaped {
        let natural = ros_em::geom::rad_to_deg(design::stack_beamwidth_rad(
            rows_per_stack,
            ros_antenna::stack::base_row_pitch_m(),
            LAMBDA_CENTER_M,
        ));
        10.0 * (10.0f64 / natural).max(1.0).log10()
    } else {
        0.0
    };
    // The paper's −23 dBsm "32-array tag" figure corresponds to one
    // shaped stack: the coding stacks spread their coherent sum across
    // the RCS fringe pattern, so the link-budget-relevant level is the
    // per-stack RCS (the fringes average the multi-stack gain away).
    let _ = n_stacks;
    single + stack_gain - shaping_loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_4bit_analysis() {
        let a = analyze(&SpatialCode::paper_4bit(), 1000.0);
        assert_eq!(a.bits, 4);
        // D = 22.5λ ≈ 8.5 cm.
        assert!((a.width_m - 0.0854).abs() < 0.002, "width {}", a.width_m);
        // Far field ≈ 2.9 m (19.5λ aperture).
        assert!((a.far_field_m - 2.89).abs() < 0.1, "ff {}", a.far_field_m);
        // ≈38.5 m/s speed bound.
        assert!((a.max_speed_mps - 38.5).abs() < 3.0, "v {}", a.max_speed_mps);
        // ≥1.53 m side-by-side separation.
        assert!((a.min_tag_separation_m - 1.53).abs() < 0.05);
    }

    #[test]
    fn six_bit_far_field_grows() {
        let four = analyze(&SpatialCode::paper_4bit(), 1000.0);
        let six = analyze(&SpatialCode::with_bits(6, 32), 1000.0);
        assert!(six.far_field_m > 2.0 * four.far_field_m);
        assert!(six.width_m > four.width_m);
    }

    #[test]
    fn decode_ranges_match_paper() {
        // §5.3: TI radar + −23 dBsm tag ⇒ ≈6.9 m; §8: commercial ⇒ ≈52 m.
        let ti = max_decode_range_m(&RadarLinkBudget::ti_eval(), -23.0);
        assert!((ti - 6.9).abs() < 0.5, "TI {ti}");
        let com = max_decode_range_m(&RadarLinkBudget::commercial(), -23.0);
        assert!((com - 52.0).abs() < 4.0, "commercial {com}");
    }

    #[test]
    fn estimated_rcs_near_paper_anchor() {
        // 32-row shaped stacks, 5 stacks: ≈ −23 dBsm (§5.3).
        let rcs = estimated_tag_rcs_dbsm(5, 32, true);
        assert!((rcs - (-23.0)).abs() < 6.0, "estimate {rcs} dBsm");
        // More rows → more RCS; shaping costs RCS.
        assert!(
            estimated_tag_rcs_dbsm(5, 32, false) > estimated_tag_rcs_dbsm(5, 32, true)
        );
        assert!(
            estimated_tag_rcs_dbsm(5, 32, true) > estimated_tag_rcs_dbsm(5, 8, true)
        );
    }
}
