//! Tag decoding: RSS trace → RCS spectrum → coding peaks → bits.
//!
//! Implements the §6 decode flow. The radar has already isolated the
//! tag ([`crate::detector`]) and spotlighted it once per frame; the
//! decoder receives the per-frame complex RSS together with the
//! *believed* radar positions (ground truth ± tracking error) and:
//!
//! 1. maps each sample onto the spectral axis `u = cos θ` (θ measured
//!    from the tag's array axis), keeping samples within the angular
//!    field of view,
//! 2. compensates the slow range/antenna-pattern envelope so the trace
//!    is proportional to RCS ("the RSS is equivalent to a scaled
//!    version of RCS", §6),
//! 3. resamples onto a uniform `u` grid and takes the windowed,
//!    zero-padded FFT — the RCS frequency spectrum (Eq. 7),
//! 4. reads the amplitude at each coding slot, normalizes by the
//!    coding-band power, and thresholds into bits (OOK),
//! 5. estimates the paper's decoding SNR `(μ₁−μ₀)²/σ²` and the
//!    corresponding OOK BER.

use crate::encode::SpatialCode;
use crate::rcs_model;
use ros_dsp::czt::CztPlan;
use ros_dsp::fft::FftPlan;
use ros_dsp::plan::PlanCache;
use ros_dsp::resample::{resample_uniform_into, Sample};
use ros_dsp::stats;
use ros_dsp::window::WindowTable;
use ros_em::radar_eq::RadarLinkBudget;
use ros_em::{Complex64, Vec3};
use ros_em::units::cast::AsF64;

/// One spotlight measurement.
#[derive(Clone, Copy, Debug)]
pub struct RssSample {
    /// The radar position the vehicle *believes* it was at \[m\].
    pub radar_pos: Vec3,
    /// Complex RSS amplitude from the spotlight beamformer \[√mW\].
    pub rss: Complex64,
}

/// Decoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct DecoderConfig {
    /// Angular field of view kept for decoding \[rad\] (§7.3: 60° is
    /// sufficient; Fig. 17 sweeps 20°–100°).
    pub fov_rad: f64,
    /// Uniform `u`-grid size before the FFT.
    pub n_grid: usize,
    /// Zero-padding factor for the spectrum.
    pub zero_pad: usize,
    /// Bit-decision threshold as a fraction of the largest slot
    /// amplitude.
    pub threshold: f64,
    /// Half-width of the erasure dead zone around the effective bit
    /// threshold, as a fraction of that threshold: slot amplitudes
    /// within `±erasure_margin · T` of `T` decode as *erasures* — the
    /// bit value is still reported, but the slot index lands in
    /// [`DecodeResult::erasures`] and the pass verdict degrades to
    /// `PartialDecode`. 0 disables erasure marking.
    pub erasure_margin: f64,
    /// Compensate the range/antenna envelope using this link budget
    /// (`None` = use the raw RSS trace).
    pub envelope_budget: Option<RadarLinkBudget>,
    /// Spectral taper applied before the FFT.
    pub window: ros_dsp::window::Window,
    /// Use the chirp-Z zoom transform instead of a zero-padded FFT
    /// (identical peaks, band-targeted evaluation).
    pub use_czt: bool,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            fov_rad: ros_em::geom::deg_to_rad(60.0),
            n_grid: 512,
            zero_pad: 8,
            threshold: 0.45,
            erasure_margin: 0.10,
            envelope_budget: Some(RadarLinkBudget::ti_eval()),
            window: ros_dsp::window::Window::Hann,
            use_czt: false,
        }
    }
}

/// Decoder output.
#[derive(Clone, Debug, Default)]
pub struct DecodeResult {
    /// Decoded bits (length = code capacity).
    pub bits: Vec<bool>,
    /// Normalized coding-slot amplitudes, bit order.
    pub slot_amplitudes: Vec<f64>,
    /// The paper's decoding SNR (linear).
    pub snr_linear: f64,
    /// Spacing axis of the spectrum \[m\].
    pub spectrum_spacings_m: Vec<f64>,
    /// Spectrum magnitudes (normalized by the coding-band RMS).
    pub spectrum_mags: Vec<f64>,
    /// Number of samples that survived the FoV filter.
    pub n_samples_used: usize,
    /// Samples rejected for non-finite RSS (saturation artefacts,
    /// corrupted frames) before any decoding.
    pub n_samples_nonfinite: usize,
    /// Slot indices whose amplitude fell inside the erasure dead zone
    /// around the decision threshold — bits too marginal to trust.
    pub erasures: Vec<usize>,
}

impl DecodeResult {
    /// Decoding SNR in dB.
    pub fn snr_db(&self) -> f64 {
        stats::snr_db(self.snr_linear)
    }

    /// OOK bit error rate implied by the SNR.
    pub fn ber(&self) -> f64 {
        stats::ook_ber(self.snr_linear)
    }
}

/// Decoding errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than 8 usable samples inside the field of view.
    TooFewSamples {
        /// Samples that survived filtering.
        got: usize,
    },
    /// The spectrum is too short to carve out a noise-reference band,
    /// so slot amplitudes cannot be normalized.
    NoNoiseReference,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooFewSamples { got } => {
                write!(f, "only {got} RSS samples inside the field of view")
            }
            DecodeError::NoNoiseReference => {
                write!(f, "spectrum too short for a noise-reference band")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Per-decoder scratch arena: memoized FFT/CZT/window plans plus every
/// intermediate buffer [`decode_into`] touches. One arena per worker
/// (or long-lived reader) turns the steady-state decode into a
/// zero-allocation kernel; results are bit-identical to [`decode`].
#[derive(Clone, Debug, Default)]
pub struct DecodeScratch {
    plans: PlanCache,
    bufs: DecodeBufs,
}

impl DecodeScratch {
    /// An empty arena; plans and buffers grow on first use.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// The plan cache, for pre-warming outside the hot path.
    pub fn plans(&mut self) -> &mut PlanCache {
        &mut self.plans
    }
}

/// Reusable intermediate buffers for one decode pass.
#[derive(Clone, Debug, Default)]
struct DecodeBufs {
    trace: Vec<Sample>,
    sort_aux: Vec<Sample>,
    grid: Vec<f64>,
    centred: Vec<f64>,
    fft_work: Vec<Complex64>,
    czt_in: Vec<Complex64>,
    czt_work: Vec<Complex64>,
    czt_out: Vec<Complex64>,
    ones: Vec<f64>,
    zeros: Vec<f64>,
}

/// The spectrum transform resolved by the [`decode_into`] prologue:
/// either a zero-padded FFT plan or a CZT zoom plan, borrowed from the
/// arena's [`PlanCache`] for the duration of the kernel.
#[derive(Clone, Copy, Debug)]
enum SpectrumPlan<'a> {
    Fft(&'a FftPlan),
    Czt(&'a CztPlan),
}

/// Decodes a spotlight RSS trace against a known spatial code.
///
/// `tag_center` is the detector's estimate of the tag position;
/// `tag_axis_yaw` the tag's array-axis rotation (0 = along +x).
///
/// Convenience wrapper over [`decode_into`] with a throwaway scratch
/// arena; batch callers reuse a [`DecodeScratch`] instead.
pub fn decode(
    samples: &[RssSample],
    tag_center: Vec3,
    tag_axis_yaw: f64,
    code: &SpatialCode,
    cfg: &DecoderConfig,
) -> Result<DecodeResult, DecodeError> {
    let mut scratch = DecodeScratch::new();
    let mut out = DecodeResult::default();
    decode_into(samples, tag_center, tag_axis_yaw, code, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`decode`] through a reusable [`DecodeScratch`] arena, writing the
/// result in place. Plans are resolved (and built on first use) here
/// in the prologue; the spectral kernel then runs allocation-free and
/// bit-identical to the direct path. On error `out` holds unspecified
/// intermediate state.
pub fn decode_into(
    samples: &[RssSample],
    tag_center: Vec3,
    tag_axis_yaw: f64,
    code: &SpatialCode,
    cfg: &DecoderConfig,
    scratch: &mut DecodeScratch,
    out: &mut DecodeResult,
) -> Result<(), DecodeError> {
    let _span = ros_obs::span("decode");
    ros_obs::count("decode.attempts", 1);
    let lambda = ros_em::constants::LAMBDA_CENTER_M;
    let max_span_m = (code.max_pair_spacing_m() / lambda + 8.0) * lambda;

    // Resolve every plan this configuration needs (cache misses build
    // here, outside the kernel); the combined resolvers hand back
    // coexisting shared references.
    let DecodeScratch { plans, bufs } = scratch;
    let (table, plan) = if cfg.use_czt {
        let u_max = (cfg.fov_rad / 2.0).sin();
        let (w, a) =
            rcs_model::czt_zoom_params(cfg.n_grid, u_max, lambda, max_span_m, cfg.n_grid * 2);
        let (table, czt) =
            plans.window_and_czt(cfg.window, cfg.n_grid, cfg.n_grid, cfg.n_grid * 2, w, a);
        (table, SpectrumPlan::Czt(czt))
    } else {
        let (table, fft) = plans.window_and_fft(
            cfg.window,
            cfg.n_grid,
            (cfg.n_grid * cfg.zero_pad).next_power_of_two(),
        );
        (table, SpectrumPlan::Fft(fft))
    };

    let res = decode_core(
        samples,
        tag_center,
        tag_axis_yaw,
        code,
        cfg,
        max_span_m,
        table,
        plan,
        bufs,
        out,
    );
    match &res {
        Err(DecodeError::TooFewSamples { got }) => {
            ros_obs::count("decode.errors", 1);
            ros_obs::event(
                "decode.error",
                &[("reason", "too_few_samples".into()), ("got", (*got).into())],
            );
        }
        Err(DecodeError::NoNoiseReference) => {
            ros_obs::count("decode.errors", 1);
            ros_obs::event("decode.error", &[("reason", "no_noise_reference".into())]);
        }
        Ok(()) => {
            if ros_obs::enabled() {
                let max_amp = out
                    .slot_amplitudes
                    .iter()
                    .fold(0.0, |m, &a| f64::max(m, a));
                ros_obs::count("decode.ok", 1);
                ros_obs::hist("decode.snr_db", stats::snr_db(out.snr_linear));
                for a in &out.slot_amplitudes {
                    ros_obs::hist("decode.slot_amp", *a);
                }
                if ros_obs::detail() {
                    for (i, (a, b)) in out.slot_amplitudes.iter().zip(&out.bits).enumerate() {
                        ros_obs::event_detail(
                            "decode.slot",
                            &[
                                ("idx", i.into()),
                                ("amp", (*a).into()),
                                ("bit", (*b).into()),
                                ("margin", (a - cfg.threshold * max_amp).into()),
                            ],
                        );
                    }
                }
                let word: String = out.bits.iter().map(|b| if *b { '1' } else { '0' }).collect();
                ros_obs::event(
                    "decode.result",
                    &[
                        ("bits", word.as_str().into()),
                        ("snr_db", stats::snr_db(out.snr_linear).into()),
                        ("n_samples", out.n_samples_used.into()),
                    ],
                );
                if !out.erasures.is_empty() {
                    ros_obs::event(
                        "decode.partial",
                        &[
                            ("erasures", out.erasures.len().into()),
                            ("slots", out.bits.len().into()),
                        ],
                    );
                }
            }
        }
    }
    res
}

/// The §6 decode flow proper, against pre-resolved plans and scratch
/// buffers. Allocation-free once the buffers have grown to capacity;
/// observability stays in [`decode_into`]'s prologue/epilogue.
#[allow(clippy::too_many_arguments)]
// lint: hot-path
fn decode_core(
    samples: &[RssSample],
    tag_center: Vec3,
    tag_axis_yaw: f64,
    code: &SpatialCode,
    cfg: &DecoderConfig,
    max_span_m: f64,
    table: &WindowTable,
    plan: SpectrumPlan<'_>,
    bufs: &mut DecodeBufs,
    out: &mut DecodeResult,
) -> Result<(), DecodeError> {
    let lambda = ros_em::constants::LAMBDA_CENTER_M;
    let u_max = (cfg.fov_rad / 2.0).sin();
    let DecodeBufs {
        trace,
        sort_aux,
        grid,
        centred,
        fft_work,
        czt_in,
        czt_work,
        czt_out,
        ones,
        zeros,
    } = bufs;

    // 1–2: map to u, compensate envelope. Non-finite RSS (clipped
    // ADC artefacts, corrupted frames) is rejected here — one NaN
    // sample would otherwise spread through the resampler into every
    // spectrum bin and decode as garbage instead of a typed error.
    trace.clear();
    let mut nonfinite = 0usize;
    for s in samples {
        if !s.rss.re.is_finite() || !s.rss.im.is_finite() || !s.radar_pos.x.is_finite()
            || !s.radar_pos.y.is_finite()
        {
            nonfinite += 1;
            continue;
        }
        let v = s.radar_pos - tag_center;
        let ground = (v.x * v.x + v.y * v.y).sqrt();
        if ground < 1e-6 {
            continue;
        }
        // Angle from the tag's array axis, folded into the direction
        // cosine u; yaw rotates the axis.
        let (sin_y, cos_y) = tag_axis_yaw.sin_cos();
        let along = v.x * cos_y + v.y * sin_y;
        let u = along / ground;
        if u.abs() > u_max {
            continue;
        }
        let mut p = s.rss.norm_sqr();
        if let Some(budget) = &cfg.envelope_budget {
            let d = v.norm();
            // Unit-RCS received power at this range…
            let unit_dbm = budget.received_power_dbm(0.0, d);
            // …and the radar's own two-way pattern toward the tag.
            let az_radar = v.x.atan2(-v.y) * -1.0;
            let g = radar_pattern_proxy(az_radar);
            let env = ros_em::db::db_to_pow(unit_dbm) * g.powi(4);
            if env > 0.0 {
                p /= env;
            }
        }
        trace.push(Sample { x: u, y: p });
    }
    if trace.len() < 8 {
        return Err(DecodeError::TooFewSamples { got: trace.len() });
    }
    let n_used = trace.len();

    // 3: uniform resample + spectrum (zero-padded FFT or CZT zoom).
    // Raw spacings/magnitudes land directly in the result buffers; the
    // magnitudes are normalized in place once the noise RMS is known.
    resample_uniform_into(trace, -u_max, u_max, cfg.n_grid, sort_aux, grid);
    match plan {
        SpectrumPlan::Fft(p) => rcs_model::rcs_spectrum_windowed_into(
            grid,
            u_max,
            lambda,
            cfg.zero_pad,
            table,
            p,
            centred,
            fft_work,
            &mut out.spectrum_spacings_m,
            &mut out.spectrum_mags,
        ),
        SpectrumPlan::Czt(p) => rcs_model::rcs_spectrum_czt_into(
            grid,
            max_span_m,
            table,
            p,
            centred,
            czt_in,
            czt_work,
            czt_out,
            &mut out.spectrum_spacings_m,
            &mut out.spectrum_mags,
        ),
    }
    let spacings = &out.spectrum_spacings_m;

    // 4: coding-slot amplitudes, peak-searched within ±0.5λ (tolerant
    // of small tracking-induced spectral shifts; slots are 1.5λ apart).
    let tol = 0.5 * lambda;
    out.slot_amplitudes.clear();
    for k in 1..=code.capacity_bits() {
        let target = code.slot_spacing_lambda(k) * lambda;
        let mut amp = 0.0f64;
        for (s, m) in spacings.iter().zip(out.spectrum_mags.iter()) {
            if (*s - target).abs() <= tol {
                amp = f64::max(amp, *m);
            }
        }
        out.slot_amplitudes.push(amp);
    }

    // Noise floor: bins away from EVERY predictable spectral feature.
    // The all-ones layout fixes where peaks can appear — the coding
    // slots plus every secondary (coding-stack pairwise) spacing — so
    // any bin ≥0.75λ away from all of them is pure noise/leakage.
    // Only the feature *maximum* matters, so the features are folded
    // on the fly instead of materialized.
    let mut max_feature = 0.0f64;
    for k in 1..=code.capacity_bits() {
        max_feature = f64::max(max_feature, code.slot_spacing_lambda(k) * lambda);
    }
    for i in 1..=code.capacity_bits() {
        for j in 1..=code.capacity_bits() {
            if i != j {
                let spacing = (code.slot_position_m(i) - code.slot_position_m(j)).abs();
                max_feature = f64::max(max_feature, spacing);
            }
        }
    }
    // The noise region sits beyond the largest possible feature, so it
    // stays clean at any field of view (narrow FoVs broaden every peak
    // and would contaminate in-band gaps).
    let noise_lo = max_feature + 1.5 * lambda;
    let noise_hi = max_feature + 6.0 * lambda;
    let mut noise_sum = 0.0f64;
    let mut noise_count = 0usize;
    for (s, m) in spacings.iter().zip(out.spectrum_mags.iter()) {
        if *s >= noise_lo && *s <= noise_hi {
            noise_sum += m * m;
            noise_count += 1;
        }
    }
    if noise_count == 0 {
        return Err(DecodeError::NoNoiseReference);
    }
    let noise_rms = (noise_sum / noise_count.as_f64()).sqrt().max(1e-300);

    // Normalize amplitudes by the band noise (the §6 "normalized by the
    // overall power within the coding band").
    for a in out.slot_amplitudes.iter_mut() {
        *a /= noise_rms;
    }
    for m in out.spectrum_mags.iter_mut() {
        *m /= noise_rms;
    }

    // 5: threshold into bits and estimate SNR. The effective decision
    // level is `T = max(threshold·max_amp, 4·noise_rms)`; amplitudes
    // inside the `±erasure_margin·T` dead zone around it decode as
    // erasures — the bit is still reported but flagged as untrusted,
    // which the reader surfaces as a `PartialDecode` verdict.
    let max_amp = out.slot_amplitudes.iter().fold(0.0, |m, &a| f64::max(m, a));
    let effective_t = (cfg.threshold * max_amp).max(4.0);
    out.bits.clear();
    for &a in out.slot_amplitudes.iter() {
        out.bits.push(a > cfg.threshold * max_amp && a > 4.0);
    }
    out.erasures.clear();
    if cfg.erasure_margin > 0.0 {
        for (i, &a) in out.slot_amplitudes.iter().enumerate() {
            if (a - effective_t).abs() <= cfg.erasure_margin * effective_t {
                out.erasures.push(i);
            }
        }
    }

    ones.clear();
    zeros.clear();
    for (&a, &b) in out.slot_amplitudes.iter().zip(out.bits.iter()) {
        if b {
            ones.push(a);
        } else {
            zeros.push(a);
        }
    }
    // σ = 1 after normalization (band noise RMS); pooled slot variance
    // guards against wobbly peaks.
    out.snr_linear = stats::ook_snr(ones, zeros, 1.0);
    out.n_samples_used = n_used;
    out.n_samples_nonfinite = nonfinite;
    Ok(())
}

/// The radar's two-way element pattern used for envelope compensation.
/// Mirrors `ros_radar::frontend::radar_pattern` without taking a
/// dependency on the radar crate.
fn radar_pattern_proxy(az: f64) -> f64 {
    let c = az.cos();
    if c <= 0.0 {
        0.0
    } else {
        c.powf(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SpatialCode;
    use crate::tag::Tag;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ros_em::jones::Polarization;
    use ros_scene::reflector::{EchoContext, Reflector};

    /// Builds an idealized RSS trace straight from the tag physics
    /// (sum of scatterer echoes + optional noise) along a drive-by.
    fn synth_trace(tag: &Tag, standoff: f64, noise_dbm: Option<f64>, seed: u64) -> Vec<RssSample> {
        let ctx = EchoContext::ti_clear();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let n = 401;
        for i in 0..n {
            let x = -4.0 + 8.0 * i as f64 / (n - 1) as f64;
            let pos = Vec3::new(x, 0.0, 0.0);
            let echoes = tag.echoes(pos, Polarization::H, Polarization::V, &ctx);
            let mut rss: Complex64 = Complex64::ZERO;
            for e in &echoes {
                // Radar two-way pattern toward each scatterer.
                let az = (e.pos.x - pos.x).atan2(e.pos.y - pos.y);
                let g = radar_pattern_proxy(az);
                rss += e.amp * (g * g);
            }
            if let Some(floor) = noise_dbm {
                let sigma = 10f64.powf(floor / 20.0) / std::f64::consts::SQRT_2;
                rss += Complex64::new(
                    gauss(&mut rng) * sigma,
                    gauss(&mut rng) * sigma,
                );
            }
            out.push(RssSample {
                radar_pos: pos,
                rss,
            });
        }
        let _ = standoff;
        out
    }

    fn gauss<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn code8() -> SpatialCode {
        SpatialCode {
            rows_per_stack: 8,
            ..SpatialCode::paper_4bit()
        }
    }

    #[test]
    fn decodes_all_ones_noise_free() {
        let tag = code8()
            .encode(&[true; 4])
            .unwrap()
            .mounted_at(Vec3::new(0.0, 2.0, 0.0));
        let trace = synth_trace(&tag, 2.0, None, 1);
        let r = decode(
            &trace,
            tag.mount(),
            0.0,
            tag.code(),
            &DecoderConfig::default(),
        )
        .unwrap();
        assert_eq!(r.bits, vec![true; 4], "amps {:?}", r.slot_amplitudes);
        assert!(r.snr_db() > 14.0, "SNR {:.1} dB", r.snr_db());
    }

    #[test]
    fn decodes_mixed_patterns() {
        for bits in [
            [true, false, true, false],
            [false, true, false, true],
            [true, true, false, false],
            [false, false, true, true],
            [true, false, false, true],
        ] {
            let tag = code8()
                .encode(&bits)
                .unwrap()
                .mounted_at(Vec3::new(0.0, 2.0, 0.0));
            let trace = synth_trace(&tag, 2.0, None, 2);
            let r = decode(
                &trace,
                tag.mount(),
                0.0,
                tag.code(),
                &DecoderConfig::default(),
            )
            .unwrap();
            assert_eq!(r.bits.as_slice(), &bits, "amps {:?}", r.slot_amplitudes);
        }
    }

    #[test]
    fn decodes_with_noise() {
        let tag = code8()
            .encode(&[true, true, false, true])
            .unwrap()
            .mounted_at(Vec3::new(0.0, 2.0, 0.0));
        let trace = synth_trace(&tag, 2.0, Some(-62.0), 3);
        let r = decode(
            &trace,
            tag.mount(),
            0.0,
            tag.code(),
            &DecoderConfig::default(),
        )
        .unwrap();
        assert_eq!(r.bits, vec![true, true, false, true]);
    }

    #[test]
    fn too_few_samples_is_an_error() {
        let s = RssSample {
            radar_pos: Vec3::new(0.0, 0.0, 0.0),
            rss: Complex64::ONE,
        };
        let err = decode(
            &[s; 3],
            Vec3::new(0.0, 2.0, 0.0),
            0.0,
            &code8(),
            &DecoderConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DecodeError::TooFewSamples { .. }));
        assert!(err.to_string().contains("samples"));
    }

    #[test]
    fn nonfinite_samples_filtered_not_propagated() {
        let tag = code8()
            .encode(&[true; 4])
            .unwrap()
            .mounted_at(Vec3::new(0.0, 2.0, 0.0));
        let mut trace = synth_trace(&tag, 2.0, None, 6);
        // Corrupt a third of the trace with NaN/∞ RSS.
        for (i, s) in trace.iter_mut().enumerate() {
            if i % 3 == 0 {
                s.rss = if i % 6 == 0 {
                    Complex64::new(f64::NAN, 0.0)
                } else {
                    Complex64::new(f64::INFINITY, f64::INFINITY)
                };
            }
        }
        let r = decode(
            &trace,
            tag.mount(),
            0.0,
            tag.code(),
            &DecoderConfig::default(),
        )
        .unwrap();
        assert!(r.n_samples_nonfinite > 100);
        assert_eq!(r.bits, vec![true; 4]);
        assert!(r.snr_db().is_finite());
        assert!(r.slot_amplitudes.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn all_nonfinite_trace_is_typed_error_not_nan() {
        let s = RssSample {
            radar_pos: Vec3::new(1.0, 0.0, 0.0),
            rss: Complex64::new(f64::NAN, f64::NAN),
        };
        let err = decode(
            &vec![s; 200],
            Vec3::new(0.0, 2.0, 0.0),
            0.0,
            &code8(),
            &DecoderConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DecodeError::TooFewSamples { got: 0 }));
    }

    #[test]
    fn marginal_slot_amplitude_is_an_erasure() {
        // A clean decode has no erasures; shrinking the dead zone to 0
        // never creates any; a wide margin flags the weakest slots.
        let tag = code8()
            .encode(&[true, false, true, true])
            .unwrap()
            .mounted_at(Vec3::new(0.0, 2.0, 0.0));
        let trace = synth_trace(&tag, 2.0, None, 7);
        let clean = decode(
            &trace,
            tag.mount(),
            0.0,
            tag.code(),
            &DecoderConfig::default(),
        )
        .unwrap();
        assert!(clean.erasures.is_empty(), "clean fixture must not erase");
        let off = decode(
            &trace,
            tag.mount(),
            0.0,
            tag.code(),
            &DecoderConfig {
                erasure_margin: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(off.erasures.is_empty());
        // A margin wide enough to reach the strongest slot flags it.
        let max = clean.slot_amplitudes.iter().cloned().fold(0.0, f64::max);
        let t = (0.45 * max).max(4.0);
        let needed = (max - t).abs() / t + 0.05;
        let wide = decode(
            &trace,
            tag.mount(),
            0.0,
            tag.code(),
            &DecoderConfig {
                erasure_margin: needed,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!wide.erasures.is_empty(), "margin {needed} must flag slots");
    }

    #[test]
    fn czt_decoder_matches_fft_decoder() {
        let tag = code8()
            .encode(&[true, false, true, true])
            .unwrap()
            .mounted_at(Vec3::new(0.0, 2.5, 0.0));
        let trace = synth_trace(&tag, 2.5, Some(-62.0), 9);
        let fft_cfg = DecoderConfig::default();
        let czt_cfg = DecoderConfig {
            use_czt: true,
            ..Default::default()
        };
        let a = decode(&trace, tag.mount(), 0.0, tag.code(), &fft_cfg).unwrap();
        let b = decode(&trace, tag.mount(), 0.0, tag.code(), &czt_cfg).unwrap();
        assert_eq!(a.bits, b.bits);
        assert!((a.snr_db() - b.snr_db()).abs() < 2.0);
    }

    #[test]
    fn decode_into_bit_identical_to_decode() {
        let tag = code8()
            .encode(&[true, false, true, true])
            .unwrap()
            .mounted_at(Vec3::new(0.0, 2.0, 0.0));
        let trace = synth_trace(&tag, 2.0, Some(-62.0), 11);
        let mut scratch = DecodeScratch::new();
        let mut out = DecodeResult::default();
        // One arena across FFT and CZT configs of different plan sizes,
        // each decoded twice (dirty buffers on the second pass).
        for cfg in [
            DecoderConfig::default(),
            DecoderConfig {
                use_czt: true,
                ..Default::default()
            },
            DecoderConfig {
                n_grid: 256,
                zero_pad: 4,
                ..Default::default()
            },
        ] {
            for _ in 0..2 {
                let want = decode(&trace, tag.mount(), 0.0, tag.code(), &cfg).unwrap();
                decode_into(
                    &trace,
                    tag.mount(),
                    0.0,
                    tag.code(),
                    &cfg,
                    &mut scratch,
                    &mut out,
                )
                .unwrap();
                assert_eq!(out.bits, want.bits);
                assert_eq!(out.erasures, want.erasures);
                assert_eq!(out.n_samples_used, want.n_samples_used);
                assert_eq!(out.n_samples_nonfinite, want.n_samples_nonfinite);
                assert_eq!(out.snr_linear.to_bits(), want.snr_linear.to_bits());
                assert_eq!(out.slot_amplitudes.len(), want.slot_amplitudes.len());
                for (a, b) in out.slot_amplitudes.iter().zip(&want.slot_amplitudes) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                assert_eq!(out.spectrum_mags.len(), want.spectrum_mags.len());
                for (a, b) in out.spectrum_mags.iter().zip(&want.spectrum_mags) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                for (a, b) in out
                    .spectrum_spacings_m
                    .iter()
                    .zip(&want.spectrum_spacings_m)
                {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        // All three configs' plans stayed cached in the one arena.
        assert!(scratch.plans().len() >= 5);
    }

    #[test]
    fn narrow_fov_still_decodes() {
        // Fig. 17: a 60° FoV is sufficient; even 40° mostly works.
        let tag = code8()
            .encode(&[true; 4])
            .unwrap()
            .mounted_at(Vec3::new(0.0, 2.0, 0.0));
        let trace = synth_trace(&tag, 2.0, None, 4);
        let cfg = DecoderConfig {
            fov_rad: ros_em::geom::deg_to_rad(40.0),
            ..Default::default()
        };
        let r = decode(&trace, tag.mount(), 0.0, tag.code(), &cfg).unwrap();
        assert_eq!(r.bits, vec![true; 4]);
    }

    #[test]
    fn samples_outside_fov_filtered() {
        let tag = code8()
            .encode(&[true; 4])
            .unwrap()
            .mounted_at(Vec3::new(0.0, 2.0, 0.0));
        let trace = synth_trace(&tag, 2.0, None, 5);
        let narrow = DecoderConfig {
            fov_rad: ros_em::geom::deg_to_rad(30.0),
            ..Default::default()
        };
        let wide = DecoderConfig::default();
        let rn = decode(&trace, tag.mount(), 0.0, tag.code(), &narrow).unwrap();
        let rw = decode(&trace, tag.mount(), 0.0, tag.code(), &wide).unwrap();
        assert!(rn.n_samples_used < rw.n_samples_used);
    }
}
