//! Tag detection: the §6 multi-frame pipeline.
//!
//! 1. Per-frame radar point clouds are merged in the world frame using
//!    the vehicle's believed poses.
//! 2. DBSCAN groups the merged points; sparse clusters are dropped.
//! 3. Each cluster is scored with the paper's two discriminative
//!    features:
//!    * **polarization RSS loss** — RSS with the native (co-pol) Tx
//!      minus RSS with the switched Tx. Clutter loses its median
//!      16–19 dB; the tag only ≈13 dB (it *gains* cross-pol energy
//!      from retroreflection while its co-pol return is specular and
//!      strong near broadside) — Fig. 13a;
//!    * **point-cloud size** — the tag's bounding box is far smaller
//!      than poles, signs, or trees — Fig. 13b.
//! 4. The cluster passing both thresholds is declared the tag and its
//!    centre of gravity becomes the decode spotlight position.

use ros_dsp::dbscan::{dbscan, summarize_clusters, ClusterSummary, DbscanParams};
use ros_radar::pointcloud::PointCloud;
use ros_em::Vec3;

/// Feature vector of one candidate cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterFeatures {
    /// Cluster centroid (world) \[m\].
    pub center: Vec3,
    /// Member point count.
    pub n_points: usize,
    /// Robust cluster area \[m²\]: `π·rms_radius²` (Fig. 13b's "object
    /// size"; RMS-based so stray far points don't inflate it).
    pub size_m2: f64,
    /// Median RSS with the polarization-switched Tx \[dBm\].
    pub rss_switched_dbm: f64,
    /// Median RSS with the native Tx \[dBm\].
    pub rss_native_dbm: f64,
}

impl ClusterFeatures {
    /// The polarization RSS loss feature \[dB\] (native − switched).
    pub fn rss_loss_db(&self) -> f64 {
        self.rss_native_dbm - self.rss_switched_dbm
    }
}

/// Detector thresholds.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// DBSCAN parameters on the merged world-frame cloud.
    pub dbscan: DbscanParams,
    /// Minimum cluster population to consider (density filter, §6).
    pub min_points: usize,
    /// Maximum robust cluster area for a tag candidate \[m²\].
    pub max_tag_area_m2: f64,
    /// Maximum polarization RSS loss for a tag candidate \[dB\]
    /// (clutter sits at 16–19 dB, the tag at ≈13 dB).
    pub max_rss_loss_db: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            dbscan: DbscanParams {
                eps: 0.35,
                min_pts: 4,
            },
            min_points: 6,
            max_tag_area_m2: 0.08,
            max_rss_loss_db: 15.0,
        }
    }
}

/// A scored cluster.
#[derive(Clone, Copy, Debug)]
pub struct ScoredCluster {
    /// Geometry summary.
    pub summary: ClusterSummary,
    /// Feature vector.
    pub features: ClusterFeatures,
    /// Whether the detector classifies it as a RoS tag.
    pub is_tag: bool,
}

/// Clusters a merged point cloud into geometric summaries plus each
/// cluster's member point indices into the cloud (for per-point RSS
/// statistics).
pub(crate) fn cluster_members(
    cloud: &PointCloud,
    cfg: &DetectorConfig,
) -> Vec<(ClusterSummary, Vec<usize>)> {
    let xy = cloud.xy();
    let (labels, _) = dbscan(&xy, &cfg.dbscan);
    summarize_clusters(&xy, &labels)
        .into_iter()
        .filter(|s| s.count >= cfg.min_points)
        .map(|s| {
            let members: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, l)| **l == ros_dsp::dbscan::Label::Cluster(s.id))
                .map(|(i, _)| i)
                .collect();
            (s, members)
        })
        .collect()
}

/// Clusters a merged point cloud and scores every cluster.
///
/// `rss_probe` supplies, for a cluster (by member indices, centre, and
/// the centres of every *other* cluster), the pair of median RSS
/// values `(native_dbm, switched_dbm)`: native from the cluster's own
/// detected point powers, switched by spotlighting the centre across
/// the pass — skipping frames where another cluster shares the same
/// range–azimuth cell.
pub fn score_clusters<F>(
    cloud: &PointCloud,
    cfg: &DetectorConfig,
    mut rss_probe: F,
) -> Vec<ScoredCluster>
where
    F: FnMut(&[usize], Vec3, &[Vec3]) -> (f64, f64),
{
    let _span = ros_obs::span("detector.score");
    let with_members = cluster_members(cloud, cfg);
    let centers: Vec<Vec3> = with_members
        .iter()
        .map(|(s, _)| Vec3::new(s.cx, s.cy, 0.0))
        .collect();

    with_members
        .into_iter()
        .enumerate()
        .map(|(i, (s, members))| {
            let center = centers[i];
            let others: Vec<Vec3> = centers
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| *c)
                .collect();
            let (native, switched) = rss_probe(&members, center, &others);
            let features = ClusterFeatures {
                center,
                n_points: s.count,
                size_m2: std::f64::consts::PI * s.rms_radius * s.rms_radius,
                rss_switched_dbm: switched,
                rss_native_dbm: native,
            };
            let is_tag = features.size_m2 <= cfg.max_tag_area_m2
                && features.rss_loss_db() <= cfg.max_rss_loss_db;
            ros_obs::count("detector.clusters_scored", 1);
            if is_tag {
                ros_obs::count("detector.tags_classified", 1);
            }
            ros_obs::event_detail(
                "detector.cluster",
                &[
                    ("cx", center.x.into()),
                    ("cy", center.y.into()),
                    ("n", s.count.into()),
                    ("size_m2", features.size_m2.into()),
                    ("loss_db", features.rss_loss_db().into()),
                    ("native_dbm", features.rss_native_dbm.into()),
                    ("is_tag", is_tag.into()),
                ],
            );
            ScoredCluster {
                summary: s,
                features,
                is_tag,
            }
        })
        .collect()
}

/// Picks the best tag candidate (smallest RSS loss among `is_tag`
/// clusters), if any.
pub fn pick_tag(clusters: &[ScoredCluster]) -> Option<&ScoredCluster> {
    let best = clusters
        .iter()
        .filter(|c| c.is_tag)
        .min_by(|a, b| a.features.rss_loss_db().total_cmp(&b.features.rss_loss_db()));
    match best {
        Some(c) => ros_obs::event(
            "detector.pick",
            &[
                ("found", true.into()),
                ("cx", c.features.center.x.into()),
                ("cy", c.features.center.y.into()),
                ("loss_db", c.features.rss_loss_db().into()),
            ],
        ),
        None => ros_obs::event("detector.pick", &[("found", false.into())]),
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_radar::echo::Pose;
    use ros_radar::pointcloud::RadarPoint;

    /// Builds a cloud with a compact "tag" blob at (0, 2) and a large
    /// "tree" blob at (4, 3).
    fn test_cloud() -> PointCloud {
        let mut cloud = PointCloud::new();
        let pose = Pose::side_looking(Vec3::ZERO);
        let mut pts = Vec::new();
        for i in 0..12 {
            let jitter = (i as f64 * 0.618) % 1.0 - 0.5;
            pts.push(RadarPoint {
                range_m: 2.0 + 0.02 * jitter,
                azimuth_rad: 0.008 * jitter,
                power_mw: 1e-5,
            });
        }
        for i in 0..20 {
            let j1 = ((i as f64 * 0.618) % 1.0 - 0.5) * 0.9;
            let j2 = ((i as f64 * 0.382) % 1.0 - 0.5) * 0.4;
            pts.push(RadarPoint {
                range_m: 5.0 + j1,
                azimuth_rad: 0.93 + j2 * 0.25,
                power_mw: 1e-5,
            });
        }
        cloud.add_frame(&pts, &pose);
        cloud
    }

    #[test]
    fn two_clusters_found_and_scored() {
        let cloud = test_cloud();
        let clusters = score_clusters(&cloud, &DetectorConfig::default(), |_, c, _| {
            // Tag near (0, 2): loss 13 dB; tree: loss 17 dB.
            if c.y < 3.0 {
                (-40.0, -53.0)
            } else {
                (-38.0, -55.0)
            }
        });
        assert_eq!(clusters.len(), 2);
        let tags: Vec<_> = clusters.iter().filter(|c| c.is_tag).collect();
        assert_eq!(tags.len(), 1);
        assert!(tags[0].features.center.y < 3.0);
    }

    #[test]
    fn pick_tag_prefers_smallest_loss() {
        let cloud = test_cloud();
        let clusters = score_clusters(&cloud, &DetectorConfig::default(), |_, c, _| {
            if c.y < 3.0 {
                (-40.0, -53.0) // 13 dB loss, compact → tag
            } else {
                (-38.0, -52.0) // 14 dB loss but huge bbox → rejected
            }
        });
        let tag = pick_tag(&clusters).expect("tag candidate");
        assert!((tag.features.rss_loss_db() - 13.0).abs() < 1e-9);
        assert!(tag.features.size_m2 <= 0.05);
    }

    #[test]
    fn large_cluster_rejected_even_with_low_loss() {
        let cloud = test_cloud();
        let clusters = score_clusters(&cloud, &DetectorConfig::default(), |_, _, _| (-40.0, -53.0));
        // Both clusters have tag-like loss; only the compact one passes.
        let tags: Vec<_> = clusters.iter().filter(|c| c.is_tag).collect();
        assert_eq!(tags.len(), 1);
        assert!(tags[0].features.size_m2 < 0.05);
    }

    #[test]
    fn high_loss_cluster_rejected() {
        let cloud = test_cloud();
        let clusters = score_clusters(&cloud, &DetectorConfig::default(), |_, _, _| (-40.0, -58.0));
        // 18 dB loss everywhere: nothing passes.
        assert!(pick_tag(&clusters).is_none());
    }

    #[test]
    fn sparse_clusters_dropped() {
        let mut cloud = PointCloud::new();
        let pose = Pose::side_looking(Vec3::ZERO);
        // Only 3 points: below min_points.
        let pts: Vec<RadarPoint> = (0..3)
            .map(|i| RadarPoint {
                range_m: 2.0 + i as f64 * 0.01,
                azimuth_rad: 0.0,
                power_mw: 1e-5,
            })
            .collect();
        cloud.add_frame(&pts, &pose);
        let clusters = score_clusters(&cloud, &DetectorConfig::default(), |_, _, _| (-40.0, -53.0));
        assert!(clusters.is_empty());
    }

    #[test]
    fn features_expose_loss() {
        let f = ClusterFeatures {
            center: Vec3::ZERO,
            n_points: 10,
            size_m2: 0.01,
            rss_switched_dbm: -50.0,
            rss_native_dbm: -37.0,
        };
        assert!((f.rss_loss_db() - 13.0).abs() < 1e-12);
    }
}
