//! The §5.2 spatial coding scheme.
//!
//! `M` stack slots encode `M − 1` bits: a reference stack at the
//! origin plus one coding slot per bit. Slot `k` (1-based) sits at
//!
//! ```text
//! d_k = s_k · (M + k − 2) · δ_c        s_k = ±1 alternating
//! ```
//!
//! Bit `k` is "1" when a stack is mounted in slot `k` and "0" when the
//! slot is empty. The alternating sides and the `(M + k − 2)` index
//! offset guarantee that every *secondary* spacing (between two coding
//! stacks) falls outside the coding band `[d_1, d_{M−1}]`:
//! same-side spacings are `< d_1`, opposite-side spacings `> d_{M−1}`
//! — so secondary peaks can never masquerade as coding peaks.

use crate::tag::Tag;
use ros_cache::GeomCache;
use ros_em::constants::LAMBDA_CENTER_M;
use ros_em::units::cast::AsF64;

/// Errors from encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// Bit count does not match the code's capacity (`M − 1`).
    WrongBitCount {
        /// Bits the caller supplied.
        got: usize,
        /// Bits the code supports.
        expected: usize,
    },
    /// An ASK symbol exceeds the code's level count.
    SymbolOutOfRange {
        /// The offending symbol.
        symbol: u8,
        /// Number of levels the code supports.
        levels: usize,
    },
    /// The ASK code has no amplitude levels configured.
    NoLevels,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::WrongBitCount { got, expected } => {
                write!(f, "expected {expected} bits, got {got}")
            }
            EncodeError::SymbolOutOfRange { symbol, levels } => {
                write!(f, "symbol {symbol} out of range for {levels} levels")
            }
            EncodeError::NoLevels => write!(f, "ASK code has no amplitude levels"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// A spatial code: the tag family's geometric parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpatialCode {
    /// Maximum number of stacks `M` (capacity = `M − 1` bits).
    pub m_stacks: usize,
    /// Unit spacing δ_c between coding slots, in wavelengths.
    pub delta_c_lambda: f64,
    /// PSVAAs per stack (8, 16, or 32 in the paper's tags).
    pub rows_per_stack: usize,
    /// Whether stacks use §4.3 elevation beam shaping.
    pub beam_shaped: bool,
}

impl SpatialCode {
    /// The paper's example 4-bit code: `M = 5`, δ_c = 1.5λ (§5.2,
    /// Fig. 10) with 32-row stacks as fabricated (Fig. 12a).
    pub fn paper_4bit() -> Self {
        SpatialCode {
            m_stacks: 5,
            delta_c_lambda: 1.5,
            rows_per_stack: 32,
            beam_shaped: true,
        }
    }

    /// A general code with `bits` capacity at the paper's δ_c.
    ///
    /// # Panics
    /// Panics when `bits == 0` or `rows_per_stack == 0`.
    pub fn with_bits(bits: usize, rows_per_stack: usize) -> Self {
        assert!(bits > 0, "a code needs at least one bit");
        assert!(rows_per_stack > 0);
        SpatialCode {
            m_stacks: bits + 1,
            delta_c_lambda: 1.5,
            rows_per_stack,
            beam_shaped: true,
        }
    }

    /// Capacity in bits (`M − 1`).
    pub fn capacity_bits(&self) -> usize {
        self.m_stacks - 1
    }

    /// Slot position for coding bit `k` (1-based) \[m\]:
    /// `s_k·(M + k − 2)·δ_c·λ`, sides alternating `+,−,+,−,…`.
    pub fn slot_position_m(&self, k: usize) -> f64 {
        assert!(
            k >= 1 && k <= self.capacity_bits(),
            "slot index {k} out of range 1..={}",
            self.capacity_bits()
        );
        let sign = if k % 2 == 1 { 1.0 } else { -1.0 };
        let magnitude = (self.m_stacks + k - 2).as_f64() * self.delta_c_lambda;
        sign * magnitude * LAMBDA_CENTER_M
    }

    /// Slot distance from the reference stack for coding bit `k`
    /// (1-based) in wavelengths, unsigned — one entry of
    /// [`SpatialCode::slot_spacings_lambda`], computable without
    /// allocating (hot-path decode kernels evaluate it per slot).
    pub(crate) fn slot_spacing_lambda(&self, k: usize) -> f64 {
        (self.m_stacks + k - 2).as_f64() * self.delta_c_lambda
    }

    /// Slot distances from the reference stack in wavelengths,
    /// unsigned, in bit order.
    pub fn slot_spacings_lambda(&self) -> Vec<f64> {
        (1..=self.capacity_bits())
            .map(|k| self.slot_spacing_lambda(k))
            .collect()
    }

    /// Encodes `bits` into a physical tag layout.
    ///
    /// Bit `k` (index `k−1`) mounts a stack in slot `k`. The reference
    /// stack is always present.
    pub fn encode(&self, bits: &[bool]) -> Result<Tag, EncodeError> {
        let positions = self.mounted_positions_m(bits)?;
        Ok(Tag::new(*self, positions, bits.to_vec()))
    }

    /// [`SpatialCode::encode`] with the tag's stack geometry resolved
    /// through an injected cache (see [`Tag::new_with`]): the
    /// DE-optimized shaping profile builds once per cache, and the tag
    /// memoizes its per-frequency scatterer tables there. The encoded
    /// layout and physics are bit-identical to the uncached path.
    pub fn encode_with(&self, cache: &GeomCache, bits: &[bool]) -> Result<Tag, EncodeError> {
        let positions = self.mounted_positions_m(bits)?;
        Ok(Tag::new_with(cache, *self, positions, bits.to_vec()))
    }

    /// Mounted stack positions for `bits` (reference stack first).
    fn mounted_positions_m(&self, bits: &[bool]) -> Result<Vec<f64>, EncodeError> {
        if bits.len() != self.capacity_bits() {
            return Err(EncodeError::WrongBitCount {
                got: bits.len(),
                expected: self.capacity_bits(),
            });
        }
        let mut positions = vec![0.0]; // reference stack
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                positions.push(self.slot_position_m(i + 1));
            }
        }
        Ok(positions)
    }

    /// Overall tag width `D = (4M − 7)·c + 3` wavelengths (§5.3),
    /// where `c = δ_c/λ`, i.e. the span of the outermost slots plus
    /// one 3λ stack width.
    pub fn width_lambda(&self) -> f64 {
        (4.0 * self.m_stacks.as_f64() - 7.0) * self.delta_c_lambda + 3.0
    }

    /// Overall tag width in metres.
    pub fn width_m(&self) -> f64 {
        self.width_lambda() * LAMBDA_CENTER_M
    }

    /// The largest pairwise stack spacing \[m\]: slots `M−1` and `M−2`
    /// sit on opposite sides, so `(|d_{M−1}| + |d_{M−2}|)`.
    pub fn max_pair_spacing_m(&self) -> f64 {
        if self.capacity_bits() == 1 {
            return self.slot_position_m(1).abs();
        }
        let a = self.slot_position_m(self.capacity_bits()).abs();
        let b = self.slot_position_m(self.capacity_bits() - 1).abs();
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_slots() {
        // §5.2 / Fig. 10: coding stacks at +6λ, −7.5λ, +9λ, −10.5λ.
        let code = SpatialCode::paper_4bit();
        let lam = LAMBDA_CENTER_M;
        let want = [6.0, -7.5, 9.0, -10.5];
        for (k, w) in want.iter().enumerate() {
            let got = code.slot_position_m(k + 1) / lam;
            assert!((got - w).abs() < 1e-9, "slot {}: {got}λ", k + 1);
        }
    }

    #[test]
    fn capacity_and_width() {
        let code = SpatialCode::paper_4bit();
        assert_eq!(code.capacity_bits(), 4);
        // §5.3: D = 22.5λ for the 4-bit tag.
        assert!((code.width_lambda() - 22.5).abs() < 1e-9);
        // 6-bit tag: D = 34.5λ.
        let six = SpatialCode {
            m_stacks: 7,
            ..SpatialCode::paper_4bit()
        };
        assert!((six.width_lambda() - 34.5).abs() < 1e-9);
    }

    #[test]
    fn encode_all_ones() {
        let code = SpatialCode::paper_4bit();
        let tag = code.encode(&[true; 4]).unwrap();
        assert_eq!(tag.stack_positions_m().len(), 5);
        assert_eq!(tag.bits(), &[true, true, true, true]);
    }

    #[test]
    fn encode_1010_removes_stacks() {
        // §5.2: "to encode bits 1010, we can simply remove the two
        // stacks at −7.5λ and −10.5λ".
        let code = SpatialCode::paper_4bit();
        let tag = code.encode(&[true, false, true, false]).unwrap();
        let pos: Vec<f64> = tag
            .stack_positions_m()
            .iter()
            .map(|p| p / LAMBDA_CENTER_M)
            .collect();
        assert_eq!(pos.len(), 3);
        assert!((pos[0] - 0.0).abs() < 1e-9);
        assert!((pos[1] - 6.0).abs() < 1e-9);
        assert!((pos[2] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn encode_wrong_length_fails() {
        let code = SpatialCode::paper_4bit();
        let err = code.encode(&[true, false]).unwrap_err();
        assert_eq!(
            err,
            EncodeError::WrongBitCount {
                got: 2,
                expected: 4
            }
        );
        assert!(err.to_string().contains("expected 4"));
    }

    #[test]
    fn secondary_spacings_outside_coding_band() {
        // The core §5.2 guarantee, checked exhaustively for several
        // code sizes: every pairwise spacing between *coding* stacks
        // lies strictly outside [d_1, d_{M−1}].
        for bits in 2..=6 {
            let code = SpatialCode::with_bits(bits, 8);
            let d: Vec<f64> = (1..=bits).map(|k| code.slot_position_m(k)).collect();
            let band_lo = d[0].abs() - 1e-9;
            let band_hi = d[bits - 1].abs() + 1e-9;
            for i in 0..bits {
                for j in 0..bits {
                    if i == j {
                        continue;
                    }
                    let spacing = (d[i] - d[j]).abs();
                    assert!(
                        spacing < band_lo || spacing > band_hi,
                        "M={}: secondary spacing {spacing} inside band [{band_lo}, {band_hi}]",
                        bits + 1
                    );
                }
            }
        }
    }

    #[test]
    fn max_pair_spacing() {
        let code = SpatialCode::paper_4bit();
        // |+9λ| + |−10.5λ| = 19.5λ.
        assert!((code.max_pair_spacing_m() / LAMBDA_CENTER_M - 19.5).abs() < 1e-9);
        let one_bit = SpatialCode::with_bits(1, 8);
        assert!(one_bit.max_pair_spacing_m() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_zero_invalid() {
        SpatialCode::paper_4bit().slot_position_m(0);
    }
}
