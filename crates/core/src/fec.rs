//! Forward error correction for RoS messages.
//!
//! §8: *"Larger encoding capacity also allows for error correction
//! mechanisms to improve the reliability of decoding."* With ASK
//! stacks or multi-tag boards providing 7+ bits, a Hamming(7,4) code
//! corrects any single bit flipped by a fading coding peak — turning
//! the paper's 0.6% raw BER at 14 dB SNR into a ≈0.007% residual
//! word-error contribution.
//!
//! The implementation is the classic systematic Hamming(7,4) with the
//! parity bits in positions 1, 2, 4 (1-indexed), plus helpers to
//! protect arbitrary-length bit messages (nibble-chunked).

/// Typed FEC failure: malformed input to the codec, reported instead
/// of panicking so faulted decode paths degrade gracefully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FecError {
    /// The value does not fit in 4 bits.
    OversizedNibble {
        /// The offending value.
        value: u8,
    },
    /// A coded stream whose length is not a multiple of 7.
    LengthNotMultipleOf7 {
        /// The offending length.
        len: usize,
    },
    /// Fewer coded blocks than the message needs.
    CodedTooShort {
        /// Blocks available.
        blocks: usize,
        /// Message bits requested.
        message_len: usize,
    },
}

impl std::fmt::Display for FecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FecError::OversizedNibble { value } => {
                write!(f, "value {value} does not fit in a 4-bit nibble")
            }
            FecError::LengthNotMultipleOf7 { len } => {
                write!(f, "coded length {len} is not a multiple of 7")
            }
            FecError::CodedTooShort {
                blocks,
                message_len,
            } => write!(
                f,
                "{blocks} coded block(s) cannot carry a {message_len}-bit message"
            ),
        }
    }
}

impl std::error::Error for FecError {}

/// Encodes a 4-bit nibble (low bits of `nibble`) into 7 coded bits.
///
/// Bit layout (1-indexed): p1 p2 d1 p4 d2 d3 d4.
///
/// # Errors
/// [`FecError::OversizedNibble`] when `nibble >= 16`.
pub fn hamming74_encode(nibble: u8) -> Result<[bool; 7], FecError> {
    if nibble >= 16 {
        return Err(FecError::OversizedNibble { value: nibble });
    }
    Ok(encode_nibble(nibble))
}

/// Infallible core: encodes the low 4 bits of `nibble`.
fn encode_nibble(nibble: u8) -> [bool; 7] {
    let d1 = nibble & 1 != 0;
    let d2 = nibble & 2 != 0;
    let d3 = nibble & 4 != 0;
    let d4 = nibble & 8 != 0;
    let p1 = d1 ^ d2 ^ d4;
    let p2 = d1 ^ d3 ^ d4;
    let p4 = d2 ^ d3 ^ d4;
    [p1, p2, d1, p4, d2, d3, d4]
}

/// Decodes 7 coded bits, correcting up to one flipped bit.
///
/// Returns `(nibble, corrected_position)` where `corrected_position`
/// is the 1-indexed bit the decoder fixed (or `None` if the syndrome
/// was clean). Two or more flips exceed the code's capability and
/// decode to a wrong nibble — that is inherent to Hamming(7,4).
pub fn hamming74_decode(mut code: [bool; 7]) -> (u8, Option<usize>) {
    let s1 = code[0] ^ code[2] ^ code[4] ^ code[6];
    let s2 = code[1] ^ code[2] ^ code[5] ^ code[6];
    let s4 = code[3] ^ code[4] ^ code[5] ^ code[6];
    let syndrome = usize::from(s1) | (usize::from(s2) << 1) | (usize::from(s4) << 2);
    let corrected = if syndrome != 0 {
        code[syndrome - 1] = !code[syndrome - 1];
        Some(syndrome)
    } else {
        None
    };
    let nibble = u8::from(code[2])
        | (u8::from(code[4]) << 1)
        | (u8::from(code[5]) << 2)
        | (u8::from(code[6]) << 3);
    (nibble, corrected)
}

/// Protects a bit message: chunks into nibbles (zero-padded) and
/// Hamming-encodes each. Output length is `7·⌈len/4⌉`.
///
/// ```
/// use ros_core::fec::{protect, recover};
/// let msg = [true, false, true, true];
/// let mut coded = protect(&msg);
/// coded[5] = !coded[5]; // channel error
/// let (back, fixed) = recover(&coded, 4).unwrap();
/// assert_eq!(back, msg.to_vec());
/// assert_eq!(fixed, 1);
/// ```
pub fn protect(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(7 * bits.len().div_ceil(4));
    for chunk in bits.chunks(4) {
        let mut nibble = 0u8;
        for (i, &b) in chunk.iter().enumerate() {
            if b {
                nibble |= 1 << i;
            }
        }
        out.extend_from_slice(&encode_nibble(nibble));
    }
    out
}

/// Recovers a protected message of original length `message_len`.
///
/// Returns `(bits, corrections)` — the decoded message and how many
/// bits were corrected across all blocks.
///
/// # Errors
/// [`FecError::LengthNotMultipleOf7`] for a torn coded stream (e.g.
/// after frame drops), [`FecError::CodedTooShort`] when fewer blocks
/// arrived than `message_len` needs.
pub fn recover(coded: &[bool], message_len: usize) -> Result<(Vec<bool>, usize), FecError> {
    if coded.len() % 7 != 0 {
        return Err(FecError::LengthNotMultipleOf7 { len: coded.len() });
    }
    let blocks = coded.len() / 7;
    if blocks * 4 < message_len {
        return Err(FecError::CodedTooShort {
            blocks,
            message_len,
        });
    }
    let mut bits = Vec::with_capacity(message_len);
    let mut corrections = 0;
    for block in coded.chunks(7) {
        let mut arr = [false; 7];
        arr.copy_from_slice(block);
        let (nibble, fixed) = hamming74_decode(arr);
        if fixed.is_some() {
            corrections += 1;
        }
        for i in 0..4 {
            bits.push(nibble & (1 << i) != 0);
        }
    }
    bits.truncate(message_len);
    Ok((bits, corrections))
}

/// Residual word-error probability of one Hamming(7,4) block given a
/// raw bit error rate `ber`: the probability of ≥2 flips in 7 bits.
pub fn block_error_probability(ber: f64) -> f64 {
    let p = ber.clamp(0.0, 1.0);
    let q = 1.0 - p;
    let p0 = q.powi(7);
    let p1 = 7.0 * p * q.powi(6);
    1.0 - p0 - p1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nibbles_roundtrip() {
        for n in 0..16u8 {
            let code = hamming74_encode(n).unwrap();
            let (back, fixed) = hamming74_decode(code);
            assert_eq!(back, n);
            assert_eq!(fixed, None);
        }
    }

    #[test]
    fn every_single_flip_corrected() {
        for n in 0..16u8 {
            for flip in 0..7 {
                let mut code = hamming74_encode(n).unwrap();
                code[flip] = !code[flip];
                let (back, fixed) = hamming74_decode(code);
                assert_eq!(back, n, "nibble {n}, flip {flip}");
                assert_eq!(fixed, Some(flip + 1));
            }
        }
    }

    #[test]
    fn protect_recover_roundtrip() {
        let msg = [true, false, true, true, false, true];
        let coded = protect(&msg);
        assert_eq!(coded.len(), 14); // 2 blocks
        let (back, corrections) = recover(&coded, msg.len()).unwrap();
        assert_eq!(back, msg.to_vec());
        assert_eq!(corrections, 0);
    }

    #[test]
    fn protect_recover_with_channel_errors() {
        let msg = [true, true, false, false, true, false, true, true];
        let mut coded = protect(&msg);
        // One flip per block is fully correctable.
        coded[3] = !coded[3];
        coded[9] = !coded[9];
        let (back, corrections) = recover(&coded, msg.len()).unwrap();
        assert_eq!(back, msg.to_vec());
        assert_eq!(corrections, 2);
    }

    #[test]
    fn residual_error_math() {
        // At the paper's 14 dB operating point (raw BER 0.6%), a
        // protected block fails only when ≥2 of 7 bits flip.
        let residual = block_error_probability(0.006);
        assert!(residual < 8e-4, "residual {residual}");
        assert!(residual > 0.0);
        assert_eq!(block_error_probability(0.0), 0.0);
    }

    #[test]
    fn bad_coded_length_is_typed_error() {
        assert_eq!(
            recover(&[false; 6], 4),
            Err(FecError::LengthNotMultipleOf7 { len: 6 })
        );
    }

    #[test]
    fn short_coded_stream_is_typed_error() {
        // One 7-bit block carries 4 message bits, not 8.
        assert_eq!(
            recover(&[false; 7], 8),
            Err(FecError::CodedTooShort {
                blocks: 1,
                message_len: 8
            })
        );
    }

    #[test]
    fn oversized_nibble_is_typed_error() {
        assert_eq!(
            hamming74_encode(16),
            Err(FecError::OversizedNibble { value: 16 })
        );
        assert!(hamming74_encode(15).is_ok());
    }

    #[test]
    fn errors_display_their_context() {
        let e = FecError::CodedTooShort {
            blocks: 1,
            message_len: 8,
        };
        assert!(e.to_string().contains("8-bit"));
        assert!(FecError::LengthNotMultipleOf7 { len: 6 }
            .to_string()
            .contains('6'));
    }
}
