//! Multi-pass fusion: combining several drive-by readings.
//!
//! A commuting vehicle passes the same tag every day; a fleet passes
//! it hundreds of times an hour. Single-pass decoding at the edge of
//! the link budget (an 8-row tag at 5 m, Fig. 15) is marginal — but
//! the readings are independent, so combining them buys back SNR.
//! This module implements the two standard combiners:
//!
//! * **amplitude fusion** — SNR-weighted averaging of the normalized
//!   coding-slot amplitudes before the bit decision (coherent-ish
//!   gain: variance shrinks as `1/Σw`),
//! * **majority vote** — per-bit voting over independent decodes
//!   (robust to occasional garbage passes).

use crate::decode::DecodeResult;
use ros_em::units::cast::AsF64;

/// A fused multi-pass decision.
#[derive(Clone, Debug)]
pub struct FusedDecode {
    /// Fused bits.
    pub bits: Vec<bool>,
    /// Fused slot amplitudes (amplitude fusion) or vote fractions
    /// (majority vote), in slot order.
    pub confidence: Vec<f64>,
    /// Passes that contributed.
    pub n_passes: usize,
}

/// Fuses passes by SNR-weighted slot-amplitude averaging.
///
/// Weighting by linear SNR keeps a garbage pass (SNR ≈ 0) from
/// diluting good ones. Bits are re-decided on the fused amplitudes
/// with the same relative-plus-absolute rule as the single-pass
/// decoder.
///
/// # Panics
/// Panics when `passes` is empty or slot counts differ.
pub fn fuse_amplitudes(passes: &[DecodeResult]) -> FusedDecode {
    assert!(!passes.is_empty(), "need at least one pass");
    let n_slots = passes[0].slot_amplitudes.len();
    assert!(
        passes.iter().all(|p| p.slot_amplitudes.len() == n_slots),
        "slot count mismatch across passes"
    );

    let mut fused = vec![0.0; n_slots];
    let mut weight_sum = 0.0;
    for p in passes {
        let w = p.snr_linear.max(1e-6).min(1e6);
        for (f, &a) in fused.iter_mut().zip(&p.slot_amplitudes) {
            *f += w * a;
        }
        weight_sum += w;
    }
    for f in fused.iter_mut() {
        *f /= weight_sum;
    }

    // Averaging K independent passes shrinks the amplitude noise by
    // ≈√K, so the absolute gate scales down accordingly.
    let gate = (4.0 / (passes.len().as_f64()).sqrt()).max(1.5);
    let max_amp = fused.iter().cloned().fold(0.0, f64::max);
    let bits: Vec<bool> = fused
        .iter()
        .map(|&a| a > 0.45 * max_amp && a > gate)
        .collect();
    FusedDecode {
        bits,
        confidence: fused,
        n_passes: passes.len(),
    }
}

/// Fuses passes by per-bit majority vote (ties decode to 0 — the
/// conservative choice: a phantom "1" invents a sign that is not
/// there).
///
/// # Panics
/// Panics when `passes` is empty or bit counts differ.
pub fn fuse_majority(passes: &[DecodeResult]) -> FusedDecode {
    assert!(!passes.is_empty(), "need at least one pass");
    let n_bits = passes[0].bits.len();
    assert!(
        passes.iter().all(|p| p.bits.len() == n_bits),
        "bit count mismatch across passes"
    );
    let mut votes = vec![0usize; n_bits];
    for p in passes {
        for (v, &b) in votes.iter_mut().zip(&p.bits) {
            if b {
                *v += 1;
            }
        }
    }
    let n = passes.len();
    let bits: Vec<bool> = votes.iter().map(|&v| 2 * v > n).collect();
    let confidence: Vec<f64> = votes.iter().map(|&v| v.as_f64() / n.as_f64()).collect();
    FusedDecode {
        bits,
        confidence,
        n_passes: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SpatialCode;
    use crate::reader::{DriveBy, ReaderConfig};

    fn marginal_passes(n: usize, standoff: f64) -> (Vec<bool>, Vec<DecodeResult>) {
        // An 8-row tag near its Fig.-15 range limit (≈4 m): single
        // passes are unreliable.
        let bits = vec![true, false, true, true];
        let code = SpatialCode {
            rows_per_stack: 8,
            ..SpatialCode::paper_4bit()
        };
        let mut passes = Vec::new();
        for seed in 0..n as u64 {
            let tag = code.encode(&bits).unwrap();
            let mut drive = DriveBy::new(tag, standoff).with_seed(5500 + seed);
            drive.half_span_m = 8.0;
            if let Ok(d) = drive.run(&ReaderConfig::fast()).decode {
                passes.push(d);
            }
        }
        (bits, passes)
    }

    #[test]
    fn amplitude_fusion_rescues_marginal_link() {
        // At 4.75 m amplitude fusion recovers the message even though
        // individual bit decisions are mostly below the single-pass
        // gate.
        let (bits, passes) = marginal_passes(7, 4.75);
        assert!(passes.len() >= 5, "need passes to fuse");
        let fused = fuse_amplitudes(&passes);
        assert_eq!(fused.bits, bits, "fused decode failed: {:?}", fused.confidence);
    }

    #[test]
    fn majority_vote_rescues_moderately_marginal_link() {
        // Majority voting needs individual decodes to be right more
        // often than not — works at 4.4 m where single passes flip
        // occasionally.
        let (bits, passes) = marginal_passes(7, 4.4);
        assert!(passes.len() >= 5);
        let vote = fuse_majority(&passes);
        assert_eq!(vote.bits, bits, "votes: {:?}", vote.confidence);
    }

    #[test]
    fn amplitude_fusion_weights_by_snr() {
        // One good pass + one garbage pass: the garbage must not win.
        let good = DecodeResult {
            bits: vec![true, false],
            slot_amplitudes: vec![20.0, 1.0],
            snr_linear: 1000.0,
            spectrum_spacings_m: vec![],
            spectrum_mags: vec![],
            n_samples_used: 100,
            n_samples_nonfinite: 0,
            erasures: vec![],
        };
        let garbage = DecodeResult {
            bits: vec![false, true],
            slot_amplitudes: vec![1.0, 20.0],
            snr_linear: 0.01,
            spectrum_spacings_m: vec![],
            spectrum_mags: vec![],
            n_samples_used: 100,
            n_samples_nonfinite: 0,
            erasures: vec![],
        };
        let fused = fuse_amplitudes(&[good, garbage]);
        assert_eq!(fused.bits, vec![true, false]);
    }

    #[test]
    fn majority_vote_basic() {
        let mk = |bits: Vec<bool>| DecodeResult {
            bits,
            slot_amplitudes: vec![0.0; 2],
            snr_linear: 10.0,
            spectrum_spacings_m: vec![],
            spectrum_mags: vec![],
            n_samples_used: 10,
            n_samples_nonfinite: 0,
            erasures: vec![],
        };
        let fused = fuse_majority(&[
            mk(vec![true, false]),
            mk(vec![true, true]),
            mk(vec![true, false]),
        ]);
        assert_eq!(fused.bits, vec![true, false]);
        assert_eq!(fused.confidence, vec![1.0, 1.0 / 3.0]);
        assert_eq!(fused.n_passes, 3);
    }

    #[test]
    fn ties_vote_zero() {
        let mk = |b: bool| DecodeResult {
            bits: vec![b],
            slot_amplitudes: vec![0.0],
            snr_linear: 10.0,
            spectrum_spacings_m: vec![],
            spectrum_mags: vec![],
            n_samples_used: 10,
            n_samples_nonfinite: 0,
            erasures: vec![],
        };
        let fused = fuse_majority(&[mk(true), mk(false)]);
        assert_eq!(fused.bits, vec![false]);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn empty_fusion_rejected() {
        fuse_amplitudes(&[]);
    }
}
