#![warn(missing_docs)]

//! # ros-core — the RoS passive smart surface
//!
//! The paper's primary contribution: a fully passive, chipless,
//! mechanically reconfigurable mmWave tag that encodes bits in the
//! geometrical layout of PSVAA stacks, plus the radar-side pipeline
//! that detects and decodes it.
//!
//! * [`encode`] — the §5.2 spatial coding scheme: bits ↔ stack layout,
//! * [`tag`] — the physical tag: stacks of beam-shaped PSVAAs placed by
//!   the code, with near-field scatterer export,
//! * [`rcs_model`] — the analytic §5.1 multi-stack RCS model (Eqs. 6–7)
//!   and RCS frequency spectrum,
//! * [`decode`] — RSS-trace → spectrum → coding peaks → bits → SNR/BER,
//! * [`nearfield`] — matched-filter decoding that works inside the
//!   far-field bound (the §8 NFFA direction, implemented radar-side),
//! * [`detector`] — the §6 pipeline: multi-frame point cloud, DBSCAN,
//!   two-feature tag discrimination,
//! * [`reader`] — the end-to-end drive-by reader tying scene, radar and
//!   decoder together,
//! * [`capacity`] — §5.3 design-tradeoff calculators (tag width, far
//!   field, speed bound, link budget),
//! * [`ask`] — the §8 multi-level (ASK) coding extension: 2 bits per
//!   slot via per-stack row counts,
//! * [`fec`] — Hamming(7,4) error protection over RoS messages (§8),
//! * [`fusion`] — multi-pass (fleet/commuter) reading combination,
//! * [`signpost`] — the road-sign codebook of the paper's Fig. 1
//!   scenario (\"1111 → traffic light ahead\").
//!
//! ## Quick start
//!
//! ```
//! use ros_core::encode::SpatialCode;
//! use ros_core::reader::{DriveBy, ReaderConfig};
//!
//! // Encode 4 bits on a tag with 8-row beam-shaped stacks.
//! let code = SpatialCode::paper_4bit();
//! let tag = code.encode(&[true, true, true, true]).unwrap();
//!
//! // Drive past it with a TI-class radar at 2 m standoff and decode.
//! let drive = DriveBy::new(tag, 2.0);
//! let outcome = drive.run(&ReaderConfig::fast());
//! assert_eq!(outcome.bits(), vec![true, true, true, true]);
//! ```

pub mod ask;
pub mod capacity;
pub mod decode;
pub(crate) mod detector;
pub mod encode;
pub mod fec;
pub mod fusion;
pub mod localize;
pub mod nearfield;
pub mod rcs_model;
pub mod reader;
pub mod signpost;
pub mod stream;
pub mod tag;

pub use encode::SpatialCode;
pub use tag::Tag;
