//! Vehicle self-localization from RoS tags.
//!
//! The paper's related work (Caraoke) localizes vehicles with roadside
//! RF infrastructure; RoS tags enable the same trick for free. A tag's
//! surveyed position is part of the map (it is a road sign); once the
//! radar has range/azimuth observations of a detected tag across a
//! pass, the vehicle can solve for the *bias of its own dead-reckoned
//! track* — the tracking drift of Fig. 16d — by least squares.
//!
//! Model: believed position = true position + constant offset `b`
//! (over a short pass, the drift is locally constant). Each frame's
//! radar measurement gives the tag's position in the *vehicle* frame;
//! mapping it through the believed pose yields a tag estimate that is
//! displaced by the same `b`. The ML estimate of `b` is then the mean
//! discrepancy to the surveyed position, and the corrected track is
//! `believed − b̂`.

use ros_em::Vec3;

/// One tag observation: where the (believed-pose-projected) detection
/// landed versus the surveyed map position of that tag.
#[derive(Clone, Copy, Debug)]
pub struct TagObservation {
    /// Tag position estimated from the radar + believed track \[m\].
    pub observed: Vec3,
    /// Surveyed (map) tag position \[m\].
    pub surveyed: Vec3,
    /// Measurement weight (e.g. cluster point count or decode SNR).
    pub weight: f64,
}

/// The estimated track correction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrackCorrection {
    /// Estimated track bias `b̂` \[m\] (subtract from believed poses).
    pub bias: Vec3,
    /// Root-weighted-mean-square residual after correction \[m\].
    pub residual_m: f64,
    /// Observations used.
    pub n_observations: usize,
}

/// Typed localization failure: degenerate observation sets are
/// reported, not panicked on — a pass with zero detected tags is a
/// normal outcome under faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalizeError {
    /// No tag observations at all (nothing detected this pass).
    NoObservations,
    /// Observations exist but every weight is zero (or negative).
    ZeroWeights,
}

impl std::fmt::Display for LocalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalizeError::NoObservations => write!(f, "no tag observations"),
            LocalizeError::ZeroWeights => write!(f, "all observation weights are zero"),
        }
    }
}

impl std::error::Error for LocalizeError {}

/// Estimates the track bias from tag observations (weighted least
/// squares; closed form for the constant-offset model).
///
/// # Errors
/// [`LocalizeError::NoObservations`] for an empty set,
/// [`LocalizeError::ZeroWeights`] when no observation carries weight.
pub fn estimate_correction(
    observations: &[TagObservation],
) -> Result<TrackCorrection, LocalizeError> {
    if observations.is_empty() {
        return Err(LocalizeError::NoObservations);
    }
    let wsum: f64 = observations.iter().map(|o| o.weight).sum();
    if !(wsum > 0.0) {
        // lint note: `!(> 0)` also rejects a NaN weight sum.
        return Err(LocalizeError::ZeroWeights);
    }

    let mut bias = Vec3::ZERO;
    for o in observations {
        bias += (o.observed - o.surveyed) * o.weight;
    }
    bias = bias / wsum;

    let mut rss = 0.0;
    for o in observations {
        let r = o.observed - o.surveyed - bias;
        rss += o.weight * r.norm_sqr();
    }
    Ok(TrackCorrection {
        bias,
        residual_m: (rss / wsum).sqrt(),
        n_observations: observations.len(),
    })
}

/// Applies a correction to a believed track.
pub fn correct_track(believed: &[Vec3], correction: &TrackCorrection) -> Vec<Vec3> {
    believed.iter().map(|&p| p - correction.bias).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ox: f64, oy: f64, sx: f64, sy: f64, w: f64) -> TagObservation {
        TagObservation {
            observed: Vec3::new(ox, oy, 0.0),
            surveyed: Vec3::new(sx, sy, 0.0),
            weight: w,
        }
    }

    #[test]
    fn recovers_pure_offset() {
        // Two tags, both observed displaced by (0.4, −0.2).
        let observations = [
            obs(0.4, 2.8, 0.0, 3.0, 1.0),
            obs(5.4, 2.8, 5.0, 3.0, 1.0),
        ];
        let c = estimate_correction(&observations).unwrap();
        assert!((c.bias.x - 0.4).abs() < 1e-12);
        assert!((c.bias.y + 0.2).abs() < 1e-12);
        assert!(c.residual_m < 1e-12);
    }

    #[test]
    fn weights_bias_toward_confident_tags() {
        let observations = [
            obs(1.0, 3.0, 0.0, 3.0, 9.0), // offset 1.0, strong
            obs(5.0, 3.0, 5.0, 3.0, 1.0), // offset 0.0, weak
        ];
        let c = estimate_correction(&observations).unwrap();
        assert!((c.bias.x - 0.9).abs() < 1e-12);
    }

    #[test]
    fn corrected_track_aligns() {
        let believed = vec![Vec3::new(0.3, 0.1, 1.0), Vec3::new(1.3, 0.1, 1.0)];
        let c = TrackCorrection {
            bias: Vec3::new(0.3, 0.1, 0.0),
            residual_m: 0.0,
            n_observations: 2,
        };
        let out = correct_track(&believed, &c);
        assert_eq!(out[0], Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(out[1], Vec3::new(1.0, 0.0, 1.0));
    }

    #[test]
    fn residual_reports_inconsistency() {
        // Inconsistent offsets can't be explained by one bias.
        let observations = [
            obs(0.5, 3.0, 0.0, 3.0, 1.0),
            obs(4.5, 3.0, 5.0, 3.0, 1.0),
        ];
        let c = estimate_correction(&observations).unwrap();
        assert!(c.bias.x.abs() < 1e-12); // offsets cancel
        assert!(c.residual_m > 0.4);
    }

    #[test]
    fn degenerate_observation_sets_are_typed_errors() {
        assert_eq!(
            estimate_correction(&[]),
            Err(LocalizeError::NoObservations)
        );
        assert_eq!(
            estimate_correction(&[obs(0.0, 0.0, 0.0, 0.0, 0.0)]),
            Err(LocalizeError::ZeroWeights)
        );
        assert_eq!(
            estimate_correction(&[obs(0.0, 0.0, 0.0, 0.0, f64::NAN)]),
            Err(LocalizeError::ZeroWeights)
        );
    }

    #[test]
    fn end_to_end_against_drifted_pipeline() {
        // Full-pipeline detection under a constant believed-track bias:
        // the detected tag centre inherits the bias; one tag is enough
        // to recover it.
        use crate::encode::SpatialCode;
        use crate::reader::{DriveBy, ReaderConfig};
        use ros_scene::tracking::TrackingError;

        let tag = SpatialCode::paper_4bit()
            .encode(&[true; 4])
            .unwrap()
            .with_column_bow(0.0004, 3);
        let surveyed = Vec3::new(0.0, 3.0, 0.0);
        // A pure jitter-free lateral bias via a tiny drift over a
        // short pass ≈ constant offset.
        let mut drive = DriveBy::new(tag, 3.0)
            .with_tracking(TrackingError {
                drift: 0.06,
                jitter_m: 0.0,
                seed: 0,
            })
            .with_seed(11211);
        drive.half_span_m = 3.0;
        let mut cfg = ReaderConfig::full();
        cfg.frame_stride = 8;
        let outcome = drive.run(&cfg);
        let center = outcome.detected_center.expect("tag detected");

        let c = estimate_correction(&[TagObservation {
            observed: Vec3::new(center.x, center.y, 0.0),
            surveyed,
            weight: 1.0,
        }])
        .unwrap();
        // The drift stretches the ±3 m track by 6%; the detected tag
        // centre shifts accordingly and the correction recovers a
        // same-magnitude bias.
        assert!(
            c.bias.norm() < 0.4,
            "implausible bias {:?}",
            c.bias
        );
        // Applying the correction moves the detected centre onto the
        // survey within a few centimetres.
        let corrected = Vec3::new(center.x, center.y, 0.0) - c.bias;
        assert!(corrected.distance(surveyed) < 0.05);
    }
}
