//! Near-field matched-filter decoding.
//!
//! The §5.1 FFT decoder assumes the radar is in the tag's far field:
//! every stack's fringe is then a pure tone in `u = cos θ`, and the
//! spectrum separates the slots. Inside the far-field distance
//! (`2D²/λ`, ≈2.9 m for the 4-bit tag and ≈7.6 m for a 6-bit tag) the
//! wavefront curvature chirps the fringes and smears the peaks — the
//! §5.3 capacity limit, and the effect the paper proposes to attack
//! with near-field-focusing antennas (§8).
//!
//! This module implements the *radar-side* equivalent of NFFA: instead
//! of an FFT over `u`, each coding slot is detected with a matched
//! filter built from the **exact** per-frame geometry. For slot
//! position `x_s` and frame position `r_i`, the reference↔slot fringe
//! phase is
//!
//! ```text
//! ψ_i(x_s) = (4π/λ)·(|r_i − p_s| − |r_i − p_0|)
//! ```
//!
//! with `p_s` the slot's true 3-D location — no plane-wave
//! approximation. Correlating the mean-removed RCS trace against the
//! quadrature pair `(cos ψ, sin ψ)` recovers the slot amplitude at any
//! distance. The noise floor is estimated from matched filters at
//! phantom (off-slot) positions.

use crate::decode::{DecodeError, DecoderConfig, RssSample};
use crate::encode::SpatialCode;
use ros_dsp::stats;
use ros_em::Vec3;
use ros_em::units::cast::AsF64;

/// Near-field decode result.
#[derive(Clone, Debug)]
pub struct NearFieldDecodeResult {
    /// Decoded bits.
    pub bits: Vec<bool>,
    /// Noise-normalized matched-filter amplitude per slot.
    pub slot_amplitudes: Vec<f64>,
    /// The paper's decoding SNR (linear).
    pub snr_linear: f64,
    /// Samples used after FoV filtering.
    pub n_samples_used: usize,
}

impl NearFieldDecodeResult {
    /// Decoding SNR in dB.
    pub fn snr_db(&self) -> f64 {
        stats::snr_db(self.snr_linear)
    }

    /// Implied OOK bit error rate.
    pub fn ber(&self) -> f64 {
        stats::ook_ber(self.snr_linear)
    }
}

/// Matched-filter amplitude of the fringe between the reference stack
/// and a hypothetical stack at `offset_m` along the tag axis.
fn matched_amplitude(
    trace: &[(Vec3, f64)], // (radar position, mean-removed RCS value)
    tag_center: Vec3,
    tag_axis_yaw: f64,
    offset_m: f64,
    lambda: f64,
) -> f64 {
    let (sin_y, cos_y) = tag_axis_yaw.sin_cos();
    let slot_pos = tag_center + Vec3::new(offset_m * cos_y, offset_m * sin_y, 0.0);
    let k2 = 2.0 * std::f64::consts::TAU / lambda; // 4π/λ
    let mut c = 0.0;
    let mut s = 0.0;
    for (r, v) in trace {
        let psi = k2 * (r.distance(slot_pos) - r.distance(tag_center));
        c += v * psi.cos();
        s += v * psi.sin();
    }
    let n = trace.len().max(1).as_f64();
    (c * c + s * s).sqrt() / n
}

/// Decodes a spotlight RSS trace with exact near-field matched filters.
///
/// Arguments mirror [`crate::decode::decode`]; the `cfg` supplies the
/// FoV filter and envelope compensation. Works at any distance —
/// including well inside the far-field bound where the FFT decoder
/// fails.
pub fn decode_nearfield(
    samples: &[RssSample],
    tag_center: Vec3,
    tag_axis_yaw: f64,
    code: &SpatialCode,
    cfg: &DecoderConfig,
) -> Result<NearFieldDecodeResult, DecodeError> {
    let lambda = ros_em::constants::LAMBDA_CENTER_M;
    let u_max = (cfg.fov_rad / 2.0).sin();

    // FoV filter + envelope compensation (same as the FFT decoder).
    let mut trace: Vec<(Vec3, f64)> = Vec::with_capacity(samples.len());
    let (sin_y, cos_y) = tag_axis_yaw.sin_cos();
    for s in samples {
        let v = s.radar_pos - tag_center;
        let ground = (v.x * v.x + v.y * v.y).sqrt();
        if ground < 1e-6 {
            continue;
        }
        let along = v.x * cos_y + v.y * sin_y;
        let u = along / ground;
        if u.abs() > u_max {
            continue;
        }
        let mut p = s.rss.norm_sqr();
        if let Some(budget) = &cfg.envelope_budget {
            let d = v.norm();
            let unit_dbm = budget.received_power_dbm(0.0, d);
            let az_radar = (-v.x).atan2(-v.y);
            let g = az_radar.cos().max(0.0).powf(1.5);
            let env = ros_em::db::db_to_pow(unit_dbm) * g.powi(4);
            if env > 0.0 {
                p /= env;
            }
        }
        trace.push((s.radar_pos, p));
    }
    if trace.len() < 8 {
        return Err(DecodeError::TooFewSamples { got: trace.len() });
    }
    let n_used = trace.len();

    // Mean removal (the DC term of Eq. 6).
    let mean = trace.iter().map(|(_, v)| v).sum::<f64>() / trace.len().as_f64();
    for t in trace.iter_mut() {
        t.1 -= mean;
    }

    // Matched filter at every slot…
    let slot_amps: Vec<f64> = (1..=code.capacity_bits())
        .map(|k| {
            matched_amplitude(
                &trace,
                tag_center,
                tag_axis_yaw,
                code.slot_position_m(k),
                lambda,
            )
        })
        .collect();

    // …and at phantom positions beyond every real feature for the
    // noise floor (out-of-band, so matched-filter skirts of true peaks
    // cannot inflate it — mirroring the FFT decoder's noise region).
    let dc = code.delta_c_lambda * lambda;
    // Largest pairwise feature: the opposite-side slot sum.
    let max_feature = code.max_pair_spacing_m();
    let mut phantom_amps = Vec::new();
    for j in 0..6 {
        for sign in [-1.0, 1.0] {
            let pos = sign * (max_feature + 1.5 * lambda + j.as_f64() * 0.75 * dc);
            phantom_amps.push(matched_amplitude(
                &trace,
                tag_center,
                tag_axis_yaw,
                pos,
                lambda,
            ));
        }
    }
    let noise_rms = (phantom_amps.iter().map(|a| a * a).sum::<f64>()
        / phantom_amps.len().max(1).as_f64())
        .sqrt()
        .max(1e-300);

    let slot_amplitudes: Vec<f64> = slot_amps.iter().map(|a| a / noise_rms).collect();
    let max_amp = slot_amplitudes.iter().cloned().fold(0.0, f64::max);
    let bits: Vec<bool> = slot_amplitudes
        .iter()
        .map(|&a| a > cfg.threshold * max_amp && a > 4.0)
        .collect();

    let ones: Vec<f64> = slot_amplitudes
        .iter()
        .zip(&bits)
        .filter(|(_, &b)| b)
        .map(|(&a, _)| a)
        .collect();
    let zeros: Vec<f64> = slot_amplitudes
        .iter()
        .zip(&bits)
        .filter(|(_, &b)| !b)
        .map(|(&a, _)| a)
        .collect();
    let snr_linear = stats::ook_snr(&ones, &zeros, 1.0);

    Ok(NearFieldDecodeResult {
        bits,
        slot_amplitudes,
        snr_linear,
        n_samples_used: n_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{DriveBy, ReaderConfig};

    fn code(bits: usize, rows: usize) -> SpatialCode {
        SpatialCode {
            m_stacks: bits + 1,
            rows_per_stack: rows,
            ..SpatialCode::paper_4bit()
        }
    }

    fn run_trace(tag: crate::tag::Tag, standoff: f64, span: f64, seed: u64) -> Vec<RssSample> {
        let mut drive = DriveBy::new(tag, standoff).with_seed(seed);
        drive.half_span_m = span;
        let outcome = drive.run(&ReaderConfig::fast());
        outcome.rss_trace
    }

    #[test]
    fn matches_fft_decoder_in_far_field() {
        let c = code(4, 8);
        let bits = [true, false, true, true];
        let tag = c.encode(&bits).unwrap();
        let center = ros_em::Vec3::new(0.0, 3.5, 1.0);
        let trace = run_trace(tag, 3.5, 8.0, 1);
        let r = decode_nearfield(&trace, center, 0.0, &c, &DecoderConfig::default()).unwrap();
        assert_eq!(r.bits, bits.to_vec(), "amps {:?}", r.slot_amplitudes);
        assert!(r.snr_db() > 12.0, "SNR {:.1}", r.snr_db());
    }

    #[test]
    fn decodes_6bit_tag_in_near_field() {
        // The FFT decoder fails on a 6-bit tag at 4 m (inside its
        // ≈7.6 m far field); the matched filter does not.
        let c = code(6, 8);
        let bits = [true, true, false, true, false, true];
        let tag = c.encode(&bits).unwrap();
        let center = ros_em::Vec3::new(0.0, 4.0, 1.0);
        let trace = run_trace(tag, 4.0, 10.0, 66);
        let r = decode_nearfield(&trace, center, 0.0, &c, &DecoderConfig::default()).unwrap();
        assert_eq!(r.bits, bits.to_vec(), "amps {:?}", r.slot_amplitudes);
    }

    #[test]
    fn decodes_4bit_tag_well_inside_far_field() {
        // 2 m standoff < 2.9 m far field.
        let c = code(4, 8);
        let bits = [false, true, true, false];
        let tag = c.encode(&bits).unwrap();
        let center = ros_em::Vec3::new(0.0, 2.0, 1.0);
        let trace = run_trace(tag, 2.0, 5.0, 3);
        let r = decode_nearfield(&trace, center, 0.0, &c, &DecoderConfig::default()).unwrap();
        assert_eq!(r.bits, bits.to_vec());
    }

    #[test]
    fn too_few_samples_error() {
        let c = code(4, 8);
        let err = decode_nearfield(
            &[],
            ros_em::Vec3::ZERO,
            0.0,
            &c,
            &DecoderConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DecodeError::TooFewSamples { .. }));
    }
}
