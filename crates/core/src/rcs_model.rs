//! The §5.1 analytic multi-stack RCS model (Eqs. 6–7).
//!
//! For `M` stacks at positions `d_k` and a far-field radar at
//! direction cosine `u = cos θ` (equivalently `sin` of the azimuth
//! from broadside in our convention):
//!
//! ```text
//! r_s(u) = r_T(u) · |Σ_k e^{j·4π·d_k·u/λ}|²
//!        = r_T(u) · (M + 2·Σ_{k<l} cos(4π(d_k−d_l)u/λ))
//! ```
//!
//! A Fourier transform over `u` turns each pairwise spacing into a
//! spectral peak at `(d_k − d_l)/(λ/2)` cycles per unit `u` — the RCS
//! frequency spectrum whose coding-band peaks carry the bits. With
//! `u ∈ [−1, 1]` the spacing resolution is λ/4 (§5.1).

use ros_cache::{GeomCache, KeyBuilder, TableKind};
use ros_dsp::czt::CztPlan;
use ros_dsp::fft::{magnitudes, spectrum_padded, FftPlan};
use ros_dsp::window::{Window, WindowTable};
use ros_em::units::cast::AsF64;
use ros_em::Complex64;
use std::sync::Arc;

/// The analytic array factor `|Σ e^{j4πd·u/λ}|²` of Eq. 6.
pub fn multi_stack_factor(positions_m: &[f64], u: f64, lambda_m: f64) -> f64 {
    let k = 2.0 * std::f64::consts::TAU / lambda_m; // 4π/λ
    let (mut re, mut im) = (0.0, 0.0);
    for &d in positions_m {
        let ph = k * d * u;
        re += ph.cos();
        im += ph.sin();
    }
    re * re + im * im
}

/// Below this grid size the u-sweep runs serially — thread spawn
/// overhead beats the arithmetic for small sweeps.
const PAR_GRID_THRESHOLD: usize = 256;

/// Samples `r_s(u)/r_T(u)` (the normalized Eq.-6 factor) on a uniform
/// `u` grid spanning `[-u_max, u_max]`.
///
/// Each grid point is an independent evaluation of
/// [`multi_stack_factor`], so large sweeps fan out over
/// [`ros_exec::par_map_indexed`]; results are bit-identical at any
/// thread count (per-point arithmetic is untouched and output order
/// is the grid order).
pub fn sample_rcs_factor(positions_m: &[f64], lambda_m: f64, u_max: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && u_max > 0.0);
    let point = |i: usize| {
        let u = -u_max + 2.0 * u_max * i.as_f64() / (n - 1).as_f64();
        multi_stack_factor(positions_m, u, lambda_m)
    };
    if n < PAR_GRID_THRESHOLD {
        return (0..n).map(point).collect();
    }
    let grid: Vec<usize> = (0..n).collect();
    ros_exec::par_map(&grid, |&i| point(i))
}

/// [`sample_rcs_factor`] memoized in an injected cache: the grid for
/// one exact `(positions, λ, u_max, n)` tuple (f64s keyed by bit
/// pattern) builds once per cache and is shared as an immutable
/// table. Bit-identical to the uncached path by construction.
pub fn sample_rcs_factor_cached(
    cache: &GeomCache,
    positions_m: &[f64],
    lambda_m: f64,
    u_max: f64,
    n: usize,
) -> Arc<Vec<f64>> {
    let key = KeyBuilder::new("core.rcs_model.sample_rcs_factor")
        .f64s(positions_m)
        .f64(lambda_m)
        .f64(u_max)
        .usize(n)
        .finish();
    cache.get_or_build(TableKind::RcsFactor, key, || {
        sample_rcs_factor(positions_m, lambda_m, u_max, n)
    })
}

/// [`rcs_spectrum`] memoized in an injected cache: one
/// `(spacings, magnitudes)` pair per exact input trace and transform
/// parameters. Resolve any cached `rcs` input *before* this call (no
/// cache re-entry from build closures).
pub fn rcs_spectrum_cached(
    cache: &GeomCache,
    rcs: &[f64],
    u_max: f64,
    lambda_m: f64,
    zero_pad_factor: usize,
) -> Arc<(Vec<f64>, Vec<f64>)> {
    let key = KeyBuilder::new("core.rcs_model.rcs_spectrum")
        .f64s(rcs)
        .f64(u_max)
        .f64(lambda_m)
        .usize(zero_pad_factor)
        .finish();
    cache.get_or_build(TableKind::RcsFactor, key, || {
        rcs_spectrum(rcs, u_max, lambda_m, zero_pad_factor)
    })
}

/// The RCS frequency spectrum of a sampled RCS trace.
///
/// Input: `rcs[i]` sampled uniformly over `u ∈ [−u_max, u_max]`.
/// Output: `(spacings_m, magnitude)` — magnitude of the spectrum as a
/// function of the *physical spacing* axis (metres), positive
/// frequencies only. The DC term is removed and a Hann window applied
/// before the FFT, as the decoder does.
pub fn rcs_spectrum(
    rcs: &[f64],
    u_max: f64,
    lambda_m: f64,
    zero_pad_factor: usize,
) -> (Vec<f64>, Vec<f64>) {
    rcs_spectrum_windowed(rcs, u_max, lambda_m, zero_pad_factor, Window::Hann)
}

/// [`rcs_spectrum`] with an explicit taper (for windowing ablations).
pub fn rcs_spectrum_windowed(
    rcs: &[f64],
    u_max: f64,
    lambda_m: f64,
    zero_pad_factor: usize,
    window: Window,
) -> (Vec<f64>, Vec<f64>) {
    assert!(!rcs.is_empty() && u_max > 0.0 && zero_pad_factor >= 1);
    let mean = rcs.iter().sum::<f64>() / rcs.len().as_f64();
    let mut centred: Vec<f64> = rcs.iter().map(|&r| r - mean).collect();
    window.apply(&mut centred);

    let n_fft = (rcs.len() * zero_pad_factor).next_power_of_two();
    let spec = spectrum_padded(&centred, n_fft);
    let mags = magnitudes(&spec);

    // Frequency axis: bin b ↔ b/(span of u) cycles per u; a spacing s
    // produces 2s/λ cycles per u ⇒ s = bin·λ/(2·span·...)
    let span_u = 2.0 * u_max;
    let half = mags.len() / 2;
    let mut spacings = Vec::with_capacity(half);
    let mut out = Vec::with_capacity(half);
    for (b, &m) in mags.iter().take(half).enumerate() {
        // The FFT assumes unit sample spacing; sample i corresponds to
        // u-step span_u/(len−1). Frequency of bin b in cycles/sample:
        // b/n_fft ⇒ cycles per u: b/n_fft·(len−1)/span_u.
        let cycles_per_u = b.as_f64() / mags.len().as_f64() * (rcs.len() - 1).as_f64() / span_u;
        spacings.push(cycles_per_u * lambda_m / 2.0);
        out.push(m);
    }
    (spacings, out)
}

/// Scratch-buffer twin of [`rcs_spectrum_windowed`]: identical
/// `(spacings, mags)` written into the output buffers via a
/// precomputed window table and FFT plan (the plan must be sized for
/// `(rcs.len() · zero_pad_factor).next_power_of_two()`).
/// Allocation-free once the buffers have grown to capacity.
#[allow(clippy::too_many_arguments)]
// lint: hot-path
pub fn rcs_spectrum_windowed_into(
    rcs: &[f64],
    u_max: f64,
    lambda_m: f64,
    zero_pad_factor: usize,
    table: &WindowTable,
    plan: &FftPlan,
    centred: &mut Vec<f64>,
    work: &mut Vec<Complex64>,
    spacings: &mut Vec<f64>,
    mags: &mut Vec<f64>,
) {
    assert!(!rcs.is_empty() && u_max > 0.0 && zero_pad_factor >= 1);
    let n_fft = (rcs.len() * zero_pad_factor).next_power_of_two();
    assert_eq!(
        plan.len(),
        n_fft,
        "FFT plan sized for the wrong zero-padded length"
    );
    let mean = rcs.iter().sum::<f64>() / rcs.len().as_f64();
    centred.clear();
    for &r in rcs {
        centred.push(r - mean);
    }
    table.taper(centred);

    work.clear();
    for &x in centred.iter() {
        work.push(Complex64::real(x));
    }
    work.resize(n_fft, Complex64::ZERO);
    plan.process_forward(work);

    let span_u = 2.0 * u_max;
    let half = n_fft / 2;
    spacings.clear();
    mags.clear();
    for (b, c) in work.iter().take(half).enumerate() {
        let cycles_per_u = b.as_f64() / n_fft.as_f64() * (rcs.len() - 1).as_f64() / span_u;
        spacings.push(cycles_per_u * lambda_m / 2.0);
        mags.push(c.abs());
    }
}

/// The chirp-Z arc parameters `(w, a)` that [`rcs_spectrum_czt`]'s
/// zoom transform evaluates for an `rcs_len`-point input and `n_bins`
/// output bins over `[0, max_spacing_m]` — exactly the expressions
/// `ros_dsp::czt::zoom_spectrum` computes, so a `CztPlan` resolved
/// with these parameters is bit-identical to the direct path.
pub fn czt_zoom_params(
    rcs_len: usize,
    u_max: f64,
    lambda_m: f64,
    max_spacing_m: f64,
    n_bins: usize,
) -> (Complex64, Complex64) {
    let span_u = 2.0 * u_max;
    let cycles_per_sample_per_m = 2.0 / lambda_m * span_u / (rcs_len - 1).as_f64();
    let f_end = max_spacing_m * cycles_per_sample_per_m;
    let df = (f_end - 0.0) / (n_bins - 1).as_f64();
    let a = Complex64::cis(std::f64::consts::TAU * 0.0);
    let w = Complex64::cis(-std::f64::consts::TAU * df);
    (w, a)
}

/// Scratch-buffer twin of [`rcs_spectrum_czt`]: identical `(spacings,
/// mags)` via a precomputed window table and a [`CztPlan`] resolved
/// from [`czt_zoom_params`]. Allocation-free once the buffers have
/// grown to capacity.
#[allow(clippy::too_many_arguments)]
// lint: hot-path
pub fn rcs_spectrum_czt_into(
    rcs: &[f64],
    max_spacing_m: f64,
    table: &WindowTable,
    plan: &CztPlan,
    centred: &mut Vec<f64>,
    czt_in: &mut Vec<Complex64>,
    work: &mut Vec<Complex64>,
    czt_out: &mut Vec<Complex64>,
    spacings: &mut Vec<f64>,
    mags: &mut Vec<f64>,
) {
    assert!(!rcs.is_empty());
    let n_bins = plan.output_len();
    assert!(n_bins >= 2, "CZT plan must produce at least two bins");
    assert_eq!(plan.input_len(), rcs.len(), "CZT plan input length mismatch");
    let mean = rcs.iter().sum::<f64>() / rcs.len().as_f64();
    centred.clear();
    for &r in rcs {
        centred.push(r - mean);
    }
    table.taper(centred);

    czt_in.clear();
    for &v in centred.iter() {
        czt_in.push(Complex64::real(v));
    }
    plan.process(czt_in, work, czt_out);

    spacings.clear();
    mags.clear();
    for (i, c) in czt_out.iter().enumerate() {
        spacings.push(max_spacing_m * i.as_f64() / (n_bins - 1).as_f64());
        mags.push(c.abs());
    }
}

/// The RCS frequency spectrum evaluated with the chirp-Z transform:
/// fine bins over `[0, max_spacing_m]` only, instead of zero-padding
/// the whole axis. Output format matches [`rcs_spectrum`].
///
/// The zoom evaluates exactly the band the decoder inspects, so it
/// reaches the same resolution as a `zero_pad`-ed FFT at a fraction of
/// the transform length.
pub fn rcs_spectrum_czt(
    rcs: &[f64],
    u_max: f64,
    lambda_m: f64,
    max_spacing_m: f64,
    n_bins: usize,
    window: Window,
) -> (Vec<f64>, Vec<f64>) {
    assert!(!rcs.is_empty() && u_max > 0.0 && n_bins >= 2);
    let mean = rcs.iter().sum::<f64>() / rcs.len().as_f64();
    let mut centred: Vec<f64> = rcs.iter().map(|&r| r - mean).collect();
    window.apply(&mut centred);

    // Spacing s ↔ frequency 2s/λ cycles per u ↔ cycles/sample via the
    // grid step span_u/(len−1).
    let span_u = 2.0 * u_max;
    let cycles_per_sample_per_m = 2.0 / lambda_m * span_u / (rcs.len() - 1).as_f64();
    let f_end = max_spacing_m * cycles_per_sample_per_m;
    let spec = ros_dsp::czt::zoom_spectrum(&centred, 0.0, f_end, n_bins);

    let mut spacings = Vec::with_capacity(n_bins);
    let mut mags = Vec::with_capacity(n_bins);
    for (i, c) in spec.iter().enumerate() {
        spacings.push(max_spacing_m * i.as_f64() / (n_bins - 1).as_f64());
        mags.push(c.abs());
    }
    (spacings, mags)
}

/// Finds the spectrum magnitude at (nearest to) a target spacing.
pub fn magnitude_at_spacing(spacings_m: &[f64], mags: &[f64], target_m: f64) -> f64 {
    assert_eq!(spacings_m.len(), mags.len());
    if spacings_m.is_empty() {
        return 0.0;
    }
    let mut best = 0usize;
    let mut best_err = f64::INFINITY;
    for (i, &s) in spacings_m.iter().enumerate() {
        let e = (s - target_m).abs();
        if e < best_err {
            best_err = e;
            best = i;
        }
    }
    mags[best]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_em::constants::LAMBDA_CENTER_M;

    const LAM: f64 = LAMBDA_CENTER_M;

    fn paper_positions() -> Vec<f64> {
        [0.0, 6.0, -7.5, 9.0, -10.5]
            .iter()
            .map(|x| x * LAM)
            .collect()
    }

    #[test]
    fn factor_peak_at_broadside() {
        let pos = paper_positions();
        // u = 0: all stacks in phase → M².
        assert!((multi_stack_factor(&pos, 0.0, LAM) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn factor_matches_cosine_expansion() {
        // Eq. 6: M + 2·Σ cos(4πΔd·u/λ).
        let pos = paper_positions();
        let u = 0.137;
        let m = pos.len() as f64;
        let mut expansion = m;
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                expansion +=
                    2.0 * (2.0 * std::f64::consts::TAU * (pos[i] - pos[j]) * u / LAM).cos();
            }
        }
        let direct = multi_stack_factor(&pos, u, LAM);
        assert!((direct - expansion).abs() < 1e-9);
    }

    #[test]
    fn spectrum_shows_four_coding_peaks() {
        // Fig. 10c: peaks at 6, 7.5, 9, 10.5 λ.
        let pos = paper_positions();
        let rcs = sample_rcs_factor(&pos, LAM, 1.0, 512);
        let (spacings, mags) = rcs_spectrum(&rcs, 1.0, LAM, 8);
        let peak_floor = mags.iter().cloned().fold(0.0, f64::max) / 10.0;
        for slot in [6.0, 7.5, 9.0, 10.5] {
            let m = magnitude_at_spacing(&spacings, &mags, slot * LAM);
            assert!(
                m > peak_floor,
                "coding peak at {slot}λ missing: {m} vs floor {peak_floor}"
            );
        }
        // A non-slot position inside the band stays low.
        let null = magnitude_at_spacing(&spacings, &mags, 6.75 * LAM);
        let peak = magnitude_at_spacing(&spacings, &mags, 6.0 * LAM);
        assert!(null < peak / 3.0, "null {null} vs peak {peak}");
    }

    #[test]
    fn spectrum_zero_bits_have_no_peaks() {
        // Tag "1010": slots 2 (7.5λ) and 4 (10.5λ) empty.
        let pos: Vec<f64> = [0.0, 6.0, 9.0].iter().map(|x| x * LAM).collect();
        let rcs = sample_rcs_factor(&pos, LAM, 1.0, 512);
        let (spacings, mags) = rcs_spectrum(&rcs, 1.0, LAM, 8);
        let p6 = magnitude_at_spacing(&spacings, &mags, 6.0 * LAM);
        let p75 = magnitude_at_spacing(&spacings, &mags, 7.5 * LAM);
        let p9 = magnitude_at_spacing(&spacings, &mags, 9.0 * LAM);
        let p105 = magnitude_at_spacing(&spacings, &mags, 10.5 * LAM);
        assert!(p6 > 4.0 * p75, "bit-1 slot 6λ {p6} vs bit-0 slot 7.5λ {p75}");
        assert!(p9 > 4.0 * p105);
    }

    #[test]
    fn secondary_peak_at_3lambda_outside_band() {
        // Same-side stacks (6λ, 9λ) create a secondary at 3λ — below
        // the 6λ band edge, never inside it.
        let pos = paper_positions();
        let rcs = sample_rcs_factor(&pos, LAM, 1.0, 512);
        let (spacings, mags) = rcs_spectrum(&rcs, 1.0, LAM, 8);
        let p3 = magnitude_at_spacing(&spacings, &mags, 3.0 * LAM);
        let peak_floor = mags.iter().cloned().fold(0.0, f64::max) / 10.0;
        assert!(p3 > peak_floor, "secondary at 3λ should exist");
    }

    #[test]
    fn resolution_improves_with_span() {
        // §5.1: u ∈ [−1, 1] gives λ/4 spacing resolution; halving the
        // span halves the resolution. Verify two stacks λ/2 apart are
        // resolved at full span.
        let pos = vec![0.0, 0.5 * LAM];
        let rcs = sample_rcs_factor(&pos, LAM, 1.0, 512);
        let (spacings, mags) = rcs_spectrum(&rcs, 1.0, LAM, 8);
        let p = magnitude_at_spacing(&spacings, &mags, 0.5 * LAM);
        let dc_adjacent = magnitude_at_spacing(&spacings, &mags, 0.05 * LAM);
        assert!(p > dc_adjacent, "λ/2 spacing unresolved");
        let _ = dc_adjacent;
    }

    #[test]
    fn czt_spectrum_matches_fft_spectrum() {
        let pos = paper_positions();
        let rcs = sample_rcs_factor(&pos, LAM, 1.0, 512);
        let (s_fft, m_fft) = rcs_spectrum(&rcs, 1.0, LAM, 8);
        let (s_czt, m_czt) =
            rcs_spectrum_czt(&rcs, 1.0, LAM, 25.0 * LAM, 1024, Window::Hann);
        // Compare coding-peak amplitudes between the two spectra.
        for slot in [6.0, 7.5, 9.0, 10.5] {
            let a = magnitude_at_spacing(&s_fft, &m_fft, slot * LAM);
            let b = magnitude_at_spacing(&s_czt, &m_czt, slot * LAM);
            assert!(
                (a - b).abs() < 0.05 * a.max(b),
                "slot {slot}λ: fft {a} vs czt {b}"
            );
        }
    }

    #[test]
    fn windowed_into_bit_identical_to_direct() {
        let pos = paper_positions();
        let rcs = sample_rcs_factor(&pos, LAM, 1.0, 200);
        let zero_pad = 4;
        let n_fft = (rcs.len() * zero_pad).next_power_of_two();
        let plan = FftPlan::new(n_fft);
        let table = WindowTable::new(Window::Hamming, rcs.len());
        let (mut centred, mut work) = (Vec::new(), Vec::new());
        let (mut spacings, mut mags) = (Vec::new(), Vec::new());
        // Twice through the same buffers (first run leaves them dirty).
        for _ in 0..2 {
            rcs_spectrum_windowed_into(
                &rcs,
                1.0,
                LAM,
                zero_pad,
                &table,
                &plan,
                &mut centred,
                &mut work,
                &mut spacings,
                &mut mags,
            );
            let (want_s, want_m) =
                rcs_spectrum_windowed(&rcs, 1.0, LAM, zero_pad, Window::Hamming);
            assert_eq!(spacings.len(), want_s.len());
            assert_eq!(mags.len(), want_m.len());
            for (a, b) in spacings.iter().zip(&want_s) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in mags.iter().zip(&want_m) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn czt_into_bit_identical_to_direct() {
        let pos = paper_positions();
        // Non-power-of-two trace length to exercise the CZT fully.
        let rcs = sample_rcs_factor(&pos, LAM, 1.0, 171);
        let max_spacing = 25.0 * LAM;
        let n_bins = 300;
        let (w, a) = czt_zoom_params(rcs.len(), 1.0, LAM, max_spacing, n_bins);
        let plan = CztPlan::new(rcs.len(), n_bins, w, a);
        let table = WindowTable::new(Window::Hann, rcs.len());
        let mut centred = Vec::new();
        let (mut czt_in, mut work, mut czt_out) = (Vec::new(), Vec::new(), Vec::new());
        let (mut spacings, mut mags) = (Vec::new(), Vec::new());
        for _ in 0..2 {
            rcs_spectrum_czt_into(
                &rcs,
                max_spacing,
                &table,
                &plan,
                &mut centred,
                &mut czt_in,
                &mut work,
                &mut czt_out,
                &mut spacings,
                &mut mags,
            );
            let (want_s, want_m) =
                rcs_spectrum_czt(&rcs, 1.0, LAM, max_spacing, n_bins, Window::Hann);
            assert_eq!(spacings.len(), want_s.len());
            assert_eq!(mags.len(), want_m.len());
            for (x, y) in spacings.iter().zip(&want_s) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in mags.iter().zip(&want_m) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn empty_band_for_reference_only_tag() {
        let pos = vec![0.0];
        let rcs = sample_rcs_factor(&pos, LAM, 1.0, 256);
        // Constant trace: spectrum ≈ 0 after mean removal.
        let (_, mags) = rcs_spectrum(&rcs, 1.0, LAM, 4);
        assert!(mags.iter().all(|&m| m < 1e-9));
    }
}
