//! The end-to-end drive-by reader.
//!
//! Ties everything together the way the paper's field experiments do
//! (§6–§7): a vehicle-mounted radar drives past a roadside tag, detects
//! it among clutter, spotlights it every frame, and decodes the bits.
//!
//! Two fidelity levels:
//!
//! * [`ReaderMode::Fast`] — per frame, the spotlight RSS is computed
//!   directly from the scene echoes plus calibrated receiver noise.
//!   Physically equivalent to the full pipeline when the tag is range-
//!   isolated (the spotlight's single-bin DFT rejects everything else),
//!   and ~100× cheaper. Used for parameter sweeps.
//! * [`ReaderMode::FullPipeline`] — every strided frame is synthesized
//!   at the IF level in both Tx modes; detection runs the §6 point-
//!   cloud → DBSCAN → two-feature flow; decoding spotlights the
//!   *detected* cluster centre. Used for the Fig. 11/13 experiments
//!   and integration tests.

use crate::decode::{decode_into, DecodeResult, DecodeScratch, DecoderConfig, RssSample};
use crate::detector::{pick_tag, score_clusters, DetectorConfig, ScoredCluster};
use crate::tag::Tag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ros_dsp::window::{Window, WindowTable};
use ros_em::jones::Polarization;
use ros_em::units::cast::AsF64;
use ros_em::{Complex64, Vec3};
use ros_fault::{BurstDraw, CorruptionMode, FaultPlan, FaultSchedule, FrameFaults};
use ros_radar::echo::{Echo, Pose};
use ros_radar::impairments::saturate_frame;
use ros_radar::pointcloud::{PointCloud, RadarPoint};
use ros_radar::processing::DetectScratch;
use ros_radar::radar::{CaptureScratch, FmcwRadar, RadarMode};
use ros_scene::objects::ClutterObject;
use ros_scene::reflector::{EchoContext, Reflector};
use ros_scene::tracking::TrackingError;
use ros_scene::trajectory::{LateralProfile, ManoeuvreTrajectory, Trajectory};
use ros_scene::weather::FogLevel;

/// Simulation fidelity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReaderMode {
    /// Direct spotlight-RSS synthesis (fast, for sweeps).
    Fast,
    /// Full IF-level pipeline with detection.
    FullPipeline,
}

/// Reader configuration.
#[derive(Clone, Debug)]
pub struct ReaderConfig {
    /// Fidelity level.
    pub mode: ReaderMode,
    /// Keep every `stride`-th frame of the 1 kHz stream for decoding.
    pub frame_stride: usize,
    /// Keep every `detect_stride`-th *decoding* frame for the detection
    /// point cloud (full pipeline only).
    pub detect_stride: usize,
    /// Decoder settings.
    pub decoder: DecoderConfig,
    /// Detector settings (full pipeline only).
    pub detector: DetectorConfig,
}

impl ReaderConfig {
    /// Fast-mode defaults for parameter sweeps.
    pub fn fast() -> Self {
        ReaderConfig {
            mode: ReaderMode::Fast,
            frame_stride: 4,
            detect_stride: 5,
            decoder: DecoderConfig::default(),
            detector: DetectorConfig::default(),
        }
    }

    /// Full-pipeline defaults.
    pub fn full() -> Self {
        ReaderConfig {
            mode: ReaderMode::FullPipeline,
            ..Self::fast()
        }
    }
}

/// A drive-by scenario.
#[derive(Clone, Debug)]
pub struct DriveBy {
    /// The tag under test (mounted by this builder).
    pub tag: Tag,
    /// Additional tags (multi-tag experiments, Fig. 16a).
    pub extra_tags: Vec<Tag>,
    /// Roadside clutter (full-pipeline scenes, Fig. 11/13).
    pub clutter: Vec<ClutterObject>,
    /// Lateral radar–tag standoff \[m\].
    pub standoff_m: f64,
    /// Vehicle speed \[m/s\].
    pub speed_mps: f64,
    /// Pass half-span along the road \[m\].
    pub half_span_m: f64,
    /// Radar height \[m\] (tag centre height is the tag mount's z).
    pub radar_height_m: f64,
    /// Weather.
    pub fog: FogLevel,
    /// Tracking-error model.
    pub tracking: TrackingError,
    /// Extra interference noise over the thermal floor \[dB\]
    /// (adjacent-radar experiments, Fig. 16b).
    pub interference_db: f64,
    /// RNG seed.
    pub seed: u64,
    /// Radar instance.
    pub radar: FmcwRadar,
    /// Lateral manoeuvre profile of the pass (default: straight).
    pub lateral: LateralProfile,
    /// Two-ray ground-bounce coefficient (`None` = flat-earth off).
    pub ground_coeff: Option<f64>,
    /// Transient blockage events (passing traffic occluding the tag).
    pub blockages: Vec<Blockage>,
    /// Deterministic fault-injection plan (`None` = clean run). The
    /// plan is realized against the pass's frame timeline with
    /// [`FaultPlan::schedule`] — drawn serially, so any plan is
    /// bit-identical at every thread count.
    pub faults: Option<FaultPlan>,
}

/// A transient line-of-sight blockage (§7.3: "detection and decoding
/// of a RoS tag fails when it is fully blocked by another vehicle"):
/// between `t_start_s` and `t_end_s` of the pass, the tag's echoes are
/// attenuated by `attenuation_db` (∞-like values for metal blockage).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Blockage {
    /// Blockage onset \[s\] into the pass.
    pub t_start_s: f64,
    /// Blockage end \[s\].
    pub t_end_s: f64,
    /// Two-way attenuation while blocked \[dB\].
    pub attenuation_db: f64,
}

impl DriveBy {
    /// A standard cart pass: tag mounted at `standoff_m` from the
    /// radar lane at matched height (1 m), vehicle at 2 m/s, ±4 m span.
    pub fn new(tag: Tag, standoff_m: f64) -> Self {
        let mounted = tag.mounted_at(Vec3::new(0.0, standoff_m, 1.0));
        DriveBy {
            tag: mounted,
            extra_tags: Vec::new(),
            clutter: Vec::new(),
            standoff_m,
            speed_mps: 2.0,
            half_span_m: 4.0,
            radar_height_m: 1.0,
            fog: FogLevel::Clear,
            tracking: TrackingError::none(),
            interference_db: 0.0,
            seed: 0xd21e,
            radar: FmcwRadar::ti_eval(),
            lateral: LateralProfile::Straight,
            ground_coeff: None,
            blockages: Vec::new(),
            faults: None,
        }
    }

    /// Adds a transient blockage event.
    pub fn with_blockage(mut self, b: Blockage) -> Self {
        self.blockages.push(b);
        self
    }

    /// Attaches a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables the two-ray ground-bounce model.
    pub fn with_ground(mut self, coeff: f64) -> Self {
        self.ground_coeff = Some(coeff);
        self
    }

    /// Sets the lateral manoeuvre profile (lane change, curve).
    pub fn with_lateral(mut self, profile: LateralProfile) -> Self {
        self.lateral = profile;
        self
    }

    /// Sets the vehicle speed \[m/s\].
    pub fn with_speed(mut self, mps: f64) -> Self {
        self.speed_mps = mps;
        self
    }

    /// Sets the radar height \[m\].
    pub fn with_radar_height(mut self, h: f64) -> Self {
        self.radar_height_m = h;
        self
    }

    /// Sets the weather.
    pub fn with_fog(mut self, fog: FogLevel) -> Self {
        self.fog = fog;
        self
    }

    /// Sets the tracking-error model.
    pub fn with_tracking(mut self, t: TrackingError) -> Self {
        self.tracking = t;
        self
    }

    /// Adds a clutter object.
    pub fn with_clutter(mut self, c: ClutterObject) -> Self {
        self.clutter.push(c);
        self
    }

    /// Populates the roadside from a scene preset (clutter placed
    /// relative to this drive-by's standoff).
    pub fn with_scene(mut self, preset: ros_scene::scenario::ScenePreset, seed: u64) -> Self {
        self.clutter.extend(preset.build(self.standoff_m, seed));
        self
    }

    /// Adds a second tag.
    pub fn with_extra_tag(mut self, t: Tag) -> Self {
        self.extra_tags.push(t);
        self
    }

    /// Sets interference noise over the floor \[dB\].
    pub fn with_interference_db(mut self, db: f64) -> Self {
        self.interference_db = db;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub(crate) fn context(&self) -> EchoContext {
        EchoContext {
            budget: self.radar.budget,
            fog: self.fog,
            ground_coeff: self.ground_coeff,
        }
    }

    fn all_reflectors(&self) -> Vec<&dyn Reflector> {
        let mut v: Vec<&dyn Reflector> = vec![&self.tag];
        for t in &self.extra_tags {
            v.push(t);
        }
        for c in &self.clutter {
            v.push(c);
        }
        v
    }

    /// Runs the scenario.
    pub fn run(&self, cfg: &ReaderConfig) -> Outcome {
        match cfg.mode {
            ReaderMode::Fast => self.run_fast(cfg),
            ReaderMode::FullPipeline => self.run_full(cfg),
        }
    }

    /// Ground-truth radar track for this scenario.
    pub fn track(&self, cfg: &ReaderConfig) -> (Vec<f64>, Vec<Vec3>, Vec<Vec3>) {
        let base = Trajectory::drive_by(self.speed_mps, self.half_span_m, self.radar_height_m);
        let traj = ManoeuvreTrajectory::new(base, self.lateral);
        let times = base.frame_times(self.radar.chirp.frame_rate_hz, cfg.frame_stride);
        let truth = traj.positions(&times);
        let believed = self.tracking.apply(&truth);
        (times, truth, believed)
    }

    pub(crate) fn noise_sigma(&self) -> f64 {
        let floor_dbm = self.radar.noise_floor_dbm() + self.interference_db;
        ros_em::db::db_to_lin(floor_dbm) / std::f64::consts::SQRT_2
    }

    /// Realizes the fault plan (if any) against a frame timeline and
    /// displaces the believed track by the scheduled tracking spikes.
    fn fault_schedule(&self, times: &[f64], believed: &mut [Vec3]) -> Option<FaultSchedule> {
        let schedule = self.faults.as_ref().map(|p| p.schedule(times))?;
        ros_scene::tracking::apply_spikes(
            believed,
            schedule
                .spikes()
                .map(|(i, s)| (i, Vec3::new(s.dx_m, s.dy_m, 0.0))),
        );
        Some(schedule)
    }

    fn run_fast(&self, cfg: &ReaderConfig) -> Outcome {
        let _span = ros_obs::span("reader.run_fast");
        let (times, truth, mut believed) = self.track(cfg);
        let schedule = self.fault_schedule(&times, &mut believed);
        let ctx = self.context();
        let (tx, rx) = RadarMode::PolarizationSwitched.polarizations(self.radar.array.native_pol);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sigma = self.noise_sigma();
        let spot = SpotlightModel::new(&self.radar);

        // Anchor the decode centre the way detection would: the tag
        // centre estimate is consistent with the *believed* track, so a
        // constant tracking offset cancels (the §6 pipeline estimates
        // the centre from the same drifted point cloud).
        let mut best_i = 0;
        let mut best_d = f64::INFINITY;
        for (i, p) in truth.iter().enumerate() {
            let d = p.distance(self.tag.mount());
            if d < best_d {
                best_d = d;
                best_i = i;
            }
        }
        let center_est = self.tag.mount() + (believed[best_i] - truth[best_i]);

        // Per-frame deterministic spotlight RSS fans out over worker
        // threads; receiver noise is then added serially in frame
        // order so the RNG stream (two draws per frame) is consumed
        // exactly as the historical serial loop did — the output is
        // bit-identical at any thread count.
        let frame_jobs: Vec<(f64, Vec3)> = times.iter().copied().zip(truth.iter().copied()).collect();
        let clean_rss: Vec<Complex64> = ros_exec::par_map(&frame_jobs, |&(t, pos_true)| {
            self.fast_clean_rss(t, pos_true, tx, rx, &ctx, &spot)
        });

        let mut samples = Vec::with_capacity(truth.len());
        let mut frame_verdicts = Vec::new();
        let mut degraded = 0usize;
        for (i, (rss_clean, pos_believed)) in clean_rss.into_iter().zip(&believed).enumerate() {
            let ff = match &schedule {
                Some(sch) => *sch.get(i),
                None => FrameFaults::clean(),
            };
            let rss = fast_frame_rss(rss_clean, i, &mut rng, sigma, &ff);
            if !ff.is_clean() {
                degraded += 1;
                ff.record(0);
            }
            if schedule.is_some() {
                frame_verdicts.push(FrameVerdict::from_faults(i, &ff, 0));
            }
            if ff.dropped {
                continue;
            }
            let s = RssSample {
                radar_pos: *pos_believed,
                rss,
            };
            samples.push(s);
            if ff.duplicated {
                samples.push(s);
            }
        }
        if degraded > 0 {
            ros_obs::count("reader.frames_degraded", degraded);
        }
        ros_obs::count("reader.frames", samples.len());
        if ros_obs::detail() {
            for (i, s) in samples.iter().enumerate() {
                let rss_dbm = 10.0 * s.rss.norm_sqr().max(1e-300).log10();
                ros_obs::event_detail(
                    "reader.frame",
                    &[("i", i.into()), ("rss_dbm", rss_dbm.into())],
                );
            }
        }

        let mut decode_scratch = DecodeScratch::new();
        let mut dec = DecodeResult::default();
        let decode_result = decode_into(
            &samples,
            center_est,
            0.0,
            self.tag.code(),
            &cfg.decoder,
            &mut decode_scratch,
            &mut dec,
        )
        .map(|()| dec);
        let mut outcome = Outcome::from_parts(samples, decode_result, None, Vec::new());
        outcome.frame_verdicts = frame_verdicts;
        ros_obs::event(
            "reader.pass",
            &[
                ("mode", "fast".into()),
                ("frames", outcome.rss_trace.len().into()),
                ("decoded", outcome.decode.is_ok().into()),
                ("verdict", outcome.verdict.name().into()),
            ],
        );
        outcome
    }

    fn run_full(&self, cfg: &ReaderConfig) -> Outcome {
        let _span = ros_obs::span("reader.run_full");
        let (times, truth, mut believed) = self.track(cfg);
        let schedule = self.fault_schedule(&times, &mut believed);
        let ctx = self.context();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xf011);
        let native = RadarMode::Native.polarizations(self.radar.array.native_pol);
        let switched =
            RadarMode::PolarizationSwitched.polarizations(self.radar.array.native_pol);

        // Capture both Tx modes per decoding frame. Jobs are laid out
        // in the exact order the serial loop would consume the RNG
        // (switched frame `i`, then — every `detect_stride` frames —
        // the matching native frame), so `capture_batch`'s serial
        // RNG pre-draw keeps the stream bit-identical while the IF
        // synthesis itself runs on worker threads.
        let mut jobs: Vec<(Pose, Vec<Echo>)> = Vec::with_capacity(truth.len() * 2);
        {
            let _gather = ros_obs::span("reader.gather_echoes");
            for (i, pos_true) in truth.iter().enumerate() {
                let pose_true = Pose::side_looking(*pos_true);
                // An interference burst is one extra strong scatterer in
                // this frame's scene — both Tx modes of the frame see it,
                // exactly as a co-channel radar in the field would.
                let burst = schedule
                    .as_ref()
                    .and_then(|sch| sch.get(i).burst.as_ref())
                    .map(|b| self.burst_echo(&pose_true, b));
                let mut sw_echoes = self.gather_echoes(*pos_true, switched.0, switched.1, &ctx);
                if let Some(e) = &burst {
                    sw_echoes.push(*e);
                }
                jobs.push((pose_true, sw_echoes));
                if i % cfg.detect_stride == 0 {
                    let mut nat_echoes =
                        self.gather_echoes(*pos_true, native.0, native.1, &ctx);
                    if let Some(e) = &burst {
                        nat_echoes.push(*e);
                    }
                    jobs.push((pose_true, nat_echoes));
                }
            }
        }
        let mut capture_scratch = CaptureScratch::default();
        let mut captured = Vec::new();
        self.radar
            .capture_batch_with(&jobs, &mut rng, &mut capture_scratch, &mut captured);
        let mut frames = captured.into_iter();
        let mut switched_frames = Vec::with_capacity(truth.len());
        let mut native_frames = Vec::new();
        for (i, pos_believed) in believed.iter().enumerate() {
            let Some(frame) = frames.next() else { break };
            switched_frames.push((frame, *pos_believed));
            if i % cfg.detect_stride == 0 {
                let Some(frame_nat) = frames.next() else { break };
                native_frames.push((frame_nat, *pos_believed));
            }
        }

        // ADC saturation clips the captured IF frames in place — both
        // the decode (switched) frame and, where one exists, the paired
        // native frame of the same pass index.
        if let Some(sch) = &schedule {
            for (i, (frame, _)) in switched_frames.iter_mut().enumerate() {
                if let Some(fs) = sch.get(i).saturation {
                    saturate_frame(frame, fs);
                }
            }
            for (j, (frame, _)) in native_frames.iter_mut().enumerate() {
                if let Some(fs) = sch.get(j * cfg.detect_stride).saturation {
                    saturate_frame(frame, fs);
                }
            }
        }

        // Detection cloud from the native-mode frames (detection is a
        // pure per-frame function, so the fan-out changes nothing).
        // One detect arena per worker keeps the FFT plan and every
        // intermediate buffer warm across the frames a worker handles.
        // Dropped frames never reach the cloud; corrupted ones have
        // their returns mangled (NaN/∞/outlier range) *before* DBSCAN,
        // which the hardened clustering must absorb.
        let mut cloud = PointCloud::new();
        let mut corrupted_points = vec![0usize; switched_frames.len()];
        {
            let _detect = ros_obs::span("reader.detect");
            let workers = ros_exec::threads().max(1).min(native_frames.len().max(1));
            let mut detect_scratches = vec![DetectScratch::default(); workers];
            let mut detections: Vec<Vec<RadarPoint>> = vec![Vec::new(); native_frames.len()];
            ros_exec::par_for_each_mut(
                &mut detect_scratches,
                &mut detections,
                |scratch, j, pts| {
                    self.radar.detect_with(&native_frames[j].0, scratch, pts);
                },
            );
            for (j, ((_, pos_believed), pts)) in
                native_frames.iter().zip(&detections).enumerate()
            {
                let idx = j * cfg.detect_stride;
                let ff = match &schedule {
                    Some(sch) => *sch.get(idx),
                    None => FrameFaults::clean(),
                };
                if ff.dropped {
                    continue;
                }
                let pose = Pose::side_looking(*pos_believed);
                if let Some(c) = &ff.corruption {
                    let mut mangled = pts.clone();
                    for (k, p) in mangled.iter_mut().enumerate() {
                        match c.mode {
                            CorruptionMode::NaN => p.range_m = f64::NAN,
                            CorruptionMode::Inf => {
                                p.range_m = f64::INFINITY;
                                p.power_mw = f64::INFINITY;
                            }
                            CorruptionMode::Outlier { offset_m } => {
                                // lint: allow-cast(point index, lossless widening)
                                p.range_m += (2.0 * c.unit(k as u64) - 1.0) * offset_m;
                            }
                        }
                    }
                    if idx < corrupted_points.len() {
                        corrupted_points[idx] = mangled.len();
                    }
                    cloud.add_frame(&mangled, &pose);
                } else {
                    cloud.add_frame(pts, &pose);
                }
            }
        }
        ros_obs::gauge("reader.cloud_points", cloud.len().as_f64());

        // One serial bookkeeping pass per frame: fault counters and the
        // per-frame verdicts the outcome reports.
        let mut frame_verdicts = Vec::new();
        if let Some(sch) = &schedule {
            let mut degraded = 0usize;
            for i in 0..switched_frames.len() {
                let ff = sch.get(i);
                let cp = corrupted_points[i];
                if !ff.is_clean() {
                    degraded += 1;
                    ff.record(cp);
                }
                frame_verdicts.push(FrameVerdict::from_faults(i, ff, cp));
            }
            if degraded > 0 {
                ros_obs::count("reader.frames_degraded", degraded);
            }
        }

        // Score clusters; the RSS probe spotlights the candidate centre
        // across the pass in both modes, skipping frames where another
        // cluster occupies the same range–azimuth cell (its energy
        // would leak into the spotlight and corrupt the loss feature).
        // Every spotlight in this run shares one precomputed Hann
        // table (all frames have the chirp's sample count).
        let spot_table = WindowTable::new(Window::Hann, self.radar.chirp.n_samples);
        let range_res = self.radar.chirp.range_resolution_m();
        let h = self.radar_height_m;
        let clusters = score_clusters(&cloud, &cfg.detector, |members, center2d, others2d| {
            // Cluster centroids live on the road plane; objects (and
            // the radar) sit at the radar height.
            let center = Vec3::new(center2d.x, center2d.y, h);
            let others: Vec<Vec3> = others2d
                .iter()
                .map(|o| Vec3::new(o.x, o.y, h))
                .collect();
            let clear_of_neighbours = |pose_pos: Vec3| -> bool {
                let p = Pose::side_looking(pose_pos);
                let rc = p.range_to(center);
                let uc = p.azimuth_to(center).sin();
                others.iter().all(|o| {
                    let ro = p.range_to(*o);
                    let uo = p.azimuth_to(*o).sin();
                    (rc - ro).abs() > 3.0 * range_res || (uc - uo).abs() > 0.45
                })
            };
            // The loss feature comes from matched per-frame pairs: the
            // native and switched captures at the *same pose* measure
            // the same scatterers through the same spotlight window, so
            // spotlight coverage and geometry bias cancel in the
            // difference. Frames where another cluster shares the
            // range–azimuth cell are skipped.
            let _ = members;
            // Frames with a weak native return would push the switched
            // measurement under the noise floor and clip the loss, so
            // only strong frames contribute to the pair statistics.
            let floor = self.radar.noise_floor_dbm();
            let min_native = floor + 18.0;
            let mut nat = Vec::new();
            let mut losses = Vec::new();
            for (j, (frame_nat, _)) in native_frames.iter().enumerate() {
                if !clear_of_neighbours(frame_nat.pose.pos) {
                    continue;
                }
                let idx = j * cfg.detect_stride;
                // A dropped frame contributes neither half of the pair.
                if let Some(sch) = &schedule {
                    if sch.get(idx).dropped {
                        continue;
                    }
                }
                let Some((frame_sw, _)) = switched_frames.get(idx) else {
                    break;
                };
                let n_dbm = 10.0
                    * self
                        .radar
                        .spotlight_with(frame_nat, center, &spot_table)
                        .norm_sqr()
                        .max(1e-300)
                        .log10();
                if n_dbm < min_native {
                    continue;
                }
                let s_dbm = 10.0
                    * self
                        .radar
                        .spotlight_with(frame_sw, center, &spot_table)
                        .norm_sqr()
                        .max(1e-300)
                        .log10();
                nat.push(n_dbm);
                losses.push(n_dbm - s_dbm);
            }
            let native = ros_dsp::stats::median(&nat);
            let loss = ros_dsp::stats::median(&losses);
            (native, native - loss)
        });

        let tag_center = pick_tag(&clusters).map(|c| {
            Vec3::new(
                c.features.center.x,
                c.features.center.y,
                self.radar_height_m,
            )
        });

        // Decode by spotlighting the detected centre (fall back to the
        // true mount if detection failed, flagged in the outcome).
        let spot = tag_center.unwrap_or(self.tag.mount());
        let samples: Vec<RssSample> = {
            let _spotlight = ros_obs::span("reader.spotlight");
            let raw = ros_exec::par_map(&switched_frames, |(frame, pos_believed)| RssSample {
                radar_pos: *pos_believed,
                rss: self.radar.spotlight_with(frame, spot, &spot_table),
            });
            apply_stream_faults(raw, schedule.as_ref())
        };
        ros_obs::count("reader.frames", samples.len());

        // One decode arena for the pass: the main decode and every
        // per-cluster decode share the same plans and buffers.
        let mut decode_scratch = DecodeScratch::new();
        let mut dec = DecodeResult::default();
        let decode_result = decode_into(
            &samples,
            spot,
            0.0,
            self.tag.code(),
            &cfg.decoder,
            &mut decode_scratch,
            &mut dec,
        )
        .map(|()| dec.clone());

        // Decode every tag-classified cluster independently (multi-tag
        // advertising boards, §5.3).
        let mut all_tags = Vec::new();
        for c in clusters.iter().filter(|c| c.is_tag) {
            let center = Vec3::new(
                c.features.center.x,
                c.features.center.y,
                self.radar_height_m,
            );
            let trace: Vec<RssSample> = switched_frames
                .iter()
                .map(|(frame, pos_believed)| RssSample {
                    radar_pos: *pos_believed,
                    rss: self.radar.spotlight_with(frame, center, &spot_table),
                })
                .collect();
            let trace = apply_stream_faults(trace, schedule.as_ref());
            if decode_into(
                &trace,
                center,
                0.0,
                self.tag.code(),
                &cfg.decoder,
                &mut decode_scratch,
                &mut dec,
            )
            .is_ok()
            {
                all_tags.push(DecodedTag {
                    center,
                    decode: dec.clone(),
                });
            }
        }

        let mut outcome = Outcome::from_parts(samples, decode_result, tag_center, clusters);
        outcome.all_tags = all_tags;
        outcome.frame_verdicts = frame_verdicts;
        // Detection failure is a degraded pass even when the true-mount
        // fallback happened to decode: the reader would not have known
        // where to point in the field.
        if outcome.detected_center.is_none() {
            outcome.verdict = PassVerdict::NoTag;
        }
        ros_obs::event(
            "reader.pass",
            &[
                ("mode", "full".into()),
                ("frames", outcome.rss_trace.len().into()),
                ("clusters", outcome.clusters.len().into()),
                ("detected", outcome.detected_center.is_some().into()),
                ("decoded", outcome.decode.is_ok().into()),
                ("verdict", outcome.verdict.name().into()),
            ],
        );
        outcome
    }

    /// Materializes one frame's interference burst as an extra echo:
    /// a strong scatterer at a burst-drawn range/azimuth whose
    /// per-sample amplitude sits `excess_db` above the thermal floor.
    fn burst_echo(&self, pose: &Pose, b: &BurstDraw) -> Echo {
        let range = 1.0 + 5.0 * b.unit(0);
        let az = (b.unit(1) - 0.5) * 1.4;
        let pos = pose.pos + Vec3::new(range * az.sin(), range * az.cos(), 0.0);
        let amp = ros_em::db::db_to_lin(self.radar.noise_floor_dbm() + b.excess_db);
        let phase = std::f64::consts::TAU * b.unit(2);
        Echo::new(pos, Complex64::from_polar(amp, phase))
    }

    fn gather_echoes(
        &self,
        radar_pos: Vec3,
        tx: Polarization,
        rx: Polarization,
        ctx: &EchoContext,
    ) -> Vec<Echo> {
        let mut echoes = Vec::new();
        for refl in self.all_reflectors() {
            for e in refl.echoes(radar_pos, tx, rx, ctx) {
                echoes.push(Echo::new(e.pos, e.amp));
            }
        }
        echoes
    }
}

/// Fast-mode spotlight selectivity parameters, mirrored from the full
/// pipeline: a single-bin DFT at the tag's beat frequency plus a
/// 4-antenna beamformer. Echoes away from the spotlighted
/// range/azimuth are attenuated by the corresponding Dirichlet
/// kernels. Extracted from `run_fast` so the streaming
/// [`crate::stream::DriveBySource`] evaluates the identical
/// expression (bit-for-bit) one frame at a time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SpotlightModel {
    n_fft: usize,
    n_rx: usize,
    slope: f64,
    fs: f64,
    lambda: f64,
    rx_spacing_m: f64,
}

impl SpotlightModel {
    /// Captures the spotlight parameters of `radar`.
    pub(crate) fn new(radar: &FmcwRadar) -> Self {
        SpotlightModel {
            n_fft: radar.chirp.n_samples,
            n_rx: radar.array.n_rx,
            slope: radar.chirp.slope_hz_per_s,
            fs: radar.chirp.sample_rate_hz,
            lambda: radar.chirp.wavelength_m(),
            rx_spacing_m: radar.array.rx_spacing_m,
        }
    }

    /// Combined range × azimuth spotlight gate for an echo at `e_pos`
    /// while the radar at `pose` spotlights `target`.
    fn gain(&self, pose: Vec3, e_pos: Vec3, target: Vec3) -> f64 {
        let p = Pose::side_looking(pose);
        let dr = p.range_to(e_pos) - p.range_to(target);
        let df = 2.0 * self.slope * dr / ros_em::constants::C;
        let g_range = ros_em::special::dirichlet(std::f64::consts::TAU * df / self.fs, self.n_fft);
        let du = p.azimuth_to(e_pos).sin() - p.azimuth_to(target).sin();
        let g_az = ros_em::special::dirichlet(
            std::f64::consts::TAU * self.rx_spacing_m * du / self.lambda,
            self.n_rx,
        );
        (g_range * g_az).abs()
    }
}

impl DriveBy {
    /// One frame's clean (noise-free, fault-free) fast-mode spotlight
    /// RSS at time `t`, true radar position `pos_true`. Shared by
    /// `run_fast`'s parallel fan-out and the streaming source — both
    /// paths call this exact function, so their RSS values are
    /// bit-identical by construction.
    pub(crate) fn fast_clean_rss(
        &self,
        t: f64,
        pos_true: Vec3,
        tx: Polarization,
        rx: Polarization,
        ctx: &EchoContext,
        spot: &SpotlightModel,
    ) -> Complex64 {
        let block_amp = self
            .blockages
            .iter()
            .filter(|b| t >= b.t_start_s && t <= b.t_end_s)
            .map(|b| ros_em::db::db_to_lin(-b.attenuation_db))
            .fold(1.0, f64::min);
        let mut rss = Complex64::ZERO;
        for refl in self.all_reflectors() {
            for e in refl.echoes(pos_true, tx, rx, ctx) {
                let az = Pose::side_looking(pos_true).azimuth_to(e.pos);
                let g = ros_radar::frontend::radar_pattern(az);
                let gate = spot.gain(pos_true, e.pos, self.tag.mount());
                rss += e.amp * (g * g * gate * block_amp);
            }
        }
        rss
    }
}

/// Receiver noise + per-frame signal faults for one fast-mode frame.
/// Noise is drawn for every frame — faulted or not, dropped or not —
/// so the RNG stream stays aligned with the clean run and a zero-rate
/// plan is bit-identical to no plan at all. Shared by `run_fast` and
/// the streaming source; the draw order (noise, burst, saturation) is
/// part of the bit-compatibility contract.
pub(crate) fn fast_frame_rss(
    rss_clean: Complex64,
    i: usize,
    rng: &mut StdRng,
    sigma: f64,
    ff: &FrameFaults,
) -> Complex64 {
    let mut rss = rss_clean + Complex64::new(gauss(rng) * sigma, gauss(rng) * sigma);
    if let Some(b) = &ff.burst {
        let sigma_b = sigma * ros_em::db::db_to_lin(b.excess_db);
        // lint: allow-cast(frame index, lossless widening)
        let (g_re, g_im) = b.gaussian_pair(i as u64);
        rss += Complex64::new(g_re * sigma_b, g_im * sigma_b);
    }
    if let Some(fs) = ff.saturation {
        rss = Complex64::new(rss.re.clamp(-fs, fs), rss.im.clamp(-fs, fs));
    }
    rss
}

/// Applies frame-stream faults to a per-frame spotlight trace:
/// dropped frames vanish, duplicated ones appear twice. With no
/// schedule the trace passes through untouched.
fn apply_stream_faults(raw: Vec<RssSample>, schedule: Option<&FaultSchedule>) -> Vec<RssSample> {
    let Some(sch) = schedule else {
        return raw;
    };
    let mut out = Vec::with_capacity(raw.len());
    for (i, s) in raw.into_iter().enumerate() {
        let ff = sch.get(i);
        if ff.dropped {
            continue;
        }
        out.push(s);
        if ff.duplicated {
            out.push(s);
        }
    }
    out
}

/// Typed degradation verdict for one drive-by pass: the reader never
/// panics or leaks NaN under faults — it reports one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PassVerdict {
    /// Full decode, every slot trusted.
    Clean,
    /// Bits were produced but some slot amplitudes sat inside the
    /// erasure dead-zone around the decision threshold — resolved
    /// count and erased slot indices attached.
    PartialDecode {
        /// Slots decoded outside the erasure band.
        bits_resolved: usize,
        /// Slot indices flagged as erasures.
        erasures: Vec<usize>,
    },
    /// No tag: detection failed or decoding returned a typed error.
    NoTag,
}

impl PassVerdict {
    /// Derives the pass verdict from a decode outcome — the single
    /// source of truth for degradation classification (the [`Outcome`]
    /// constructor and the streaming reader both go through here).
    ///
    /// Erasure indices are sanitized at this boundary: sorted, deduped,
    /// and bounds-checked against the bit count. Under composite fault
    /// storms an upstream producer can hand over aliased or
    /// out-of-range indices, and the historical
    /// `bits.len() - erasures.len()` arithmetic then over-counted the
    /// erased slots (under-counting `bits_resolved`, even below zero
    /// but for the saturating clamp). After sanitizing, the
    /// subtraction is exact.
    pub fn from_decode(decode: Result<&DecodeResult, &crate::decode::DecodeError>) -> Self {
        let Ok(d) = decode else {
            return PassVerdict::NoTag;
        };
        let mut erasures: Vec<usize> = d
            .erasures
            .iter()
            .copied()
            .filter(|&i| i < d.bits.len())
            .collect();
        erasures.sort_unstable();
        erasures.dedup();
        if erasures.is_empty() {
            PassVerdict::Clean
        } else {
            PassVerdict::PartialDecode {
                bits_resolved: d.bits.len() - erasures.len(),
                erasures,
            }
        }
    }

    /// Stable lowercase label (observability payloads, bench CSV).
    pub fn name(&self) -> &'static str {
        match self {
            PassVerdict::Clean => "clean",
            PassVerdict::PartialDecode { .. } => "partial_decode",
            PassVerdict::NoTag => "no_tag",
        }
    }

    /// Anything other than a clean full decode.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, PassVerdict::Clean)
    }
}

/// Per-frame fault exposure of one pass (populated only when a fault
/// plan was attached; indexed by decoding-frame number).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameVerdict {
    /// Decoding-frame index.
    pub index: usize,
    /// Frame was dropped from the decode stream.
    pub dropped: bool,
    /// Frame was duplicated in the decode stream.
    pub duplicated: bool,
    /// Frame's ADC output was clipped.
    pub saturated: bool,
    /// Frame carried an interference burst.
    pub jammed: bool,
    /// Point-cloud returns corrupted in this frame (full pipeline).
    pub corrupted_points: usize,
    /// Believed track displaced by a tracking spike.
    pub tracking_spiked: bool,
}

impl FrameVerdict {
    fn from_faults(index: usize, ff: &FrameFaults, corrupted_points: usize) -> Self {
        FrameVerdict {
            index,
            dropped: ff.dropped,
            duplicated: ff.duplicated,
            saturated: ff.saturation.is_some(),
            jammed: ff.burst.is_some(),
            corrupted_points,
            tracking_spiked: ff.spike.is_some(),
        }
    }

    /// True when this frame was touched by any fault.
    pub fn is_degraded(&self) -> bool {
        self.dropped
            || self.duplicated
            || self.saturated
            || self.jammed
            || self.corrupted_points > 0
            || self.tracking_spiked
    }
}

/// One decoded tag in a multi-tag scene.
#[derive(Clone, Debug)]
pub struct DecodedTag {
    /// Detected tag centre \[m\].
    pub center: Vec3,
    /// Decode result for this tag.
    pub decode: DecodeResult,
}

/// Result of a drive-by.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Decode outcome: full diagnostics on success, the typed decode
    /// error otherwise. A failed decode is *not* an empty read — the
    /// error is preserved here and [`Outcome::verdict`] reports
    /// [`PassVerdict::NoTag`].
    pub decode: Result<DecodeResult, crate::decode::DecodeError>,
    /// The detected tag centre (full pipeline; `None` in fast mode or
    /// when detection failed).
    pub detected_center: Option<Vec3>,
    /// All scored clusters (full pipeline).
    pub clusters: Vec<ScoredCluster>,
    /// The spotlight RSS trace used for decoding.
    pub rss_trace: Vec<RssSample>,
    /// Every tag-classified cluster decoded independently (full
    /// pipeline only; advertising-board scenes).
    pub all_tags: Vec<DecodedTag>,
    /// Typed degradation verdict of the pass.
    pub verdict: PassVerdict,
    /// Per-frame fault exposure (empty unless a fault plan was set).
    pub frame_verdicts: Vec<FrameVerdict>,
}

impl Outcome {
    fn from_parts(
        rss_trace: Vec<RssSample>,
        decode: Result<DecodeResult, crate::decode::DecodeError>,
        detected_center: Option<Vec3>,
        clusters: Vec<ScoredCluster>,
    ) -> Self {
        let verdict = PassVerdict::from_decode(decode.as_ref());
        Outcome {
            decode,
            detected_center,
            clusters,
            rss_trace,
            all_tags: Vec::new(),
            verdict,
            frame_verdicts: Vec::new(),
        }
    }

    /// The decoded bits, or `None` when decoding failed. Check
    /// [`Outcome::verdict`] to distinguish a trustworthy read from a
    /// partial one.
    pub fn decoded_bits(&self) -> Option<&[bool]> {
        self.decode.as_ref().ok().map(|d| d.bits.as_slice())
    }

    /// Lossy convenience view of the decoded bits: an empty slice when
    /// decoding failed. A legitimately empty read and a failed decode
    /// look identical here — [`Outcome::verdict`] (and
    /// [`Outcome::decoded_bits`]) are the source of truth; this exists
    /// for assertions and plotting where the distinction is irrelevant.
    pub fn bits(&self) -> &[bool] {
        self.decoded_bits().unwrap_or(&[])
    }

    /// Decoding SNR \[dB\], `None` when decoding failed.
    pub fn snr_db(&self) -> Option<f64> {
        self.decode.as_ref().ok().map(|d| d.snr_db())
    }

    /// Median spotlight RSS across the middle half of the pass \[dBm\].
    pub fn median_rss_dbm(&self) -> f64 {
        let n = self.rss_trace.len();
        if n == 0 {
            return f64::NEG_INFINITY;
        }
        let mid: Vec<f64> = self.rss_trace[n / 4..(3 * n / 4).max(n / 4 + 1)]
            .iter()
            .map(|s| 10.0 * s.rss.norm_sqr().max(1e-300).log10())
            .collect();
        ros_dsp::stats::median(&mid)
    }
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SpatialCode;

    fn tag8(bits: &[bool]) -> Tag {
        SpatialCode {
            rows_per_stack: 8,
            ..SpatialCode::paper_4bit()
        }
        .encode(bits)
        .unwrap()
    }

    #[test]
    fn fast_mode_decodes_all_ones() {
        let outcome = DriveBy::new(tag8(&[true; 4]), 2.0).run(&ReaderConfig::fast());
        assert_eq!(outcome.bits(), vec![true; 4]);
        assert!(outcome.snr_db().unwrap() > 10.0);
    }

    #[test]
    fn fast_mode_decodes_mixed_bits() {
        for bits in [[true, false, true, true], [false, true, true, false]] {
            let outcome = DriveBy::new(tag8(&bits), 2.0)
                .with_seed(7)
                .run(&ReaderConfig::fast());
            assert_eq!(outcome.bits(), &bits);
        }
    }

    #[test]
    fn rss_decreases_with_standoff() {
        let near = DriveBy::new(tag8(&[true; 4]), 2.0).run(&ReaderConfig::fast());
        let far = DriveBy::new(tag8(&[true; 4]), 4.0).run(&ReaderConfig::fast());
        assert!(
            near.median_rss_dbm() > far.median_rss_dbm() + 5.0,
            "near {} far {}",
            near.median_rss_dbm(),
            far.median_rss_dbm()
        );
    }

    #[test]
    fn tracking_error_degrades_snr() {
        let clean = DriveBy::new(tag8(&[true; 4]), 2.0).run(&ReaderConfig::fast());
        let drifty = DriveBy::new(tag8(&[true; 4]), 2.0)
            .with_tracking(TrackingError::drift(0.10))
            .run(&ReaderConfig::fast());
        let s_clean = clean.snr_db().unwrap();
        let s_drift = drifty.snr_db().unwrap_or(0.0);
        assert!(
            s_clean > s_drift,
            "clean {s_clean} dB vs 10% drift {s_drift} dB"
        );
    }

    #[test]
    fn interference_raises_floor_and_lowers_snr() {
        let quiet = DriveBy::new(tag8(&[true; 4]), 2.0).run(&ReaderConfig::fast());
        let noisy = DriveBy::new(tag8(&[true; 4]), 2.0)
            .with_interference_db(15.0)
            .run(&ReaderConfig::fast());
        assert!(quiet.snr_db().unwrap() > noisy.snr_db().unwrap_or(0.0));
    }
}
