//! The road-sign semantic layer.
//!
//! Fig. 1 of the paper shows the point of it all: *"Coding Bit 1111 →
//! Traffic Light Ahead!"*. This module maps 4-bit RoS codewords to the
//! road-sign meanings an ITS deployment would standardize, giving
//! applications a typed vocabulary instead of raw bit vectors.
//!
//! The assignment reserves codeword 0 (all slots empty — physically
//! undetectable, §5.2) and orders the rest so that single-bit errors
//! between *critical* signs (Stop, WrongWay) and benign ones are
//! minimized where possible.

use crate::encode::{EncodeError, SpatialCode};
use crate::tag::Tag;

/// Road-sign meanings for the 4-bit codebook.
///
/// ```
/// use ros_core::signpost::RoadSign;
/// // The paper's Fig. 1: bits 1111 mean "traffic light ahead".
/// let sign = RoadSign::from_bits(&[true, true, true, true]).unwrap();
/// assert_eq!(sign, RoadSign::TrafficLightAhead);
/// assert_eq!(sign.name(), "TRAFFIC LIGHT AHEAD");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoadSign {
    /// Stop ahead.
    Stop,
    /// Yield / give way.
    Yield,
    /// Traffic light ahead (the paper's Fig. 1 example).
    TrafficLightAhead,
    /// Pedestrian crossing.
    PedestrianCrossing,
    /// School zone.
    SchoolZone,
    /// Speed limit 25 (residential).
    SpeedLimit25,
    /// Speed limit 45 (arterial).
    SpeedLimit45,
    /// Speed limit 65 (highway).
    SpeedLimit65,
    /// Sharp curve left.
    CurveLeft,
    /// Sharp curve right.
    CurveRight,
    /// Merge ahead.
    Merge,
    /// Lane ends.
    LaneEnds,
    /// Road work.
    RoadWork,
    /// Railroad crossing.
    RailroadCrossing,
    /// Wrong way / do not enter.
    WrongWay,
}

impl RoadSign {
    /// Every assigned sign, in codeword order (codewords 1..=15).
    pub const ALL: [RoadSign; 15] = [
        RoadSign::Stop,               // 0b0001
        RoadSign::Yield,              // 0b0010
        RoadSign::SpeedLimit25,       // 0b0011
        RoadSign::PedestrianCrossing, // 0b0100
        RoadSign::SpeedLimit45,       // 0b0101
        RoadSign::SchoolZone,         // 0b0110
        RoadSign::CurveLeft,          // 0b0111
        RoadSign::RailroadCrossing,   // 0b1000
        RoadSign::SpeedLimit65,       // 0b1001
        RoadSign::Merge,              // 0b1010
        RoadSign::CurveRight,         // 0b1011
        RoadSign::LaneEnds,           // 0b1100
        RoadSign::RoadWork,           // 0b1101
        RoadSign::WrongWay,           // 0b1110
        RoadSign::TrafficLightAhead,  // 0b1111 — the Fig. 1 example
    ];

    /// The 4-bit codeword (1..=15; 0 is reserved/undetectable).
    pub fn codeword(self) -> u8 {
        match RoadSign::ALL.iter().position(|&s| s == self) {
            Some(i) => u8::try_from(i + 1).unwrap_or(u8::MAX),
            // Unreachable: every variant appears in ALL.
            None => 0,
        }
    }

    /// Looks a sign up by codeword.
    pub fn from_codeword(word: u8) -> Option<RoadSign> {
        if (1..=15).contains(&word) {
            Some(RoadSign::ALL[usize::from(word - 1)])
        } else {
            None
        }
    }

    /// The codeword as a bit vector (slot order, LSB first).
    pub fn bits(self) -> [bool; 4] {
        let w = self.codeword();
        [w & 1 != 0, w & 2 != 0, w & 4 != 0, w & 8 != 0]
    }

    /// Decodes a bit vector back to a sign.
    pub fn from_bits(bits: &[bool]) -> Option<RoadSign> {
        if bits.len() != 4 {
            return None;
        }
        let mut w = 0u8;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                w |= 1 << i;
            }
        }
        RoadSign::from_codeword(w)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RoadSign::Stop => "STOP",
            RoadSign::Yield => "YIELD",
            RoadSign::TrafficLightAhead => "TRAFFIC LIGHT AHEAD",
            RoadSign::PedestrianCrossing => "PEDESTRIAN CROSSING",
            RoadSign::SchoolZone => "SCHOOL ZONE",
            RoadSign::SpeedLimit25 => "SPEED LIMIT 25",
            RoadSign::SpeedLimit45 => "SPEED LIMIT 45",
            RoadSign::SpeedLimit65 => "SPEED LIMIT 65",
            RoadSign::CurveLeft => "CURVE LEFT",
            RoadSign::CurveRight => "CURVE RIGHT",
            RoadSign::Merge => "MERGE",
            RoadSign::LaneEnds => "LANE ENDS",
            RoadSign::RoadWork => "ROAD WORK",
            RoadSign::RailroadCrossing => "RAILROAD CROSSING",
            RoadSign::WrongWay => "WRONG WAY",
        }
    }

    /// Whether a missed or corrupted reading of this sign is
    /// safety-critical (deployments should double up such tags, §7.3).
    pub fn is_critical(self) -> bool {
        matches!(
            self,
            RoadSign::Stop
                | RoadSign::WrongWay
                | RoadSign::RailroadCrossing
                | RoadSign::PedestrianCrossing
        )
    }

    /// Fabricates the tag for this sign with the paper's 4-bit code.
    pub fn fabricate(self) -> Result<Tag, EncodeError> {
        SpatialCode::paper_4bit().encode(&self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codewords_bijective() {
        for sign in RoadSign::ALL {
            let w = sign.codeword();
            assert_eq!(RoadSign::from_codeword(w), Some(sign));
            assert_eq!(RoadSign::from_bits(&sign.bits()), Some(sign));
        }
    }

    #[test]
    fn codeword_zero_reserved() {
        assert_eq!(RoadSign::from_codeword(0), None);
        assert_eq!(RoadSign::from_codeword(16), None);
        assert_eq!(RoadSign::from_bits(&[false; 4]), None);
    }

    #[test]
    fn fig1_example_is_all_ones() {
        // The paper's Fig. 1: bits "1111" = traffic light ahead.
        assert_eq!(RoadSign::TrafficLightAhead.codeword(), 0b1111);
        assert_eq!(
            RoadSign::from_bits(&[true, true, true, true]),
            Some(RoadSign::TrafficLightAhead)
        );
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = RoadSign::ALL.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn fabricated_tag_carries_the_codeword() {
        let tag = RoadSign::SchoolZone.fabricate().unwrap();
        assert_eq!(tag.bits(), RoadSign::SchoolZone.bits());
    }

    #[test]
    fn critical_signs_flagged() {
        assert!(RoadSign::Stop.is_critical());
        assert!(!RoadSign::SpeedLimit45.is_critical());
    }

    #[test]
    fn over_the_air_sign_roundtrip() {
        use crate::reader::{DriveBy, ReaderConfig};
        for sign in [RoadSign::Stop, RoadSign::TrafficLightAhead, RoadSign::Merge] {
            let code = SpatialCode {
                rows_per_stack: 8,
                ..SpatialCode::paper_4bit()
            };
            let tag = code.encode(&sign.bits()).unwrap();
            let outcome = DriveBy::new(tag, 2.5)
                .with_seed(sign.codeword() as u64)
                .run(&ReaderConfig::fast());
            let decoded = RoadSign::from_bits(&outcome.bits());
            assert_eq!(decoded, Some(sign), "{}", sign.name());
        }
    }
}
