//! Streaming frame ingestion for long-running reader services.
//!
//! [`DriveBy::run`](crate::reader::DriveBy::run) materializes a whole
//! pass — fine for sweeps, wrong for a fleet service watching an
//! arbitrarily long drive. This module splits the reader into a
//! producer/consumer pair with bounded memory on both sides:
//!
//! * [`FrameSource`] — a pull-based event iterator. A source yields
//!   [`StreamEvent`]s in chunks; nothing upstream ever holds more than
//!   one chunk of frames.
//! * [`StreamingReader`] — incremental decode state. It buffers only
//!   the *open* passes (frames between `PassStart` and `PassEnd`),
//!   decodes each pass the moment it closes via
//!   [`decode_into`](crate::decode::decode_into) with one reused
//!   scratch arena, and recycles the per-pass sample buffers through a
//!   free pool. Peak memory is `O(open passes × frames per pass)`,
//!   independent of drive length.
//!
//! ## Bit-compatibility contract
//!
//! [`DriveBySource`] streams the exact computation of
//! `DriveBy::run_fast`: the same `fast_clean_rss` spotlight expression,
//! the same serial receiver-noise RNG (two draws per frame, drawn even
//! for dropped frames), the same fault schedule realization, and the
//! same decode-centre anchoring. A [`SignRead`] produced by feeding a
//! `DriveBySource` through a `StreamingReader` carries bit-identical
//! bits and SNR to the `Outcome` of the equivalent batch run — at any
//! worker or thread count. `tests/serve_stream.rs` pins this.

use crate::decode::{
    decode_into, DecodeError, DecodeResult, DecodeScratch, DecoderConfig, RssSample,
};
use crate::encode::SpatialCode;
use crate::reader::{DriveBy, PassVerdict, ReaderConfig, SpotlightModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ros_em::jones::Polarization;
use ros_em::units::cast::AsF64;
use ros_em::{Vec3};
use ros_fault::{FaultSchedule, FrameFaults};
use ros_scene::reflector::EchoContext;
use ros_scene::tracking::TrackingStream;
use ros_scene::trajectory::{ManoeuvreTrajectory, Trajectory};
use std::collections::BTreeMap;

/// Globally unique pass identity inside a corridor run. The ordering
/// (derived lexicographically: radar, vehicle, tag, seq) defines the
/// canonical read-log order, which is how the service proves its
/// output is invariant under worker count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PassId {
    /// Roadside radar index.
    pub radar: u32,
    /// Vehicle index.
    pub vehicle: u32,
    /// Tag index along the corridor.
    pub tag: u32,
    /// Encounter sequence number (repeat passes of the same triple).
    pub seq: u32,
}

impl PassId {
    /// Compact `r/v/t/s` label for logs and metric payloads.
    pub fn label(&self) -> String {
        format!("r{}v{}t{}s{}", self.radar, self.vehicle, self.tag, self.seq)
    }
}

/// Everything the decoder needs to know about a pass, carried by
/// [`StreamEvent::PassStart`] so the consumer is stateless with
/// respect to scenario geometry.
#[derive(Clone, Copy, Debug)]
pub struct PassContext {
    /// Decode-centre estimate (believed-track anchored, see
    /// `DriveBy::run_fast`).
    pub center_est: Vec3,
    /// The tag's spatial code.
    pub code: SpatialCode,
    /// Tag axis yaw \[rad\] passed to the decoder.
    pub tag_axis_yaw: f64,
}

/// One event of a frame stream.
#[derive(Clone, Copy, Debug)]
pub enum StreamEvent {
    /// A pass opened; frames for `pass` follow.
    PassStart {
        /// Pass identity.
        pass: PassId,
        /// Decode parameters for the pass.
        ctx: PassContext,
    },
    /// One spotlight RSS frame of an open pass.
    Frame {
        /// Pass identity.
        pass: PassId,
        /// The believed-position + RSS sample.
        sample: RssSample,
    },
    /// The pass closed; its decode verdict can now be produced.
    PassEnd {
        /// Pass identity.
        pass: PassId,
    },
}

/// A decoded sign read: the streaming counterpart of
/// [`Outcome`](crate::reader::Outcome), carrying the typed verdict and
/// — unlike the historical flattened `bits` — the decode error when
/// decoding failed.
#[derive(Clone, Debug)]
pub struct SignRead {
    /// Which pass produced this read.
    pub pass: PassId,
    /// Typed degradation verdict (single source of truth, shared with
    /// the batch reader via [`PassVerdict::from_decode`]).
    pub verdict: PassVerdict,
    /// Decoded bits on success, `None` when decoding failed.
    pub bits: Option<Vec<bool>>,
    /// Decode SNR \[dB\] on success.
    pub snr_db: Option<f64>,
    /// The typed decode error when decoding failed.
    pub error: Option<DecodeError>,
    /// Number of frames the decode consumed.
    pub n_frames: usize,
}

impl SignRead {
    /// Canonical one-line textual form. SNR is rendered as the raw IEEE
    /// bit pattern so two logs compare bit-exactly — the corridor
    /// service's worker-count invariance proof string-compares these.
    pub fn log_line(&self) -> String {
        let bits = match &self.bits {
            Some(b) => b.iter().map(|&x| if x { '1' } else { '0' }).collect(),
            None => "-".to_string(),
        };
        let snr = match self.snr_db {
            Some(s) => format!("{:016x}", s.to_bits()),
            None => "-".to_string(),
        };
        let err = match &self.error {
            Some(e) => format!("{e}"),
            None => "-".to_string(),
        };
        format!(
            "{} verdict={} bits={} snr={} frames={} err={}",
            self.pass.label(),
            self.verdict.name(),
            bits,
            snr,
            self.n_frames,
            err
        )
    }
}

/// A pull-based producer of [`StreamEvent`]s.
///
/// `next_events` appends up to `max` events to `out` and returns
/// `false` once the stream is exhausted (nothing appended, nothing
/// ever again). Chunked pulling keeps the producer's working set
/// bounded regardless of drive length.
pub trait FrameSource {
    /// Appends up to `max` events to `out`; returns `false` when the
    /// stream is exhausted.
    fn next_events(&mut self, max: usize, out: &mut Vec<StreamEvent>) -> bool;
}

/// Per-open-pass buffer held by the streaming reader.
#[derive(Debug)]
struct OpenPass {
    ctx: PassContext,
    samples: Vec<RssSample>,
}

/// Incremental decode state: feed it [`StreamEvent`]s, collect
/// [`SignRead`]s. See the module docs for the memory model.
#[derive(Debug)]
pub struct StreamingReader {
    decoder: DecoderConfig,
    scratch: DecodeScratch,
    result: DecodeResult,
    open: BTreeMap<PassId, OpenPass>,
    pool: Vec<Vec<RssSample>>,
    buffered: usize,
    peak_open: usize,
    peak_buffered: usize,
    decodes: u64,
}

impl StreamingReader {
    /// A reader with the given decoder configuration. Scratch arenas
    /// (FFT plans, workspaces) are allocated once here and reused for
    /// every pass.
    pub fn new(decoder: DecoderConfig) -> Self {
        StreamingReader {
            decoder,
            scratch: DecodeScratch::new(),
            result: DecodeResult::default(),
            open: BTreeMap::new(),
            pool: Vec::new(),
            buffered: 0,
            peak_open: 0,
            peak_buffered: 0,
            decodes: 0,
        }
    }

    /// Ingests one event. Returns a [`SignRead`] when the event closed
    /// a pass (i.e. it was a `PassEnd` for a known pass). Frames for
    /// unknown passes are ignored — a source that never loses events
    /// never triggers that path.
    pub fn ingest(&mut self, ev: StreamEvent) -> Option<SignRead> {
        match ev {
            StreamEvent::PassStart { pass, ctx } => {
                let samples = self.pool.pop().unwrap_or_default();
                self.open.insert(pass, OpenPass { ctx, samples });
                self.peak_open = self.peak_open.max(self.open.len());
                None
            }
            StreamEvent::Frame { pass, sample } => {
                if let Some(p) = self.open.get_mut(&pass) {
                    p.samples.push(sample);
                    self.buffered += 1;
                    self.peak_buffered = self.peak_buffered.max(self.buffered);
                }
                None
            }
            StreamEvent::PassEnd { pass } => {
                let p = self.open.remove(&pass)?;
                Some(self.close(pass, p))
            }
        }
    }

    /// Closes every still-open pass (in canonical [`PassId`] order) and
    /// returns their reads. Call once the source is exhausted so a
    /// stream that ends mid-pass still yields a verdict per pass.
    pub fn finish(&mut self) -> Vec<SignRead> {
        let mut reads = Vec::with_capacity(self.open.len());
        while let Some((&pass, _)) = self.open.iter().next() {
            if let Some(p) = self.open.remove(&pass) {
                reads.push(self.close(pass, p));
            }
        }
        reads
    }

    fn close(&mut self, pass: PassId, mut p: OpenPass) -> SignRead {
        let n_frames = p.samples.len();
        self.buffered -= n_frames;
        let decode = decode_into(
            &p.samples,
            p.ctx.center_est,
            p.ctx.tag_axis_yaw,
            &p.ctx.code,
            &self.decoder,
            &mut self.scratch,
            &mut self.result,
        );
        self.decodes += 1;
        p.samples.clear();
        self.pool.push(p.samples);
        match decode {
            Ok(()) => SignRead {
                pass,
                verdict: PassVerdict::from_decode(Ok(&self.result)),
                bits: Some(self.result.bits.clone()),
                snr_db: Some(self.result.snr_db()),
                error: None,
                n_frames,
            },
            Err(e) => SignRead {
                pass,
                verdict: PassVerdict::from_decode(Err(&e)),
                bits: None,
                snr_db: None,
                error: Some(e),
                n_frames,
            },
        }
    }

    /// Frames currently buffered across all open passes.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// High-water mark of simultaneously open passes.
    pub fn peak_open(&self) -> usize {
        self.peak_open
    }

    /// High-water mark of buffered frames — the number a memory bound
    /// should be asserted against.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Total passes decoded so far.
    pub fn decodes(&self) -> u64 {
        self.decodes
    }
}

/// Phase of a [`DriveBySource`]'s event emission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SourcePhase {
    Start,
    Frames,
    End,
    Done,
}

/// Streams one [`DriveBy`] pass as [`StreamEvent`]s, frame by frame,
/// in O(1) memory per frame (the fault schedule, when a plan is
/// attached, is the one O(n)-per-pass allocation — identical to the
/// batch reader's).
///
/// The emitted frame stream matches `DriveBy::run_fast` bit for bit:
/// same spotlight RSS, same receiver-noise RNG consumption (noise is
/// drawn for dropped frames too), same believed-track perturbation,
/// same decode-centre anchor. See the module docs for the contract.
pub struct DriveBySource {
    drive: DriveBy,
    pass: PassId,
    ctx_pass: PassContext,
    // Frame timeline: index i ∈ {0, stride, 2·stride, …} ≤ n_last.
    rate_hz: f64,
    stride: usize,
    n_last: usize,
    i: usize,
    traj: ManoeuvreTrajectory,
    schedule: Option<FaultSchedule>,
    // Per-frame state shared with run_fast's serial loop.
    echo_ctx: EchoContext,
    spot: SpotlightModel,
    tx: Polarization,
    rx: Polarization,
    sigma: f64,
    rng: StdRng,
    tracking: TrackingStream,
    frame_no: usize,
    phase: SourcePhase,
}

impl DriveBySource {
    /// Prepares the streaming pass. Runs an O(1)-memory prepass over
    /// the frame timeline to anchor the decode centre exactly as
    /// `run_fast` does (closest-approach frame of the *truth* track,
    /// offset by the believed-track error at that frame), then rewinds
    /// for streaming.
    pub fn new(drive: DriveBy, cfg: &ReaderConfig, pass: PassId) -> Self {
        let base = Trajectory::drive_by(drive.speed_mps, drive.half_span_m, drive.radar_height_m);
        let traj = ManoeuvreTrajectory::new(base, drive.lateral);
        let rate_hz = drive.radar.chirp.frame_rate_hz;
        let stride = cfg.frame_stride.max(1);
        let n_last = ros_em::units::cast::floor_usize(base.duration_s * rate_hz);

        // Fault plans are realized against the materialized timeline —
        // one Vec<f64> per pass, exactly like the batch reader.
        let schedule = drive.faults.as_ref().map(|p| {
            let times: Vec<f64> = (0..=n_last)
                .step_by(stride)
                .map(|i| i.as_f64() / rate_hz)
                .collect();
            p.schedule(&times)
        });

        // Prepass: walk the timeline once with a throwaway tracking
        // stream to find the closest-approach anchor and the believed
        // offset there. Frame positions are O(1) recomputable, so no
        // track is materialized.
        let mut prepass_tracking = TrackingStream::new(drive.tracking);
        let mut best_d = f64::INFINITY;
        let mut offset = Vec3::ZERO;
        for (j, i) in (0..=n_last).step_by(stride).enumerate() {
            let t = i.as_f64() / rate_hz;
            let truth = traj.position_at(t);
            let mut believed = prepass_tracking.advance(truth);
            if let Some(sch) = &schedule {
                if let Some(s) = sch.get(j).spike {
                    believed += Vec3::new(s.dx_m, s.dy_m, 0.0);
                }
            }
            let d = truth.distance(drive.tag.mount());
            if d < best_d {
                best_d = d;
                offset = believed - truth;
            }
        }
        let ctx_pass = PassContext {
            center_est: drive.tag.mount() + offset,
            code: *drive.tag.code(),
            tag_axis_yaw: 0.0,
        };

        let echo_ctx = drive.context();
        let (tx, rx) = ros_radar::radar::RadarMode::PolarizationSwitched
            .polarizations(drive.radar.array.native_pol);
        let sigma = drive.noise_sigma();
        let spot = SpotlightModel::new(&drive.radar);
        let rng = StdRng::seed_from_u64(drive.seed);
        let tracking = TrackingStream::new(drive.tracking);
        DriveBySource {
            drive,
            pass,
            ctx_pass,
            rate_hz,
            stride,
            n_last,
            i: 0,
            traj,
            schedule,
            echo_ctx,
            spot,
            tx,
            rx,
            sigma,
            rng,
            tracking,
            frame_no: 0,
            phase: SourcePhase::Start,
        }
    }

    /// Total decoding frames on the timeline (before drop/duplicate
    /// faults reshape the emitted stream).
    pub fn n_frames(&self) -> usize {
        self.n_last / self.stride + 1
    }
}

impl FrameSource for DriveBySource {
    fn next_events(&mut self, max: usize, out: &mut Vec<StreamEvent>) -> bool {
        let mut emitted = 0usize;
        while emitted < max {
            match self.phase {
                SourcePhase::Start => {
                    out.push(StreamEvent::PassStart {
                        pass: self.pass,
                        ctx: self.ctx_pass,
                    });
                    emitted += 1;
                    self.phase = SourcePhase::Frames;
                }
                SourcePhase::Frames => {
                    if self.i > self.n_last {
                        self.phase = SourcePhase::End;
                        continue;
                    }
                    // A duplicated frame emits two events; reserve room
                    // so a chunk boundary never splits the RNG draw
                    // from its emission.
                    if max - emitted < 2 {
                        return true;
                    }
                    let t = self.i.as_f64() / self.rate_hz;
                    let truth = self.traj.position_at(t);
                    let mut believed = self.tracking.advance(truth);
                    let ff = match &self.schedule {
                        Some(sch) => *sch.get(self.frame_no),
                        None => FrameFaults::clean(),
                    };
                    if let Some(s) = ff.spike {
                        believed += Vec3::new(s.dx_m, s.dy_m, 0.0);
                    }
                    let rss_clean = self.drive.fast_clean_rss(
                        t,
                        truth,
                        self.tx,
                        self.rx,
                        &self.echo_ctx,
                        &self.spot,
                    );
                    let rss = crate::reader::fast_frame_rss(
                        rss_clean,
                        self.frame_no,
                        &mut self.rng,
                        self.sigma,
                        &ff,
                    );
                    self.i += self.stride;
                    self.frame_no += 1;
                    if ff.dropped {
                        continue;
                    }
                    let sample = RssSample {
                        radar_pos: believed,
                        rss,
                    };
                    out.push(StreamEvent::Frame {
                        pass: self.pass,
                        sample,
                    });
                    emitted += 1;
                    if ff.duplicated {
                        out.push(StreamEvent::Frame {
                            pass: self.pass,
                            sample,
                        });
                        emitted += 1;
                    }
                }
                SourcePhase::End => {
                    out.push(StreamEvent::PassEnd { pass: self.pass });
                    emitted += 1;
                    self.phase = SourcePhase::Done;
                }
                SourcePhase::Done => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SpatialCode;
    use crate::reader::ReaderConfig;
    use crate::tag::Tag;

    fn tag8(bits: &[bool]) -> Tag {
        SpatialCode {
            rows_per_stack: 8,
            ..SpatialCode::paper_4bit()
        }
        .encode(bits)
        .unwrap()
    }

    fn pid() -> PassId {
        PassId {
            radar: 0,
            vehicle: 0,
            tag: 0,
            seq: 0,
        }
    }

    fn stream_read(drive: &DriveBy, cfg: &ReaderConfig, chunk: usize) -> SignRead {
        let mut src = DriveBySource::new(drive.clone(), cfg, pid());
        let mut reader = StreamingReader::new(cfg.decoder);
        let mut events = Vec::new();
        let mut read = None;
        loop {
            events.clear();
            let more = src.next_events(chunk, &mut events);
            for ev in events.drain(..) {
                if let Some(r) = reader.ingest(ev) {
                    read = Some(r);
                }
            }
            if !more {
                break;
            }
        }
        read.unwrap_or_else(|| reader.finish().pop().expect("one pass"))
    }

    #[test]
    fn streaming_matches_batch_bitwise() {
        let cfg = ReaderConfig::fast();
        let drive = DriveBy::new(tag8(&[true, false, true, true]), 2.0).with_seed(42);
        let batch = drive.run(&cfg);
        for chunk in [2, 7, 64, 100_000] {
            let read = stream_read(&drive, &cfg, chunk);
            assert_eq!(read.bits.as_deref(), batch.decoded_bits(), "chunk {chunk}");
            assert_eq!(
                read.snr_db.map(f64::to_bits),
                batch.snr_db().map(f64::to_bits),
                "chunk {chunk}"
            );
            assert_eq!(read.verdict, batch.verdict, "chunk {chunk}");
            assert_eq!(read.n_frames, batch.rss_trace.len(), "chunk {chunk}");
        }
    }

    #[test]
    fn streaming_matches_batch_under_faults() {
        use ros_fault::{FaultKind, FaultPlan};
        let cfg = ReaderConfig::fast();
        let drive = DriveBy::new(tag8(&[true, true, false, true]), 2.5)
            .with_seed(9)
            .with_tracking(ros_scene::tracking::TrackingError {
                drift: 0.03,
                jitter_m: 0.01,
                seed: 4,
            })
            .with_faults(
                FaultPlan::new(77)
                    .with(FaultKind::FrameDrop, 0.08)
                    .with(FaultKind::FrameDuplicate, 0.05)
                    .with(FaultKind::InterferenceBurst { excess_db: 12.0 }, 0.04)
                    .with(FaultKind::TrackingSpike { magnitude_m: 0.4 }, 0.03),
            );
        let batch = drive.run(&cfg);
        let read = stream_read(&drive, &cfg, 33);
        assert_eq!(read.bits.as_deref(), batch.decoded_bits());
        assert_eq!(
            read.snr_db.map(f64::to_bits),
            batch.snr_db().map(f64::to_bits)
        );
        assert_eq!(read.verdict, batch.verdict);
        assert_eq!(read.n_frames, batch.rss_trace.len());
    }

    #[test]
    fn reader_bounds_memory_and_recycles() {
        let cfg = ReaderConfig::fast();
        let mut reader = StreamingReader::new(cfg.decoder);
        for round in 0..3u32 {
            let drive = DriveBy::new(tag8(&[true; 4]), 2.0).with_seed(u64::from(round));
            let mut src = DriveBySource::new(
                drive,
                &cfg,
                PassId {
                    seq: round,
                    ..pid()
                },
            );
            let mut events = Vec::new();
            while src.next_events(64, &mut events) {}
            for ev in events.drain(..) {
                reader.ingest(ev);
            }
        }
        assert_eq!(reader.decodes(), 3);
        assert_eq!(reader.buffered(), 0, "all pass buffers returned");
        assert_eq!(reader.peak_open(), 1, "sequential passes never overlap");
    }

    #[test]
    fn finish_closes_truncated_pass() {
        let cfg = ReaderConfig::fast();
        let drive = DriveBy::new(tag8(&[true; 4]), 2.0);
        let mut src = DriveBySource::new(drive, &cfg, pid());
        let mut reader = StreamingReader::new(cfg.decoder);
        let mut events = Vec::new();
        src.next_events(10, &mut events); // start + a few frames, no end
        for ev in events.drain(..) {
            assert!(reader.ingest(ev).is_none());
        }
        let reads = reader.finish();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].pass, pid());
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn failed_decode_surfaces_error_not_empty_bits() {
        let cfg = ReaderConfig::fast();
        let mut reader = StreamingReader::new(cfg.decoder);
        let ctx = PassContext {
            center_est: Vec3::new(0.0, 2.0, 1.0),
            code: SpatialCode::paper_4bit(),
            tag_axis_yaw: 0.0,
        };
        reader.ingest(StreamEvent::PassStart { pass: pid(), ctx });
        // Two samples: far below any decoder minimum.
        for _ in 0..2 {
            reader.ingest(StreamEvent::Frame {
                pass: pid(),
                sample: RssSample {
                    radar_pos: Vec3::ZERO,
                    rss: ros_em::Complex64::ZERO,
                },
            });
        }
        let read = reader
            .ingest(StreamEvent::PassEnd { pass: pid() })
            .expect("pass closed");
        assert_eq!(read.verdict, PassVerdict::NoTag);
        assert!(read.bits.is_none(), "no flattened empty-bits read");
        assert!(read.error.is_some(), "typed decode error surfaced");
        assert!(read.log_line().contains("verdict=no_tag"));
    }
}
