//! The physical RoS tag: PSVAA stacks placed by a spatial code.
//!
//! A [`Tag`] owns its stack layout (horizontal positions relative to
//! the reference stack) and the per-stack [`PsvaaStack`] geometry. It
//! implements the scene's [`Reflector`] trait by exporting every PSVAA
//! row as a point scatterer with the full antenna physics — azimuth
//! retro-response, elevation pattern, beam-shaping phase weights — so
//! near-field effects emerge from the exact spherical-wave sum rather
//! than a far-field formula.

use crate::encode::SpatialCode;
use ros_antenna::shaping;
use ros_antenna::stack::PsvaaStack;
use ros_antenna::vaa::{ArrayKind, VanAttaArray};
use ros_cache::GeomCache;
use ros_em::jones::Polarization;
use ros_em::units::cast::{self, AsF64};
use ros_em::{Complex64, Vec3};
use ros_scene::reflector::{EchoContext, Reflector, SceneEcho};
use std::sync::Arc;

/// One mounted PSVAA stack of a tag.
#[derive(Clone, Debug)]
pub struct TagStack {
    /// Horizontal position relative to the reference stack \[m\].
    pub x_m: f64,
    /// The stack geometry (row count may differ per stack for ASK
    /// modulation, §8).
    pub stack: PsvaaStack,
}

/// A fabricated, mounted RoS tag.
#[derive(Clone, Debug)]
pub struct Tag {
    code: SpatialCode,
    /// Horizontal stack positions relative to the reference stack \[m\]
    /// (reference first) — cached from `stacks`.
    positions_m: Vec<f64>,
    bits: Vec<bool>,
    stacks: Vec<TagStack>,
    /// World position of the reference stack's centre.
    mount: Vec3,
    /// Tag boresight azimuth rotation from −y (0 = facing the road
    /// squarely) \[rad\].
    yaw: f64,
    /// Maximum column bow deflection \[m\] (§7.2 attributes the
    /// 32-row tags' extra RSS/SNR variation to "bending of long coding
    /// columns" and wind sway; 0 = perfectly rigid).
    bow_m: f64,
    /// Seed for the per-column bow realization.
    bow_seed: u64,
    /// Injected geometry/EM memo store; when present, per-frame
    /// scatterer exports read shared cached tables instead of
    /// recomputing (bit-identical either way). Never a global —
    /// attached explicitly from a composition root.
    cache: Option<GeomCache>,
}

impl Tag {
    /// Builds a tag from stack positions (used by
    /// [`SpatialCode::encode`]).
    pub fn new(code: SpatialCode, positions_m: Vec<f64>, bits: Vec<bool>) -> Self {
        let stack = if code.beam_shaped {
            shaping::shaped_stack(code.rows_per_stack)
        } else {
            PsvaaStack::uniform(code.rows_per_stack)
        };
        Tag::from_shared_stack(code, stack, positions_m, bits)
    }

    /// [`Tag::new`] with the stack geometry resolved through an
    /// injected cache: the DE-optimized shaping profile for
    /// `code.rows_per_stack` builds once per cache, and the returned
    /// tag keeps the cache handle so per-frame scatterer exports read
    /// shared tables. The physics are bit-identical to [`Tag::new`].
    pub(crate) fn new_with(
        cache: &GeomCache,
        code: SpatialCode,
        positions_m: Vec<f64>,
        bits: Vec<bool>,
    ) -> Self {
        let stack = if code.beam_shaped {
            shaping::shaped_stack_in(cache, code.rows_per_stack)
        } else {
            PsvaaStack::uniform(code.rows_per_stack)
        };
        Tag::from_shared_stack(code, stack, positions_m, bits).with_table_cache(cache)
    }

    fn from_shared_stack(
        code: SpatialCode,
        stack: PsvaaStack,
        positions_m: Vec<f64>,
        bits: Vec<bool>,
    ) -> Self {
        let stacks = positions_m
            .iter()
            .map(|&x| TagStack {
                x_m: x,
                stack: stack.clone(),
            })
            .collect();
        Tag {
            code,
            positions_m,
            bits,
            stacks,
            mount: Vec3::ZERO,
            yaw: 0.0,
            bow_m: 0.0,
            bow_seed: 0,
            cache: None,
        }
    }

    /// Attaches an injected table cache: subsequent scatterer exports
    /// memoize their per-(layout, frequency) row tables in it. Results
    /// are bit-identical with or without a cache attached.
    pub(crate) fn with_table_cache(mut self, cache: &GeomCache) -> Self {
        self.cache = Some(cache.clone());
        self
    }

    /// Builds a tag from heterogeneous stacks (per-slot row counts —
    /// the §8 ASK-modulation extension). The first stack is the
    /// reference and must sit at `x_m = 0`.
    ///
    /// # Panics
    /// Panics when `stacks` is empty or the first stack is off-origin.
    pub(crate) fn from_stacks(code: SpatialCode, stacks: Vec<TagStack>, bits: Vec<bool>) -> Self {
        assert!(!stacks.is_empty(), "a tag needs at least the reference stack");
        assert!(
            stacks[0].x_m.abs() < 1e-12,
            "the reference stack must sit at the origin"
        );
        let positions_m = stacks.iter().map(|s| s.x_m).collect();
        Tag {
            code,
            positions_m,
            bits,
            stacks,
            mount: Vec3::ZERO,
            yaw: 0.0,
            bow_m: 0.0,
            bow_seed: 0,
            cache: None,
        }
    }

    /// Adds mechanical column bow: each coding column bends toward or
    /// away from the road by a random parabolic deflection of up to
    /// `bow_m` at its centre. Long (32-row) columns in the paper's
    /// outdoor tests bend and sway (§7.2); this models that imperfection.
    pub fn with_column_bow(mut self, bow_m: f64, seed: u64) -> Self {
        assert!(bow_m >= 0.0);
        self.bow_m = bow_m;
        self.bow_seed = seed;
        self
    }

    /// The tag's spatial code.
    pub fn code(&self) -> &SpatialCode {
        &self.code
    }

    /// The encoded bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Stack positions relative to the reference stack \[m\].
    pub fn stack_positions_m(&self) -> &[f64] {
        &self.positions_m
    }

    /// The reference stack's geometry.
    pub fn stack(&self) -> &PsvaaStack {
        &self.stacks[0].stack
    }

    /// All mounted stacks (reference first).
    pub fn stacks(&self) -> &[TagStack] {
        &self.stacks
    }

    /// Mounts the tag at a world position (reference-stack centre).
    pub fn mounted_at(mut self, pos: Vec3) -> Self {
        self.mount = pos;
        self
    }

    /// Rotates the tag's boresight away from −y by `yaw` \[rad\].
    pub fn with_yaw(mut self, yaw: f64) -> Self {
        self.yaw = yaw;
        self
    }

    /// World mount position.
    pub fn mount(&self) -> Vec3 {
        self.mount
    }

    /// Tallest stack height \[m\].
    pub fn height_m(&self) -> f64 {
        self.stacks
            .iter()
            .map(|s| s.stack.height_m())
            .fold(0.0, f64::max)
    }

    /// Azimuth of `radar_pos` from the tag's boresight \[rad\].
    ///
    /// The tag faces −y (toward the road); positive azimuth toward +x.
    pub fn azimuth_from_boresight(&self, radar_pos: Vec3) -> f64 {
        let dx = radar_pos.x - self.mount.x;
        let dy = radar_pos.y - self.mount.y;
        dx.atan2(-dy) - self.yaw
    }

    /// Exports every PSVAA row of every stack as a scatterer:
    /// `(world position, complex RCS amplitude √m²)` for the given
    /// radar position and polarizations.
    pub fn scatterers(
        &self,
        radar_pos: Vec3,
        tx: Polarization,
        rx: Polarization,
        freq_hz: f64,
    ) -> Vec<(Vec3, Complex64)> {
        let az = self.azimuth_from_boresight(radar_pos);
        // Shared azimuth retro-response of a single PSVAA row.
        let row = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let row_field = row.monostatic_field(az, freq_hz, tx, rx);
        if row_field == Complex64::ZERO {
            return Vec::new();
        }

        // Stack x-axis runs along the road (+x) when yaw = 0.
        let (sin_y, cos_y) = self.yaw.sin_cos();

        let mut out = Vec::new();
        for (si, ts) in self.stacks.iter().enumerate() {
            let xs = ts.x_m;
            let rows: Arc<Vec<(f64, Complex64)>> = match &self.cache {
                Some(cache) => ts.stack.row_scatterers_table_in(cache, freq_hz),
                None => Arc::new(ts.stack.row_scatterers(freq_hz)),
            };
            let z_center = ts.stack.center_z_m();
            let half_h = (ts.stack.height_m() / 2.0).max(1e-9);
            // Per-column bow: deterministic pseudo-random deflection.
            let bow = if self.bow_m > 0.0 {
                let h = self
                    .bow_seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(cast::u64_from_usize(si))
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                let unit = (h >> 11).as_f64() / (1u64 << 53).as_f64(); // [0,1)
                (2.0 * unit - 1.0) * self.bow_m
            } else {
                0.0
            };
            for &(z, w) in rows.iter() {
                let zc = z - z_center;
                // Parabolic deflection toward/away from the road,
                // maximal at the column centre, zero at the clamped ends.
                let dy = bow * (1.0 - (zc / half_h).powi(2));
                let pos = self.mount
                    + Vec3::new(xs * cos_y - dy * sin_y, xs * sin_y - dy * cos_y, zc);
                let el = pos.elevation_to(radar_pos);
                let g_el = ros_antenna::patch::elevation_pattern(el);
                out.push((pos, row_field * w * g_el));
            }
        }
        out
    }

    /// Far-field RCS of the whole tag at azimuth `az` from boresight
    /// \[dBsm\], at the stack boresight elevation — the quantity the
    /// §5.1 analytic model approximates.
    pub fn rcs_dbsm(&self, az: f64, freq_hz: f64, tx: Polarization, rx: Polarization) -> f64 {
        let k = std::f64::consts::TAU / ros_em::constants::wavelength(freq_hz);
        let row = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let row_field = row.monostatic_field(az, freq_hz, tx, rx);
        let u = az.sin();
        let total: Complex64 = self
            .stacks
            .iter()
            .map(|ts| {
                ts.stack.elevation_array_factor(0.0, freq_hz)
                    * Complex64::cis(2.0 * k * ts.x_m * u)
            })
            .sum();
        let sigma = (row_field * total).norm_sqr();
        10.0 * sigma.max(1e-30).log10()
    }
}

/// Co-polarized RSS excess of the tag over its cross-polarized retro
/// return \[dB\] — §7.2/Fig. 13a: the tag's median polarization RSS
/// loss is ≈13 dB (board strips, frame and edge scattering reflect
/// co-polarized energy that the PSVAAs do not switch).
pub(crate) const BOARD_COPOL_EXCESS_DB: f64 = 11.0;

impl Tag {
    /// The tag's structural co-polarized ("board") echoes: wide-angle
    /// scattering from the PCB strips and mounting frame, one scatter
    /// centre per stack. Total RCS sits [`BOARD_COPOL_EXCESS_DB`] above
    /// the tag's fringe-averaged cross-pol retro RCS.
    fn board_echoes(&self, radar_pos: Vec3, ctx: &EchoContext) -> Vec<SceneEcho> {
        let az = self.azimuth_from_boresight(radar_pos);
        if az.cos() <= 0.0 {
            return Vec::new();
        }
        let cross_avg_dbsm = crate::capacity::estimated_tag_rcs_dbsm(
            self.positions_m.len(),
            self.code.rows_per_stack,
            self.code.beam_shaped,
        ) + 10.0 * (self.positions_m.len().as_f64()).log10();
        let board_dbsm = cross_avg_dbsm + BOARD_COPOL_EXCESS_DB;
        let per_stack_amp =
            ros_em::db::db_to_lin(board_dbsm) / (self.positions_m.len().as_f64()).sqrt();
        let (sin_y, cos_y) = self.yaw.sin_cos();
        // Mild angular rolloff (frame scattering is wide-angle).
        let g = az.cos().powf(0.5);
        self.positions_m
            .iter()
            .enumerate()
            .map(|(i, &xs)| {
                let pos = self.mount + Vec3::new(xs * cos_y, xs * sin_y, 0.0);
                // Static speckle phase per stack.
                let phase = (i.as_f64() * 2.399963).rem_euclid(std::f64::consts::TAU);
                let f = Complex64::from_polar(per_stack_amp * g, phase);
                SceneEcho {
                    pos,
                    amp: ctx.echo_amplitude_at(f, radar_pos, pos),
                }
            })
            .collect()
    }
}

impl Reflector for Tag {
    fn echoes(
        &self,
        radar_pos: Vec3,
        tx: Polarization,
        rx: Polarization,
        ctx: &EchoContext,
    ) -> Vec<SceneEcho> {
        let mut echoes: Vec<SceneEcho> = self
            .scatterers(radar_pos, tx, rx, ctx.budget.freq_hz)
            .into_iter()
            .map(|(pos, f)| SceneEcho {
                pos,
                amp: ctx.echo_amplitude_at(f, radar_pos, pos),
            })
            .collect();
        // Structural (co-polarized) board scattering.
        if tx == rx {
            echoes.extend(self.board_echoes(radar_pos, ctx));
        }
        echoes
    }

    fn center(&self) -> Vec3 {
        self.mount
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_em::constants::{F_CENTER_HZ, LAMBDA_CENTER_M};
    use ros_em::geom::deg_to_rad;

    fn small_tag(bits: &[bool]) -> Tag {
        let code = SpatialCode {
            rows_per_stack: 8,
            ..SpatialCode::paper_4bit()
        };
        code.encode(bits).unwrap()
    }

    #[test]
    fn scatterer_count() {
        let tag = small_tag(&[true, true, true, true]);
        let radar = Vec3::new(0.0, -3.0, 0.0);
        let sc = tag.scatterers(radar, Polarization::H, Polarization::V, F_CENTER_HZ);
        // 5 stacks × 8 rows.
        assert_eq!(sc.len(), 40);
    }

    #[test]
    fn boresight_azimuth_convention() {
        let tag = small_tag(&[true; 4]).mounted_at(Vec3::new(0.0, 2.0, 0.0));
        // Radar on the road directly in front: azimuth 0.
        assert!((tag.azimuth_from_boresight(Vec3::new(0.0, 0.0, 0.0))).abs() < 1e-12);
        // Radar down-road (+x): positive azimuth.
        assert!(tag.azimuth_from_boresight(Vec3::new(2.0, 0.0, 0.0)) > 0.0);
    }

    #[test]
    fn cross_pol_dominates_co_pol() {
        // The tag is a polarization switcher: cross-pol scatterer
        // amplitudes far exceed co-pol ones away from broadside.
        let tag = small_tag(&[true; 4]).mounted_at(Vec3::new(0.0, 3.0, 0.0));
        let radar = Vec3::new(1.5, 0.0, 0.0);
        let cross = tag.scatterers(radar, Polarization::H, Polarization::V, F_CENTER_HZ);
        let co = tag.scatterers(radar, Polarization::V, Polarization::V, F_CENTER_HZ);
        let p_cross: f64 = cross.iter().map(|(_, f)| f.norm_sqr()).sum();
        let p_co: f64 = co.iter().map(|(_, f)| f.norm_sqr()).sum();
        assert!(
            p_cross > 5.0 * p_co,
            "cross {p_cross:.3e} vs co {p_co:.3e}"
        );
    }

    #[test]
    fn rcs_shows_coding_structure() {
        // The far-field RCS versus u must oscillate with the coding
        // spacings — sample two azimuths a quarter-fringe apart for the
        // 6λ stack and check they differ.
        let tag = small_tag(&[true, false, false, false]);
        let lam = LAMBDA_CENTER_M;
        // Fringe period in u for 6λ spacing: λ/(2·6λ) = 1/12.
        let u1: f64 = 0.0;
        let u2: f64 = 1.0 / 24.0; // half period → destructive vs constructive
        let r1 = tag.rcs_dbsm(u1.asin(), F_CENTER_HZ, Polarization::H, Polarization::V);
        let r2 = tag.rcs_dbsm(u2.asin(), F_CENTER_HZ, Polarization::H, Polarization::V);
        assert!((r1 - r2).abs() > 3.0, "no fringe contrast: {r1} vs {r2}");
        let _ = lam;
    }

    #[test]
    fn tag_total_rcs_magnitude_plausible() {
        // §5.3: the 32-row, 5-stack tag has σ ≈ −23 dBsm. Our model
        // should land within a few dB at a constructive azimuth.
        let code = SpatialCode::paper_4bit(); // 32 rows
        let tag = code.encode(&[true; 4]).unwrap();
        // The multi-stack RCS fringes between 0 and M²× the per-stack
        // level; the paper's −23 dBsm corresponds to the per-stack
        // (fringe-averaged) level, so the azimuth-average should land
        // near −23 + 10·log10(M) ≈ −16 dBsm and the constructive peaks
        // up to ≈ −9 dBsm.
        let mut acc = 0.0;
        let mut peak = f64::NEG_INFINITY;
        let n = 120;
        for i in 0..n {
            let az = deg_to_rad(-15.0 + 30.0 * i as f64 / (n - 1) as f64);
            let r = tag.rcs_dbsm(az, F_CENTER_HZ, Polarization::H, Polarization::V);
            acc += 10f64.powf(r / 10.0);
            peak = peak.max(r);
        }
        let avg = 10.0 * (acc / n as f64).log10();
        assert!(
            (avg - (-16.0)).abs() < 5.0,
            "average tag RCS {avg:.1} dBsm (expected ≈ −16)"
        );
        assert!(peak < -5.0 && peak > -20.0, "peak {peak:.1} dBsm");
    }

    #[test]
    fn echoes_through_reflector_trait() {
        let tag = small_tag(&[true; 4]).mounted_at(Vec3::new(0.0, 3.0, 0.5));
        let ctx = EchoContext::ti_clear();
        let echoes = tag.echoes(
            Vec3::new(0.0, 0.0, 0.5),
            Polarization::H,
            Polarization::V,
            &ctx,
        );
        assert_eq!(echoes.len(), 40);
        let total_mw: f64 = echoes.iter().map(|e| e.amp.norm_sqr()).sum();
        // Within detection range, the tag is well above the −62 dBm
        // floor (coherent combination raises it further).
        assert!(10.0 * total_mw.log10() > -62.0);
    }

    #[test]
    fn behind_tag_is_silent() {
        let tag = small_tag(&[true; 4]).mounted_at(Vec3::new(0.0, 3.0, 0.0));
        let sc = tag.scatterers(
            Vec3::new(0.0, 10.0, 0.0), // behind the tag face
            Polarization::H,
            Polarization::V,
            F_CENTER_HZ,
        );
        let p: f64 = sc.iter().map(|(_, f)| f.norm_sqr()).sum();
        assert!(p < 1e-12);
    }

    #[test]
    fn yaw_rotates_boresight() {
        let tag = small_tag(&[true; 4])
            .mounted_at(Vec3::new(0.0, 2.0, 0.0))
            .with_yaw(deg_to_rad(10.0));
        let az = tag.azimuth_from_boresight(Vec3::new(0.0, 0.0, 0.0));
        assert!((az + deg_to_rad(10.0)).abs() < 1e-12);
    }
}
