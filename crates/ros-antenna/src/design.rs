//! Closed-form design rules from the paper.
//!
//! These are the analytic results that size every RoS tag:
//!
//! * §4.1 — the optimal Van Atta pair count given the radar bandwidth,
//! * §4.3, Eq. (5) — the elevation beamwidth of a vertical stack,
//! * §5.3, Eq. (8) — the far-field (Fraunhofer) distance,
//! * §5.3, Eq. (9) — the Nyquist bound on vehicle speed.

use ros_em::constants::LAMBDA_GUIDED_79GHZ_M;
use ros_em::units::cast::{self, AsF64};

/// Maximum TL length difference (shortest vs longest) that keeps the
/// band-edge phase misalignment below π/2 \[m\] (§4.1):
/// `δl ≤ c_l / (4B)` with `c_l` the guided propagation speed.
pub fn max_tl_length_difference_m(bandwidth_hz: f64, center_hz: f64) -> f64 {
    let c_l = center_hz * guided_wavelength_at_center(center_hz);
    c_l / (4.0 * bandwidth_hz)
}

fn guided_wavelength_at_center(center_hz: f64) -> f64 {
    // Strip-line ε_eff is frequency-flat; scale the 79 GHz anchor.
    LAMBDA_GUIDED_79GHZ_M * ros_em::constants::F_CENTER_HZ / center_hz
}

/// Optimal number of Van Atta antenna pairs (§4.1):
/// `⌈δl_max / (2λg)⌉` — adjacent lines must differ by at least 2λg
/// (the smallest λg multiple clearing the λ antenna pitch), and the
/// total spread must stay below the misalignment bound.
pub fn optimal_antenna_pairs(bandwidth_hz: f64, center_hz: f64) -> usize {
    let delta_l = max_tl_length_difference_m(bandwidth_hz, center_hz);
    let lg = guided_wavelength_at_center(center_hz);
    cast::ceil_usize(delta_l / (2.0 * lg)).max(1)
}

/// Elevation beamwidth of a vertically stacked reflector \[rad\]
/// (Eq. 5): `θ = 0.886·λ / (2·N·d_z)`.
///
/// The factor 2 relative to an ordinary array reflects the two-way
/// (reflection) geometry: height offsets accrue phase on both the
/// incoming and outgoing paths.
pub fn stack_beamwidth_rad(n_rows: usize, row_pitch_m: f64, lambda_m: f64) -> f64 {
    assert!(n_rows > 0 && row_pitch_m > 0.0);
    0.886 * lambda_m / (2.0 * n_rows.as_f64() * row_pitch_m)
}

/// Tolerable radar–tag height mismatch at distance `d_m` for a stack
/// of beamwidth `beamwidth_rad` \[m\]: `d·tan(θ/2)`.
pub fn height_tolerance_m(beamwidth_rad: f64, d_m: f64) -> f64 {
    d_m * (beamwidth_rad / 2.0).tan()
}

/// Fraunhofer far-field distance (Eq. 8): `d = 2·D²/λ` \[m\].
pub fn far_field_distance_m(aperture_m: f64, lambda_m: f64) -> f64 {
    2.0 * aperture_m * aperture_m / lambda_m
}

/// Maximum vehicle speed the spatial code supports \[m/s\] (Eq. 9).
///
/// The RCS-vs-`u` trace contains spatial frequencies up to
/// `2·s_max/λ` cycles per unit `u`, where `s_max` is the largest
/// pairwise stack spacing on the tag. Nyquist requires consecutive
/// frames closer than `δu = λ/(4·s_max)`; with the worst-case
/// `|du/dx| = 1/d` at reading distance `d`, the per-frame travel bound
/// is `δs = d·δu` and the speed bound `v = δs·F_s`.
pub fn max_vehicle_speed_mps(
    max_pair_spacing_m: f64,
    lambda_m: f64,
    reading_distance_m: f64,
    frame_rate_hz: f64,
) -> f64 {
    assert!(max_pair_spacing_m > 0.0);
    let du = lambda_m / (4.0 * max_pair_spacing_m);
    reading_distance_m * du * frame_rate_hz
}

/// Minimum lateral separation between two side-by-side tags at
/// distance `d_m` so the radar (with `n_rx` antennas) can isolate them
/// \[m\] (§5.3): angular separation > half beamwidth ≈ `1/N_r` rad.
pub fn min_tag_separation_m(d_m: f64, n_rx: usize) -> f64 {
    assert!(n_rx > 0);
    d_m * (1.0 / n_rx.as_f64()).tan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_em::constants::{F_CENTER_HZ, LAMBDA_CENTER_M};
    use ros_em::geom::rad_to_deg;

    #[test]
    fn tl_length_bound_matches_4_94_lambda_g() {
        // §4.1: B = 4 GHz ⇒ δl ≈ 4.94 λg.
        let dl = max_tl_length_difference_m(4.0e9, F_CENTER_HZ);
        assert!((dl / LAMBDA_GUIDED_79GHZ_M - 4.94).abs() < 0.01);
    }

    #[test]
    fn optimal_pairs_is_3_for_automotive_radar() {
        assert_eq!(optimal_antenna_pairs(4.0e9, F_CENTER_HZ), 3);
    }

    #[test]
    fn optimal_pairs_grows_for_narrow_band() {
        // A narrower sweep tolerates longer lines ⇒ more pairs.
        assert!(optimal_antenna_pairs(1.0e9, F_CENTER_HZ) > 3);
        // An ultra-wide sweep collapses to a single pair.
        assert_eq!(optimal_antenna_pairs(40.0e9, F_CENTER_HZ), 1);
    }

    #[test]
    fn stack_beamwidth_anchor() {
        // §4.3: 32 PSVAAs at the 0.725λ design pitch ⇒ ≈1.1°.
        let bw = stack_beamwidth_rad(32, 0.725 * LAMBDA_CENTER_M, LAMBDA_CENTER_M);
        assert!((rad_to_deg(bw) - 1.09).abs() < 0.05, "{}", rad_to_deg(bw));
    }

    #[test]
    fn height_mismatch_anchor() {
        // §4.3: at 3 m, a ≈1.1° beam tolerates ≈3 cm of height mismatch.
        let bw = stack_beamwidth_rad(32, 0.725 * LAMBDA_CENTER_M, LAMBDA_CENTER_M);
        let tol = height_tolerance_m(bw, 3.0);
        assert!((tol - 0.029).abs() < 0.004, "tol {tol}");
    }

    #[test]
    fn far_field_anchors() {
        // §5.3: the 4-bit tag's far field is 2.9 m — that value follows
        // from the 19.5λ spacing between the outermost coding stacks
        // (the radiating aperture), not the 22.5λ overall width that
        // includes the 3λ stack-width padding. §7.2: 10.8 cm stack
        // height ⇒ ≈6.14 m.
        let d = far_field_distance_m(19.5 * LAMBDA_CENTER_M, LAMBDA_CENTER_M);
        assert!((d - 2.89).abs() < 0.1, "4-bit aperture: {d}");
        let d32 = far_field_distance_m(0.108, LAMBDA_CENTER_M);
        assert!((d32 - 6.14).abs() < 0.1, "32-row height: {d32}");
    }

    #[test]
    fn speed_bound_near_paper_value() {
        // §5.3: the 4-bit tag (δc = 1.5λ) at F_s = 1 kHz supports
        // ≈38.5 m/s. Largest pairwise spacing: |d₄|+|d₃| = 19.5λ;
        // reading distance = the 2.9 m far-field bound.
        let s_max = 19.5 * LAMBDA_CENTER_M;
        let v = max_vehicle_speed_mps(s_max, LAMBDA_CENTER_M, 2.9, 1000.0);
        assert!(
            (v - 38.5).abs() < 3.0,
            "speed bound {v} m/s (paper: 38.5 m/s)"
        );
    }

    #[test]
    fn tag_separation_anchor() {
        // §5.3: N_r = 4 Rx antennas, d = 6 m ⇒ ≥1.53 m.
        let s = min_tag_separation_m(6.0, 4);
        assert!((s - 1.53).abs() < 0.05, "separation {s}");
    }

    #[test]
    fn beamwidth_shrinks_with_more_rows() {
        let lam = LAMBDA_CENTER_M;
        let p = 0.725 * lam;
        let bw8 = stack_beamwidth_rad(8, p, lam);
        let bw32 = stack_beamwidth_rad(32, p, lam);
        assert!((bw8 / bw32 - 4.0).abs() < 1e-9);
    }
}
