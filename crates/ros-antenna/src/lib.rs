#![warn(missing_docs)]

//! # ros-antenna — antenna substrate for RoS
//!
//! The analytic electromagnetics of the RoS tag (§4 of the paper),
//! replacing the authors' Ansys HFSS simulations with array-theory
//! models of the same physics:
//!
//! * [`patch`] — the aperture-coupled patch element (Fig. 7a): element
//!   power pattern and return-loss model over the 76–81 GHz band,
//! * [`tl`] — strip-line transmission lines: guided-wavelength
//!   dispersion and conductor/dielectric loss (the two effects that cap
//!   the useful Van Atta pair count at 3, §4.1),
//! * [`vaa`] — the retroreflective Van Atta array engine: bistatic
//!   complex response with polarization bookkeeping; covers the classic
//!   VAA, the polarization-switching PSVAA, and the specular ULA
//!   baseline (Figs. 3–6),
//! * [`stack`] — vertical stacks of PSVAAs with per-row phase weights:
//!   elevation patterns, near-field scatterer export (§4.3),
//! * [`shaping`] — DE-GA elevation beam shaping to a flat-top (Fig. 8),
//! * [`design`] — closed-form design rules (§4.1 pair-count rule,
//!   Eq. 5 beamwidth, §5.3 far-field distance).
//!
//! ## Calibration
//!
//! Absolute RCS levels are anchored to the paper's reported values
//! (−37 dBsm for the 3-pair VAA at broadside, hence −43 dBsm for the
//! PSVAA after its 6 dB polarization-switching penalty). All pattern
//! *shapes* emerge from the physics.

pub mod design;
pub mod patch;
pub mod shaping;
pub mod stack;
pub mod stripline;
pub mod taper;
pub mod tl;
pub mod vaa;

pub use stack::PsvaaStack;
pub use tl::TransmissionLine;
pub use vaa::{ArrayKind, VanAttaArray};
