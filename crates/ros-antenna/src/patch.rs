//! The aperture-coupled patch antenna element (paper Fig. 7).
//!
//! The PSVAA uses rectangular patches fed through H-shaped apertures in
//! the ground plane by buried strip-lines (§4.2). For the array-level
//! models we need three element properties:
//!
//! 1. geometry (paper Fig. 7a — 1.2 × 1.06 mm patch on a λ/2 grid),
//! 2. the element *power pattern* versus angle off broadside, and
//! 3. the frequency-dependent mismatch/radiation efficiency implied by
//!    the return-loss (s11) spec ("−10 dB throughout the band").
//!
//! The pattern uses the standard `cos^q` model. The azimuth exponent is
//! fitted so the Van Atta RCS stays within a few dB across the ±60°
//! retroreflective field of view the paper measures (Fig. 4a), while a
//! single resonant patch is narrower in elevation (`q = 1`).

use ros_em::constants::{BAND_HI_HZ, BAND_LO_HZ, F_CENTER_HZ};

/// Element grid pitch within a VAA: λ/2 at 79 GHz \[m\].
pub const ELEMENT_PITCH_M: f64 = ros_em::constants::LAMBDA_CENTER_M / 2.0;

/// `cos^q` field-pattern exponent in the azimuth plane.
///
/// Fitted so the monostatic VAA RCS (∝ pattern⁴) drops ≈3–4 dB at ±60°,
/// reproducing the "relatively flat RCS within a FoV of approximately
/// 120°" of Fig. 4a while still rolling off toward endfire.
pub(crate) const AZ_PATTERN_EXP: f64 = 0.3;

/// `cos^q` field-pattern exponent in the elevation plane (single
/// resonant patch ≈ cosine field pattern).
pub(crate) const EL_PATTERN_EXP: f64 = 1.0;

/// Element *field* (amplitude) pattern at angle `theta` off broadside
/// \[rad\] with exponent `q`. Zero beyond ±90° (no back radiation
/// through the ground plane).
pub(crate) fn element_field_pattern(theta: f64, q: f64) -> f64 {
    let c = theta.cos();
    if c <= 0.0 {
        0.0
    } else {
        c.powf(q)
    }
}

/// Azimuth field pattern with the RoS patch exponent.
#[inline]
pub fn azimuth_pattern(theta: f64) -> f64 {
    element_field_pattern(theta, AZ_PATTERN_EXP)
}

/// Elevation field pattern with the RoS patch exponent.
#[inline]
pub fn elevation_pattern(epsilon: f64) -> f64 {
    element_field_pattern(epsilon, EL_PATTERN_EXP)
}

/// Return loss s11 (dB, negative) versus frequency.
///
/// §4.2: the aperture/patch dimensions were optimized in HFSS until
/// "a return loss of −10 dB is achieved throughout the mmWave radar
/// frequency band". We model the resonance as a parabola in frequency
/// with −25 dB at the 79 GHz design point and −10 dB at the worst band
/// edge — matching both the spec and the <4 dB RCS ripple of Fig. 6a.
pub fn s11_db(freq_hz: f64) -> f64 {
    // Worst edge is 76 GHz (3 GHz from the design point).
    let worst_offset = (F_CENTER_HZ - BAND_LO_HZ).max(BAND_HI_HZ - F_CENTER_HZ);
    let x = (freq_hz - F_CENTER_HZ) / worst_offset;
    (-25.0 + 15.0 * x * x).min(-3.0)
}

/// Fraction of incident power accepted (not reflected) by the element:
/// `1 − |s11|²`.
pub fn match_efficiency(freq_hz: f64) -> f64 {
    let s11 = ros_em::db::db_to_lin(s11_db(freq_hz));
    1.0 - s11 * s11
}

/// Amplitude transmission factor of the element's port mismatch,
/// `√(1 − |s11|²)`.
pub(crate) fn match_amplitude(freq_hz: f64) -> f64 {
    match_efficiency(freq_hz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_em::geom::deg_to_rad;

    #[test]
    fn pattern_peak_at_broadside() {
        assert_eq!(azimuth_pattern(0.0), 1.0);
        assert_eq!(elevation_pattern(0.0), 1.0);
    }

    #[test]
    fn pattern_zero_behind() {
        for th in [91.0, 120.0, 180.0] {
            assert_eq!(azimuth_pattern(deg_to_rad(th)), 0.0);
            assert_eq!(azimuth_pattern(deg_to_rad(-th)), 0.0);
        }
    }

    #[test]
    fn pattern_monotone_decreasing() {
        let mut prev = 2.0;
        for d in 0..90 {
            let v = azimuth_pattern(deg_to_rad(d as f64));
            assert!(v < prev + 1e-15, "non-monotone at {d}°");
            prev = v;
        }
    }

    #[test]
    fn azimuth_rcs_flat_within_120deg_fov() {
        // Monostatic RCS ∝ pattern⁴; the drop at ±60° must be mild
        // (≲4.5 dB) to match Fig. 4a's flat plateau.
        let drop_db = -40.0 * azimuth_pattern(deg_to_rad(60.0)).log10();
        assert!(drop_db < 4.5, "FoV edge drop {drop_db:.1} dB");
        // But the element is directive: at 85° it must be far down.
        let far = -40.0 * azimuth_pattern(deg_to_rad(85.0)).log10();
        assert!(far > 10.0);
    }

    #[test]
    fn elevation_narrower_than_azimuth() {
        let th = deg_to_rad(50.0);
        assert!(elevation_pattern(th) < azimuth_pattern(th));
    }

    #[test]
    fn s11_meets_band_spec() {
        // −10 dB or better everywhere in 76–81 GHz.
        for k in 0..=50 {
            let f = BAND_LO_HZ + (BAND_HI_HZ - BAND_LO_HZ) * k as f64 / 50.0;
            assert!(s11_db(f) <= -10.0 + 1e-9, "s11 {} at {f}", s11_db(f));
        }
        // Best match at the design frequency.
        assert!((s11_db(F_CENTER_HZ) - (-25.0)).abs() < 1e-12);
    }

    #[test]
    fn match_efficiency_high_in_band() {
        // −10 dB return loss ⇒ ≥90% accepted.
        for f in [BAND_LO_HZ, F_CENTER_HZ, BAND_HI_HZ] {
            assert!(match_efficiency(f) >= 0.90);
            assert!(match_efficiency(f) <= 1.0);
        }
        // Far out of band the efficiency degrades (clamped at −3 dB s11).
        assert!(match_efficiency(60.0e9) < match_efficiency(F_CENTER_HZ));
    }

    #[test]
    fn element_pitch_is_half_wavelength() {
        assert!((ELEMENT_PITCH_M - 1.897e-3).abs() < 2e-6);
    }
}
