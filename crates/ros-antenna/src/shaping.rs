//! Elevation beam shaping via differential evolution (§4.3, Fig. 8).
//!
//! Goal: a flat-top elevation pattern ≈10° wide (vs the 1–4° of a
//! uniform stack) so the tag tolerates radar height mismatch. The only
//! knob a passive PCB offers is per-row TL length, i.e. a phase weight
//! — but adding line makes a row taller and shifts every row above it,
//! changing their geometric phases. That coupling has no closed form
//! (§4.3), so the phases are found with the DE-GA of [`ros_optim`].
//!
//! The search space is the symmetric half of the phase vector (the
//! paper keeps the profile symmetric for a symmetric pattern); the
//! objective rewards a flat, wide main beam:
//!
//! * minimize ripple (max−min dB) inside the ±half-target window,
//! * maximize the worst in-window level relative to boresight,
//! * penalize beams that stay narrow.

use crate::stack::PsvaaStack;
use ros_cache::{GeomCache, Key, KeyBuilder, TableKind};
use ros_em::geom::deg_to_rad;
use ros_em::units::cast::{self, AsF64};
use ros_optim::{minimize, DeConfig, Strategy};
use std::sync::Arc;

/// A beam-shaping profile: per-row TL phase weights \[rad\].
#[derive(Clone, Debug, PartialEq)]
pub struct ShapingProfile {
    /// Phase weight per row, bottom to top \[rad\].
    pub phases: Vec<f64>,
    /// The flat-top target width the profile was optimized for \[rad\].
    pub target_width_rad: f64,
}

impl ShapingProfile {
    /// The paper's published 8-row example (Fig. 8a):
    /// phases (152.9°, 37.6°, 0°, 0°, 0°, 0°, 37.6°, 152.9°).
    pub fn paper_example_8() -> Self {
        let d = deg_to_rad(152.9);
        let m = deg_to_rad(37.6);
        ShapingProfile {
            phases: vec![d, m, 0.0, 0.0, 0.0, 0.0, m, d],
            target_width_rad: deg_to_rad(10.0),
        }
    }

    /// Builds the stack realizing this profile.
    pub fn build(&self) -> PsvaaStack {
        PsvaaStack::with_phases(&self.phases)
    }
}

/// Cost of a candidate symmetric phase vector (half-profile).
///
/// Evaluates the elevation power pattern directly from the row
/// geometry (positions + phase weights) — one cheap pass, no repeated
/// peak normalization — so the DE search stays fast.
fn flat_top_cost(half: &[f64], n_rows: usize, target_width_rad: f64) -> f64 {
    let phases = mirror(half, n_rows);
    // Row geometry from the §4.3 height coupling, computed directly
    // (no stack/array construction in the inner DE loop).
    let base = crate::stack::base_row_pitch_m();
    let h_per_rad = crate::stack::height_per_phase_m_per_rad();
    let mut rows: Vec<(f64, f64)> = Vec::with_capacity(n_rows);
    let mut z_bottom = 0.0;
    for &phi in &phases {
        let h = base + phi * h_per_rad;
        rows.push((z_bottom + h / 2.0, phi));
        z_bottom += h;
    }
    let zc = z_bottom / 2.0;
    for r in rows.iter_mut() {
        r.0 -= zc;
    }
    let k = std::f64::consts::TAU / ros_em::constants::LAMBDA_CENTER_M;

    let pattern = |eps: f64| -> f64 {
        let (mut re, mut im) = (0.0, 0.0);
        let s = eps.sin();
        for &(z, phi) in &rows {
            let ph = 2.0 * k * z * s + phi;
            re += ph.cos();
            im += ph.sin();
        }
        re * re + im * im
    };

    // Peak over a window generously covering the target.
    let scan_half = target_width_rad * 1.5;
    let n_scan = 61;
    let mut peak = 1e-30_f64;
    for i in 0..n_scan {
        let eps = -scan_half + 2.0 * scan_half * i.as_f64() / (n_scan - 1).as_f64();
        peak = peak.max(pattern(eps));
    }

    // In-window levels relative to the peak.
    let half_w = target_width_rad / 2.0;
    let n_in = 21;
    let mut worst_in = f64::INFINITY;
    let mut best_in = f64::NEG_INFINITY;
    for i in 0..n_in {
        let eps = -half_w + target_width_rad * i.as_f64() / (n_in - 1).as_f64();
        let db = 10.0 * (pattern(eps) / peak).max(1e-12).log10();
        worst_in = worst_in.min(db);
        best_in = best_in.max(db);
    }
    let ripple = best_in - worst_in;

    // Flat top: small ripple AND high worst level. The worst-level term
    // dominates (a deep null anywhere in the window is fatal for
    // height-mismatch robustness); ripple polishes the top.
    ripple + 3.0 * (-worst_in)
}

/// The flat-top objective exposed for external optimizers (the
/// DE-vs-PSO ablation in `bench`): lower is flatter/wider.
pub fn flat_top_objective(half: &[f64], n_rows: usize, target_width_rad: f64) -> f64 {
    flat_top_cost(half, n_rows, target_width_rad)
}

/// Mirrors a half-profile into a full symmetric profile of `n` rows
/// (exposed alongside [`flat_top_objective`]).
pub fn mirror_profile(half: &[f64], n: usize) -> Vec<f64> {
    mirror(half, n)
}

/// Mirrors a half-profile into a full symmetric profile of `n` rows.
fn mirror(half: &[f64], n: usize) -> Vec<f64> {
    let mut phases = vec![0.0; n];
    for (i, &p) in half.iter().enumerate() {
        phases[i] = p;
        phases[n - 1 - i] = p;
    }
    phases
}

/// Optimizes a flat-top profile for `n_rows` rows and a target beam
/// width (radians). Deterministic per (`n_rows`, width bucket).
///
/// # Panics
/// Panics when `n_rows < 2`.
pub fn optimize_flat_top(n_rows: usize, target_width_rad: f64) -> ShapingProfile {
    let half_len = n_rows / 2 + n_rows % 2;
    optimize_flat_top_with_budget(n_rows, target_width_rad, (8 * half_len).max(24), 120)
}

/// [`optimize_flat_top`] with an explicit DE budget (population size and
/// generation count) — for quick searches and benchmarking.
///
/// # Panics
/// Panics when `n_rows < 2`.
pub(crate) fn optimize_flat_top_with_budget(
    n_rows: usize,
    target_width_rad: f64,
    population: usize,
    max_generations: usize,
) -> ShapingProfile {
    assert!(n_rows >= 2, "beam shaping needs at least 2 rows");
    let half_len = n_rows / 2 + n_rows % 2;
    let bounds = vec![(0.0, std::f64::consts::TAU * 0.9); half_len];
    let cfg = DeConfig {
        population: population.max(4),
        f: 0.6,
        cr: 0.9,
        max_generations,
        strategy: Strategy::RandToBest1Bin,
        seed: 0x0b3a_0000 + cast::u64_from_usize(n_rows),
        ..Default::default()
    };
    // Stays on the asynchronous `minimize`: every downstream amplitude
    // calibration (ASK levels, cached standard profiles) is frozen to
    // this exact trajectory. The parallel generation-synchronous
    // `minimize_par` follows a different (equally good) trajectory and
    // is exercised by the bench perf harness and determinism tests.
    let result = minimize(
        |half| flat_top_cost(half, n_rows, target_width_rad),
        &bounds,
        &cfg,
    );
    ShapingProfile {
        phases: mirror(&result.x, n_rows),
        target_width_rad,
    }
}

/// Standard flat-top profile for `n_rows`, optimized for the paper's
/// 10° target. Pure: every call re-runs the (deterministic) DE search.
/// There is deliberately **no** process-global memo here — the PR 5
/// incident showed an implicit cache makes golden traces depend on
/// cache temperature. Loop-heavy callers should pass an explicit
/// [`GeomCache`] to [`standard_profile_in`] instead.
pub fn standard_profile(n_rows: usize) -> ShapingProfile {
    optimize_flat_top(n_rows, deg_to_rad(10.0))
}

/// Structural cache key for the standard profile: the domain plus
/// every input the DE search depends on.
fn standard_profile_key(n_rows: usize) -> Key {
    KeyBuilder::new("antenna.shaping.standard_profile")
        .usize(n_rows)
        .f64(deg_to_rad(10.0))
        .finish()
}

/// [`standard_profile`] memoized in an injected cache: optimization
/// runs once per size per cache, and every experiment sharing the
/// cache then shares the same layout, exactly like reusing one
/// fabricated PCB. Bit-identical to the uncached path by construction
/// (the build closure *is* `standard_profile`).
pub fn standard_profile_in(cache: &GeomCache, n_rows: usize) -> Arc<ShapingProfile> {
    cache.get_or_build(TableKind::Shaping, standard_profile_key(n_rows), || {
        standard_profile(n_rows)
    })
}

/// Builds the standard beam-shaped stack of `n_rows` PSVAAs (pure; see
/// [`standard_profile`] for the no-global rationale).
pub fn shaped_stack(n_rows: usize) -> PsvaaStack {
    standard_profile(n_rows).build()
}

/// [`shaped_stack`] with the profile memoized in an injected cache.
pub fn shaped_stack_in(cache: &GeomCache, n_rows: usize) -> PsvaaStack {
    standard_profile_in(cache, n_rows).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_em::constants::F_CENTER_HZ;
    use ros_em::geom::rad_to_deg;

    #[test]
    fn mirror_is_symmetric() {
        assert_eq!(mirror(&[1.0, 2.0], 4), vec![1.0, 2.0, 2.0, 1.0]);
        assert_eq!(mirror(&[1.0, 2.0, 3.0], 5), vec![1.0, 2.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn paper_profile_buildable() {
        let p = ShapingProfile::paper_example_8();
        let s = p.build();
        assert_eq!(s.n_rows(), 8);
    }

    #[test]
    fn optimized_8_row_flat_top() {
        // Fig. 8b: the shaped 8-row stack has a ≈10° flat-ish top while
        // the uniform stack is ≈4°.
        let shaped = shaped_stack(8);
        let flat = PsvaaStack::uniform(8);
        let bw_shaped = rad_to_deg(shaped.measured_beamwidth_rad(F_CENTER_HZ));
        let bw_flat = rad_to_deg(flat.measured_beamwidth_rad(F_CENTER_HZ));
        assert!(
            bw_shaped > 7.0,
            "shaped beamwidth only {bw_shaped}° (uniform {bw_flat}°)"
        );
        assert!(bw_shaped > 1.8 * bw_flat);
    }

    #[test]
    fn optimized_profile_has_no_deep_null_in_window() {
        let shaped = shaped_stack(8);
        for i in -10..=10 {
            let eps = deg_to_rad(0.5 * i as f64); // ±5°
            let level = shaped.elevation_pattern_db(eps, F_CENTER_HZ);
            assert!(level > -6.0, "level {level} dB at {}°", 0.5 * i as f64);
        }
    }

    #[test]
    fn optimized_profile_is_symmetric() {
        let p = standard_profile(8);
        for i in 0..4 {
            assert_eq!(p.phases[i], p.phases[7 - i]);
        }
    }

    #[test]
    fn cache_returns_same_profile() {
        let cache = GeomCache::new();
        let a = standard_profile_in(&cache, 8);
        let b = standard_profile_in(&cache, 8);
        assert_eq!(*a, *b);
        // And the second lookup is a genuine hit, not a rebuild.
        let snap = cache.snapshot();
        assert_eq!(snap.kind(TableKind::Shaping).misses, 1);
        assert_eq!(snap.kind(TableKind::Shaping).hits, 1);
    }

    #[test]
    fn standard_profile_order_is_bit_stable() {
        // Regression for the nondet-iter arc: the cached profile must
        // be bit-identical to a fresh optimization, in row order —
        // the cache (container choice, eviction, temperature) must
        // never reorder or perturb what callers see.
        let cache = GeomCache::new();
        let cached = standard_profile_in(&cache, 6);
        let fresh = optimize_flat_top(6, deg_to_rad(10.0));
        let bits = |p: &ShapingProfile| p.phases.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&cached), bits(&fresh));
        assert_eq!(bits(&cached), bits(&standard_profile_in(&cache, 6)));
        assert_eq!(bits(&cached), bits(&standard_profile(6)));
    }

    #[test]
    #[should_panic(expected = "at least 2 rows")]
    fn single_row_rejected() {
        optimize_flat_top(1, deg_to_rad(10.0));
    }
}
