//! Vertical PSVAA stacks (§4.3).
//!
//! A spatial-coding "column" on the RoS tag is a vertical stack of
//! identical PSVAAs. The stack multiplies the row's azimuth response by
//! a vertical array factor:
//!
//! * uniform stacks produce the narrow Eq.-5 beam (1–4°, the height-
//!   mismatch problem),
//! * beam-*shaped* stacks carry per-row phase weights (implemented as
//!   extra TL length, which also makes the row physically taller) that
//!   flatten the elevation pattern to ≈10° (Fig. 8).
//!
//! The module exposes both the far-field elevation pattern (for design
//! and the Fig. 8 experiment) and a per-row scatterer export that the
//! scene/radar layer uses for exact spherical-wave (near-field) sums —
//! the effect behind the 32-row stack's SNR penalty in Fig. 15b.

use crate::patch;
use crate::vaa::{ArrayKind, VanAttaArray};
use ros_cache::{GeomCache, Key, KeyBuilder, TableKind};
use ros_em::jones::Polarization;
use ros_em::prelude::*;
use ros_em::units::cast::AsF64;
use std::sync::Arc;

/// Baseline row pitch: 0.725λ at 79 GHz (Fig. 8a) \[m\].
pub fn base_row_pitch_m() -> f64 {
    0.725 * LAMBDA_CENTER_M
}

/// Extra row height per radian of phase weight \[m/rad\]: a phase φ
/// needs `φ/2π·λg` of extra line, routed vertically (§4.3 "the added
/// TL length increases the height of each PSVAA").
pub(crate) fn height_per_phase_m_per_rad() -> f64 {
    LAMBDA_GUIDED_79GHZ_M / std::f64::consts::TAU
}

/// One row of a stack.
#[derive(Clone, Debug)]
pub struct StackRow {
    /// Height of the row centre above the stack bottom \[m\].
    pub z_m: f64,
    /// TL phase weight at the 79 GHz design frequency \[rad\].
    pub phase_rad: f64,
    /// The row's Van Atta array (carries the extra TL length).
    pub array: VanAttaArray,
}

/// A vertical stack of PSVAAs with optional per-row phase weights.
#[derive(Clone, Debug)]
pub struct PsvaaStack {
    rows: Vec<StackRow>,
}

impl PsvaaStack {
    /// A uniform (un-shaped) stack of `n_rows` PSVAAs at the base
    /// pitch with zero phase weights — the Fig. 8a "without beam
    /// shaping" baseline and the Fig. 14 comparison tag.
    ///
    /// # Panics
    /// Panics when `n_rows == 0`.
    pub fn uniform(n_rows: usize) -> Self {
        Self::with_phases(&vec![0.0; n_rows])
    }

    /// A stack with the given per-row phase weights \[rad\].
    ///
    /// Row geometry follows the §4.3 coupling: each row's height grows
    /// with its phase weight (extra TL is routed vertically), which
    /// pushes all rows above it upward — the interaction that forces
    /// the DE-GA search in [`crate::shaping`].
    ///
    /// # Panics
    /// Panics when `phases` is empty or contains a negative phase.
    pub fn with_phases(phases: &[f64]) -> Self {
        assert!(!phases.is_empty(), "a stack needs at least one row");
        assert!(
            phases.iter().all(|&p| p >= 0.0),
            "phase weights must be non-negative (extra line length)"
        );
        let base = base_row_pitch_m();
        let h_per_rad = height_per_phase_m_per_rad();
        let mut rows = Vec::with_capacity(phases.len());
        let mut z_bottom = 0.0;
        for (i, &phi) in phases.iter().enumerate() {
            let row_height = base + phi * h_per_rad;
            let extra_line = phi / std::f64::consts::TAU * LAMBDA_GUIDED_79GHZ_M;
            // Alternate the patch polarization order between adjacent
            // rows (§4.3) — electrically equivalent in this model, but
            // recorded for layout faithfulness via the array handle.
            let _ = i;
            let array = VanAttaArray::new(ArrayKind::Psvaa, 3).with_extra_line(extra_line);
            rows.push(StackRow {
                z_m: z_bottom + row_height / 2.0,
                phase_rad: phi,
                array,
            });
            z_bottom += row_height;
        }
        PsvaaStack { rows }
    }

    /// Number of PSVAA rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows (bottom to top).
    pub fn rows(&self) -> &[StackRow] {
        &self.rows
    }

    /// Total stack height \[m\].
    pub fn height_m(&self) -> f64 {
        match self.rows.last() {
            Some(last) => {
                last.z_m + (base_row_pitch_m() + last.phase_rad * height_per_phase_m_per_rad()) / 2.0
            }
            None => 0.0,
        }
    }

    /// Height of the stack's geometric centre above its bottom \[m\].
    pub fn center_z_m(&self) -> f64 {
        self.height_m() / 2.0
    }

    /// Far-field elevation array factor at elevation `epsilon` \[rad\],
    /// 79 GHz, normalized so a uniform in-phase stack gives `n_rows`
    /// at `epsilon = 0`.
    ///
    /// Each row contributes `e^{j(2k·z·sin ε + φ)}` — geometric height
    /// enters twice (two-way reflection), the TL phase weight once.
    pub fn elevation_array_factor(&self, epsilon: f64, freq_hz: f64) -> Complex64 {
        let k = std::f64::consts::TAU / wavelength(freq_hz);
        let zc = self.center_z_m();
        let g = patch::elevation_pattern(epsilon);
        self.rows
            .iter()
            .map(|r| {
                // Phase weight scales with frequency like any line.
                let phi = r.phase_rad * freq_hz / F_CENTER_HZ;
                Complex64::cis(2.0 * k * (r.z_m - zc) * epsilon.sin() + phi) * g
            })
            .sum()
    }

    /// Normalized elevation power pattern \[dB\], peak 0 dB, sampled at
    /// `epsilon` \[rad\].
    pub fn elevation_pattern_db(&self, epsilon: f64, freq_hz: f64) -> f64 {
        let p = self.elevation_array_factor(epsilon, freq_hz).norm_sqr();
        let peak = self.peak_elevation_power(freq_hz);
        10.0 * (p / peak).max(1e-12).log10()
    }

    fn peak_elevation_power(&self, freq_hz: f64) -> f64 {
        // Scan a fine grid around boresight for the pattern maximum.
        let mut peak = 0.0_f64;
        for i in -200..=200 {
            let eps = i.as_f64() * 1e-3; // ±0.2 rad ≈ ±11.5°
            peak = peak.max(self.elevation_array_factor(eps, freq_hz).norm_sqr());
        }
        peak.max(1e-30)
    }

    /// −3 dB elevation beamwidth \[rad\], measured on the pattern.
    pub fn measured_beamwidth_rad(&self, freq_hz: f64) -> f64 {
        let peak = self.peak_elevation_power(freq_hz);
        let half = peak / 2.0;
        let step = 1e-4;
        let mut hi = 0.0;
        for i in 0..4000 {
            let eps = i.as_f64() * step;
            if self.elevation_array_factor(eps, freq_hz).norm_sqr() < half {
                hi = eps;
                break;
            }
        }
        let mut lo = 0.0;
        for i in 0..4000 {
            let eps = -(i.as_f64()) * step;
            if self.elevation_array_factor(eps, freq_hz).norm_sqr() < half {
                lo = eps;
                break;
            }
        }
        hi - lo
    }

    /// Structural layout key of this stack: the exact row geometry and
    /// phase weights — everything [`Self::elevation_array_factor`]
    /// reads. Two stacks share cached tables iff this key is equal.
    pub(crate) fn layout_key(&self) -> Key {
        let z: Vec<f64> = self.rows.iter().map(|r| r.z_m).collect();
        let phi: Vec<f64> = self.rows.iter().map(|r| r.phase_rad).collect();
        KeyBuilder::new("antenna.stack.layout")
            .f64s(&z)
            .f64s(&phi)
            .finish()
    }

    /// Elevation pattern cut \[dB\] sampled at `epsilons`, memoized in
    /// an injected cache. Bit-identical to calling
    /// [`Self::elevation_pattern_db`] per sample, but the boresight
    /// peak scan runs once per table instead of once per sample, and
    /// repeated cuts of the same layout are free.
    pub fn elevation_pattern_table_in(
        &self,
        cache: &GeomCache,
        epsilons: &[f64],
        freq_hz: f64,
    ) -> Arc<Vec<f64>> {
        let key = KeyBuilder::new("antenna.stack.elevation_pattern")
            .nested(&self.layout_key())
            .f64(freq_hz)
            .f64s(epsilons)
            .finish();
        cache.get_or_build(TableKind::Pattern, key, || {
            let peak = self.peak_elevation_power(freq_hz);
            epsilons
                .iter()
                .map(|&eps| {
                    let p = self.elevation_array_factor(eps, freq_hz).norm_sqr();
                    10.0 * (p / peak).max(1e-12).log10()
                })
                .collect()
        })
    }

    /// Complete monostatic stack response: the row's azimuth PSVAA
    /// response times the far-field elevation array factor.
    ///
    /// `az`/`el` are the radar's azimuth from broadside and elevation
    /// from the stack-centre horizontal \[rad\].
    pub fn response(
        &self,
        az: f64,
        el: f64,
        freq_hz: f64,
        tx: Polarization,
        rx: Polarization,
    ) -> Complex64 {
        // All rows share one azimuth response (same PSVAA design); use
        // the first row's array as representative, *without* its extra
        // line (phase weights are applied in the elevation factor).
        let row = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let row_field = row.monostatic_field(az, freq_hz, tx, rx);
        row_field * self.elevation_array_factor(el, freq_hz)
    }

    /// [`Self::row_scatterers`] memoized in an injected cache: one
    /// table per exact (layout, frequency). The reader's per-pass
    /// frequency is fixed, so a drive-by pays one build and every
    /// subsequent frame reads the shared table.
    pub fn row_scatterers_table_in(
        &self,
        cache: &GeomCache,
        freq_hz: f64,
    ) -> Arc<Vec<(f64, Complex64)>> {
        let key = KeyBuilder::new("antenna.stack.row_scatterers")
            .nested(&self.layout_key())
            .f64(freq_hz)
            .finish();
        cache.get_or_build(TableKind::Pattern, key, || self.row_scatterers(freq_hz))
    }

    /// Per-row scatterer export for exact near-field sums: pairs of
    /// (row centre height above stack bottom \[m\], complex row weight
    /// `amp·e^{jφ}` at `freq_hz`).
    ///
    /// The caller (scene layer) multiplies each row's weight by the
    /// azimuth response and the exact spherical-wave phase to its
    /// position — no far-field approximation.
    pub fn row_scatterers(&self, freq_hz: f64) -> Vec<(f64, Complex64)> {
        self.rows
            .iter()
            .map(|r| {
                let phi = r.phase_rad * freq_hz / F_CENTER_HZ;
                // Extra-line loss (meander + dielectric) is already in
                // the row array's response; here only the phase weight
                // and a mild extra-line amplitude factor are exported.
                let extra = r.array.extra_line_m();
                let loss_db = extra / LAMBDA_GUIDED_79GHZ_M
                    * crate::vaa::MEANDER_LOSS_DB_PER_LAMBDA_G
                    + extra * ros_em::constants::TL_LOSS_DB_PER_M;
                let amp = ros_em::db::db_to_lin(-loss_db);
                (r.z_m, Complex64::from_polar(amp, phi))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design;
    use ros_em::geom::{deg_to_rad, rad_to_deg};

    const FC: f64 = F_CENTER_HZ;

    #[test]
    fn uniform_stack_geometry() {
        let s = PsvaaStack::uniform(8);
        assert_eq!(s.n_rows(), 8);
        let pitch = base_row_pitch_m();
        assert!((s.height_m() - 8.0 * pitch).abs() < 1e-12);
        // Rows are evenly spaced.
        for w in s.rows().windows(2) {
            assert!((w[1].z_m - w[0].z_m - pitch).abs() < 1e-12);
        }
    }

    #[test]
    fn boresight_gain_is_row_count() {
        for n in [4, 8, 16] {
            let s = PsvaaStack::uniform(n);
            let af = s.elevation_array_factor(0.0, FC);
            assert!((af.abs() - n as f64).abs() < 1e-9, "n={n}: {}", af.abs());
        }
    }

    #[test]
    fn uniform_beamwidth_matches_eq5() {
        // Measured −3 dB width ≈ Eq. 5 prediction.
        for n in [8usize, 16, 32] {
            let s = PsvaaStack::uniform(n);
            let predicted = design::stack_beamwidth_rad(n, base_row_pitch_m(), LAMBDA_CENTER_M);
            let measured = s.measured_beamwidth_rad(FC);
            assert!(
                (measured / predicted - 1.0).abs() < 0.15,
                "n={n}: measured {measured}, Eq.5 {predicted}"
            );
        }
    }

    #[test]
    fn uniform_32_stack_beam_is_about_1_degree() {
        let s = PsvaaStack::uniform(32);
        let bw = rad_to_deg(s.measured_beamwidth_rad(FC));
        assert!(bw > 0.8 && bw < 1.5, "beamwidth {bw}°");
    }

    #[test]
    fn phase_weights_increase_height() {
        let flat = PsvaaStack::uniform(8);
        let shaped = PsvaaStack::with_phases(&[
            deg_to_rad(152.9),
            deg_to_rad(37.6),
            0.0,
            0.0,
            0.0,
            0.0,
            deg_to_rad(37.6),
            deg_to_rad(152.9),
        ]);
        assert!(shaped.height_m() > flat.height_m());
    }

    #[test]
    fn paper_8row_profile_widens_beam() {
        // The Fig. 8a example profile must broaden the elevation beam
        // substantially relative to uniform.
        let flat = PsvaaStack::uniform(8);
        let shaped = PsvaaStack::with_phases(&[
            deg_to_rad(152.9),
            deg_to_rad(37.6),
            0.0,
            0.0,
            0.0,
            0.0,
            deg_to_rad(37.6),
            deg_to_rad(152.9),
        ]);
        let bw_flat = flat.measured_beamwidth_rad(FC);
        let bw_shaped = shaped.measured_beamwidth_rad(FC);
        assert!(
            bw_shaped > 1.5 * bw_flat,
            "shaped {bw_shaped} vs flat {bw_flat}"
        );
    }

    #[test]
    fn pattern_db_peak_is_zero() {
        let s = PsvaaStack::uniform(8);
        let at_peak = s.elevation_pattern_db(0.0, FC);
        assert!(at_peak.abs() < 0.01, "{at_peak}");
        // Away from the main beam the pattern is well down.
        assert!(s.elevation_pattern_db(deg_to_rad(10.0), FC) < -10.0);
    }

    #[test]
    fn response_combines_azimuth_and_elevation() {
        let s = PsvaaStack::uniform(16);
        let on = s
            .response(0.0, 0.0, FC, Polarization::V, Polarization::H)
            .norm_sqr();
        let off_el = s
            .response(0.0, deg_to_rad(5.0), FC, Polarization::V, Polarization::H)
            .norm_sqr();
        assert!(on / off_el > 10.0, "elevation selectivity missing");
        // 16 rows: +24 dB power over a single PSVAA at boresight.
        let single = VanAttaArray::new(ArrayKind::Psvaa, 3)
            .monostatic_field(0.0, FC, Polarization::V, Polarization::H)
            .norm_sqr();
        let gain_db = 10.0 * (on / single).log10();
        assert!((gain_db - 24.1).abs() < 0.5, "stack gain {gain_db} dB");
    }

    #[test]
    fn row_scatterers_export() {
        let phases = [0.0, deg_to_rad(90.0), 0.0];
        let s = PsvaaStack::with_phases(&phases);
        let sc = s.row_scatterers(FC);
        assert_eq!(sc.len(), 3);
        // Phase weight appears in the exported weight.
        assert!((sc[1].1.arg() - deg_to_rad(90.0)).abs() < 1e-9);
        assert!((sc[0].1.arg()).abs() < 1e-9);
        // Weighted rows pay a small extra-line loss.
        assert!(sc[1].1.abs() < sc[0].1.abs());
        assert!(sc[1].1.abs() > 0.9);
        // Heights ascend.
        assert!(sc[0].0 < sc[1].0 && sc[1].0 < sc[2].0);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_stack_rejected() {
        PsvaaStack::with_phases(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_phase_rejected() {
        PsvaaStack::with_phases(&[-0.1]);
    }
}
