//! Strip-line design calculator.
//!
//! §4.2 chooses a symmetric strip-line for the Van Atta interconnects
//! and quotes its consequences (λg = 2027 µm at 79 GHz, ≈1 dB/cm loss
//! on the Rogers stackup). This module derives those numbers from the
//! physical geometry with the standard closed-form models, so that
//! designers can explore other stackups:
//!
//! * characteristic impedance — Cohn's symmetric-strip-line formula,
//! * guided wavelength — `λ₀/√ε_r` (strip-line is pure TEM: the field
//!   is fully inside the dielectric),
//! * conductor loss — skin-effect model,
//! * dielectric loss — `27.3·√ε_r·tanδ/λ₀` dB per metre.

use ros_em::constants::C;

/// A symmetric strip-line cross-section.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stripline {
    /// Trace width \[m\].
    pub width_m: f64,
    /// Ground-to-ground dielectric thickness \[m\].
    pub height_m: f64,
    /// Trace (copper) thickness \[m\].
    pub thickness_m: f64,
    /// Relative permittivity of the dielectric.
    pub epsilon_r: f64,
    /// Dielectric loss tangent.
    pub tan_delta: f64,
}

impl Stripline {
    /// The paper's stackup (Fig. 7c): two Rogers 4350B cores (254 µm +
    /// 101 µm) bonded with 4450F, ε_r ≈ 3.59 effective, 17 µm copper,
    /// and a trace width chosen for ≈50 Ω.
    pub fn paper_stackup() -> Self {
        Stripline {
            width_m: 0.14e-3,
            height_m: 0.355e-3,
            thickness_m: 17e-6,
            epsilon_r: 3.59,
            tan_delta: 0.0038,
        }
    }

    /// Characteristic impedance \[Ω\] (Cohn's formula for w/b < 0.35 is
    /// unnecessary here; the wide-strip expression covers PCB traces).
    pub fn z0_ohm(&self) -> f64 {
        let b = self.height_m;
        let t = self.thickness_m;
        let w = self.width_m;
        // Effective width correction for finite thickness.
        let x = t / b;
        let w_eff = w
            + (x / std::f64::consts::PI)
                * b
                * (1.0 - 0.5 * (x / (2.0 - x)).ln().abs().min(2.0));
        let cf = 0.0885 * self.epsilon_r * 2.0 * (1.0 / (1.0 - x)).ln()
            / std::f64::consts::PI;
        let _ = cf;
        94.15 / (self.epsilon_r.sqrt() * (w_eff / (b - t) + 0.5668))
    }

    /// Guided wavelength at `freq_hz` \[m\]: TEM ⇒ `λ₀/√ε_r`.
    pub fn guided_wavelength_m(&self, freq_hz: f64) -> f64 {
        C / freq_hz / self.epsilon_r.sqrt()
    }

    /// Phase velocity \[m/s\].
    pub fn phase_velocity_mps(&self) -> f64 {
        C / self.epsilon_r.sqrt()
    }

    /// Dielectric loss \[dB/m\] at `freq_hz`:
    /// `27.3·√ε_r·tanδ / λ₀`.
    pub fn dielectric_loss_db_per_m(&self, freq_hz: f64) -> f64 {
        let lambda0 = C / freq_hz;
        27.3 * self.epsilon_r.sqrt() * self.tan_delta / lambda0
    }

    /// Conductor (skin-effect) loss \[dB/m\] at `freq_hz` for copper.
    pub fn conductor_loss_db_per_m(&self, freq_hz: f64) -> f64 {
        // Surface resistance of copper.
        const MU0: f64 = 1.256_637e-6;
        const SIGMA_CU: f64 = 5.8e7;
        let rs = (std::f64::consts::PI * freq_hz * MU0 / SIGMA_CU).sqrt();
        // Wheeler incremental-inductance approximation for strip-line.
        8.686 * rs / (self.z0_ohm() * self.height_m)
            * (1.0 + 2.0 * self.width_m / self.height_m)
    }

    /// Total loss \[dB/m\].
    pub fn total_loss_db_per_m(&self, freq_hz: f64) -> f64 {
        self.dielectric_loss_db_per_m(freq_hz) + self.conductor_loss_db_per_m(freq_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_em::constants::{F_CENTER_HZ, LAMBDA_GUIDED_79GHZ_M, TL_LOSS_DB_PER_M};

    #[test]
    fn paper_guided_wavelength_reproduced() {
        // §4.2: λg = 2027 µm at 79 GHz. TEM model: λ₀/√3.59 = 2003 µm —
        // within 1.5% of the quoted (HFSS-extracted) value.
        let sl = Stripline::paper_stackup();
        let lg = sl.guided_wavelength_m(F_CENTER_HZ);
        assert!(
            (lg - LAMBDA_GUIDED_79GHZ_M).abs() / LAMBDA_GUIDED_79GHZ_M < 0.015,
            "λg = {:.1} µm",
            lg * 1e6
        );
    }

    #[test]
    fn paper_loss_reproduced() {
        // §4.3 implies ≈102 dB/m total; the physical model should land
        // in the same regime (dielectric + conductor at 79 GHz).
        let sl = Stripline::paper_stackup();
        let loss = sl.total_loss_db_per_m(F_CENTER_HZ);
        assert!(
            loss > 0.5 * TL_LOSS_DB_PER_M && loss < 1.6 * TL_LOSS_DB_PER_M,
            "loss {loss:.1} dB/m vs paper-derived {TL_LOSS_DB_PER_M:.1}"
        );
    }

    #[test]
    fn z0_near_50_ohm() {
        let z = Stripline::paper_stackup().z0_ohm();
        assert!(z > 35.0 && z < 70.0, "Z₀ = {z:.1} Ω");
    }

    #[test]
    fn loss_scales_with_sqrt_frequency_for_conductor() {
        let sl = Stripline::paper_stackup();
        let a = sl.conductor_loss_db_per_m(20e9);
        let b = sl.conductor_loss_db_per_m(80e9);
        assert!((b / a - 2.0).abs() < 0.05, "ratio {}", b / a);
    }

    #[test]
    fn dielectric_loss_linear_in_frequency() {
        let sl = Stripline::paper_stackup();
        let a = sl.dielectric_loss_db_per_m(40e9);
        let b = sl.dielectric_loss_db_per_m(80e9);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn narrower_trace_higher_impedance() {
        let wide = Stripline {
            width_m: 0.3e-3,
            ..Stripline::paper_stackup()
        };
        let narrow = Stripline {
            width_m: 0.08e-3,
            ..Stripline::paper_stackup()
        };
        assert!(narrow.z0_ohm() > wide.z0_ohm());
    }

    #[test]
    fn phase_velocity_below_c() {
        let v = Stripline::paper_stackup().phase_velocity_mps();
        assert!(v < ros_em::constants::C);
        assert!(v > 0.4 * ros_em::constants::C);
    }
}
