//! Dolph–Chebyshev amplitude taper synthesis.
//!
//! The textbook way to control an array's pattern is an amplitude
//! taper. Dolph–Chebyshev is optimal in the narrowest-beam-for-given-
//! sidelobe sense — but it cannot produce the §4.3 *flat-top* beam the
//! tag needs (it trades sidelobes against width around a single
//! pencil maximum), and a passive PCB cannot realise amplitude weights
//! anyway (every PSVAA row reflects with the same strength; only TL
//! *phase* is printable). This module exists to make that argument
//! quantitative: the `optimizer_ablation` companion test shows the
//! Chebyshev beam is ~4× narrower than the DE flat-top at equal row
//! count, collapsing exactly like the uniform stack under height
//! mismatch.

use ros_em::units::cast::AsF64;
use ros_em::units::Db;

/// Chebyshev polynomial `T_m(x)` evaluated for any real `x`.
pub fn chebyshev(m: usize, x: f64) -> f64 {
    if x.abs() <= 1.0 {
        (m.as_f64() * x.acos()).cos()
    } else if x > 1.0 {
        (m.as_f64() * x.acosh()).cosh()
    } else {
        // x < −1: T_m(x) = (−1)^m cosh(m·acosh(−x))
        let v = (m.as_f64() * (-x).acosh()).cosh();
        if m % 2 == 0 {
            v
        } else {
            -v
        }
    }
}

/// Dolph–Chebyshev weights for an `n`-element uniform line array with
/// the given sidelobe level (positive dB, e.g. `Db::new(25.0)` for
/// −25 dB sidelobes). Weights are normalized to a unit maximum.
///
/// # Panics
/// Panics when `n < 3` or `sidelobe <= 0 dB`.
pub fn dolph_chebyshev_weights(n: usize, sidelobe: Db) -> Vec<f64> {
    assert!(n >= 3, "need at least 3 elements");
    assert!(sidelobe.value() > 0.0, "sidelobe level must be positive dB");
    let r = sidelobe.as_amplitude().ratio();
    let m = n - 1;
    let x0 = (r.acosh() / m.as_f64()).cosh();

    // Sample the Chebyshev pattern and inverse-DFT for the weights
    // (standard Stegen synthesis).
    let mut w = vec![0.0; n];
    for (k, wk) in w.iter_mut().enumerate() {
        let mut acc = 0.0;
        for q in 0..n {
            let theta = std::f64::consts::TAU * q.as_f64() / n.as_f64();
            let pattern = chebyshev(m, x0 * (theta / 2.0).cos());
            acc += pattern * (theta * (k.as_f64() - m.as_f64() / 2.0)).cos();
        }
        *wk = acc / n.as_f64();
    }
    let peak = w.iter().cloned().fold(0.0_f64, f64::max);
    for v in w.iter_mut() {
        *v /= peak;
    }
    w
}

/// Array-factor power pattern of real weights on a uniform line array
/// (`spacing_wavelengths` pitch) at direction cosine `u`, normalized
/// by the weight sum (unit peak at `u = 0`).
pub fn taper_pattern(weights: &[f64], spacing_wavelengths: f64, u: f64) -> f64 {
    let n = weights.len().as_f64();
    let center = (n - 1.0) / 2.0;
    let (mut re, mut im) = (0.0, 0.0);
    for (k, &w) in weights.iter().enumerate() {
        let ph = std::f64::consts::TAU * spacing_wavelengths * (k.as_f64() - center) * u;
        re += w * ph.cos();
        im += w * ph.sin();
    }
    let wsum: f64 = weights.iter().sum();
    (re * re + im * im) / (wsum * wsum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_polynomial_identities() {
        // T_0 = 1, T_1 = x, T_2 = 2x² − 1, across both regions.
        for x in [-1.5, -0.7, 0.0, 0.3, 1.0, 2.0] {
            assert!((chebyshev(0, x) - 1.0).abs() < 1e-12);
            assert!((chebyshev(1, x) - x).abs() < 1e-9, "T1({x})");
            assert!(
                (chebyshev(2, x) - (2.0 * x * x - 1.0)).abs() < 1e-9,
                "T2({x})"
            );
        }
    }

    #[test]
    fn weights_symmetric_and_positive() {
        let w = dolph_chebyshev_weights(8, Db::new(25.0));
        assert_eq!(w.len(), 8);
        for k in 0..4 {
            assert!((w[k] - w[7 - k]).abs() < 1e-9, "asymmetric at {k}");
        }
        assert!(w.iter().all(|&v| v > 0.0));
        // Edge elements are the lightest.
        assert!(w[0] < w[3]);
    }

    #[test]
    fn sidelobes_meet_the_design_level() {
        let sll = 30.0;
        let w = dolph_chebyshev_weights(16, Db::new(sll));
        // Scan the pattern outside the main lobe.
        let mut worst = f64::NEG_INFINITY;
        let mut past_first_null = false;
        let mut prev = taper_pattern(&w, 0.5, 0.0);
        for i in 1..400 {
            let u = i as f64 / 400.0;
            let p = taper_pattern(&w, 0.5, u);
            if !past_first_null && p > prev {
                past_first_null = true;
            }
            if past_first_null {
                worst = worst.max(10.0 * p.log10());
            }
            prev = p;
        }
        assert!(
            worst <= -sll + 1.0,
            "worst sidelobe {worst:.1} dB vs design −{sll}"
        );
    }

    #[test]
    fn uniform_equivalent_at_huge_sidelobe_demand() {
        // As the sidelobe requirement relaxes, weights approach uniform
        // (which has −13 dB sidelobes).
        let w = dolph_chebyshev_weights(8, Db::new(13.3));
        let spread = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - w.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.5, "weights {w:?}");
    }

    #[test]
    fn chebyshev_beam_is_narrow_not_flat() {
        // The §4.3 argument: a Chebyshev stack is still a pencil beam.
        // Compare the −3 dB width against the DE flat-top target (10°).
        let n = 8;
        let w = dolph_chebyshev_weights(n, Db::new(25.0));
        let pitch_wl = 0.725;
        // Find the −3 dB width in elevation (u = sin ε; two-way phase
        // doubles the effective pitch).
        let mut width_u = 0.0;
        for i in 0..2000 {
            let u = i as f64 * 1e-4;
            if taper_pattern(&w, 2.0 * pitch_wl, u) < 0.5 {
                width_u = 2.0 * u;
                break;
            }
        }
        let width_deg = 2.0 * ros_em::geom::rad_to_deg(width_u.asin() / 2.0);
        assert!(
            width_deg < 7.0,
            "Chebyshev width {width_deg:.1}° — still a pencil, not a 10° flat-top"
        );
        assert!(width_deg > 2.0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_array_rejected() {
        dolph_chebyshev_weights(2, Db::new(20.0));
    }
}
