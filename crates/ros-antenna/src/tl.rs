//! Strip-line transmission lines (§4.1–§4.2).
//!
//! Two TL properties drive the entire §4.1 design analysis:
//!
//! * **Dispersion** — TLs are cut to lengths differing by integer
//!   multiples of the guided wavelength λg *at the centre frequency*.
//!   Away from 79 GHz the electrical lengths drift apart; the phase
//!   misalignment between the shortest and longest line grows with
//!   their physical length difference, eventually turning coherent
//!   addition destructive. This caps the useful pair count (Fig. 3).
//! * **Loss** — ≈1.02 dB/cm on the Rogers stackup (§4.3 quotes 11 dB
//!   for a 10.8 cm line), which suppresses the outer, longer-line
//!   pairs' contribution.
//!
//! The strip-line is non-dispersive to first order (TEM-like), so
//! `λg(f) = λg(f_c)·f_c/f` — i.e. constant effective permittivity.

use ros_cache::{GeomCache, KeyBuilder, TableKind};
use ros_em::constants::{F_CENTER_HZ, LAMBDA_GUIDED_79GHZ_M, TL_LOSS_DB_PER_M};
use ros_em::units::cast::AsF64;
use ros_em::Complex64;
use std::sync::Arc;

/// Guided wavelength at frequency `freq_hz` \[m\].
#[inline]
pub fn guided_wavelength(freq_hz: f64) -> f64 {
    LAMBDA_GUIDED_79GHZ_M * F_CENTER_HZ / freq_hz
}

/// Effective relative permittivity of the strip-line
/// (`ε_eff = (c / (f·λg))²` ≈ 3.5 for the Rogers 4350B stackup).
pub fn effective_permittivity() -> f64 {
    let c = ros_em::constants::C;
    (c / (F_CENTER_HZ * LAMBDA_GUIDED_79GHZ_M)).powi(2)
}

/// A physical transmission line of fixed length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransmissionLine {
    /// Physical length \[m\].
    pub length_m: f64,
}

impl TransmissionLine {
    /// Creates a line of the given physical length.
    ///
    /// # Panics
    /// Panics on negative length.
    pub fn new(length_m: f64) -> Self {
        assert!(length_m >= 0.0, "TL length must be non-negative");
        TransmissionLine { length_m }
    }

    /// A line of `n` guided wavelengths (at 79 GHz) plus `extra_m`.
    pub fn of_guided_wavelengths(n: f64, extra_m: f64) -> Self {
        TransmissionLine::new(n * LAMBDA_GUIDED_79GHZ_M + extra_m)
    }

    /// Electrical phase delay at `freq_hz` \[rad\] (positive number;
    /// the propagating wave accrues `e^{-jφ}`).
    #[inline]
    pub fn phase(&self, freq_hz: f64) -> f64 {
        std::f64::consts::TAU * self.length_m / guided_wavelength(freq_hz)
    }

    /// One-way amplitude attenuation factor (< 1) from conductor and
    /// dielectric loss.
    #[inline]
    pub fn amplitude(&self) -> f64 {
        ros_em::db::db_to_lin(-TL_LOSS_DB_PER_M * self.length_m)
    }

    /// One-way power loss in dB (positive number).
    #[inline]
    pub fn loss_db(&self) -> f64 {
        TL_LOSS_DB_PER_M * self.length_m
    }

    /// Full complex transfer coefficient at `freq_hz`:
    /// `amplitude · e^{−j·phase}`.
    #[inline]
    pub fn transfer(&self, freq_hz: f64) -> Complex64 {
        Complex64::from_polar(self.amplitude(), -self.phase(freq_hz))
    }

    /// Extends the line by `extra_m`, returning a new line.
    #[inline]
    pub fn extended(&self, extra_m: f64) -> TransmissionLine {
        TransmissionLine::new(self.length_m + extra_m)
    }
}

/// The paper's fabricated PSVAA line lengths (§4.2): 4.106 mm,
/// 9.148 mm, and 12.171 mm for the three pairs, innermost first.
/// (The second line carries an extra λg/2 that cancels the 180° feed-
/// direction offset; [`feed_phase_compensation`] returns that offset.)
pub fn paper_tl_lengths_m() -> [f64; 3] {
    [4.106e-3, 9.148e-3, 12.171e-3]
}

/// The feed-direction phase offset of pair `p` (0-based, innermost
/// first) in the paper's compact layout: the middle pair is fed from
/// the opposite side, contributing a π offset that its +λg/2 of extra
/// line length cancels at the centre frequency.
pub fn feed_phase_compensation(pair: usize) -> f64 {
    if pair == 1 {
        std::f64::consts::PI
    } else {
        0.0
    }
}

/// Complex TL transfer (dispersion) table over a frequency grid,
/// memoized in an injected cache: entry `i * freq_grid_hz.len() + j`
/// is line `i`'s [`TransmissionLine::transfer`] at `freq_grid_hz[j]`
/// (line-major). One table per distinct (lengths, grid) pair — the
/// §4.1 misalignment analysis reuses it across pair counts because
/// the design-rule length sets nest.
pub fn dispersion_table_in(
    cache: &GeomCache,
    lengths_m: &[f64],
    freq_grid_hz: &[f64],
) -> Arc<Vec<Complex64>> {
    let key = KeyBuilder::new("antenna.tl.dispersion")
        .f64s(lengths_m)
        .f64s(freq_grid_hz)
        .finish();
    cache.get_or_build(TableKind::Dispersion, key, || {
        let mut table = Vec::with_capacity(lengths_m.len() * freq_grid_hz.len());
        for &len in lengths_m {
            let line = TransmissionLine::new(len);
            for &freq in freq_grid_hz {
                table.push(line.transfer(freq));
            }
        }
        table
    })
}

/// Ideal TL lengths for an `n_pairs` Van Atta array following the §4.1
/// design rule: adjacent lines differ by exactly 2·λg (the smallest
/// integer multiple of λg that clears the λ antenna pitch), innermost
/// line one λg long.
pub fn design_tl_lengths_m(n_pairs: usize) -> Vec<f64> {
    (0..n_pairs)
        .map(|p| (1.0 + 2.0 * p.as_f64()) * LAMBDA_GUIDED_79GHZ_M)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guided_wavelength_dispersion() {
        // λg shrinks with frequency; anchor value at 79 GHz.
        assert!((guided_wavelength(79.0e9) - 2027.0e-6).abs() < 1e-12);
        assert!(guided_wavelength(81.0e9) < guided_wavelength(76.0e9));
    }

    #[test]
    fn effective_permittivity_plausible() {
        let er = effective_permittivity();
        // Between the Rogers 4450F (3.52) and 4350B (3.66) bulk values.
        assert!(er > 3.3 && er < 3.7, "ε_eff = {er}");
    }

    #[test]
    fn phase_is_2pi_per_guided_wavelength() {
        let tl = TransmissionLine::of_guided_wavelengths(3.0, 0.0);
        assert!((tl.phase(F_CENTER_HZ) - 3.0 * std::f64::consts::TAU).abs() < 1e-9);
    }

    #[test]
    fn phase_misalignment_grows_with_length_difference() {
        // §4.1: misalignment between band edges ∝ length difference.
        let short = TransmissionLine::of_guided_wavelengths(1.0, 0.0);
        let long = TransmissionLine::of_guided_wavelengths(9.0, 0.0);
        let mis = |tl: &TransmissionLine| {
            (tl.phase(81.0e9) - tl.phase(77.0e9)).abs()
        };
        assert!(mis(&long) > 8.0 * mis(&short) * 0.99);
    }

    #[test]
    fn misalignment_criterion_reproduces_4_94_lambda_g() {
        // §4.1: maximum tolerable length difference δl satisfies
        // 2π·(B/c_l)·δl = π/2 with B = 4 GHz ⇒ δl ≈ 4.94 λg.
        let b = 4.0e9;
        let c_l = F_CENTER_HZ * LAMBDA_GUIDED_79GHZ_M; // propagation speed in TL
        let delta_l = c_l / (4.0 * b);
        assert!(
            (delta_l / LAMBDA_GUIDED_79GHZ_M - 4.9375).abs() < 0.01,
            "δl = {} λg",
            delta_l / LAMBDA_GUIDED_79GHZ_M
        );
    }

    #[test]
    fn loss_matches_paper_example() {
        let tl = TransmissionLine::new(0.108);
        assert!((tl.loss_db() - 11.0).abs() < 1e-9);
        assert!((tl.amplitude() - 10f64.powf(-11.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn transfer_combines_amplitude_and_phase() {
        let tl = TransmissionLine::new(5e-3);
        let t = tl.transfer(F_CENTER_HZ);
        assert!((t.abs() - tl.amplitude()).abs() < 1e-12);
        assert!((ros_em::geom::wrap_angle(t.arg() + tl.phase(F_CENTER_HZ))).abs() < 1e-9);
    }

    #[test]
    fn paper_lengths_match_design_multiples() {
        let l = paper_tl_lengths_m();
        let lg = LAMBDA_GUIDED_79GHZ_M;
        // §4.2: 2nd and 3rd differ from the 1st by ≈2.5 λg and ≈4 λg.
        assert!(((l[1] - l[0]) / lg - 2.5).abs() < 0.05);
        assert!(((l[2] - l[0]) / lg - 4.0).abs() < 0.05);
    }

    #[test]
    fn design_lengths_step_by_two_lambda_g() {
        let l = design_tl_lengths_m(4);
        assert_eq!(l.len(), 4);
        for w in l.windows(2) {
            assert!(((w[1] - w[0]) / LAMBDA_GUIDED_79GHZ_M - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn feed_compensation_only_on_middle_pair() {
        assert_eq!(feed_phase_compensation(0), 0.0);
        assert_eq!(feed_phase_compensation(1), std::f64::consts::PI);
        assert_eq!(feed_phase_compensation(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_rejected() {
        TransmissionLine::new(-1.0);
    }

    #[test]
    fn extended_line_adds_length() {
        let tl = TransmissionLine::new(1e-3).extended(0.5e-3);
        assert!((tl.length_m - 1.5e-3).abs() < 1e-15);
    }
}
