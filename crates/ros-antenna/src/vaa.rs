//! The Van Atta array engine (§4.1–§4.2, Figs. 3–6).
//!
//! One model covers all three array types the paper simulates:
//!
//! * **VanAtta** — the classic retroreflector: pairs of patches
//!   interconnected by transmission lines whose lengths differ by
//!   multiples of λg. Signals received by one element re-radiate from
//!   its mirror partner, conjugating the aperture phase and steering
//!   the reflection back at the source.
//! * **Psvaa** — the polarization-switching variant: each pair couples
//!   a vertical patch to a horizontal one, so the retroreflection
//!   returns in the orthogonal polarization (−6 dB, §4.2).
//! * **Ula** — a plain row of disconnected patches: the specular
//!   baseline of Fig. 4 ("an ordinary reflective object").
//!
//! The bistatic response sums, coherently and with full polarization
//! bookkeeping, (a) the retro paths through every TL in both
//! directions and (b) the structural (specular) reflection of each
//! metal patch. RCS values are calibrated to the paper's −37 dBsm
//! anchor for the 3-pair VAA at broadside (⇒ −43 dBsm for the PSVAA,
//! Fig. 5a).

use crate::patch;
use crate::tl::{self, TransmissionLine};
use ros_cache::{GeomCache, Key, KeyBuilder, TableKind};
use ros_em::jones::Polarization;
use ros_em::prelude::*;
use ros_em::units::cast::AsF64;
use std::sync::{Arc, OnceLock};

/// Which of the three array types to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrayKind {
    /// Classic Van Atta retroreflector (co-polarized).
    VanAtta,
    /// Polarization-switching Van Atta (cross-polarized retro).
    Psvaa,
    /// Uniform linear array of disconnected patches (specular).
    Ula,
}

/// Target broadside RCS of the reference 3-pair VAA \[dBsm\],
/// the calibration anchor (Fig. 5a: VAA ≈ −37 dBsm, PSVAA ≈ −43 dBsm).
pub const VAA_BROADSIDE_RCS_DBSM: f64 = -37.0;

/// Amplitude cross-polarization leakage of a patch (−18 dB power),
/// which sets the original VAA's cross-pol floor ≈12 dB below the
/// PSVAA's response in Fig. 5a.
pub(crate) const PATCH_XPOL_LEAK: f64 = 0.126;

/// Amplitude cross-pol leakage of the *structural* (specular) patch
/// reflection — metal patches barely depolarize (−30 dB power).
pub(crate) const STRUCT_XPOL_LEAK: f64 = 0.0316;

/// Excess meander/bend loss of the routed Van Atta lines \[dB per λg\].
///
/// The §4.1 design-rule lines are meandered to fit between the ground
/// vias (Fig. 7b); each guided wavelength of routing adds bend and
/// transition loss on top of the straight-line attenuation. This
/// superlinear penalty on the outer (longer) pairs is what makes the
/// *per-pair* RCS contribution peak at 3 pairs in Fig. 3 rather than
/// grow indefinitely.
pub(crate) const MEANDER_LOSS_DB_PER_LAMBDA_G: f64 = 1.0;

/// Structural (specular) reflection amplitude of a patch whose port is
/// terminated into a matched Van Atta line, relative to the radiating
/// element amplitude. Matched patches mostly absorb and re-radiate
/// through the line; only a small structural mode scatters specularly.
pub(crate) const STRUCT_AMP_CONNECTED: f64 = 0.2;

/// Structural reflection amplitude of a *disconnected* ULA patch
/// (open port ⇒ full re-reflection), relative to the radiating
/// element amplitude.
pub(crate) const STRUCT_AMP_ULA: f64 = 1.0;

/// One interconnected antenna pair.
#[derive(Clone, Copy, Debug)]
struct Pair {
    /// Index of the first element.
    a: usize,
    /// Index of the second (mirror) element.
    b: usize,
    /// The interconnecting line.
    line: TransmissionLine,
    /// Residual feed-direction phase \[rad\] (0 when the extra λg/2 of
    /// line already compensates it; see [`tl::feed_phase_compensation`]).
    feed_phase: f64,
}

/// A single horizontal Van Atta / PSVAA / ULA row.
#[derive(Clone, Debug)]
pub struct VanAttaArray {
    kind: ArrayKind,
    /// Element x-positions \[m\], symmetric about 0.
    element_x: Vec<f64>,
    /// Element patch polarizations.
    element_pol: Vec<Polarization>,
    pairs: Vec<Pair>,
    /// Extra line length added uniformly to every TL \[m\] — the §4.3
    /// beam-shaping phase-weight mechanism.
    extra_line_m: f64,
}

impl VanAttaArray {
    /// Builds an array of `n_pairs` pairs (2·n_pairs elements) on the
    /// λ/2 grid with §4.1 design-rule line lengths (ΔL = 2λg).
    ///
    /// # Panics
    /// Panics when `n_pairs == 0`.
    pub fn new(kind: ArrayKind, n_pairs: usize) -> Self {
        assert!(n_pairs > 0, "an array needs at least one pair");
        let n = 2 * n_pairs;
        let pitch = patch::ELEMENT_PITCH_M;
        let element_x: Vec<f64> = (0..n)
            .map(|i| (i.as_f64() - (n.as_f64() - 1.0) / 2.0) * pitch)
            .collect();

        // Polarizations: VAA/ULA all vertical; PSVAA couples V ↔ H.
        let element_pol: Vec<Polarization> = (0..n)
            .map(|i| match kind {
                ArrayKind::Psvaa => {
                    if i < n_pairs {
                        Polarization::V
                    } else {
                        Polarization::H
                    }
                }
                _ => Polarization::V,
            })
            .collect();

        // Pair p joins element (n_pairs−1−p) to its mirror — outermost
        // pair gets the longest line, as physical routing demands.
        let lengths = tl::design_tl_lengths_m(n_pairs);
        let pairs: Vec<Pair> = match kind {
            ArrayKind::Ula => Vec::new(),
            _ => (0..n_pairs)
                .map(|p| {
                    let a = n_pairs - 1 - p;
                    Pair {
                        a,
                        b: n - 1 - a,
                        line: TransmissionLine::new(lengths[p]),
                        feed_phase: 0.0,
                    }
                })
                .collect(),
        };

        VanAttaArray {
            kind,
            element_x,
            element_pol,
            pairs,
            extra_line_m: 0.0,
        }
    }

    /// The paper's fabricated 3-pair PSVAA (§4.2): exact line lengths
    /// 4.106 / 9.148 / 12.171 mm with the middle pair's feed-direction
    /// π offset (compensated by its extra λg/2 at 79 GHz).
    pub fn paper_psvaa() -> Self {
        let mut arr = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let lengths = tl::paper_tl_lengths_m();
        for (p, pair) in arr.pairs.iter_mut().enumerate() {
            pair.line = TransmissionLine::new(lengths[p]);
            pair.feed_phase = tl::feed_phase_compensation(p);
        }
        arr
    }

    /// The array kind.
    pub fn kind(&self) -> ArrayKind {
        self.kind
    }

    /// Number of antenna pairs (0 for a ULA).
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of patch elements.
    pub fn n_elements(&self) -> usize {
        self.element_x.len()
    }

    /// Physical width of the row \[m\] (3λ for the 3-pair design, §5).
    pub fn width_m(&self) -> f64 {
        match (self.element_x.first(), self.element_x.last()) {
            (Some(first), Some(last)) => last - first + patch::ELEMENT_PITCH_M,
            _ => 0.0,
        }
    }

    /// Adds `extra_m` of line to every TL — the §4.3 phase-weight
    /// mechanism (a phase shift φ needs φ/2π·λg of extra length).
    pub fn with_extra_line(mut self, extra_m: f64) -> Self {
        assert!(extra_m >= 0.0, "extra line length must be non-negative");
        self.extra_line_m = extra_m;
        self
    }

    /// Extra line length currently applied \[m\].
    pub(crate) fn extra_line_m(&self) -> f64 {
        self.extra_line_m
    }

    /// The phase weight the extra line introduces at `freq_hz` \[rad\].
    pub fn phase_weight(&self, freq_hz: f64) -> f64 {
        TransmissionLine::new(self.extra_line_m).phase(freq_hz)
    }

    /// Complex scattered field amplitude \[√m²\] for a plane wave
    /// incident from azimuth `theta_in`, observed at azimuth
    /// `theta_out`, at `freq_hz`, transmitted with polarization `tx`
    /// and received with polarization `rx`.
    ///
    /// Azimuth angles are measured from broadside \[rad\].
    pub(crate) fn bistatic_field(
        &self,
        theta_in: f64,
        theta_out: f64,
        freq_hz: f64,
        tx: Polarization,
        rx: Polarization,
    ) -> Complex64 {
        let k = std::f64::consts::TAU / wavelength(freq_hz);
        let g_in = patch::azimuth_pattern(theta_in);
        let g_out = patch::azimuth_pattern(theta_out);
        let m = patch::match_amplitude(freq_hz);
        let a0 = calibration_amp();

        let mut field = Complex64::ZERO;

        // Retro paths through each TL, both directions.
        for pair in &self.pairs {
            let line = pair.line.extended(self.extra_line_m);
            let t = line.transfer(freq_hz)
                * Complex64::cis(pair.feed_phase)
                * meander_amplitude(line.length_m);
            for (i, j) in [(pair.a, pair.b), (pair.b, pair.a)] {
                let rx_proj = pol_factor(self.element_pol[i], tx);
                let tx_proj = pol_factor(self.element_pol[j], rx);
                let geom = Complex64::cis(
                    k * (self.element_x[i] * theta_in.sin()
                        + self.element_x[j] * theta_out.sin()),
                );
                field += geom * t * (a0 * g_in * g_out * m * m * rx_proj * tx_proj);
            }
        }

        // Structural (specular) reflection of every patch.
        let s_amp = match self.kind {
            ArrayKind::Ula => STRUCT_AMP_ULA,
            _ => STRUCT_AMP_CONNECTED,
        };
        let s_proj = if tx == rx { 1.0 } else { STRUCT_XPOL_LEAK };
        for &x in &self.element_x {
            let geom = Complex64::cis(k * x * (theta_in.sin() + theta_out.sin()));
            field += geom * (a0 * g_in * g_out * s_amp * s_proj);
        }

        field
    }

    /// Monostatic scattered field: `theta_out == theta_in`.
    pub fn monostatic_field(
        &self,
        theta: f64,
        freq_hz: f64,
        tx: Polarization,
        rx: Polarization,
    ) -> Complex64 {
        self.bistatic_field(theta, theta, freq_hz, tx, rx)
    }

    /// Monostatic RCS \[dBsm\].
    pub fn monostatic_rcs_dbsm(
        &self,
        theta: f64,
        freq_hz: f64,
        tx: Polarization,
        rx: Polarization,
    ) -> f64 {
        let sigma = self.monostatic_field(theta, freq_hz, tx, rx).norm_sqr();
        10.0 * sigma.max(1e-30).log10()
    }

    /// Structural layout key of this array: kind, exact element
    /// geometry and polarizations, every pair's line length and feed
    /// phase, and the uniform extra line — everything
    /// [`Self::bistatic_field`] reads. Two arrays share cached tables
    /// iff this key is equal.
    pub(crate) fn layout_key(&self) -> Key {
        let kind = match self.kind {
            ArrayKind::VanAtta => 0u64,
            ArrayKind::Psvaa => 1,
            ArrayKind::Ula => 2,
        };
        let pols: Vec<bool> = self
            .element_pol
            .iter()
            .map(|&p| p == Polarization::H)
            .collect();
        let mut b = KeyBuilder::new("antenna.vaa.layout")
            .u64(kind)
            .f64s(&self.element_x)
            .bools(&pols)
            .f64(self.extra_line_m);
        for pair in &self.pairs {
            b = b
                .usize(pair.a)
                .usize(pair.b)
                .f64(pair.line.length_m)
                .f64(pair.feed_phase);
        }
        b.finish()
    }

    /// Monostatic RCS azimuth cut \[dBsm\] sampled at `thetas`,
    /// memoized in an injected cache. Bit-identical to calling
    /// [`Self::monostatic_rcs_dbsm`] per sample; repeated cuts of the
    /// same layout (e.g. the VAA baseline shared by Figs. 4a and 5b)
    /// build once.
    pub fn monostatic_rcs_table_in(
        &self,
        cache: &GeomCache,
        thetas: &[f64],
        freq_hz: f64,
        tx: Polarization,
        rx: Polarization,
    ) -> Arc<Vec<f64>> {
        let key = KeyBuilder::new("antenna.vaa.monostatic_rcs")
            .nested(&self.layout_key())
            .f64(freq_hz)
            .bool(tx == Polarization::H)
            .bool(rx == Polarization::H)
            .f64s(thetas)
            .finish();
        cache.get_or_build(TableKind::Pattern, key, || {
            thetas
                .iter()
                .map(|&th| self.monostatic_rcs_dbsm(th, freq_hz, tx, rx))
                .collect()
        })
    }

    /// Bistatic RCS \[dBsm\].
    pub fn bistatic_rcs_dbsm(
        &self,
        theta_in: f64,
        theta_out: f64,
        freq_hz: f64,
        tx: Polarization,
        rx: Polarization,
    ) -> f64 {
        let sigma = self
            .bistatic_field(theta_in, theta_out, freq_hz, tx, rx)
            .norm_sqr();
        10.0 * sigma.max(1e-30).log10()
    }
}

/// Amplitude coupling between a patch of polarization `patch_pol` and a
/// wave of polarization `wave_pol`.
#[inline]
fn pol_factor(patch_pol: Polarization, wave_pol: Polarization) -> f64 {
    if patch_pol == wave_pol {
        1.0
    } else {
        PATCH_XPOL_LEAK
    }
}

/// Amplitude factor of the excess meander/bend routing loss.
#[inline]
fn meander_amplitude(length_m: f64) -> f64 {
    let loss_db =
        MEANDER_LOSS_DB_PER_LAMBDA_G * length_m / ros_em::constants::LAMBDA_GUIDED_79GHZ_M;
    ros_em::db::db_to_lin(-loss_db)
}

/// Per-element field amplitude \[√m²\], fixed so the *retro component*
/// of the reference 3-pair VAA hits [`VAA_BROADSIDE_RCS_DBSM`] at
/// 79 GHz, co-pol. (Anchoring on the retro component keeps the
/// retroreflective plateau of Fig. 4a/5a at the paper's level; the
/// structural specular term adds a small extra peak at broadside.)
fn calibration_amp() -> f64 {
    static CAL: OnceLock<f64> = OnceLock::new();
    *CAL.get_or_init(|| {
        let reference = VanAttaArray::new(ArrayKind::VanAtta, 3);
        let m = patch::match_amplitude(F_CENTER_HZ);
        let mut raw = Complex64::ZERO;
        for pair in &reference.pairs {
            let t = pair.line.transfer(F_CENTER_HZ)
                * Complex64::cis(pair.feed_phase)
                * meander_amplitude(pair.line.length_m);
            raw += t * (2.0 * m * m); // both directions, co-pol
        }
        let target_field = ros_em::db::db_to_lin(VAA_BROADSIDE_RCS_DBSM);
        target_field / raw.abs()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_em::geom::deg_to_rad;

    const FC: f64 = F_CENTER_HZ;

    #[test]
    fn calibration_anchor_holds() {
        // The retro plateau (off broadside, where the structural
        // specular term has decohered) sits at the −37 dBsm anchor
        // minus the small element-pattern rolloff.
        let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
        let th = deg_to_rad(25.0);
        let rcs = vaa.monostatic_rcs_dbsm(th, FC, Polarization::V, Polarization::V);
        let pattern_drop_db = -40.0 * patch::azimuth_pattern(th).log10();
        assert!(
            (rcs - (VAA_BROADSIDE_RCS_DBSM - pattern_drop_db)).abs() < 1.0,
            "plateau RCS {rcs} dBsm (expected ≈{})",
            VAA_BROADSIDE_RCS_DBSM - pattern_drop_db
        );
    }

    #[test]
    fn vaa_is_retroreflective_across_fov() {
        // Fig. 4a: flat RCS within ±60° (small broadside specular peak
        // allowed, plateau variation itself must be mild).
        let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
        let broadside = vaa.monostatic_rcs_dbsm(0.0, FC, Polarization::V, Polarization::V);
        let mut plateau = Vec::new();
        for deg in [-60.0, -40.0, -20.0, 20.0, 40.0, 60.0] {
            let rcs =
                vaa.monostatic_rcs_dbsm(deg_to_rad(deg), FC, Polarization::V, Polarization::V);
            assert!(
                broadside - rcs < 6.5,
                "RCS at {deg}° is {rcs}, broadside {broadside}"
            );
            plateau.push(rcs);
        }
        let spread = plateau.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - plateau.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 4.5, "plateau spread {spread:.1} dB");
    }

    #[test]
    fn ula_is_specular() {
        // Fig. 4a: the ULA responds strongly only near broadside.
        let ula = VanAttaArray::new(ArrayKind::Ula, 3);
        let broadside = ula.monostatic_rcs_dbsm(0.0, FC, Polarization::V, Polarization::V);
        let off = ula.monostatic_rcs_dbsm(deg_to_rad(30.0), FC, Polarization::V, Polarization::V);
        assert!(
            broadside - off > 15.0,
            "ULA broadside {broadside}, 30° {off}"
        );
    }

    #[test]
    fn vaa_beats_ula_off_broadside() {
        let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
        let ula = VanAttaArray::new(ArrayKind::Ula, 3);
        for deg in [20.0, 35.0, 50.0] {
            let v = vaa.monostatic_rcs_dbsm(deg_to_rad(deg), FC, Polarization::V, Polarization::V);
            let u = ula.monostatic_rcs_dbsm(deg_to_rad(deg), FC, Polarization::V, Polarization::V);
            assert!(v > u + 8.0, "at {deg}°: VAA {v} vs ULA {u}");
        }
    }

    #[test]
    fn bistatic_vaa_returns_to_source() {
        // Fig. 4b: incidence 30°; the VAA's strongest response is back
        // at 30°, the ULA's at −30°.
        let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
        let ula = VanAttaArray::new(ArrayKind::Ula, 3);
        let th_in = deg_to_rad(30.0);
        let retro =
            vaa.bistatic_rcs_dbsm(th_in, th_in, FC, Polarization::V, Polarization::V);
        let spec =
            vaa.bistatic_rcs_dbsm(th_in, -th_in, FC, Polarization::V, Polarization::V);
        assert!(retro > spec + 5.0, "VAA retro {retro} vs specular {spec}");

        let ula_retro =
            ula.bistatic_rcs_dbsm(th_in, th_in, FC, Polarization::V, Polarization::V);
        let ula_spec =
            ula.bistatic_rcs_dbsm(th_in, -th_in, FC, Polarization::V, Polarization::V);
        assert!(ula_spec > ula_retro + 5.0);
    }

    #[test]
    fn psvaa_switches_polarization() {
        // Fig. 5a: PSVAA cross-pol ≈ −43 dBsm, ≈12 dB above the
        // original VAA's cross-pol leakage.
        let psvaa = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
        let ps_cross =
            psvaa.monostatic_rcs_dbsm(deg_to_rad(10.0), FC, Polarization::V, Polarization::H);
        let vaa_cross =
            vaa.monostatic_rcs_dbsm(deg_to_rad(10.0), FC, Polarization::V, Polarization::H);
        assert!(
            (ps_cross - (-43.0)).abs() < 3.0,
            "PSVAA cross-pol {ps_cross} dBsm"
        );
        assert!(
            ps_cross - vaa_cross > 8.0,
            "PSVAA {ps_cross} vs VAA {vaa_cross}"
        );
    }

    #[test]
    fn psvaa_pays_6db_for_switching() {
        // §4.2: the PSVAA's cross-pol RCS sits ≈6 dB below the original
        // VAA's co-pol RCS (half the elements re-radiate). Measured off
        // broadside so the structural specular term doesn't bias it.
        let psvaa = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
        let th = deg_to_rad(25.0);
        let ps = psvaa.monostatic_rcs_dbsm(th, FC, Polarization::V, Polarization::H);
        let co = vaa.monostatic_rcs_dbsm(th, FC, Polarization::V, Polarization::V);
        let penalty = co - ps;
        assert!(
            (penalty - 6.0).abs() < 1.5,
            "polarization-switching penalty {penalty:.1} dB"
        );
    }

    #[test]
    fn psvaa_copol_is_specular_only() {
        // Fig. 5b: with co-polarized Tx/Rx the PSVAA acts as a normal
        // specular reflector.
        let psvaa = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let broadside =
            psvaa.monostatic_rcs_dbsm(0.0, FC, Polarization::V, Polarization::V);
        let off = psvaa.monostatic_rcs_dbsm(
            deg_to_rad(30.0),
            FC,
            Polarization::V,
            Polarization::V,
        );
        assert!(broadside - off > 10.0, "co-pol {broadside} vs {off}");
    }

    #[test]
    fn psvaa_rcs_stable_across_band() {
        // Fig. 6a: cross-pol RCS varies < 4 dB over 76–81 GHz.
        let psvaa = VanAttaArray::paper_psvaa();
        let th = deg_to_rad(15.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for k in 0..=20 {
            let f = 76.0e9 + 5.0e9 * k as f64 / 20.0;
            let rcs = psvaa.monostatic_rcs_dbsm(th, f, Polarization::V, Polarization::H);
            min = min.min(rcs);
            max = max.max(rcs);
        }
        assert!(max - min < 4.0, "band ripple {:.1} dB", max - min);
    }

    #[test]
    fn per_pair_rcs_maximized_at_3_pairs() {
        // Fig. 3: the worst-case-over-band RCS contribution per antenna
        // pair peaks at 3 pairs — beyond that, band-edge TL phase
        // misalignment plus routing loss erodes the marginal gain.
        let per_pair: Vec<f64> = (1..=6)
            .map(|n| {
                let vaa = VanAttaArray::new(ArrayKind::VanAtta, n);
                let th = deg_to_rad(30.0);
                let mut worst = f64::INFINITY;
                let samples = 21;
                for k in 0..samples {
                    let f = 76.0e9 + 5.0e9 * k as f64 / (samples - 1) as f64;
                    // Off-broadside angle so the structural specular
                    // term (which also grows with n) doesn't dominate.
                    let p = vaa
                        .monostatic_field(th, f, Polarization::V, Polarization::V)
                        .norm_sqr();
                    worst = worst.min(p);
                }
                worst / n as f64
            })
            .collect();
        let best = per_pair
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
            + 1;
        assert_eq!(best, 3, "per-pair RCS {per_pair:?}");
    }

    #[test]
    fn extra_line_shifts_phase() {
        let lg = ros_em::constants::LAMBDA_GUIDED_79GHZ_M;
        let base = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let shifted = VanAttaArray::new(ArrayKind::Psvaa, 3).with_extra_line(lg / 4.0);
        // λg/4 of extra line = 90° of phase weight.
        assert!(
            (shifted.phase_weight(FC) - std::f64::consts::FRAC_PI_2).abs() < 1e-9
        );
        let th = deg_to_rad(20.0);
        let f0 = base.monostatic_field(th, FC, Polarization::V, Polarization::H);
        let f1 = shifted.monostatic_field(th, FC, Polarization::V, Polarization::H);
        // Same magnitude (tiny extra loss), rotated phase.
        assert!((f0.abs() - f1.abs()).abs() / f0.abs() < 0.05);
        let dphi = ros_em::geom::wrap_angle(f1.arg() - f0.arg());
        assert!(
            (dphi + std::f64::consts::FRAC_PI_2).abs() < 0.05,
            "phase shift {dphi}"
        );
    }

    #[test]
    fn geometry_accessors() {
        let arr = VanAttaArray::new(ArrayKind::Psvaa, 3);
        assert_eq!(arr.n_elements(), 6);
        assert_eq!(arr.n_pairs(), 3);
        assert_eq!(arr.kind(), ArrayKind::Psvaa);
        // §5: a PSVAA is 3λ wide.
        let lambda = ros_em::constants::LAMBDA_CENTER_M;
        assert!((arr.width_m() - 3.0 * lambda).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn zero_pairs_rejected() {
        VanAttaArray::new(ArrayKind::VanAtta, 0);
    }

    #[test]
    fn paper_psvaa_aligned_at_center() {
        // The paper lengths + feed compensation must be phase-aligned
        // at 79 GHz: response magnitude within 1 dB of the design-rule
        // array's.
        let paper = VanAttaArray::paper_psvaa();
        let design = VanAttaArray::new(ArrayKind::Psvaa, 3);
        let th = deg_to_rad(20.0);
        let p = paper.monostatic_rcs_dbsm(th, FC, Polarization::V, Polarization::H);
        let d = design.monostatic_rcs_dbsm(th, FC, Polarization::V, Polarization::H);
        assert!((p - d).abs() < 2.0, "paper {p} vs design {d}");
    }
}
