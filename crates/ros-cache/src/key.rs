//! Structural cache keys: the exact-input content addressing scheme.
//!
//! A [`Key`] is built by feeding every input of a pure geometry/EM
//! function — scalars, flags, slices — through a [`KeyBuilder`]. Each
//! component is written twice:
//!
//! * into a 64-bit FNV-1a fingerprint (fast `Ord` discrimination), and
//! * into an exact, type-tagged byte encoding of the inputs.
//!
//! `f64`s are keyed by their `to_bits()` bit pattern, exactly like
//! `ros_dsp::plan::PlanCache` keys CZT arcs: two calls share a table
//! only when the computation would be bit-identical. Because the full
//! byte encoding participates in `Eq`/`Ord`, equality is *exact* — the
//! fingerprint only accelerates comparisons, it never decides them —
//! so a hash collision can at worst slow a lookup down, never alias
//! two different inputs to one table.
//!
//! Every component carries a type tag and slices carry their length,
//! so the encoding is prefix-free: perturbing any single `f64` bit,
//! element, or slice length produces a distinct key (the
//! `cache_props` suite pins this property).

use ros_em::units::cast::u64_from_usize;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A content-addressed cache key: FNV-1a fingerprint plus the exact
/// structural byte encoding of the inputs it was built from.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Fingerprint first: `Ord` discriminates on it before falling
    /// back to the exact bytes, keeping `BTreeMap` comparisons cheap.
    fp: u64,
    bytes: Box<[u8]>,
}

impl Key {
    /// The 64-bit FNV-1a fingerprint of the structural encoding.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The exact structural encoding (type-tagged, length-prefixed).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Component type tags — these make the encoding prefix-free, so two
/// different input sequences can never serialize to the same bytes.
mod tag {
    pub(crate) const DOMAIN: u8 = 0x01;
    pub(crate) const U64: u8 = 0x02;
    pub(crate) const BOOL: u8 = 0x03;
    pub(crate) const F64: u8 = 0x04;
    pub(crate) const F64_SLICE: u8 = 0x05;
    pub(crate) const BOOL_SLICE: u8 = 0x06;
    pub(crate) const NESTED: u8 = 0x07;
}

/// Incremental [`Key`] builder. Feed every input of the memoized
/// function, in a fixed order, then [`KeyBuilder::finish`].
#[derive(Clone, Debug)]
pub struct KeyBuilder {
    h: u64,
    bytes: Vec<u8>,
}

impl KeyBuilder {
    /// Starts a key in a named domain (one domain per memoized
    /// function, e.g. `"antenna.shaping_profile"`) so two functions
    /// with coincidentally identical parameter lists never share an
    /// entry.
    pub fn new(domain: &str) -> Self {
        let mut b = KeyBuilder {
            h: FNV_OFFSET,
            bytes: Vec::with_capacity(32 + domain.len()),
        };
        b.push(tag::DOMAIN);
        b.raw_u64(u64_from_usize(domain.len()));
        for byte in domain.bytes() {
            b.push(byte);
        }
        b
    }

    fn push(&mut self, byte: u8) {
        self.h = (self.h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        self.bytes.push(byte);
    }

    fn raw_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.push(byte);
        }
    }

    /// Appends a `u64` component.
    #[must_use]
    pub fn u64(mut self, v: u64) -> Self {
        self.push(tag::U64);
        self.raw_u64(v);
        self
    }

    /// Appends a `usize` component (encoded as `u64`).
    #[must_use]
    pub fn usize(self, v: usize) -> Self {
        self.u64(u64_from_usize(v))
    }

    /// Appends a `bool` component.
    #[must_use]
    pub fn bool(mut self, v: bool) -> Self {
        self.push(tag::BOOL);
        self.push(u8::from(v));
        self
    }

    /// Appends an `f64` component, keyed by exact bit pattern.
    #[must_use]
    pub fn f64(mut self, v: f64) -> Self {
        self.push(tag::F64);
        self.raw_u64(v.to_bits());
        self
    }

    /// Appends an `&[f64]` component: length, then each element's bit
    /// pattern in order.
    #[must_use]
    pub fn f64s(mut self, vs: &[f64]) -> Self {
        self.push(tag::F64_SLICE);
        self.raw_u64(u64_from_usize(vs.len()));
        for &v in vs {
            self.raw_u64(v.to_bits());
        }
        self
    }

    /// Appends an `&[bool]` component: length, then each element.
    #[must_use]
    pub fn bools(mut self, vs: &[bool]) -> Self {
        self.push(tag::BOOL_SLICE);
        self.raw_u64(u64_from_usize(vs.len()));
        for &v in vs {
            self.push(u8::from(v));
        }
        self
    }

    /// Embeds a previously built [`Key`] (e.g. a layout key inside a
    /// pattern-table key) as one length-prefixed component.
    #[must_use]
    pub fn nested(mut self, k: &Key) -> Self {
        self.push(tag::NESTED);
        self.raw_u64(u64_from_usize(k.bytes.len()));
        for i in 0..k.bytes.len() {
            self.push(k.bytes[i]);
        }
        self
    }

    /// Seals the key.
    pub fn finish(self) -> Key {
        Key {
            fp: self.h,
            bytes: self.bytes.into_boxed_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_equal_key() {
        let a = KeyBuilder::new("t").f64(1.5).usize(4).finish();
        let b = KeyBuilder::new("t").f64(1.5).usize(4).finish();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn domain_separates_identical_params() {
        let a = KeyBuilder::new("alpha").u64(7).finish();
        let b = KeyBuilder::new("beta").u64(7).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_keys_by_bit_pattern() {
        // 0.0 and -0.0 compare equal as floats but have distinct bits:
        // they must key distinct tables (the computation may differ).
        let pos = KeyBuilder::new("t").f64(0.0).finish();
        let neg = KeyBuilder::new("t").f64(-0.0).finish();
        assert_ne!(pos, neg);
        // NaN keys consistently (same bit pattern, same key).
        let nan1 = KeyBuilder::new("t").f64(f64::NAN).finish();
        let nan2 = KeyBuilder::new("t").f64(f64::NAN).finish();
        assert_eq!(nan1, nan2);
    }

    #[test]
    fn slice_length_is_part_of_the_key() {
        let a = KeyBuilder::new("t").f64s(&[1.0, 2.0]).finish();
        let b = KeyBuilder::new("t").f64s(&[1.0, 2.0, 0.0]).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn adjacent_components_do_not_bleed() {
        // [1.0] ++ [] vs [] ++ [1.0]: tags + lengths keep them apart.
        let a = KeyBuilder::new("t").f64s(&[1.0]).f64s(&[]).finish();
        let b = KeyBuilder::new("t").f64s(&[]).f64s(&[1.0]).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn nested_key_round_trips() {
        let layout = KeyBuilder::new("layout").f64s(&[0.0, 1.0]).finish();
        let a = KeyBuilder::new("pattern").nested(&layout).f64(79e9).finish();
        let b = KeyBuilder::new("pattern").nested(&layout).f64(79e9).finish();
        assert_eq!(a, b);
        let other = KeyBuilder::new("layout").f64s(&[0.0, 2.0]).finish();
        let c = KeyBuilder::new("pattern").nested(&other).f64(79e9).finish();
        assert_ne!(a, c);
    }
}
