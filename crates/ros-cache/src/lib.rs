//! Content-addressed geometry/EM memoization (`ros-cache`).
//!
//! A corridor reuses a handful of tag designs across thousands of
//! encounters, yet RCS grids, array-factor patterns, TL dispersion
//! tables, and DE beam-shaping profiles are pure functions of their
//! inputs. This crate memoizes them behind one explicit, *injected*
//! store:
//!
//! * [`key::KeyBuilder`] turns exact inputs (f64s by bit pattern, as
//!   `ros-dsp::plan` keys CZT arcs) into structural [`key::Key`]s.
//! * [`GeomCache`] maps keys to shared immutable `Arc<T>` tables with
//!   bounded capacity, deterministic insertion-order eviction,
//!   explicit [`GeomCache::clear`]/[`GeomCache::invalidate_kind`], and
//!   per-kind hit/miss/insert/evict counters exported as `cache.*`
//!   metrics.
//!
//! **No globals.** The PR 5 incident (an implicit one-shot shaping
//! cache made golden traces cache-temperature-dependent) fixed the
//! design rule: every cache is passed by reference from the
//! composition root, and `tests/cache_determinism.rs` proves results
//! are bit-identical whether the cache is cold, pre-warmed, or
//! thrashing at capacity 1.

pub mod key;
mod store;

pub use key::{Key, KeyBuilder};
pub use store::{CacheStats, GeomCache, StatsSnapshot, TableKind};
