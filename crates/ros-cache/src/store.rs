//! The bounded, injected memo store behind every geometry/EM table.
//!
//! [`GeomCache`] maps structural [`Key`]s to shared immutable tables
//! (`Arc<T>`). It is always passed by reference — never a global, per
//! the PR 5 incident rule — and its behaviour is deterministic end to
//! end:
//!
//! * **Lookup** is exact: keys compare on their full structural byte
//!   encoding, so two different inputs can never alias one table.
//! * **Build-under-lock**: a miss computes the table while holding the
//!   store lock, so a key is built exactly once no matter how many
//!   threads race on it (counters stay thread-count-invariant).
//!   Build closures must therefore never re-enter the cache — compose
//!   nested lookups in two phases (resolve the inner table first, then
//!   pass it into the outer build).
//! * **Eviction** is insertion-order (FIFO), never hash-order or
//!   recency-order, so which entry dies is a pure function of the
//!   lookup sequence.
//!
//! Every table kind carries hit/miss/insert/evict counters; a serial
//! epilogue exports them as `cache.*` metrics via
//! [`GeomCache::emit_obs`].

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use ros_em::units::cast::AsF64;

use crate::key::Key;

/// Default bounded capacity: comfortably above any realistic distinct
/// design count in a corridor, small enough that a runaway key stream
/// cannot exhaust memory.
pub(crate) const DEFAULT_CAPACITY: usize = 512;

/// The table families the cache distinguishes for accounting and
/// targeted invalidation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TableKind {
    /// RCS factor grids (`core::rcs_model::sample_rcs_factor`) and
    /// their derived spectra.
    RcsFactor,
    /// Radiation/array-factor pattern tables (stack elevation cuts,
    /// VAA azimuth cuts, whole-tag layouts).
    Pattern,
    /// Transmission-line dispersion tables over a frequency grid.
    Dispersion,
    /// DE-optimized beam-shaping profiles (`ShapingProfile`).
    Shaping,
}

impl TableKind {
    /// All kinds, in counter-emission order.
    pub const ALL: [TableKind; 4] = [
        TableKind::RcsFactor,
        TableKind::Pattern,
        TableKind::Dispersion,
        TableKind::Shaping,
    ];

    fn index(self) -> usize {
        match self {
            TableKind::RcsFactor => 0,
            TableKind::Pattern => 1,
            TableKind::Dispersion => 2,
            TableKind::Shaping => 3,
        }
    }

}

/// Monotonic per-kind lookup accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
// lint: allow-dead-pub(returned by StatsSnapshot::kind; callers bind fields, never the name)
pub struct CacheStats {
    /// Lookups served from an existing entry.
    pub hits: u64,
    /// Lookups that had to build the table.
    pub misses: u64,
    /// Entries inserted (== misses unless a downcast mismatch replaced
    /// an entry in place).
    pub inserts: u64,
    /// Entries evicted by the capacity bound or dropped by
    /// `clear`/`invalidate_kind`.
    pub evictions: u64,
}

/// A point-in-time copy of every kind's [`CacheStats`] plus the entry
/// count, used both for assertions and for delta-based obs export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
// lint: allow-dead-pub(returned by GeomCache::snapshot; callers bind methods, never the name)
pub struct StatsSnapshot {
    /// Per-kind stats, indexed by [`TableKind::ALL`] order.
    pub by_kind: [CacheStats; 4],
    /// Live entries at snapshot time.
    pub entries: usize,
}

impl StatsSnapshot {
    /// Stats for one table kind.
    pub fn kind(&self, kind: TableKind) -> CacheStats {
        self.by_kind[kind.index()]
    }

    /// Total hits across kinds.
    pub fn hits(&self) -> u64 {
        self.by_kind.iter().map(|s| s.hits).sum()
    }

    /// Total misses across kinds.
    pub fn misses(&self) -> u64 {
        self.by_kind.iter().map(|s| s.misses).sum()
    }

    /// Total inserts across kinds.
    pub fn inserts(&self) -> u64 {
        self.by_kind.iter().map(|s| s.inserts).sum()
    }

    /// Total evictions across kinds.
    pub fn evictions(&self) -> u64 {
        self.by_kind.iter().map(|s| s.evictions).sum()
    }
}

struct Entry {
    kind: TableKind,
    value: Arc<dyn Any + Send + Sync>,
}

struct Inner {
    map: BTreeMap<Key, Entry>,
    /// Insertion order; the front is the eviction victim. Never
    /// reordered on hit (FIFO, not LRU) so eviction is a pure function
    /// of the insert sequence.
    order: VecDeque<Key>,
    by_kind: [CacheStats; 4],
    capacity: usize,
}

/// Content-addressed store of shared immutable geometry/EM tables.
///
/// Cheap to share: `Clone` clones the `Arc`, so producers and workers
/// hold handles to the *same* store. All methods take `&self`.
#[derive(Clone)]
pub struct GeomCache {
    inner: Arc<Mutex<Inner>>,
}

impl Default for GeomCache {
    fn default() -> Self {
        GeomCache::new()
    }
}

impl std::fmt::Debug for GeomCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("GeomCache")
            .field("entries", &snap.entries)
            .field("hits", &snap.hits())
            .field("misses", &snap.misses())
            .finish()
    }
}

impl GeomCache {
    /// A cache with the default 512-entry bound (`DEFAULT_CAPACITY`).
    pub fn new() -> Self {
        GeomCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache bounded to `capacity` entries (clamped to at least 1).
    /// When full, the oldest-inserted entry is evicted first.
    pub fn with_capacity(capacity: usize) -> Self {
        GeomCache {
            inner: Arc::new(Mutex::new(Inner {
                map: BTreeMap::new(),
                order: VecDeque::new(),
                by_kind: [CacheStats::default(); 4],
                capacity: capacity.max(1),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a build closure panicked; the map
        // itself is still structurally sound (entries are only
        // inserted complete), so recover rather than cascade.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Fetch-or-build the table for `key`. On a miss, `build` runs
    /// while the store lock is held, so every distinct key is built
    /// exactly once regardless of thread count. `build` must not
    /// re-enter this cache (resolve nested tables *before* calling).
    pub fn get_or_build<T, F>(&self, kind: TableKind, key: Key, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let mut g = self.lock();
        if let Some(entry) = g.map.get(&key) {
            if let Ok(v) = Arc::downcast::<T>(Arc::clone(&entry.value)) {
                g.by_kind[kind.index()].hits += 1;
                return v;
            }
            // Type mismatch under a colliding key (distinct domains
            // make this unreachable in practice): treat as a miss and
            // replace the entry deterministically.
            g.by_kind[kind.index()].misses += 1;
            let value: Arc<T> = Arc::new(build());
            let entry = Entry {
                kind,
                value: Arc::clone(&value) as Arc<dyn Any + Send + Sync>,
            };
            g.by_kind[kind.index()].inserts += 1;
            g.map.insert(key, entry);
            return value;
        }
        g.by_kind[kind.index()].misses += 1;
        let value: Arc<T> = Arc::new(build());
        g.by_kind[kind.index()].inserts += 1;
        if g.map.len() >= g.capacity {
            // Evict the oldest insert whose entry is still live.
            while let Some(victim) = g.order.pop_front() {
                if let Some(old) = g.map.remove(&victim) {
                    g.by_kind[old.kind.index()].evictions += 1;
                    break;
                }
            }
        }
        g.order.push_back(key.clone());
        g.map.insert(
            key,
            Entry {
                kind,
                value: Arc::clone(&value) as Arc<dyn Any + Send + Sync>,
            },
        );
        value
    }

    /// Whether `key` currently has a live entry (no stats effect).
    pub fn contains(&self, key: &Key) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counted as evictions). Stats survive.
    pub fn clear(&self) {
        let mut g = self.lock();
        // lint: allow-alloc(cold invalidation API; the callgraph resolves `clear` by name and collides with Vec::clear in hot code)
        let kinds: Vec<TableKind> = g.map.values().map(|e| e.kind).collect();
        for kind in kinds {
            g.by_kind[kind.index()].evictions += 1;
        }
        g.map.clear();
        g.order.clear();
    }

    /// Drops every entry of one table kind (counted as evictions),
    /// e.g. after a change that invalidates all shaping profiles.
    pub fn invalidate_kind(&self, kind: TableKind) {
        let mut g = self.lock();
        let dead: Vec<Key> = g
            .map
            .iter()
            .filter(|(_, e)| e.kind == kind)
            .map(|(k, _)| k.clone())
            .collect();
        for key in dead {
            g.map.remove(&key);
            g.by_kind[kind.index()].evictions += 1;
        }
        let inner = &mut *g;
        inner.order.retain(|k| inner.map.contains_key(k));
    }

    /// A point-in-time copy of all counters and the entry count.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = self.lock();
        StatsSnapshot {
            by_kind: g.by_kind,
            entries: g.map.len(),
        }
    }

    /// Emits the counter deltas since `since` as `cache.*` metrics.
    ///
    /// Call this from a *serial* epilogue (as `ros-serve` does for its
    /// `serve.*` metrics) with a snapshot taken before the parallel
    /// section, so the exported numbers are thread-count-invariant.
    pub fn emit_obs(&self, since: &StatsSnapshot) {
        let now = self.snapshot();
        let d = |cur: u64, old: u64| usize::try_from(cur.saturating_sub(old)).unwrap_or(usize::MAX);
        ros_obs::count("cache.hit", d(now.hits(), since.hits()));
        ros_obs::count("cache.miss", d(now.misses(), since.misses()));
        ros_obs::count("cache.insert", d(now.inserts(), since.inserts()));
        ros_obs::count("cache.evict", d(now.evictions(), since.evictions()));
        ros_obs::gauge("cache.entries", entries_gauge(now.entries));
        // Per-kind miss counters stay literal call sites so the
        // obs-names reconciliation can resolve them.
        ros_obs::count(
            "cache.rcs_factor.miss",
            d(
                now.kind(TableKind::RcsFactor).misses,
                since.kind(TableKind::RcsFactor).misses,
            ),
        );
        ros_obs::count(
            "cache.pattern.miss",
            d(
                now.kind(TableKind::Pattern).misses,
                since.kind(TableKind::Pattern).misses,
            ),
        );
        ros_obs::count(
            "cache.dispersion.miss",
            d(
                now.kind(TableKind::Dispersion).misses,
                since.kind(TableKind::Dispersion).misses,
            ),
        );
        ros_obs::count(
            "cache.shaping.miss",
            d(
                now.kind(TableKind::Shaping).misses,
                since.kind(TableKind::Shaping).misses,
            ),
        );
    }
}

/// Entry counts are tiny; the widening is exact.
fn entries_gauge(n: usize) -> f64 {
    n.as_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn key(n: u64) -> Key {
        KeyBuilder::new("test").u64(n).finish()
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = GeomCache::new();
        let a = cache.get_or_build(TableKind::Pattern, key(1), || vec![1.0_f64, 2.0]);
        let b = cache.get_or_build(TableKind::Pattern, key(1), || vec![9.0_f64]);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the stored table");
        let snap = cache.snapshot();
        assert_eq!(snap.kind(TableKind::Pattern).hits, 1);
        assert_eq!(snap.kind(TableKind::Pattern).misses, 1);
        assert_eq!(snap.entries, 1);
    }

    #[test]
    fn distinct_keys_build_distinct_tables() {
        let cache = GeomCache::new();
        let a = cache.get_or_build(TableKind::RcsFactor, key(1), || 1u32);
        let b = cache.get_or_build(TableKind::RcsFactor, key(2), || 2u32);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.snapshot().misses(), 2);
    }

    #[test]
    fn eviction_is_insertion_order() {
        let cache = GeomCache::with_capacity(2);
        cache.get_or_build(TableKind::Pattern, key(1), || 1u32);
        cache.get_or_build(TableKind::Pattern, key(2), || 2u32);
        // Hitting key(1) must NOT rescue it: FIFO, not LRU.
        cache.get_or_build(TableKind::Pattern, key(1), || 0u32);
        cache.get_or_build(TableKind::Pattern, key(3), || 3u32);
        assert!(!cache.contains(&key(1)), "oldest insert must be evicted");
        assert!(cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
        assert_eq!(cache.snapshot().evictions(), 1);
    }

    #[test]
    fn capacity_one_thrashes_but_stays_correct() {
        let cache = GeomCache::with_capacity(1);
        for round in 0..3u64 {
            let a = cache.get_or_build(TableKind::Shaping, key(10), || 10u64);
            let b = cache.get_or_build(TableKind::Shaping, key(20), || 20u64);
            assert_eq!((*a, *b), (10, 20), "round {round}");
            assert_eq!(cache.len(), 1);
        }
        let snap = cache.snapshot();
        assert_eq!(snap.kind(TableKind::Shaping).misses, 6);
        assert_eq!(snap.kind(TableKind::Shaping).evictions, 5);
    }

    #[test]
    fn clear_counts_evictions_and_keeps_stats() {
        let cache = GeomCache::new();
        cache.get_or_build(TableKind::Dispersion, key(1), || 1u8);
        cache.get_or_build(TableKind::Shaping, key(2), || 2u8);
        cache.clear();
        assert!(cache.is_empty());
        let snap = cache.snapshot();
        assert_eq!(snap.evictions(), 2);
        assert_eq!(snap.misses(), 2, "clear must not reset counters");
        // Rebuild works after clear.
        cache.get_or_build(TableKind::Dispersion, key(1), || 1u8);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_kind_is_targeted() {
        let cache = GeomCache::new();
        cache.get_or_build(TableKind::Pattern, key(1), || 1u8);
        cache.get_or_build(TableKind::Shaping, key(2), || 2u8);
        cache.get_or_build(TableKind::Shaping, key(3), || 3u8);
        cache.invalidate_kind(TableKind::Shaping);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&key(1)));
        let snap = cache.snapshot();
        assert_eq!(snap.kind(TableKind::Shaping).evictions, 2);
        assert_eq!(snap.kind(TableKind::Pattern).evictions, 0);
    }

    #[test]
    fn invalidated_entries_do_not_corrupt_eviction_order() {
        let cache = GeomCache::with_capacity(2);
        cache.get_or_build(TableKind::Shaping, key(1), || 1u8);
        cache.get_or_build(TableKind::Pattern, key(2), || 2u8);
        cache.invalidate_kind(TableKind::Shaping);
        // Capacity 2, one live entry: both inserts must fit, and the
        // next eviction victim must be key(2), not the dead key(1).
        cache.get_or_build(TableKind::Pattern, key(3), || 3u8);
        assert_eq!(cache.len(), 2);
        cache.get_or_build(TableKind::Pattern, key(4), || 4u8);
        assert!(!cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
        assert!(cache.contains(&key(4)));
    }

    #[test]
    fn concurrent_lookups_build_each_key_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = GeomCache::new();
        let builds = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for n in 0..16u64 {
                        let v = cache.get_or_build(TableKind::RcsFactor, key(n), || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            n * 3
                        });
                        assert_eq!(*v, n * 3);
                    }
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 16);
        let snap = cache.snapshot();
        assert_eq!(snap.misses(), 16, "one miss per distinct key");
        assert_eq!(snap.hits(), 8 * 16 - 16);
    }

    #[test]
    fn emit_obs_exports_deltas() {
        let (_, report) = ros_obs::capture_scope(ros_obs::Level::Summary, || {
            let cache = GeomCache::new();
            let before = cache.snapshot();
            cache.get_or_build(TableKind::Shaping, key(1), || 1u8);
            cache.get_or_build(TableKind::Shaping, key(1), || 1u8);
            cache.emit_obs(&before);
        });
        assert!(
            report
                .metrics
                .contains(r#""name":"cache.hit","kind":"counter","value":1"#),
            "metrics: {}",
            report.metrics
        );
        assert!(
            report
                .metrics
                .contains(r#""name":"cache.shaping.miss","kind":"counter","value":1"#),
            "metrics: {}",
            report.metrics
        );
    }
}
