//! Cell-averaging CFAR (constant false-alarm rate) detection.
//!
//! Range profiles contain targets of wildly different strengths on a
//! noise floor that varies with range and clutter. A fixed threshold
//! either misses weak tags or fires on noise; CA-CFAR adapts the
//! threshold per cell from the average power of *training* cells
//! around it, excluding *guard* cells that may contain target energy
//! leakage. This is the standard first stage of the §3.2/§6 point-cloud
//! flow ("recognizing peaks at different distances").

use ros_em::units::cast::AsF64;

/// CA-CFAR configuration.
#[derive(Clone, Copy, Debug)]
pub struct CfarParams {
    /// Training cells on each side of the cell under test.
    pub training: usize,
    /// Guard cells on each side of the cell under test.
    pub guard: usize,
    /// Threshold factor over the noise estimate, linear power.
    pub threshold_factor: f64,
}

impl Default for CfarParams {
    fn default() -> Self {
        CfarParams {
            training: 8,
            guard: 2,
            threshold_factor: 8.0, // ≈9 dB over the local noise average
        }
    }
}

/// A CFAR detection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// Cell index.
    pub index: usize,
    /// Cell power.
    pub power: f64,
    /// Local noise estimate used for the test.
    pub noise: f64,
}

impl Detection {
    /// Detection SNR in dB, clamped to ±120 dB.
    ///
    /// A blanked frame (or a training window of exact zeros) makes the
    /// noise estimate 0, and the raw ratio would read +∞ — or NaN for
    /// a 0/0 cell — either of which poisons every downstream statistic
    /// it is averaged into. Power is clamped non-negative, the noise
    /// floored at the smallest positive normal, and the result pinned
    /// to a ±120 dB range no physical FMCW link exceeds; ordinary
    /// detections are numerically unchanged.
    pub fn snr_db(&self) -> f64 {
        const SNR_CLAMP_DB: f64 = 120.0;
        let ratio = self.power.max(0.0) / self.noise.max(f64::MIN_POSITIVE);
        (10.0 * ratio.log10()).clamp(-SNR_CLAMP_DB, SNR_CLAMP_DB)
    }
}

/// Runs cell-averaging CFAR over a power profile.
///
/// Cells whose one-sided windows fall off the array use the available
/// side only (automatically degenerating to "greatest-of" at the
/// edges). Cells must also be local maxima so one target produces one
/// detection, not a run of them.
pub fn ca_cfar(power: &[f64], params: &CfarParams) -> Vec<Detection> {
    let mut detections = Vec::new();
    ca_cfar_into(power, params, &mut detections);
    detections
}

/// Scratch-buffer twin of [`ca_cfar`]: identical detections written
/// into `out` (cleared first). Allocation-free once `out` has grown to
/// capacity, so it is safe to call from `lint: hot-path` kernels.
// lint: hot-path
pub fn ca_cfar_into(power: &[f64], params: &CfarParams, out: &mut Vec<Detection>) {
    out.clear();
    let n = power.len();
    if n == 0 || params.training == 0 {
        return;
    }
    for i in 0..n {
        // Leading (left) training window.
        let left_hi = i.saturating_sub(params.guard);
        let left_lo = left_hi.saturating_sub(params.training);
        // Lagging (right) training window.
        let right_lo = (i + params.guard + 1).min(n);
        let right_hi = (right_lo + params.training).min(n);

        // Non-finite cells (saturated FFT bins, blanked samples) are
        // excluded from the training average — one NaN in a window
        // would otherwise poison the noise estimate for every cell it
        // slides through — and can never fire themselves: a NaN power
        // fails every comparison below, and a +∞ one is no real
        // detection either.
        if !power[i].is_finite() {
            continue;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut train = |lo: usize, hi: usize| {
            for &p in &power[lo..hi] {
                if p.is_finite() {
                    sum += p;
                    count += 1;
                }
            }
        };
        if left_hi > left_lo {
            train(left_lo, left_hi);
        }
        if right_hi > right_lo {
            train(right_lo, right_hi);
        }
        if count == 0 {
            continue;
        }
        let noise = sum / count.as_f64();

        // A NaN neighbour is "unknown", not "bigger": `!(a < b)` keeps
        // the original `>=` semantics on the left while treating NaN
        // as not-larger; the explicit NaN check does the same on the
        // strict right-hand comparison.
        let is_local_max = (i == 0 || !(power[i] < power[i - 1]))
            && (i + 1 >= n || power[i] > power[i + 1] || power[i + 1].is_nan());

        if is_local_max && power[i] > params.threshold_factor * noise {
            out.push(Detection {
                index: i,
                power: power[i],
                noise,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_noise(n: usize, level: f64) -> Vec<f64> {
        vec![level; n]
    }

    #[test]
    fn detects_strong_target_on_flat_noise() {
        let mut p = flat_noise(64, 1.0);
        p[30] = 100.0;
        let d = ca_cfar(&p, &CfarParams::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].index, 30);
        assert!((d[0].noise - 1.0).abs() < 1e-9);
        assert!((d[0].snr_db() - 20.0).abs() < 0.1);
    }

    #[test]
    fn no_detection_on_pure_noise() {
        let p = flat_noise(64, 2.5);
        assert!(ca_cfar(&p, &CfarParams::default()).is_empty());
    }

    #[test]
    fn threshold_factor_controls_sensitivity() {
        let mut p = flat_noise(64, 1.0);
        p[20] = 5.0;
        let strict = CfarParams {
            threshold_factor: 8.0,
            ..Default::default()
        };
        let loose = CfarParams {
            threshold_factor: 3.0,
            ..Default::default()
        };
        assert!(ca_cfar(&p, &strict).is_empty());
        assert_eq!(ca_cfar(&p, &loose).len(), 1);
    }

    #[test]
    fn guard_cells_protect_wide_targets() {
        // A target that leaks into neighbours: without guards the
        // leakage inflates the noise estimate.
        let mut p = flat_noise(64, 1.0);
        p[31] = 30.0;
        p[32] = 100.0;
        p[33] = 30.0;
        let with_guard = CfarParams {
            guard: 2,
            ..Default::default()
        };
        let d = ca_cfar(&p, &with_guard);
        assert!(d.iter().any(|d| d.index == 32));
        // The shoulders must not fire (not local maxima).
        assert!(d.iter().all(|d| d.index == 32));
    }

    #[test]
    fn adapts_to_noise_steps() {
        // Step in the noise floor: a target that clears the low floor
        // but sits inside the high-floor region must not fire there.
        let mut p = Vec::new();
        p.extend(flat_noise(32, 1.0));
        p.extend(flat_noise(32, 50.0));
        p[16] = 40.0; // strong vs floor 1.0
        p[48] = 120.0; // only 2.4× the local floor of 50
        let d = ca_cfar(
            &p,
            &CfarParams {
                training: 6,
                guard: 1,
                threshold_factor: 6.0,
            },
        );
        assert!(d.iter().any(|d| d.index == 16));
        assert!(!d.iter().any(|d| d.index == 48));
    }

    #[test]
    fn two_separated_targets_both_detected() {
        let mut p = flat_noise(128, 1.0);
        p[30] = 50.0;
        p[90] = 80.0;
        let d = ca_cfar(&p, &CfarParams::default());
        let idx: Vec<usize> = d.iter().map(|d| d.index).collect();
        assert!(idx.contains(&30) && idx.contains(&90));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn edge_target_detected_with_one_sided_window() {
        let mut p = flat_noise(64, 1.0);
        p[1] = 100.0;
        let d = ca_cfar(&p, &CfarParams::default());
        assert!(d.iter().any(|d| d.index == 1));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ca_cfar(&[], &CfarParams::default()).is_empty());
        let p = [5.0];
        assert!(ca_cfar(
            &p,
            &CfarParams {
                training: 0,
                ..Default::default()
            }
        )
        .is_empty());
    }

    #[test]
    fn single_sample_has_no_training_cells() {
        // One cell: both training windows are empty, so no noise
        // estimate exists and no detection can fire, however strong.
        assert!(ca_cfar(&[1e9], &CfarParams::default()).is_empty());
    }

    #[test]
    fn all_equal_power_never_fires() {
        // A perfectly flat profile sits exactly at its own noise
        // estimate; any threshold factor above 1 keeps it silent at
        // every length down to the two-cell minimum.
        for n in [2usize, 3, 5, 64] {
            let p = vec![3.7; n];
            let d = ca_cfar(
                &p,
                &CfarParams {
                    training: 2,
                    guard: 0,
                    threshold_factor: 1.0 + 1e-12,
                },
            );
            assert!(d.is_empty(), "fired on flat profile of length {n}");
        }
    }

    #[test]
    fn snr_db_is_finite_for_degenerate_cells() {
        // Zero noise estimate: previously +inf (or NaN for 0/0).
        let d = Detection {
            index: 0,
            power: 5.0,
            noise: 0.0,
        };
        assert!(d.snr_db().is_finite());
        assert_eq!(d.snr_db(), 120.0);
        let zz = Detection {
            index: 0,
            power: 0.0,
            noise: 0.0,
        };
        assert!(zz.snr_db().is_finite(), "0/0 must not be NaN");
        assert_eq!(zz.snr_db(), -120.0);
        let silent = Detection {
            index: 0,
            power: 0.0,
            noise: 1.0,
        };
        assert_eq!(silent.snr_db(), -120.0);
        // The normal path is unchanged.
        let normal = Detection {
            index: 0,
            power: 100.0,
            noise: 1.0,
        };
        assert!((normal.snr_db() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn nonfinite_cells_never_fire_and_do_not_poison_training() {
        // A NaN and a +∞ cell sit inside the training windows of a
        // genuine target: the target must still be detected with a
        // finite noise estimate, and the corrupted cells themselves
        // must not appear as detections.
        let mut p = flat_noise(64, 1.0);
        p[30] = 100.0;
        p[20] = f64::NAN;
        p[38] = f64::INFINITY;
        let d = ca_cfar(&p, &CfarParams::default());
        assert!(d.iter().any(|d| d.index == 30), "target lost to NaN cell");
        for det in &d {
            assert!(det.index != 20 && det.index != 38, "corrupt cell fired");
            assert!(det.noise.is_finite() && det.power.is_finite());
            assert!(det.snr_db().is_finite());
        }
    }

    #[test]
    fn into_variant_matches_direct() {
        let mut p = flat_noise(64, 1.0);
        p[30] = 100.0;
        p[20] = f64::NAN;
        p[50] = 40.0;
        let direct = ca_cfar(&p, &CfarParams::default());
        let mut out = vec![
            Detection {
                index: 1,
                power: 2.0,
                noise: 3.0
            };
            4
        ]; // dirty buffer must be cleared
        ca_cfar_into(&p, &CfarParams::default(), &mut out);
        assert_eq!(direct, out);
    }

    #[test]
    fn all_nan_profile_is_silent() {
        let p = vec![f64::NAN; 48];
        assert!(ca_cfar(&p, &CfarParams::default()).is_empty());
    }

    #[test]
    fn zero_power_profile_stays_silent() {
        // All-zero power (e.g. a blanked frame): noise estimate is 0
        // and `0 > k·0` is false, so nothing fires and nothing is NaN.
        let p = vec![0.0; 32];
        assert!(ca_cfar(&p, &CfarParams::default()).is_empty());
    }
}
