//! Chirp-Z transform (zoom FFT) via Bluestein's algorithm.
//!
//! The RCS-spectrum decoder needs fine frequency resolution only
//! inside the coding band (6λ–10.5λ of stack spacing for the 4-bit
//! tag). Zero-padding a full FFT to get that resolution wastes most of
//! its bins; the chirp-Z transform evaluates the z-transform along an
//! arbitrary arc — here, a dense sweep of exactly the band of interest
//! — in `O(N log N)` regardless of the zoom factor.
//!
//! `czt(x, m, w, a)` computes `X[k] = Σ_n x[n]·a^{−n}·w^{nk}` for
//! `k = 0..m`, which for `a = e^{j2πf₀}` and `w = e^{−j2πδf}` is the
//! spectrum from `f₀` in steps of `δf` (cycles/sample).

use crate::fft::{fft_in_place, ifft_in_place, FftPlan};
use ros_em::Complex64;
use ros_em::units::cast::AsF64;

/// Chirp-Z transform of `x`: `m` output points along the arc defined
/// by starting point `a` and ratio `w` (both on/near the unit circle).
///
/// Implemented with Bluestein's identity `nk = (n² + k² − (k−n)²)/2`,
/// turning the transform into one convolution of length ≥ `n + m − 1`
/// evaluated by FFT.
///
/// This is the direct (allocating) reference; the hot decode path uses
/// [`CztPlan`], which precomputes the chirp tables once and then runs
/// allocation-free with bit-identical output.
pub fn czt(x: &[Complex64], m: usize, w: Complex64, a: Complex64) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 || m == 0 {
        return vec![Complex64::ZERO; m];
    }

    // Chirp sequence: w^{k²/2} for k up to max(n, m).
    let l = (n + m - 1).next_power_of_two();
    let kmax = n.max(m);
    let mut chirp = Vec::with_capacity(kmax);
    // w = e^{jθ}: compute w^{k²/2} via the phase directly for accuracy.
    let theta = w.arg();
    let mag = w.abs();
    for k in 0..kmax {
        let k2 = (k.as_f64()) * (k.as_f64()) / 2.0;
        let amp = mag.powf(k2);
        chirp.push(Complex64::from_polar(amp, theta * k2));
    }

    // A[n] = x[n]·a^{−n}·w^{n²/2}
    let a_theta = a.arg();
    let a_mag = a.abs();
    let mut fa = vec![Complex64::ZERO; l];
    for i in 0..n {
        let a_pow = Complex64::from_polar(a_mag.powf(-(i.as_f64())), -a_theta * i.as_f64());
        fa[i] = x[i] * a_pow * chirp[i];
    }

    // B[k] = w^{−k²/2}, arranged for circular convolution.
    let mut fb = vec![Complex64::ZERO; l];
    for k in 0..m {
        fb[k] = chirp[k].inv();
    }
    for i in 1..n {
        fb[l - i] = chirp[i].inv();
    }

    fft_in_place(&mut fa);
    fft_in_place(&mut fb);
    for i in 0..l {
        fa[i] = fa[i] * fb[i];
    }
    ifft_in_place(&mut fa);

    (0..m).map(|k| fa[k] * chirp[k]).collect()
}

/// A precomputed chirp-Z plan: Bluestein chirp tables, `a`-power
/// table, and the pre-transformed convolution kernel `FFT(B)` for one
/// fixed `(n, m, w, a)` quadruple.
///
/// [`CztPlan::process`] reruns only the per-call work — modulate,
/// convolve via the embedded [`FftPlan`], demodulate — into
/// caller-supplied buffers, so steady-state evaluation allocates
/// nothing. The table build uses the exact arithmetic of [`czt`]
/// (same `from_polar` phases, same multiply order), making planned
/// output bit-identical to the direct function.
#[derive(Clone, Debug)]
pub struct CztPlan {
    n: usize,
    m: usize,
    l: usize,
    /// `w^{k²/2}` for `k < max(n, m)`.
    chirp: Vec<Complex64>,
    /// `a^{−i}` for `i < n`.
    a_pow: Vec<Complex64>,
    /// FFT of the arranged `B[k] = w^{−k²/2}` kernel (length `l`).
    fb_fft: Vec<Complex64>,
    fft: FftPlan,
}

impl CztPlan {
    /// Builds a plan for `czt(x, m, w, a)` with `x.len() == n`.
    pub fn new(n: usize, m: usize, w: Complex64, a: Complex64) -> Self {
        if n == 0 || m == 0 {
            return CztPlan {
                n,
                m,
                l: 1,
                chirp: Vec::new(),
                a_pow: Vec::new(),
                fb_fft: Vec::new(),
                fft: FftPlan::new(1),
            };
        }
        let l = (n + m - 1).next_power_of_two();
        let kmax = n.max(m);
        let mut chirp = Vec::with_capacity(kmax);
        let theta = w.arg();
        let mag = w.abs();
        for k in 0..kmax {
            let k2 = (k.as_f64()) * (k.as_f64()) / 2.0;
            let amp = mag.powf(k2);
            chirp.push(Complex64::from_polar(amp, theta * k2));
        }
        let a_theta = a.arg();
        let a_mag = a.abs();
        let mut a_pow = Vec::with_capacity(n);
        for i in 0..n {
            a_pow.push(Complex64::from_polar(
                a_mag.powf(-(i.as_f64())),
                -a_theta * i.as_f64(),
            ));
        }
        let mut fb = vec![Complex64::ZERO; l];
        for k in 0..m {
            fb[k] = chirp[k].inv();
        }
        for i in 1..n {
            fb[l - i] = chirp[i].inv();
        }
        let fft = FftPlan::new(l);
        fft.process_forward(&mut fb);
        CztPlan {
            n,
            m,
            l,
            chirp,
            a_pow,
            fb_fft: fb,
            fft,
        }
    }

    /// Input length `n` the plan expects.
    pub fn input_len(&self) -> usize {
        self.n
    }

    /// Number of output bins `m`.
    pub fn output_len(&self) -> usize {
        self.m
    }

    /// Evaluates the planned transform of `x` into `out`, using `work`
    /// as convolution scratch. Bit-identical to
    /// `czt(x, m, w, a)`; allocation-free once the buffers have grown
    /// to capacity.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the planned input length.
    // lint: hot-path
    pub fn process(&self, x: &[Complex64], work: &mut Vec<Complex64>, out: &mut Vec<Complex64>) {
        assert_eq!(x.len(), self.n, "plan is for input length {}", self.n);
        out.clear();
        if self.n == 0 || self.m == 0 {
            out.resize(self.m, Complex64::ZERO);
            return;
        }
        work.clear();
        work.resize(self.l, Complex64::ZERO);
        for i in 0..self.n {
            work[i] = x[i] * self.a_pow[i] * self.chirp[i];
        }
        self.fft.process_forward(work);
        for i in 0..self.l {
            work[i] = work[i] * self.fb_fft[i];
        }
        self.fft.process_inverse(work);
        for k in 0..self.m {
            out.push(work[k] * self.chirp[k]);
        }
    }
}

/// Zoom spectrum of a real signal: `m` bins spanning
/// `[f_start, f_end]` cycles/sample.
///
/// ```
/// use ros_dsp::czt::zoom_spectrum;
/// let tone: Vec<f64> = (0..128)
///     .map(|i| (std::f64::consts::TAU * 0.123 * i as f64).cos())
///     .collect();
/// let spec = zoom_spectrum(&tone, 0.10, 0.15, 256);
/// let peak = spec.iter().enumerate()
///     .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs())).unwrap().0;
/// let f = 0.10 + 0.05 * peak as f64 / 255.0;
/// assert!((f - 0.123).abs() < 1e-3);
/// ```
pub fn zoom_spectrum(signal: &[f64], f_start: f64, f_end: f64, m: usize) -> Vec<Complex64> {
    assert!(m >= 2 && f_end > f_start);
    let x: Vec<Complex64> = signal.iter().map(|&v| Complex64::real(v)).collect();
    let df = (f_end - f_start) / (m - 1).as_f64();
    let a = Complex64::cis(std::f64::consts::TAU * f_start);
    let w = Complex64::cis(-std::f64::consts::TAU * df);
    czt(&x, m, w, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_direct(x: &[Complex64], m: usize, w: Complex64, a: Complex64) -> Vec<Complex64> {
        (0..m)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (n, &xn) in x.iter().enumerate() {
                    // a^{-n} · w^{n·k}
                    let phase = -a.arg() * n as f64 + w.arg() * (n * k) as f64;
                    let ampl = a.abs().powf(-(n as f64)) * w.abs().powf((n * k) as f64);
                    acc += xn * Complex64::from_polar(ampl, phase);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_direct_evaluation() {
        let x: Vec<Complex64> = (0..17)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.31).cos()))
            .collect();
        let a = Complex64::cis(0.3);
        let w = Complex64::cis(-0.05);
        let fast = czt(&x, 23, w, a);
        let slow = dft_direct(&x, 23, w, a);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((*f - *s).abs() < 1e-8 * (1.0 + s.abs()), "{f:?} vs {s:?}");
        }
    }

    #[test]
    fn reduces_to_dft_on_the_unit_grid() {
        // CZT with w = e^{−j2π/N}, a = 1 equals the plain DFT.
        let n = 16;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(std::f64::consts::TAU * 3.0 * i as f64 / n as f64))
            .collect();
        let w = Complex64::cis(-std::f64::consts::TAU / n as f64);
        let out = czt(&x, n, w, Complex64::ONE);
        let mut fft = x.clone();
        crate::fft::fft_in_place(&mut fft);
        for (c, f) in out.iter().zip(&fft) {
            assert!((*c - *f).abs() < 1e-8, "{c:?} vs {f:?}");
        }
    }

    #[test]
    fn zoom_finds_offgrid_tone() {
        // A tone at 0.12345 cycles/sample; zoom into [0.1, 0.15].
        let f0 = 0.12345;
        let n = 200;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f0 * i as f64).cos())
            .collect();
        let m = 501;
        let spec = zoom_spectrum(&x, 0.10, 0.15, m);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        let f_peak = 0.10 + 0.05 * peak as f64 / (m - 1) as f64;
        assert!((f_peak - f0).abs() < 2e-4, "peak at {f_peak}");
    }

    #[test]
    fn zoom_resolution_beats_padded_fft_per_flop() {
        // Two tones 0.002 cycles/sample apart, unresolvable by a plain
        // 200-point FFT (resolution 0.005) but split by a 1000-bin zoom
        // over a 0.02-wide band.
        let (f1, f2) = (0.200, 0.202);
        let n = 600;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (std::f64::consts::TAU * f1 * i as f64).cos()
                    + (std::f64::consts::TAU * f2 * i as f64).cos()
            })
            .collect();
        let spec = zoom_spectrum(&x, 0.195, 0.215, 1000);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peaks = crate::peaks::find_peaks(
            &mags,
            &crate::peaks::PeakParams {
                min_prominence: mags.iter().cloned().fold(0.0, f64::max) * 0.2,
                ..Default::default()
            },
        );
        assert!(peaks.len() >= 2, "found {} peaks", peaks.len());
        let fs: Vec<f64> = peaks
            .iter()
            .take(2)
            .map(|p| 0.195 + 0.02 * p.index as f64 / 999.0)
            .collect();
        let mut fs = fs;
        fs.sort_by(|a, b| a.total_cmp(b));
        assert!((fs[0] - f1).abs() < 5e-4);
        assert!((fs[1] - f2).abs() < 5e-4);
    }

    #[test]
    fn empty_inputs() {
        assert!(czt(&[], 0, Complex64::ONE, Complex64::ONE).is_empty());
        let z = czt(&[], 4, Complex64::ONE, Complex64::ONE);
        assert_eq!(z.len(), 4);
        assert!(z.iter().all(|c| *c == Complex64::ZERO));
    }

    fn assert_bits_eq(a: &[Complex64], b: &[Complex64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn plan_bit_identical_to_direct() {
        // Includes a deliberately non-power-of-two input length.
        for (n, m) in [(17usize, 23usize), (16, 16), (1, 5), (40, 7)] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.31).cos()))
                .collect();
            let a = Complex64::cis(0.3);
            let w = Complex64::cis(-0.05);
            let direct = czt(&x, m, w, a);
            let plan = CztPlan::new(n, m, w, a);
            assert_eq!(plan.input_len(), n);
            assert_eq!(plan.output_len(), m);
            let mut work = Vec::new();
            let mut out = Vec::new();
            plan.process(&x, &mut work, &mut out);
            assert_bits_eq(&direct, &out);
            // Reusing the dirty work/out buffers changes nothing.
            plan.process(&x, &mut work, &mut out);
            assert_bits_eq(&direct, &out);
        }
    }

    #[test]
    fn plan_degenerate_sizes() {
        let plan = CztPlan::new(0, 4, Complex64::ONE, Complex64::ONE);
        let mut work = Vec::new();
        let mut out = Vec::new();
        plan.process(&[], &mut work, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|c| *c == Complex64::ZERO));
    }
}
