//! DBSCAN density-based clustering (Ester et al. 1996).
//!
//! §6 of the paper: *"RoS applies the classical density-based
//! clustering algorithm, i.e., DBSCAN, to cluster the points. It
//! calculates the point density of each cluster and keeps those with
//! density larger than a predefined threshold."*
//!
//! This implementation clusters 2-D points (the merged, ego-motion
//! compensated point cloud projected on the road plane) with the
//! textbook ε / minPts semantics: core points expand clusters,
//! border points join them, everything else is noise.

use ros_em::units::cast::AsF64;

/// DBSCAN parameters.
#[derive(Clone, Copy, Debug)]
pub struct DbscanParams {
    /// Neighbourhood radius ε \[same units as the points\].
    pub eps: f64,
    /// Minimum neighbours (incl. self) for a core point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        DbscanParams {
            eps: 0.3,
            min_pts: 4,
        }
    }
}

/// Cluster assignment for one point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of cluster `id` (0-based).
    Cluster(usize),
}

/// Runs DBSCAN on 2-D points. Returns per-point labels and the number
/// of clusters found.
///
/// Complexity is O(n²) distance checks — fine for the few hundred
/// points a merged radar point cloud contains.
pub fn dbscan(points: &[[f64; 2]], params: &DbscanParams) -> (Vec<Label>, usize) {
    let _span = ros_obs::span("dsp.dbscan");
    let n = points.len();
    let mut labels = vec![Option::<Label>::None; n];
    let mut cluster_id = 0usize;
    let eps2 = params.eps * params.eps;

    // Corrupted returns (NaN/∞ coordinates) are labelled noise up
    // front and excluded from every neighbourhood. Without the guard a
    // NaN coordinate silently fails both `<=` comparisons — isolated
    // by accident, not by design — and an ∞ one would poison centroid
    // sums if it ever joined a cluster.
    let finite = |i: usize| points[i][0].is_finite() && points[i][1].is_finite();

    let neighbours = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| {
                if !finite(j) {
                    return false;
                }
                let dx = points[i][0] - points[j][0];
                let dy = points[i][1] - points[j][1];
                dx * dx + dy * dy <= eps2
            })
            .collect()
    };

    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        if !finite(i) {
            labels[i] = Some(Label::Noise);
            continue;
        }
        let nb = neighbours(i);
        if nb.len() < params.min_pts {
            labels[i] = Some(Label::Noise);
            continue;
        }
        // i is a core point: start a new cluster and expand it.
        let id = cluster_id;
        cluster_id += 1;
        labels[i] = Some(Label::Cluster(id));
        let mut queue: Vec<usize> = nb;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            match labels[j] {
                Some(Label::Noise) => {
                    // Noise promoted to border point.
                    labels[j] = Some(Label::Cluster(id));
                }
                None => {
                    labels[j] = Some(Label::Cluster(id));
                    let nb_j = neighbours(j);
                    if nb_j.len() >= params.min_pts {
                        queue.extend(nb_j);
                    }
                }
                Some(Label::Cluster(_)) => {}
            }
        }
    }

    let labels: Vec<Label> = labels
        .into_iter()
        .map(|l| l.unwrap_or(Label::Noise))
        .collect();
    if ros_obs::enabled() {
        let noise = labels.iter().filter(|l| **l == Label::Noise).count();
        ros_obs::count("dsp.dbscan.runs", 1);
        ros_obs::count("dsp.dbscan.clusters", cluster_id);
        ros_obs::count("dsp.dbscan.noise_points", noise);
        ros_obs::event(
            "dbscan",
            &[
                ("points", n.into()),
                ("clusters", cluster_id.into()),
                ("noise", noise.into()),
            ],
        );
    }
    (labels, cluster_id)
}

/// Summary of one DBSCAN cluster, as used by the tag detector (§6):
/// centroid ("center of gravity"), point count, and spatial extent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSummary {
    /// Cluster id.
    pub id: usize,
    /// Number of member points.
    pub count: usize,
    /// Centroid x.
    pub cx: f64,
    /// Centroid y.
    pub cy: f64,
    /// Area of the axis-aligned bounding box \[units²\] — the paper's
    /// "point cloud size" feature (Fig. 13b).
    pub bbox_area: f64,
    /// RMS distance of members from the centroid \[units\].
    pub rms_radius: f64,
}

/// Summarizes clusters from a labelled point set.
pub fn summarize_clusters(points: &[[f64; 2]], labels: &[Label]) -> Vec<ClusterSummary> {
    assert_eq!(points.len(), labels.len());
    let n_clusters = labels
        .iter()
        .filter_map(|l| match l {
            Label::Cluster(id) => Some(id + 1),
            Label::Noise => None,
        })
        .max()
        .unwrap_or(0);

    let mut out = Vec::with_capacity(n_clusters);
    for id in 0..n_clusters {
        let members: Vec<&[f64; 2]> = points
            .iter()
            .zip(labels)
            .filter(|(_, l)| **l == Label::Cluster(id))
            .map(|(p, _)| p)
            .collect();
        if members.is_empty() {
            continue;
        }
        let count = members.len();
        let cx = members.iter().map(|p| p[0]).sum::<f64>() / count.as_f64();
        let cy = members.iter().map(|p| p[1]).sum::<f64>() / count.as_f64();
        let (mut xmin, mut xmax, mut ymin, mut ymax) =
            (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        let mut rms = 0.0;
        for p in &members {
            xmin = xmin.min(p[0]);
            xmax = xmax.max(p[0]);
            ymin = ymin.min(p[1]);
            ymax = ymax.max(p[1]);
            rms += (p[0] - cx).powi(2) + (p[1] - cy).powi(2);
        }
        out.push(ClusterSummary {
            id,
            count,
            cx,
            cy,
            bbox_area: (xmax - xmin) * (ymax - ymin),
            rms_radius: (rms / count.as_f64()).sqrt(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<[f64; 2]> {
        // Deterministic pseudo-random blob.
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963; // golden angle
                let r = spread * ((i % 7) as f64 / 7.0);
                [cx + r * a.cos(), cy + r * a.sin()]
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(0.0, 0.0, 20, 0.2);
        pts.extend(blob(5.0, 5.0, 20, 0.2));
        let (labels, n) = dbscan(&pts, &DbscanParams { eps: 0.5, min_pts: 4 });
        assert_eq!(n, 2);
        // All first-blob points share a label distinct from the second's.
        let first = labels[0];
        assert!(labels[..20].iter().all(|&l| l == first));
        let second = labels[20];
        assert!(labels[20..].iter().all(|&l| l == second));
        assert_ne!(first, second);
    }

    #[test]
    fn isolated_points_are_noise() {
        let pts = vec![[0.0, 0.0], [10.0, 10.0], [-10.0, 5.0]];
        let (labels, n) = dbscan(&pts, &DbscanParams { eps: 1.0, min_pts: 3 });
        assert_eq!(n, 0);
        assert!(labels.iter().all(|&l| l == Label::Noise));
    }

    #[test]
    fn noise_between_blobs_stays_noise() {
        let mut pts = blob(0.0, 0.0, 15, 0.2);
        pts.push([2.5, 2.5]); // lone point between blobs
        pts.extend(blob(5.0, 5.0, 15, 0.2));
        let (labels, n) = dbscan(&pts, &DbscanParams { eps: 0.5, min_pts: 4 });
        assert_eq!(n, 2);
        assert_eq!(labels[15], Label::Noise);
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let pts = vec![[0.0, 0.0], [100.0, 0.0]];
        let (labels, n) = dbscan(&pts, &DbscanParams { eps: 0.1, min_pts: 1 });
        assert_eq!(n, 2);
        assert!(labels.iter().all(|l| matches!(l, Label::Cluster(_))));
    }

    #[test]
    fn chain_connectivity_merges() {
        // A chain of points each within eps of the next forms one cluster.
        let pts: Vec<[f64; 2]> = (0..30).map(|i| [i as f64 * 0.2, 0.0]).collect();
        let (_, n) = dbscan(&pts, &DbscanParams { eps: 0.25, min_pts: 2 });
        assert_eq!(n, 1);
    }

    #[test]
    fn nonfinite_points_are_noise_and_never_cluster() {
        // A dense blob plus corrupted returns: NaN, ∞, mixed. The blob
        // must still cluster; every corrupted point must be noise.
        let mut pts = blob(0.0, 0.0, 20, 0.2);
        pts.push([f64::NAN, 0.0]);
        pts.push([0.0, f64::INFINITY]);
        pts.push([f64::NAN, f64::NAN]);
        pts.push([f64::NEG_INFINITY, f64::NAN]);
        let (labels, n) = dbscan(&pts, &DbscanParams { eps: 0.5, min_pts: 4 });
        assert_eq!(n, 1);
        assert!(labels[..20].iter().all(|l| matches!(l, Label::Cluster(0))));
        assert!(labels[20..].iter().all(|&l| l == Label::Noise));
        // And the cluster summary stays finite.
        let sums = summarize_clusters(&pts, &labels);
        assert_eq!(sums.len(), 1);
        assert!(sums[0].cx.is_finite() && sums[0].cy.is_finite());
        assert!(sums[0].bbox_area.is_finite() && sums[0].rms_radius.is_finite());
    }

    #[test]
    fn all_nonfinite_input_is_all_noise() {
        let pts = vec![[f64::NAN, f64::NAN]; 12];
        let (labels, n) = dbscan(&pts, &DbscanParams { eps: 10.0, min_pts: 1 });
        assert_eq!(n, 0);
        assert!(labels.iter().all(|&l| l == Label::Noise));
    }

    #[test]
    fn empty_input() {
        let (labels, n) = dbscan(&[], &DbscanParams::default());
        assert!(labels.is_empty());
        assert_eq!(n, 0);
    }

    #[test]
    fn summaries_of_empty_input_are_empty() {
        assert!(summarize_clusters(&[], &[]).is_empty());
    }

    #[test]
    fn summaries_report_geometry() {
        let mut pts = blob(1.0, 2.0, 25, 0.3);
        pts.extend(blob(8.0, -1.0, 10, 0.1));
        let (labels, n) = dbscan(&pts, &DbscanParams { eps: 0.5, min_pts: 3 });
        assert_eq!(n, 2);
        let sums = summarize_clusters(&pts, &labels);
        assert_eq!(sums.len(), 2);
        let big = sums.iter().find(|s| s.count == 25).unwrap();
        assert!((big.cx - 1.0).abs() < 0.2);
        assert!((big.cy - 2.0).abs() < 0.2);
        let small = sums.iter().find(|s| s.count == 10).unwrap();
        assert!(small.bbox_area < big.bbox_area);
        assert!(small.rms_radius < big.rms_radius);
    }

    #[test]
    fn summaries_skip_noise() {
        let pts = vec![[0.0, 0.0], [50.0, 50.0]];
        let (labels, _) = dbscan(&pts, &DbscanParams { eps: 0.1, min_pts: 2 });
        let sums = summarize_clusters(&pts, &labels);
        assert!(sums.is_empty());
    }
}
