//! Eigendecomposition of small Hermitian matrices (complex Jacobi).
//!
//! The MUSIC angle estimator needs the eigenvectors of the 4×4 antenna
//! covariance matrix. Rather than pull in a linear-algebra dependency,
//! this module implements the classic cyclic Jacobi method with
//! complex (phase-aware) rotations — simple, numerically robust, and
//! exact enough for any array size the radar will see.

use ros_em::Complex64;

/// A dense, square, complex matrix in row-major storage.
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    /// Dimension.
    pub n: usize,
    /// Row-major entries.
    pub data: Vec<Complex64>,
}

impl CMatrix {
    /// A zero matrix.
    pub fn zeros(n: usize) -> Self {
        CMatrix {
            n,
            data: vec![Complex64::ZERO; n * n],
        }
    }

    /// The identity.
    pub(crate) fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex64>(n: usize, mut f: F) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Frobenius norm of the off-diagonal part.
    pub(crate) fn off_diagonal_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self[(i, j)].norm_sqr();
                }
            }
        }
        s.sqrt()
    }

    /// True when `self` equals its conjugate transpose within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in 0..self.n {
                if (self[(i, j)] - self[(j, i)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.n + j]
    }
}

/// Eigendecomposition result: `values[k]` (ascending) with column `k`
/// of `vectors` its eigenvector.
#[derive(Clone, Debug)]
pub struct Eigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns (unit norm).
    pub vectors: CMatrix,
}

/// Diagonalizes a Hermitian matrix with cyclic complex Jacobi sweeps.
///
/// # Panics
/// Panics when the input is not Hermitian (within 1e-9 of its
/// conjugate transpose).
pub fn hermitian_eig(a: &CMatrix) -> Eigen {
    assert!(a.is_hermitian(1e-9), "matrix is not Hermitian");
    let n = a.n;
    let mut m = a.clone();
    let mut v = CMatrix::identity(n);

    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        if m.off_diagonal_norm() < 1e-13 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                // Phase and rotation angle.
                let phi = apq.arg();
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let theta = 0.5 * (2.0 * apq.abs()).atan2(aqq - app);
                let (s, c) = theta.sin_cos();
                let e_pos = Complex64::cis(phi);
                let e_neg = Complex64::cis(-phi);

                // Apply G^H M G with G affecting rows/cols p, q:
                // col_p' = c·col_p − s·e^{-jφ}·col_q
                // col_q' = s·e^{+jφ}·col_p + c·col_q
                for i in 0..n {
                    let mip = m[(i, p)];
                    let miq = m[(i, q)];
                    m[(i, p)] = mip * c - miq * e_neg * s;
                    m[(i, q)] = mip * e_pos * s + miq * c;
                }
                for j in 0..n {
                    let mpj = m[(p, j)];
                    let mqj = m[(q, j)];
                    m[(p, j)] = mpj * c - mqj * e_pos * s;
                    m[(q, j)] = mpj * e_neg * s + mqj * c;
                }
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip * c - viq * e_neg * s;
                    v[(i, q)] = vip * e_pos * s + viq * c;
                }
            }
        }
    }

    // Extract and sort.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut vectors = CMatrix::zeros(n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_col)] = v[(i, old_col)];
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &CMatrix, eig: &Eigen) -> f64 {
        // max_k ||A v_k − λ_k v_k||
        let n = a.n;
        let mut worst = 0.0f64;
        for k in 0..n {
            for i in 0..n {
                let mut av = Complex64::ZERO;
                for j in 0..n {
                    av += a[(i, j)] * eig.vectors[(j, k)];
                }
                let r = (av - eig.vectors[(i, k)] * eig.values[k]).abs();
                worst = worst.max(r);
            }
        }
        worst
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = CMatrix::from_fn(3, |i, j| {
            if i == j {
                Complex64::real((i + 1) as f64)
            } else {
                Complex64::ZERO
            }
        });
        let e = hermitian_eig(&a);
        assert_eq!(e.values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn real_symmetric_2x2() {
        // [[2, 1], [1, 2]] → eigenvalues 1, 3.
        let a = CMatrix::from_fn(2, |i, j| {
            Complex64::real(if i == j { 2.0 } else { 1.0 })
        });
        let e = hermitian_eig(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
        assert!(residual(&a, &e) < 1e-9);
    }

    #[test]
    fn complex_hermitian_4x4() {
        // A random-ish Hermitian matrix; check A v = λ v.
        let a = CMatrix::from_fn(4, |i, j| {
            if i == j {
                Complex64::real((i * i) as f64 + 1.0)
            } else if i < j {
                Complex64::new(0.3 * (i + j) as f64, 0.7 * (j as f64 - i as f64))
            } else {
                Complex64::new(0.3 * (i + j) as f64, -0.7 * (i as f64 - j as f64))
            }
        });
        assert!(a.is_hermitian(1e-12));
        let e = hermitian_eig(&a);
        assert!(residual(&a, &e) < 1e-8, "residual {}", residual(&a, &e));
        // Ascending.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Trace preserved.
        let trace: f64 = (0..4).map(|i| a[(i, i)].re).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = CMatrix::from_fn(4, |i, j| {
            if i == j {
                Complex64::real(2.0)
            } else {
                Complex64::new(0.25, if i < j { 0.5 } else { -0.5 })
            }
        });
        let e = hermitian_eig(&a);
        for p in 0..4 {
            for q in 0..4 {
                let mut dot = Complex64::ZERO;
                for i in 0..4 {
                    dot += e.vectors[(i, p)].conj() * e.vectors[(i, q)];
                }
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!(
                    (dot.abs() - expect).abs() < 1e-9,
                    "<v{p}, v{q}> = {dot:?}"
                );
            }
        }
    }

    #[test]
    fn rank_one_matrix() {
        // x x^H has one eigenvalue ||x||², rest 0.
        let x = [
            Complex64::new(1.0, 0.5),
            Complex64::new(-0.2, 0.8),
            Complex64::new(0.0, -1.1),
        ];
        let a = CMatrix::from_fn(3, |i, j| x[i] * x[j].conj());
        let e = hermitian_eig(&a);
        let norm2: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        assert!(e.values[0].abs() < 1e-10);
        assert!(e.values[1].abs() < 1e-10);
        assert!((e.values[2] - norm2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn non_hermitian_rejected() {
        let a = CMatrix::from_fn(2, |i, j| Complex64::real((i + 2 * j) as f64));
        hermitian_eig(&a);
    }
}
