//! Iterative radix-2 FFT/IFFT.
//!
//! Two call sites drive the requirements:
//!
//! 1. **Range processing** (paper Eq. 3): an IFFT over 256 IF samples
//!    per chirp — small, power-of-two, hot path.
//! 2. **RCS frequency spectrum** (paper Eq. 7): an FFT over the
//!    RSS-vs-`u` trace, heavily zero-padded so sub-wavelength stack
//!    spacings resolve into clean peaks.
//!
//! Both fit a classic in-place radix-2 Cooley–Tukey with precomputable
//! twiddles. Inputs that are not a power of two are zero-padded by the
//! convenience wrappers ([`spectrum_padded`]); `fft_in_place` itself
//! panics on non-power-of-two lengths to catch programming errors
//! early, smoltcp-style (explicit > clever).

use ros_em::Complex64;
use ros_em::units::cast::AsF64;

/// Returns true when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// The smallest power of two ≥ `n`.
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place forward FFT (engineering sign: `X[k] = Σ x[n]·e^{−j2πnk/N}`).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex64]) {
    transform(data, false);
}

/// In-place inverse FFT, normalized by `1/N` so that
/// `ifft(fft(x)) == x`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex64]) {
    transform(data, true);
    let n = data.len().as_f64();
    for v in data.iter_mut() {
        *v = *v / n;
    }
}

fn transform(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    assert!(
        is_power_of_two(n),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            data.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }

    // Danielson–Lanczos butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len.as_f64();
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// A precomputed radix-2 FFT plan for one transform size.
///
/// FFTW-style setup/execute split: [`FftPlan::new`] does all the
/// trigonometry (per-stage twiddle tables, both signs) and the
/// bit-reversal permutation once; [`FftPlan::process_forward`] /
/// [`FftPlan::process_inverse`] then run allocation-free and are safe
/// to mark `lint: hot-path`. Twiddles are generated with the *same*
/// `w = w · w_len` recurrence the direct [`fft_in_place`] butterfly
/// uses, so planned transforms are bit-identical to the direct ones —
/// a property pinned by the plan-identity proptests.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal target for each index (u32 keeps the table compact).
    rev: Vec<u32>,
    /// Concatenated per-stage forward twiddles (len/2 entries per stage).
    fwd: Vec<Complex64>,
    /// Same layout, inverse sign.
    inv: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            is_power_of_two(n),
            "FFT length must be a power of two, got {n}"
        );
        // Bit-reversal permutation targets — the identical j-walk
        // `transform` performs, captured once.
        let mut rev = Vec::with_capacity(n);
        let mut j = 0usize;
        for _ in 0..n {
            rev.push(j as u32); // lint: allow-cast(index < n, fits u32)
            let mut m = n >> 1;
            while m >= 1 && j & m != 0 {
                j ^= m;
                m >>= 1;
            }
            j |= m;
        }
        // Twiddle tables via the exact butterfly recurrence (not
        // `cis(k·ang)`), so table[k] has the same bits as the running
        // `w` in the direct implementation.
        let mut fwd = Vec::new();
        let mut inv = Vec::new();
        for (sign, table) in [(-1.0f64, &mut fwd), (1.0f64, &mut inv)] {
            let mut len = 2;
            while len <= n {
                let ang = sign * std::f64::consts::TAU / len.as_f64();
                let wlen = Complex64::cis(ang);
                let mut w = Complex64::ONE;
                for _ in 0..len / 2 {
                    table.push(w);
                    w = w * wlen;
                }
                len <<= 1;
            }
        }
        FftPlan { n, rev, fwd, inv }
    }

    /// Transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate length-0 plan (which cannot exist:
    /// `new` rejects 0). Present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT; bit-identical to [`fft_in_place`].
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned size.
    // lint: hot-path
    pub fn process_forward(&self, data: &mut [Complex64]) {
        self.butterflies(data, &self.fwd);
    }

    /// In-place inverse FFT normalized by `1/N`; bit-identical to
    /// [`ifft_in_place`].
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned size.
    // lint: hot-path
    pub fn process_inverse(&self, data: &mut [Complex64]) {
        self.butterflies(data, &self.inv);
        let n = self.n.as_f64();
        for v in data.iter_mut() {
            *v = *v / n;
        }
    }

    fn butterflies(&self, data: &mut [Complex64], twiddles: &[Complex64]) {
        let n = self.n;
        assert_eq!(data.len(), n, "plan is for length {n}");
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let j = self.rev[i] as usize; // lint: allow-cast(u32 widens losslessly)
            if i < j {
                data.swap(i, j);
            }
        }
        let mut base = 0usize;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &twiddles[base..base + half];
            let mut i = 0;
            while i < n {
                for k in 0..half {
                    let u = data[i + k];
                    let v = data[i + k + half] * stage[k];
                    data[i + k] = u + v;
                    data[i + k + half] = u - v;
                }
                i += len;
            }
            base += half;
            len <<= 1;
        }
    }
}

/// Forward FFT of a real-valued sequence, zero-padded to at least
/// `min_len` (rounded up to a power of two). Returns the full complex
/// spectrum of length `max(len, min_len).next_power_of_two()`.
pub fn spectrum_padded(signal: &[f64], min_len: usize) -> Vec<Complex64> {
    let n = next_power_of_two(signal.len().max(min_len).max(1));
    let mut buf: Vec<Complex64> = Vec::with_capacity(n);
    buf.extend(signal.iter().map(|&x| Complex64::real(x)));
    buf.resize(n, Complex64::ZERO);
    fft_in_place(&mut buf);
    buf
}

/// Forward FFT of a complex sequence, zero-padded likewise.
// lint: allow-dead-pub(complex twin of spectrum_padded, kept for API symmetry)
pub fn spectrum_padded_complex(signal: &[Complex64], min_len: usize) -> Vec<Complex64> {
    let n = next_power_of_two(signal.len().max(min_len).max(1));
    let mut buf = signal.to_vec();
    buf.resize(n, Complex64::ZERO);
    fft_in_place(&mut buf);
    buf
}

/// Magnitudes of a complex spectrum.
pub fn magnitudes(spec: &[Complex64]) -> Vec<f64> {
    spec.iter().map(|c| c.abs()).collect()
}

/// Power (|·|²) of a complex spectrum.
pub fn powers(spec: &[Complex64]) -> Vec<f64> {
    spec.iter().map(|c| c.norm_sqr()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!((a - b).abs() < tol, "{a:?} vs {b:?}");
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(8), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut d = vec![Complex64::ZERO; 3];
        fft_in_place(&mut d);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex64::ZERO; 8];
        d[0] = Complex64::ONE;
        fft_in_place(&mut d);
        for v in &d {
            assert_close(*v, Complex64::ONE, 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_is_impulse() {
        let mut d = vec![Complex64::ONE; 16];
        fft_in_place(&mut d);
        assert_close(d[0], Complex64::real(16.0), 1e-12);
        for v in &d[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut d: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(std::f64::consts::TAU * k0 as f64 * i as f64 / n as f64))
            .collect();
        fft_in_place(&mut d);
        for (k, v) in d.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leak at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 32;
        let orig: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut d = orig.clone();
        fft_in_place(&mut d);
        ifft_in_place(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 1.1).cos() * 0.5))
            .collect();
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let mut d = x;
        fft_in_place(&mut d);
        let freq_energy: f64 = d.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn fft_linearity() {
        let n = 16;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::real(i as f64)).collect();
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum;
        fft_in_place(&mut fa);
        fft_in_place(&mut fb);
        fft_in_place(&mut fs);
        for i in 0..n {
            assert_close(fs[i], fa[i] + fb[i], 1e-9);
        }
    }

    #[test]
    fn padding_rounds_up() {
        let spec = spectrum_padded(&[1.0, 2.0, 3.0], 10);
        assert_eq!(spec.len(), 16);
        let spec = spectrum_padded(&[1.0; 16], 4);
        assert_eq!(spec.len(), 16);
        let spec = spectrum_padded(&[], 0);
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn padded_spectrum_dc_value() {
        // DC bin equals the sum of the input regardless of padding.
        let x = [1.0, 2.0, 3.0, 4.0];
        let spec = spectrum_padded(&x, 64);
        assert!((spec[0].re - 10.0).abs() < 1e-12);
        assert!(spec[0].im.abs() < 1e-12);
    }

    #[test]
    fn real_spectrum_is_conjugate_symmetric() {
        let x = [0.3, -1.2, 2.5, 0.0, 1.1, -0.7, 0.2, 0.9];
        let spec = spectrum_padded(&x, 8);
        let n = spec.len();
        for k in 1..n / 2 {
            assert_close(spec[k], spec[n - k].conj(), 1e-10);
        }
    }

    #[test]
    fn magnitudes_and_powers() {
        let spec = vec![Complex64::new(3.0, 4.0), Complex64::ZERO];
        assert_eq!(magnitudes(&spec), vec![5.0, 0.0]);
        assert_eq!(powers(&spec), vec![25.0, 0.0]);
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 1.3).cos()))
            .collect()
    }

    #[test]
    fn plan_forward_bit_identical_to_direct() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let plan = FftPlan::new(n);
            assert_eq!(plan.len(), n);
            let mut a = ramp(n);
            let mut b = a.clone();
            fft_in_place(&mut a);
            plan.process_forward(&mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "n={n}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn plan_inverse_bit_identical_to_direct() {
        for n in [1usize, 2, 16, 128] {
            let plan = FftPlan::new(n);
            let mut a = ramp(n);
            let mut b = a.clone();
            ifft_in_place(&mut a);
            plan.process_inverse(&mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "n={n}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn plan_rejects_non_power_of_two() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "plan is for length")]
    fn plan_rejects_wrong_length() {
        let plan = FftPlan::new(8);
        let mut d = vec![Complex64::ZERO; 4];
        plan.process_forward(&mut d);
    }

    #[test]
    fn plan_reuse_is_stateless() {
        // Two consecutive executes on the same plan give the same bits
        // — the plan carries no per-call state.
        let plan = FftPlan::new(32);
        let orig = ramp(32);
        let mut a = orig.clone();
        let mut b = orig.clone();
        plan.process_forward(&mut a);
        plan.process_forward(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}
