//! Single-bin DFT (Goertzel-style) evaluation.
//!
//! The radar's spotlight beamformer (§6) needs the spectrum at *one*
//! arbitrary (fractional) frequency per frame — a full FFT would waste
//! work and force on-grid frequencies. This module provides direct
//! single-bin evaluation with optional windowing, used by
//! `ros_radar::processing::spotlight` and anywhere else a matched
//! single-tone correlation is needed.

use crate::window::{Window, WindowTable};
use ros_em::Complex64;
use ros_em::units::cast::AsF64;

/// Complex single-bin DFT of `signal` at `cycles_per_sample`
/// (fractional frequencies welcome), normalized by the signal length:
/// a unit-amplitude complex tone at that exact frequency returns
/// magnitude ≈ 1.
pub fn single_bin(signal: &[Complex64], cycles_per_sample: f64) -> Complex64 {
    if signal.is_empty() {
        return Complex64::ZERO;
    }
    let w = -std::f64::consts::TAU * cycles_per_sample;
    let step = Complex64::cis(w);
    let mut ph = Complex64::ONE;
    let mut acc = Complex64::ZERO;
    for &s in signal {
        acc += s * ph;
        ph = ph * step;
    }
    acc / signal.len().as_f64()
}

/// Windowed single-bin DFT, compensated for the window's coherent
/// gain so tone amplitudes stay calibrated.
pub fn single_bin_windowed(
    signal: &[Complex64],
    cycles_per_sample: f64,
    window: Window,
) -> Complex64 {
    if signal.is_empty() {
        return Complex64::ZERO;
    }
    let n = signal.len();
    let w = -std::f64::consts::TAU * cycles_per_sample;
    let step = Complex64::cis(w);
    let mut ph = Complex64::ONE;
    let mut acc = Complex64::ZERO;
    for (i, &s) in signal.iter().enumerate() {
        acc += s * ph * window.coeff(i, n);
        ph = ph * step;
    }
    let gain = window.coherent_gain(n).max(1e-12);
    acc / (n.as_f64() * gain)
}

/// Windowed single-bin DFT driven by a precomputed [`WindowTable`].
///
/// Bit-identical to [`single_bin_windowed`] for a table of matching
/// shape and length, but allocation-free: the per-call
/// `coherent_gain` scratch vector of the direct version is replaced by
/// the table's stored gain. This is the variant the spotlight
/// beamformer uses on the per-frame hot path.
///
/// # Panics
/// Panics if the table length differs from `signal.len()` (empty
/// signals short-circuit first, as in the direct version).
// lint: hot-path
pub fn single_bin_windowed_table(
    signal: &[Complex64],
    cycles_per_sample: f64,
    table: &WindowTable,
) -> Complex64 {
    if signal.is_empty() {
        return Complex64::ZERO;
    }
    let n = signal.len();
    let coeffs = table.coeffs();
    assert_eq!(coeffs.len(), n, "window table is for length {}", coeffs.len());
    let w = -std::f64::consts::TAU * cycles_per_sample;
    let step = Complex64::cis(w);
    let mut ph = Complex64::ONE;
    let mut acc = Complex64::ZERO;
    for (i, &s) in signal.iter().enumerate() {
        acc += s * ph * coeffs[i];
        ph = ph * step;
    }
    let gain = table.gain().max(1e-12);
    acc / (n.as_f64() * gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, cycles_per_sample: f64, amp: f64, phase: f64) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                Complex64::from_polar(
                    amp,
                    std::f64::consts::TAU * cycles_per_sample * i as f64 + phase,
                )
            })
            .collect()
    }

    #[test]
    fn recovers_on_grid_tone() {
        let x = tone(256, 10.0 / 256.0, 2.5, 0.7);
        let y = single_bin(&x, 10.0 / 256.0);
        assert!((y.abs() - 2.5).abs() < 1e-9);
        assert!((y.arg() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn recovers_fractional_tone() {
        // Off-grid frequencies are the whole point.
        let f = 10.37 / 256.0;
        let x = tone(256, f, 1.0, -1.1);
        let y = single_bin(&x, f);
        assert!((y.abs() - 1.0).abs() < 1e-9);
        assert!((y.arg() + 1.1).abs() < 1e-9);
    }

    #[test]
    fn rejects_distant_tone() {
        let x = tone(256, 30.0 / 256.0, 1.0, 0.0);
        let y = single_bin(&x, 10.0 / 256.0);
        assert!(y.abs() < 0.05, "leakage {}", y.abs());
    }

    #[test]
    fn windowed_amplitude_calibrated() {
        let f = 20.0 / 256.0;
        let x = tone(256, f, 3.0, 0.2);
        for win in [Window::Rect, Window::Hann, Window::Blackman] {
            let y = single_bin_windowed(&x, f, win);
            assert!(
                (y.abs() - 3.0).abs() < 0.02,
                "{win:?}: amplitude {}",
                y.abs()
            );
        }
    }

    #[test]
    fn windowed_suppresses_neighbours_better() {
        // A strong tone 2.5 bins away: Hann leaks far less than rect.
        let f0 = 20.0 / 256.0;
        let interferer = tone(256, f0 + 2.5 / 256.0, 1.0, 0.0);
        let rect = single_bin_windowed(&interferer, f0, Window::Rect).abs();
        let hann = single_bin_windowed(&interferer, f0, Window::Hann).abs();
        assert!(hann < rect / 3.0, "rect {rect}, hann {hann}");
    }

    #[test]
    fn empty_signal() {
        assert_eq!(single_bin(&[], 0.1), Complex64::ZERO);
        assert_eq!(single_bin_windowed(&[], 0.1, Window::Hann), Complex64::ZERO);
        let table = WindowTable::new(Window::Hann, 0);
        assert_eq!(single_bin_windowed_table(&[], 0.1, &table), Complex64::ZERO);
    }

    #[test]
    fn table_variant_bit_identical() {
        let f = 10.37 / 256.0;
        let x = tone(256, f, 1.7, -0.4);
        for win in [Window::Rect, Window::Hann, Window::Hamming, Window::Blackman] {
            let table = WindowTable::new(win, x.len());
            let direct = single_bin_windowed(&x, f, win);
            let tabled = single_bin_windowed_table(&x, f, &table);
            assert_eq!(direct.re.to_bits(), tabled.re.to_bits(), "{win:?}");
            assert_eq!(direct.im.to_bits(), tabled.im.to_bits(), "{win:?}");
        }
    }

    #[test]
    fn linearity() {
        let f = 5.0 / 128.0;
        let a = tone(128, f, 1.0, 0.0);
        let b = tone(128, f, 2.0, 1.0);
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let ya = single_bin(&a, f);
        let yb = single_bin(&b, f);
        let ys = single_bin(&sum, f);
        assert!((ys - (ya + yb)).abs() < 1e-9);
    }
}
