//! Interpolation kernels for trace resampling.
//!
//! The decoder resamples the non-uniform RSS-vs-`u` trace onto a
//! uniform grid before the spectrum. [`crate::resample`] uses linear
//! interpolation; this module provides the full kernel family so the
//! choice can be ablated:
//!
//! * nearest neighbour — cheapest, worst aliasing,
//! * linear — the default (a good compromise at the ≥5 samples/fringe
//!   densities the 1 kHz frame rate provides),
//! * Catmull–Rom cubic — C¹-smooth, flatter passband,
//! * windowed sinc — near-ideal reconstruction for band-limited
//!   traces, at 2·`half_taps` multiplies per sample.

use crate::resample::Sample;
use ros_em::units::cast::AsF64;

/// Interpolation kernel choice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kernel {
    /// Nearest-neighbour (zero-order hold).
    Nearest,
    /// Piecewise-linear (first order).
    Linear,
    /// Catmull–Rom cubic spline.
    CatmullRom,
    /// Hann-windowed sinc with the given half-width in *samples*.
    WindowedSinc {
        /// Taps on each side of the evaluation point.
        half_taps: usize,
    },
}

/// Interpolates sorted, deduplicated samples at `x` with the kernel.
///
/// Outside the sample hull the edge value is held (matching
/// [`crate::resample::interp`]).
pub fn interp_with(samples: &[Sample], x: f64, kernel: Kernel) -> f64 {
    match samples {
        [] => 0.0,
        [only] => only.y,
        _ => {
            let last = samples.len() - 1;
            if x <= samples[0].x {
                return samples[0].y;
            }
            if x >= samples[last].x {
                return samples[last].y;
            }
            let lo = bracket(samples, x);
            match kernel {
                Kernel::Nearest => {
                    let (a, b) = (samples[lo], samples[lo + 1]);
                    if (x - a.x) <= (b.x - x) {
                        a.y
                    } else {
                        b.y
                    }
                }
                Kernel::Linear => {
                    let (a, b) = (samples[lo], samples[lo + 1]);
                    let t = (x - a.x) / (b.x - a.x);
                    a.y * (1.0 - t) + b.y * t
                }
                Kernel::CatmullRom => catmull_rom(samples, lo, x),
                Kernel::WindowedSinc { half_taps } => {
                    windowed_sinc(samples, lo, x, half_taps.max(1))
                }
            }
        }
    }
}

/// Resamples onto `n` uniform points spanning `[x0, x1]` with the
/// kernel (input sorted/deduplicated internally).
pub fn resample_uniform_with(
    mut samples: Vec<Sample>,
    x0: f64,
    x1: f64,
    n: usize,
    kernel: Kernel,
) -> Vec<f64> {
    if samples.is_empty() || n == 0 {
        return Vec::new();
    }
    crate::resample::sort_dedup(&mut samples);
    (0..n)
        .map(|i| {
            let x = if n == 1 {
                (x0 + x1) / 2.0
            } else {
                x0 + (x1 - x0) * i.as_f64() / (n - 1).as_f64()
            };
            interp_with(&samples, x, kernel)
        })
        .collect()
}

/// Binary search for the interval `[lo, lo+1]` containing `x`.
fn bracket(samples: &[Sample], x: f64) -> usize {
    let mut lo = 0usize;
    let mut hi = samples.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if samples[mid].x <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn catmull_rom(samples: &[Sample], lo: usize, x: f64) -> f64 {
    let n = samples.len();
    let p1 = samples[lo];
    let p2 = samples[lo + 1];
    let p0 = samples[lo.saturating_sub(1)];
    let p3 = samples[(lo + 2).min(n - 1)];
    let t = (x - p1.x) / (p2.x - p1.x);
    // Non-uniform spacing handled via the standard centripetal-free
    // form on the normalized parameter (adequate for mildly non-uniform
    // radar traces).
    let t2 = t * t;
    let t3 = t2 * t;
    0.5 * ((2.0 * p1.y)
        + (-p0.y + p2.y) * t
        + (2.0 * p0.y - 5.0 * p1.y + 4.0 * p2.y - p3.y) * t2
        + (-p0.y + 3.0 * p1.y - 3.0 * p2.y + p3.y) * t3)
}

fn windowed_sinc(samples: &[Sample], lo: usize, x: f64, half_taps: usize) -> f64 {
    // Local mean spacing sets the sinc bandwidth.
    let n = samples.len();
    let start = lo.saturating_sub(half_taps - 1);
    let end = (lo + half_taps + 1).min(n);
    let span = samples[end - 1].x - samples[start].x;
    let dx = span / (end - start - 1).max(1).as_f64();
    if dx <= 0.0 {
        return samples[lo].y;
    }
    let mut acc = 0.0;
    let mut wsum = 0.0;
    for s in &samples[start..end] {
        let u = (x - s.x) / dx;
        let sinc = ros_em::special::sinc(u);
        // Hann window over the tap span.
        let win = 0.5 * (1.0 + (std::f64::consts::PI * u / half_taps.as_f64()).cos());
        let w = sinc * win.max(0.0);
        acc += w * s.y;
        wsum += w;
    }
    if wsum.abs() < 1e-12 {
        samples[lo].y
    } else {
        acc / wsum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64, y: f64) -> Sample {
        Sample { x, y }
    }

    const KERNELS: [Kernel; 4] = [
        Kernel::Nearest,
        Kernel::Linear,
        Kernel::CatmullRom,
        Kernel::WindowedSinc { half_taps: 4 },
    ];

    #[test]
    fn all_kernels_reproduce_constants() {
        let v: Vec<Sample> = (0..20).map(|i| s(i as f64 * 0.37, 5.0)).collect();
        for k in KERNELS {
            for x in [0.0, 1.1, 3.33, 7.0] {
                let y = interp_with(&v, x, k);
                assert!((y - 5.0).abs() < 1e-9, "{k:?} at {x}: {y}");
            }
        }
    }

    #[test]
    fn all_kernels_hit_sample_points() {
        let v: Vec<Sample> = (0..10)
            .map(|i| s(i as f64, (i as f64 * 0.7).sin()))
            .collect();
        for k in KERNELS {
            for p in &v[1..9] {
                let y = interp_with(&v, p.x, k);
                assert!((y - p.y).abs() < 1e-9, "{k:?} at {}: {y} vs {}", p.x, p.y);
            }
        }
    }

    #[test]
    fn edges_are_held() {
        let v = vec![s(0.0, 1.0), s(1.0, 3.0)];
        for k in KERNELS {
            assert_eq!(interp_with(&v, -1.0, k), 1.0, "{k:?}");
            assert_eq!(interp_with(&v, 2.0, k), 3.0, "{k:?}");
        }
    }

    #[test]
    fn cubic_beats_linear_on_smooth_curves() {
        // Reconstruct sin(x) from coarse samples; compare max error.
        let coarse: Vec<Sample> = (0..15).map(|i| {
            let x = i as f64 * 0.5;
            s(x, x.sin())
        }).collect();
        let max_err = |k: Kernel| {
            let mut worst = 0.0f64;
            for i in 0..200 {
                let x = 0.5 + 6.0 * i as f64 / 199.0;
                let y = interp_with(&coarse, x, k);
                worst = worst.max((y - x.sin()).abs());
            }
            worst
        };
        let lin = max_err(Kernel::Linear);
        let cub = max_err(Kernel::CatmullRom);
        assert!(cub < lin, "linear {lin}, cubic {cub}");
    }

    #[test]
    fn sinc_reconstructs_bandlimited_tone() {
        // A tone at 0.15 cycles/sample, well under Nyquist: windowed
        // sinc reconstructs it much better than nearest.
        let v: Vec<Sample> = (0..64)
            .map(|i| {
                let x = i as f64;
                s(x, (std::f64::consts::TAU * 0.15 * x).sin())
            })
            .collect();
        let err = |k: Kernel| {
            let mut total = 0.0;
            for i in 0..300 {
                let x = 8.0 + 48.0 * i as f64 / 299.0;
                let want = (std::f64::consts::TAU * 0.15 * x).sin();
                total += (interp_with(&v, x, k) - want).powi(2);
            }
            total
        };
        let nearest = err(Kernel::Nearest);
        let sinc = err(Kernel::WindowedSinc { half_taps: 6 });
        assert!(sinc < nearest / 50.0, "nearest {nearest}, sinc {sinc}");
    }

    #[test]
    fn resample_uniform_with_matches_linear_path() {
        let v = vec![s(0.0, 0.0), s(0.5, 1.0), s(1.0, 2.0)];
        let a = resample_uniform_with(v.clone(), 0.0, 1.0, 5, Kernel::Linear);
        let b = crate::resample::resample_uniform(v, 0.0, 1.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        for k in KERNELS {
            assert_eq!(interp_with(&[], 0.3, k), 0.0);
            assert_eq!(interp_with(&[s(1.0, 9.0)], 5.0, k), 9.0);
        }
        assert!(resample_uniform_with(vec![], 0.0, 1.0, 4, Kernel::Linear).is_empty());
    }
}
