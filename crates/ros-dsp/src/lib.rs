#![warn(missing_docs)]

//! # ros-dsp — signal-processing substrate for RoS
//!
//! Everything the radar pipeline needs to turn raw IF samples into
//! decoded bits:
//!
//! * [`goertzel`] — single-bin (fractional-frequency) DFT used by the
//!   spotlight beamformer,
//! * [`fft`] — iterative radix-2 complex FFT/IFFT with zero-padding
//!   helpers (range processing, RCS frequency spectra),
//! * [`window`] — tapers for sidelobe control,
//! * [`peaks`] — local-maximum detection with prominence and
//!   minimum-separation rules (coding-peak extraction),
//! * [`cfar`] — cell-averaging CFAR detection on range profiles,
//! * [`mod@dbscan`] — the density-based clustering the paper uses (§6) to
//!   group multi-frame point clouds into objects,
//! * [`eig`] / [`music`] — Hermitian eigendecomposition and MUSIC
//!   super-resolution angle estimation (packs tags tighter than the
//!   §5.3 beamwidth bound),
//! * [`resample`] — linear resampling of non-uniform samples onto a
//!   uniform grid (the RCS trace is sampled at the vehicle's positions,
//!   non-uniform in `u = cos θ`),
//! * [`stats`] — summary statistics for the evaluation harness.
//!
//! All routines are allocation-conscious, pure `std`, and extensively
//! unit- and property-tested.

pub mod cfar;
pub mod czt;
pub mod dbscan;
pub mod eig;
pub mod fft;
pub mod goertzel;
pub mod interp;
pub mod music;
pub mod peaks;
pub mod plan;
pub mod resample;
pub mod stats;
pub mod window;

pub use dbscan::{dbscan, DbscanParams};
pub use fft::{fft_in_place, ifft_in_place, spectrum_padded, FftPlan};
pub use peaks::{find_peaks, Peak, PeakParams};
pub use plan::PlanCache;
