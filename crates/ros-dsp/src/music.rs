//! MUSIC super-resolution angle estimation.
//!
//! The paper's radar separates side-by-side tags with plain
//! beamforming, whose resolution is the 28.6° array beamwidth (§3.2) —
//! the reason §5.3 requires ≥1.53 m between tags at 6 m. MUSIC
//! (MUltiple SIgnal Classification) breaks that limit by splitting the
//! antenna covariance into signal and noise subspaces: sources produce
//! *nulls* of the noise subspace, which can be far narrower than a
//! beamwidth. With it, advertising boards can pack tags closer than
//! the §5.3 bound.

use crate::eig::{hermitian_eig, CMatrix};
use crate::peaks::{find_peaks, PeakParams};
use ros_em::Complex64;
use ros_em::units::cast::AsF64;

/// Sample covariance matrix `R = (1/T)·Σ x x^H` from snapshots
/// (`snapshots[t][antenna]`).
///
/// # Panics
/// Panics when snapshots are empty or ragged.
pub fn covariance(snapshots: &[Vec<Complex64>]) -> CMatrix {
    assert!(!snapshots.is_empty(), "need at least one snapshot");
    let n = snapshots[0].len();
    assert!(snapshots.iter().all(|s| s.len() == n), "ragged snapshots");
    let mut r = CMatrix::zeros(n);
    for x in snapshots {
        for i in 0..n {
            for j in 0..n {
                r[(i, j)] += x[i] * x[j].conj();
            }
        }
    }
    let t = snapshots.len().as_f64();
    for v in r.data.iter_mut() {
        *v = *v / t;
    }
    r
}

/// MUSIC pseudo-spectrum over a `sin(az)` grid for a uniform linear
/// array with `spacing_wavelengths` element pitch.
///
/// `n_sources` is the assumed source count (signal-subspace size).
/// Returns `(u_grid, pseudo_spectrum)`.
///
/// # Panics
/// Panics when `n_sources >= n_antennas`.
pub fn music_spectrum(
    r: &CMatrix,
    n_sources: usize,
    spacing_wavelengths: f64,
    n_grid: usize,
) -> (Vec<f64>, Vec<f64>) {
    let n = r.n;
    assert!(
        n_sources < n,
        "need at least one noise dimension ({n_sources} sources, {n} antennas)"
    );
    let eig = hermitian_eig(r);
    // Noise subspace: eigenvectors with the smallest n − k eigenvalues
    // (eigenvalues come back ascending).
    let n_noise = n - n_sources;

    let mut us = Vec::with_capacity(n_grid);
    let mut ps = Vec::with_capacity(n_grid);
    for g in 0..n_grid {
        let u = -1.0 + 2.0 * g.as_f64() / (n_grid - 1).as_f64();
        // Steering vector a(u).
        let a: Vec<Complex64> = (0..n)
            .map(|k| Complex64::cis(-std::f64::consts::TAU * k.as_f64() * spacing_wavelengths * u))
            .collect();
        // ||E_n^H a||².
        let mut denom = 0.0;
        for col in 0..n_noise {
            let mut dot = Complex64::ZERO;
            for i in 0..n {
                dot += eig.vectors[(i, col)].conj() * a[i];
            }
            denom += dot.norm_sqr();
        }
        us.push(u);
        ps.push(1.0 / denom.max(1e-12));
    }
    (us, ps)
}

/// Estimates up to `n_sources` source directions (as `sin(az)` values)
/// from antenna snapshots, strongest first.
pub fn music_doa(
    snapshots: &[Vec<Complex64>],
    n_sources: usize,
    spacing_wavelengths: f64,
) -> Vec<f64> {
    let r = covariance(snapshots);
    let (us, ps) = music_spectrum(&r, n_sources, spacing_wavelengths, 1024);
    let peaks = find_peaks(
        &ps,
        &PeakParams {
            min_separation: 8,
            ..Default::default()
        },
    );
    peaks
        .iter()
        .take(n_sources)
        .map(|p| us[p.index])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthesizes snapshots for sources at the given `sin(az)` values.
    fn snapshots(
        sources: &[(f64, f64)], // (u, amplitude)
        n_ant: usize,
        spacing: f64,
        t: usize,
        noise: f64,
        seed: u64,
    ) -> Vec<Vec<Complex64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t)
            .map(|_| {
                (0..n_ant)
                    .map(|k| {
                        let mut x = Complex64::new(
                            rng.gen::<f64>() * noise - noise / 2.0,
                            rng.gen::<f64>() * noise - noise / 2.0,
                        );
                        for &(u, amp) in sources {
                            // Random per-snapshot source phase.
                            let _ = amp;
                            x += Complex64::cis(
                                -std::f64::consts::TAU * k as f64 * spacing * u,
                            ) * amp;
                        }
                        x
                    })
                    .collect()
            })
            .collect()
    }

    /// Snapshots with independent random source phases per snapshot
    /// (decorrelates the sources, as MUSIC requires).
    fn snapshots_random_phase(
        sources: &[(f64, f64)],
        n_ant: usize,
        spacing: f64,
        t: usize,
        noise: f64,
        seed: u64,
    ) -> Vec<Vec<Complex64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t)
            .map(|_| {
                let phases: Vec<f64> = sources
                    .iter()
                    .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
                    .collect();
                (0..n_ant)
                    .map(|k| {
                        let mut x = Complex64::new(
                            (rng.gen::<f64>() - 0.5) * noise,
                            (rng.gen::<f64>() - 0.5) * noise,
                        );
                        for (s, &(u, amp)) in sources.iter().enumerate() {
                            x += Complex64::from_polar(
                                amp,
                                phases[s]
                                    - std::f64::consts::TAU * k as f64 * spacing * u,
                            );
                        }
                        x
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn covariance_of_single_source_is_rank_one() {
        let snaps = snapshots(&[(0.3, 1.0)], 4, 0.5, 64, 0.0, 1);
        let r = covariance(&snaps);
        let eig = crate::eig::hermitian_eig(&r);
        // One dominant eigenvalue, three ≈ 0.
        assert!(eig.values[3] > 100.0 * eig.values[2].max(1e-12));
    }

    #[test]
    fn single_source_located() {
        let u0 = 0.35;
        let snaps = snapshots_random_phase(&[(u0, 1.0)], 4, 0.5, 128, 0.05, 2);
        let doa = music_doa(&snaps, 1, 0.5);
        assert_eq!(doa.len(), 1);
        assert!((doa[0] - u0).abs() < 0.02, "got {}", doa[0]);
    }

    #[test]
    fn resolves_sources_inside_a_beamwidth() {
        // 4 antennas at λ/2: beamforming resolution Δu ≈ 0.5. Two
        // sources Δu = 0.25 apart are unresolvable classically; MUSIC
        // splits them.
        let (u1, u2) = (0.10, 0.35);
        let snaps =
            snapshots_random_phase(&[(u1, 1.0), (u2, 1.0)], 4, 0.5, 256, 0.05, 3);
        let mut doa = music_doa(&snaps, 2, 0.5);
        doa.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(doa.len(), 2, "found {doa:?}");
        assert!((doa[0] - u1).abs() < 0.04, "got {doa:?}");
        assert!((doa[1] - u2).abs() < 0.04, "got {doa:?}");
    }

    #[test]
    fn pseudo_spectrum_peaks_at_source() {
        let u0 = -0.2;
        let snaps = snapshots_random_phase(&[(u0, 1.0)], 4, 0.5, 128, 0.1, 4);
        let r = covariance(&snaps);
        let (us, ps) = music_spectrum(&r, 1, 0.5, 512);
        let peak_idx = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!((us[peak_idx] - u0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "noise dimension")]
    fn too_many_sources_rejected() {
        let snaps = snapshots(&[(0.0, 1.0)], 4, 0.5, 8, 0.0, 5);
        let r = covariance(&snaps);
        music_spectrum(&r, 4, 0.5, 64);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_snapshots_rejected() {
        let snaps = vec![vec![Complex64::ZERO; 4], vec![Complex64::ZERO; 3]];
        covariance(&snaps);
    }
}
