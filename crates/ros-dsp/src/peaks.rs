//! Peak detection for spectra and angular profiles.
//!
//! Used in three places:
//!
//! * range-profile peaks → point-cloud candidates (with CFAR),
//! * AoA pseudo-spectrum peaks → per-point azimuth,
//! * RCS-frequency-spectrum peaks → coding-bit amplitudes (§5.2).
//!
//! The detector finds strict local maxima, optionally enforces a
//! minimum height, *prominence* (height above the higher of the two
//! flanking saddles — robust against sidelobe shoulders), and a minimum
//! index separation (greedy, strongest first).

use ros_em::units::cast::{self, AsF64};

/// A detected peak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Index into the input slice.
    pub index: usize,
    /// Value at the peak.
    pub value: f64,
    /// Prominence: peak height above the higher flanking minimum.
    pub prominence: f64,
    /// Sub-bin interpolated position (parabolic fit of the peak and its
    /// neighbours); equals `index as f64` at the array edges.
    pub refined_index: f64,
}

/// Detection thresholds. Defaults accept everything (pure local maxima).
#[derive(Clone, Copy, Debug)]
pub struct PeakParams {
    /// Minimum peak value.
    pub min_height: f64,
    /// Minimum prominence.
    pub min_prominence: f64,
    /// Minimum separation between retained peaks, in samples.
    pub min_separation: usize,
}

impl Default for PeakParams {
    fn default() -> Self {
        PeakParams {
            min_height: f64::NEG_INFINITY,
            min_prominence: 0.0,
            min_separation: 0,
        }
    }
}

/// Finds peaks in `data` subject to `params`, sorted by descending value.
pub fn find_peaks(data: &[f64], params: &PeakParams) -> Vec<Peak> {
    let n = data.len();
    if n < 3 {
        return Vec::new();
    }

    let mut peaks: Vec<Peak> = Vec::new();
    for i in 1..n - 1 {
        // A strict local max; plateaus are attributed to their left edge.
        if data[i] > data[i - 1] && data[i] >= data[i + 1] {
            if data[i] < params.min_height {
                continue;
            }
            let prominence = prominence_at(data, i);
            if prominence < params.min_prominence {
                continue;
            }
            peaks.push(Peak {
                index: i,
                value: data[i],
                prominence,
                refined_index: parabolic_refine(data, i),
            });
        }
    }

    peaks.sort_by(|a, b| b.value.total_cmp(&a.value));

    if params.min_separation > 0 {
        let mut kept: Vec<Peak> = Vec::new();
        for p in peaks {
            if kept
                .iter()
                .all(|q| p.index.abs_diff(q.index) >= params.min_separation)
            {
                kept.push(p);
            }
        }
        return kept;
    }
    peaks
}

/// Stable in-place insertion sort by descending value — the same
/// permutation `sort_by(|a, b| b.value.total_cmp(&a.value))` produces
/// (both are stable), but without `std`'s runtime merge buffer. Peak
/// lists on the hot path are short (a handful of coding/AoA peaks), so
/// the quadratic worst case is irrelevant.
fn sort_desc_by_value(peaks: &mut [Peak]) {
    for i in 1..peaks.len() {
        let mut j = i;
        while j > 0 && peaks[j - 1].value.total_cmp(&peaks[j].value) == std::cmp::Ordering::Less {
            peaks.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Scratch-buffer twin of [`find_peaks`]: identical detections written
/// into `out` (cleared first). Allocation-free once `out` has grown to
/// capacity, so it is safe to call from `lint: hot-path` kernels.
// lint: hot-path
pub fn find_peaks_into(data: &[f64], params: &PeakParams, out: &mut Vec<Peak>) {
    out.clear();
    let n = data.len();
    if n < 3 {
        return;
    }
    for i in 1..n - 1 {
        // A strict local max; plateaus are attributed to their left edge.
        if data[i] > data[i - 1] && data[i] >= data[i + 1] {
            if data[i] < params.min_height {
                continue;
            }
            let prominence = prominence_at(data, i);
            if prominence < params.min_prominence {
                continue;
            }
            out.push(Peak {
                index: i,
                value: data[i],
                prominence,
                refined_index: parabolic_refine(data, i),
            });
        }
    }

    sort_desc_by_value(out);

    if params.min_separation > 0 {
        // Greedy strongest-first keep, compacted in place: the kept
        // set is always a prefix of `out`, so the separation test can
        // run against the already-written prefix.
        let mut write = 0usize;
        for i in 0..out.len() {
            let p = out[i];
            if out[..write]
                .iter()
                .all(|q| p.index.abs_diff(q.index) >= params.min_separation)
            {
                out[write] = p;
                write += 1;
            }
        }
        out.truncate(write);
    }
}

/// Prominence of the local maximum at `i`: walk left and right until a
/// sample higher than `data[i]` is found (or the edge); the prominence
/// is `data[i]` minus the higher of the two interval minima.
fn prominence_at(data: &[f64], i: usize) -> f64 {
    let h = data[i];

    let mut left_min = h;
    for j in (0..i).rev() {
        if data[j] > h {
            break;
        }
        left_min = left_min.min(data[j]);
    }

    let mut right_min = h;
    for &v in &data[i + 1..] {
        if v > h {
            break;
        }
        right_min = right_min.min(v);
    }

    h - left_min.max(right_min)
}

/// Three-point parabolic interpolation of the true peak position.
fn parabolic_refine(data: &[f64], i: usize) -> f64 {
    if i == 0 || i + 1 >= data.len() {
        return i.as_f64();
    }
    let (a, b, c) = (data[i - 1], data[i], data[i + 1]);
    let denom = a - 2.0 * b + c;
    if denom.abs() < 1e-300 {
        return i.as_f64();
    }
    let delta = 0.5 * (a - c) / denom;
    // Clamp: a sane vertex lies within ±½ bin of the sampled maximum.
    i.as_f64() + delta.clamp(-0.5, 0.5)
}

/// Value of the largest element (0.0 for an empty slice) — convenience
/// for normalizing spectra before peak thresholding.
pub fn max_value(data: &[f64]) -> f64 {
    data.iter().cloned().fold(0.0_f64, f64::max)
}

/// Interpolated amplitude of `data` at fractional index `x` (linear).
pub fn sample_at(data: &[f64], x: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    if x <= 0.0 {
        return data[0];
    }
    let last = (data.len() - 1).as_f64();
    if x >= last {
        return data[data.len() - 1];
    }
    let i = cast::floor_usize(x);
    let t = x - i.as_f64();
    data[i] * (1.0 - t) + data[i + 1] * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_peak() {
        let d = [0.0, 1.0, 3.0, 1.0, 0.0];
        let p = find_peaks(&d, &PeakParams::default());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 2);
        assert_eq!(p[0].value, 3.0);
        assert_eq!(p[0].prominence, 3.0);
    }

    #[test]
    fn no_peaks_in_monotone_data() {
        let up: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(find_peaks(&up, &PeakParams::default()).is_empty());
        let down: Vec<f64> = (0..10).map(|i| -(i as f64)).collect();
        assert!(find_peaks(&down, &PeakParams::default()).is_empty());
    }

    #[test]
    fn edge_samples_are_not_peaks() {
        let d = [5.0, 1.0, 2.0, 1.0, 9.0];
        let p = find_peaks(&d, &PeakParams::default());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 2);
    }

    #[test]
    fn sorted_by_value_descending() {
        let d = [0.0, 2.0, 0.0, 5.0, 0.0, 3.0, 0.0];
        let p = find_peaks(&d, &PeakParams::default());
        let values: Vec<f64> = p.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![5.0, 3.0, 2.0]);
    }

    #[test]
    fn min_height_filters() {
        let d = [0.0, 2.0, 0.0, 5.0, 0.0];
        let p = find_peaks(
            &d,
            &PeakParams {
                min_height: 3.0,
                ..Default::default()
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].value, 5.0);
    }

    #[test]
    fn prominence_of_shoulder_is_small() {
        // A small bump riding on the flank of a big peak has low
        // prominence even though its height is large.
        let d = [0.0, 10.0, 8.0, 8.5, 2.0, 0.0];
        let p = find_peaks(&d, &PeakParams::default());
        let shoulder = p.iter().find(|p| p.index == 3).unwrap();
        assert!((shoulder.prominence - 0.5).abs() < 1e-12);
        let main = p.iter().find(|p| p.index == 1).unwrap();
        assert_eq!(main.prominence, 10.0);
    }

    #[test]
    fn min_separation_keeps_strongest() {
        let d = [0.0, 4.0, 0.0, 5.0, 0.0, 4.5, 0.0];
        let p = find_peaks(
            &d,
            &PeakParams {
                min_separation: 3,
                ..Default::default()
            },
        );
        // 5.0 at idx 3 wins; 4.5 at idx 5 is within 3 bins; 4.0 at idx 1 too.
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 3);
    }

    #[test]
    fn plateau_detected_once() {
        let d = [0.0, 1.0, 1.0, 0.0];
        let p = find_peaks(&d, &PeakParams::default());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 1);
    }

    #[test]
    fn parabolic_refinement_recovers_offset() {
        // Sample a parabola with vertex at 2.3.
        let vertex = 2.3;
        let d: Vec<f64> = (0..6).map(|i| 10.0 - (i as f64 - vertex).powi(2)).collect();
        let p = find_peaks(&d, &PeakParams::default());
        assert_eq!(p.len(), 1);
        assert!((p[0].refined_index - vertex).abs() < 1e-9);
    }

    #[test]
    fn sample_at_interpolates() {
        let d = [0.0, 10.0, 20.0];
        assert_eq!(sample_at(&d, 0.5), 5.0);
        assert_eq!(sample_at(&d, 1.0), 10.0);
        assert_eq!(sample_at(&d, -1.0), 0.0);
        assert_eq!(sample_at(&d, 99.0), 20.0);
        assert_eq!(sample_at(&[], 1.0), 0.0);
    }

    #[test]
    fn max_value_handles_empty() {
        assert_eq!(max_value(&[]), 0.0);
        assert_eq!(max_value(&[1.0, 7.0, 3.0]), 7.0);
    }

    #[test]
    fn into_variant_matches_direct() {
        // Ties, separation, thresholds — the into variant must agree
        // exactly (same order, same bits) with the allocating one.
        let d = [0.0, 4.0, 0.0, 5.0, 0.0, 4.0, 0.0, 2.0, 0.0, 5.0, 0.0];
        for params in [
            PeakParams::default(),
            PeakParams {
                min_separation: 3,
                ..Default::default()
            },
            PeakParams {
                min_height: 3.0,
                min_prominence: 1.0,
                min_separation: 2,
            },
        ] {
            let direct = find_peaks(&d, &params);
            let mut out = vec![
                Peak {
                    index: 9,
                    value: 9.9,
                    prominence: 0.0,
                    refined_index: 0.0
                };
                2
            ]; // dirty buffer must be cleared
            find_peaks_into(&d, &params, &mut out);
            assert_eq!(direct, out);
        }
    }

    #[test]
    fn short_inputs_yield_nothing() {
        assert!(find_peaks(&[], &PeakParams::default()).is_empty());
        assert!(find_peaks(&[1.0], &PeakParams::default()).is_empty());
        assert!(find_peaks(&[1.0, 2.0], &PeakParams::default()).is_empty());
    }
}
