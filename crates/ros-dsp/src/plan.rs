//! Plan cache: memoized FFT / CZT / window plans keyed by their build
//! parameters.
//!
//! The decode and detect prologues resolve plans here once per
//! configuration; the `lint: hot-path` kernels then borrow the plans
//! and run allocation-free. Lookups use `BTreeMap` so any iteration
//! over cached plans is deterministic (the `nondet-iter` contract),
//! and CZT arc parameters are keyed by their exact `f64` bit patterns
//! — two configurations share a plan only when the planned transform
//! would be bit-identical.
//!
//! Cache misses build a plan (allocating); that is why no method of
//! [`PlanCache`] may be called from a hot-path kernel. Callers split
//! resolution (prologue, warm-up) from execution (steady state).

use crate::czt::CztPlan;
use crate::fft::FftPlan;
use crate::window::{Window, WindowTable};
use ros_em::Complex64;
use std::collections::BTreeMap;

/// Cache key for a CZT plan: sizes plus the exact bit patterns of the
/// arc parameters `w` and `a`.
type CztKey = (usize, usize, (u64, u64), (u64, u64));

/// Memoized plan storage; one per worker or per long-lived scratch
/// arena. See the module docs for the resolution/execution split.
#[derive(Clone, Debug, Default)]
pub struct PlanCache {
    fft: BTreeMap<usize, FftPlan>,
    czt: BTreeMap<CztKey, CztPlan>,
    windows: BTreeMap<(u8, usize), WindowTable>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The FFT plan for transforms of length `n`, built on first use.
    pub fn fft(&mut self, n: usize) -> &FftPlan {
        self.fft.entry(n).or_insert_with(|| FftPlan::new(n))
    }

    /// The CZT plan for `czt(x, m, w, a)` with `x.len() == n`, built on
    /// first use.
    pub fn czt(&mut self, n: usize, m: usize, w: Complex64, a: Complex64) -> &CztPlan {
        let key = (
            n,
            m,
            (w.re.to_bits(), w.im.to_bits()),
            (a.re.to_bits(), a.im.to_bits()),
        );
        self.czt.entry(key).or_insert_with(|| CztPlan::new(n, m, w, a))
    }

    /// The window table for `window` at length `n`, built on first use.
    pub fn window(&mut self, window: Window, n: usize) -> &WindowTable {
        self.windows
            .entry((window.key(), n))
            .or_insert_with(|| WindowTable::new(window, n))
    }

    /// Resolves a window table *and* an FFT plan in one call, so a
    /// prologue can hold shared references to both while a hot-path
    /// kernel runs (the two live in disjoint maps, so the borrows
    /// coexist without a fallible re-lookup).
    pub fn window_and_fft(
        &mut self,
        window: Window,
        window_n: usize,
        fft_n: usize,
    ) -> (&WindowTable, &FftPlan) {
        let table = self
            .windows
            .entry((window.key(), window_n))
            .or_insert_with(|| WindowTable::new(window, window_n));
        let plan = self.fft.entry(fft_n).or_insert_with(|| FftPlan::new(fft_n));
        (table, plan)
    }

    /// Resolves a window table *and* a CZT plan in one call; the CZT
    /// twin of [`PlanCache::window_and_fft`].
    pub fn window_and_czt(
        &mut self,
        window: Window,
        window_n: usize,
        n: usize,
        m: usize,
        w: Complex64,
        a: Complex64,
    ) -> (&WindowTable, &CztPlan) {
        let table = self
            .windows
            .entry((window.key(), window_n))
            .or_insert_with(|| WindowTable::new(window, window_n));
        let key = (
            n,
            m,
            (w.re.to_bits(), w.im.to_bits()),
            (a.re.to_bits(), a.im.to_bits()),
        );
        let plan = self.czt.entry(key).or_insert_with(|| CztPlan::new(n, m, w, a));
        (table, plan)
    }

    /// Total number of cached plans across all kinds.
    pub fn len(&self) -> usize {
        self.fft.len() + self.czt.len() + self.windows.len()
    }

    /// True when nothing has been planned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (arena reset). Subsequent lookups
    /// rebuild from the same parameters, so results are unchanged —
    /// only the build cost returns.
    pub fn clear(&mut self) {
        self.fft.clear();
        self.czt.clear();
        self.windows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_by_size() {
        let mut cache = PlanCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.fft(64).len(), 64);
        assert_eq!(cache.fft(128).len(), 128);
        assert_eq!(cache.fft(64).len(), 64); // hit, not a rebuild
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn combined_resolution_yields_coexisting_refs() {
        let mut cache = PlanCache::new();
        let (table, plan) = cache.window_and_fft(Window::Hann, 512, 64);
        assert_eq!(plan.len(), 64);
        assert_eq!(table.len(), 512);
        assert_eq!(cache.len(), 2);
        // A second resolution with the same parameters hits the cache.
        cache.window_and_fft(Window::Hann, 512, 64);
        assert_eq!(cache.len(), 2);

        let w = Complex64::cis(-0.05);
        let a = Complex64::cis(0.0);
        let (table, czt) = cache.window_and_czt(Window::Hamming, 17, 17, 23, w, a);
        assert_eq!(table.len(), 17);
        assert_eq!(czt.input_len(), 17);
        assert_eq!(czt.output_len(), 23);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn czt_keyed_by_exact_parameters() {
        let mut cache = PlanCache::new();
        let w = Complex64::cis(-0.05);
        let a = Complex64::cis(0.3);
        cache.czt(17, 23, w, a);
        cache.czt(17, 23, w, a); // identical params → hit
        assert_eq!(cache.len(), 1);
        cache.czt(17, 23, w, Complex64::cis(0.31)); // new arc → miss
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn windows_keyed_by_shape_and_length() {
        let mut cache = PlanCache::new();
        cache.window(Window::Hann, 512);
        cache.window(Window::Hann, 512);
        cache.window(Window::Hamming, 512);
        cache.window(Window::Hann, 256);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn clear_resets_and_rebuilds_identically() {
        let mut cache = PlanCache::new();
        let mut data: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut first = data.clone();
        cache.fft(32).process_forward(&mut first);
        cache.clear();
        assert!(cache.is_empty());
        cache.fft(32).process_forward(&mut data);
        for (a, b) in first.iter().zip(&data) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
}
