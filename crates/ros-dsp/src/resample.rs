//! Resampling of non-uniformly sampled traces onto uniform grids.
//!
//! The tag's RCS is sampled wherever the vehicle happens to be when a
//! frame fires, i.e. at non-uniform positions in `u = cos θ` (§5.1's
//! spectral variable). The FFT needs uniform samples, so the decoder
//! first sorts the (u, RSS) pairs and linearly interpolates them onto a
//! uniform u-grid. Tracking error (Fig. 16d) enters precisely here: the
//! *assumed* u values drift from the true ones, warping the grid.

use ros_em::units::cast::AsF64;

/// A sampled point of a 1-D trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Abscissa (e.g. `u = cos θ`).
    pub x: f64,
    /// Ordinate (e.g. linear RSS).
    pub y: f64,
}

/// Sorts samples by `x`, averaging exact duplicates.
///
/// Duplicate abscissae occur when the vehicle is nearly stationary
/// relative to the tag (frames faster than motion); averaging them is
/// the maximum-likelihood combination under AWGN.
pub fn sort_dedup(samples: &mut Vec<Sample>) {
    samples.sort_by(|a, b| a.x.total_cmp(&b.x));
    let mut out: Vec<Sample> = Vec::with_capacity(samples.len());
    let mut i = 0;
    while i < samples.len() {
        let x = samples[i].x;
        let mut sum = 0.0;
        let mut cnt = 0usize;
        while i < samples.len() && samples[i].x == x {
            sum += samples[i].y;
            cnt += 1;
            i += 1;
        }
        out.push(Sample {
            x,
            y: sum / cnt.as_f64(),
        });
    }
    *samples = out;
}

/// Linearly interpolates sorted samples at `x`; clamps outside the hull.
pub fn interp(samples: &[Sample], x: f64) -> f64 {
    match samples {
        [] => 0.0,
        [only] => only.y,
        _ => {
            if x <= samples[0].x {
                return samples[0].y;
            }
            let last = samples.len() - 1;
            if x >= samples[last].x {
                return samples[last].y;
            }
            // Binary search for the bracketing pair.
            let mut lo = 0usize;
            let mut hi = last;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if samples[mid].x <= x {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let (a, b) = (samples[lo], samples[hi]);
            let t = (x - a.x) / (b.x - a.x);
            a.y * (1.0 - t) + b.y * t
        }
    }
}

/// Stable bottom-up merge sort of samples by `x`, using `aux` as the
/// merge buffer. Stability makes the output permutation identical to
/// the `sort_by(total_cmp)` the direct path uses — `std`'s stable sort
/// allocates a scratch buffer at runtime, which is exactly what the
/// hot path must avoid.
fn merge_sort_by_x(samples: &mut [Sample], aux: &mut Vec<Sample>) {
    let n = samples.len();
    aux.clear();
    aux.resize(n, Sample { x: 0.0, y: 0.0 });
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            if mid < hi {
                let (mut i, mut j) = (lo, mid);
                for k in lo..hi {
                    if i < mid
                        && (j >= hi
                            || samples[i].x.total_cmp(&samples[j].x) != std::cmp::Ordering::Greater)
                    {
                        aux[k] = samples[i];
                        i += 1;
                    } else {
                        aux[k] = samples[j];
                        j += 1;
                    }
                }
                samples[lo..hi].copy_from_slice(&aux[lo..hi]);
            }
            lo = hi;
        }
        width *= 2;
    }
}

/// In-place twin of the [`sort_dedup`] compaction pass: averages runs
/// of exactly-equal abscissae, writing the survivors to the front and
/// truncating. Same run grouping and summation order as the direct
/// path, so the averaged values carry the same bits.
fn dedup_average_in_place(samples: &mut Vec<Sample>) {
    let n = samples.len();
    let mut write = 0usize;
    let mut i = 0usize;
    while i < n {
        let x = samples[i].x;
        let mut sum = 0.0;
        let mut cnt = 0usize;
        while i < n && samples[i].x == x {
            sum += samples[i].y;
            cnt += 1;
            i += 1;
        }
        samples[write] = Sample {
            x,
            y: sum / cnt.as_f64(),
        };
        write += 1;
    }
    samples.truncate(write);
}

/// Scratch-buffer twin of [`resample_uniform`]: sorts/dedups `samples`
/// in place (it is consumed as working storage, exactly like the
/// by-value direct version) and writes the uniform grid into `out`.
/// `aux` is merge-sort scratch. Bit-identical to the direct path;
/// allocation-free once all three buffers have grown to capacity.
// lint: hot-path
pub fn resample_uniform_into(
    samples: &mut Vec<Sample>,
    x0: f64,
    x1: f64,
    n: usize,
    aux: &mut Vec<Sample>,
    out: &mut Vec<f64>,
) {
    out.clear();
    if samples.is_empty() || n == 0 {
        return;
    }
    merge_sort_by_x(samples, aux);
    dedup_average_in_place(samples);
    for i in 0..n {
        let x = if n == 1 {
            (x0 + x1) / 2.0
        } else {
            x0 + (x1 - x0) * i.as_f64() / (n - 1).as_f64()
        };
        out.push(interp(samples, x));
    }
}

/// Resamples a non-uniform trace onto `n` uniform points spanning
/// `[x0, x1]`. The input is sorted/deduplicated internally.
///
/// Returns an empty vector when the input is empty or `n == 0`.
///
/// This is the direct (allocating) reference; the hot decode path uses
/// [`resample_uniform_into`] with caller-held scratch.
pub fn resample_uniform(mut samples: Vec<Sample>, x0: f64, x1: f64, n: usize) -> Vec<f64> {
    if samples.is_empty() || n == 0 {
        return Vec::new();
    }
    sort_dedup(&mut samples);
    (0..n)
        .map(|i| {
            let x = if n == 1 {
                (x0 + x1) / 2.0
            } else {
                x0 + (x1 - x0) * i.as_f64() / (n - 1).as_f64()
            };
            interp(&samples, x)
        })
        .collect()
}

/// Mean sample spacing of a sorted trace — used to check the §5.3
/// Nyquist condition `δ_s ≤ λ/(4·d_{M−1}/λ)…` before decoding.
pub fn mean_spacing(samples: &[Sample]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    Some((samples[samples.len() - 1].x - samples[0].x) / (samples.len() - 1).as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64, y: f64) -> Sample {
        Sample { x, y }
    }

    #[test]
    fn sort_and_average_duplicates() {
        let mut v = vec![s(2.0, 4.0), s(1.0, 1.0), s(2.0, 6.0)];
        sort_dedup(&mut v);
        assert_eq!(v, vec![s(1.0, 1.0), s(2.0, 5.0)]);
    }

    #[test]
    fn interp_linear_between_points() {
        let v = vec![s(0.0, 0.0), s(1.0, 10.0)];
        assert_eq!(interp(&v, 0.25), 2.5);
        assert_eq!(interp(&v, 0.5), 5.0);
    }

    #[test]
    fn interp_clamps_outside() {
        let v = vec![s(0.0, 3.0), s(1.0, 7.0)];
        assert_eq!(interp(&v, -5.0), 3.0);
        assert_eq!(interp(&v, 5.0), 7.0);
    }

    #[test]
    fn interp_degenerate() {
        assert_eq!(interp(&[], 0.5), 0.0);
        assert_eq!(interp(&[s(1.0, 9.0)], 42.0), 9.0);
    }

    #[test]
    fn resample_recovers_linear_function() {
        // y = 2x sampled non-uniformly, resampled uniformly.
        let xs = [0.0, 0.13, 0.41, 0.55, 0.78, 1.0];
        let samples: Vec<Sample> = xs.iter().map(|&x| s(x, 2.0 * x)).collect();
        let out = resample_uniform(samples, 0.0, 1.0, 11);
        for (i, &y) in out.iter().enumerate() {
            let x = i as f64 / 10.0;
            assert!((y - 2.0 * x).abs() < 1e-12, "at {x}: {y}");
        }
    }

    #[test]
    fn resample_unsorted_input() {
        let samples = vec![s(1.0, 2.0), s(0.0, 0.0), s(0.5, 1.0)];
        let out = resample_uniform(samples, 0.0, 1.0, 3);
        assert_eq!(out, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn resample_empty_and_single() {
        assert!(resample_uniform(vec![], 0.0, 1.0, 8).is_empty());
        assert!(resample_uniform(vec![s(0.0, 1.0)], 0.0, 1.0, 0).is_empty());
        let out = resample_uniform(vec![s(0.3, 7.0)], 0.0, 1.0, 4);
        assert_eq!(out, vec![7.0; 4]);
    }

    #[test]
    fn resample_single_point_grid() {
        let out = resample_uniform(vec![s(0.0, 0.0), s(1.0, 10.0)], 0.0, 1.0, 1);
        assert_eq!(out, vec![5.0]); // midpoint of the span
    }

    #[test]
    fn into_variant_bit_identical_to_direct() {
        // Awkward data: duplicates, negative zero, unsorted, ties.
        let data = vec![
            s(0.3, 1.0),
            s(-0.2, 4.0),
            s(0.3, 3.0),
            s(0.0, 7.0),
            s(-0.0, 9.0),
            s(0.11, -2.5),
            s(-0.2, 6.0),
            s(0.3, 5.0),
        ];
        for n in [0usize, 1, 2, 7, 64] {
            let direct = resample_uniform(data.clone(), -0.5, 0.5, n);
            let mut work = data.clone();
            let mut aux = Vec::new();
            let mut out = vec![99.0; 3]; // dirty buffer must be cleared
            resample_uniform_into(&mut work, -0.5, 0.5, n, &mut aux, &mut out);
            assert_eq!(direct.len(), out.len(), "n={n}");
            for (a, b) in direct.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn into_variant_scratch_reuse_across_sizes() {
        // The same scratch buffers serve different trace lengths and
        // grid sizes without leaking state between calls.
        let mut aux = Vec::new();
        let mut out = Vec::new();
        for len in [3usize, 17, 5, 64, 2] {
            let data: Vec<Sample> = (0..len)
                .map(|i| s(((i * 7919) % len) as f64 / len as f64, i as f64 * 0.3))
                .collect();
            let n = len * 2;
            let direct = resample_uniform(data.clone(), 0.0, 1.0, n);
            let mut work = data;
            resample_uniform_into(&mut work, 0.0, 1.0, n, &mut aux, &mut out);
            assert_eq!(direct.len(), out.len());
            for (a, b) in direct.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "len={len}");
            }
        }
    }

    #[test]
    fn mean_spacing_uniform() {
        let v: Vec<Sample> = (0..5).map(|i| s(i as f64 * 0.5, 0.0)).collect();
        assert_eq!(mean_spacing(&v), Some(0.5));
        assert_eq!(mean_spacing(&v[..1]), None);
        assert_eq!(mean_spacing(&[]), None);
    }
}
