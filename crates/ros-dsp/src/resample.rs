//! Resampling of non-uniformly sampled traces onto uniform grids.
//!
//! The tag's RCS is sampled wherever the vehicle happens to be when a
//! frame fires, i.e. at non-uniform positions in `u = cos θ` (§5.1's
//! spectral variable). The FFT needs uniform samples, so the decoder
//! first sorts the (u, RSS) pairs and linearly interpolates them onto a
//! uniform u-grid. Tracking error (Fig. 16d) enters precisely here: the
//! *assumed* u values drift from the true ones, warping the grid.

use ros_em::units::cast::AsF64;

/// A sampled point of a 1-D trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Abscissa (e.g. `u = cos θ`).
    pub x: f64,
    /// Ordinate (e.g. linear RSS).
    pub y: f64,
}

/// Sorts samples by `x`, averaging exact duplicates.
///
/// Duplicate abscissae occur when the vehicle is nearly stationary
/// relative to the tag (frames faster than motion); averaging them is
/// the maximum-likelihood combination under AWGN.
pub fn sort_dedup(samples: &mut Vec<Sample>) {
    samples.sort_by(|a, b| a.x.total_cmp(&b.x));
    let mut out: Vec<Sample> = Vec::with_capacity(samples.len());
    let mut i = 0;
    while i < samples.len() {
        let x = samples[i].x;
        let mut sum = 0.0;
        let mut cnt = 0usize;
        while i < samples.len() && samples[i].x == x {
            sum += samples[i].y;
            cnt += 1;
            i += 1;
        }
        out.push(Sample {
            x,
            y: sum / cnt.as_f64(),
        });
    }
    *samples = out;
}

/// Linearly interpolates sorted samples at `x`; clamps outside the hull.
pub fn interp(samples: &[Sample], x: f64) -> f64 {
    match samples {
        [] => 0.0,
        [only] => only.y,
        _ => {
            if x <= samples[0].x {
                return samples[0].y;
            }
            let last = samples.len() - 1;
            if x >= samples[last].x {
                return samples[last].y;
            }
            // Binary search for the bracketing pair.
            let mut lo = 0usize;
            let mut hi = last;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if samples[mid].x <= x {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let (a, b) = (samples[lo], samples[hi]);
            let t = (x - a.x) / (b.x - a.x);
            a.y * (1.0 - t) + b.y * t
        }
    }
}

/// Resamples a non-uniform trace onto `n` uniform points spanning
/// `[x0, x1]`. The input is sorted/deduplicated internally.
///
/// Returns an empty vector when the input is empty or `n == 0`.
// lint: hot-path
pub fn resample_uniform(mut samples: Vec<Sample>, x0: f64, x1: f64, n: usize) -> Vec<f64> {
    if samples.is_empty() || n == 0 {
        return Vec::new();
    }
    sort_dedup(&mut samples);
    (0..n)
        .map(|i| {
            let x = if n == 1 {
                (x0 + x1) / 2.0
            } else {
                x0 + (x1 - x0) * i.as_f64() / (n - 1).as_f64()
            };
            interp(&samples, x)
        })
        .collect()
}

/// Mean sample spacing of a sorted trace — used to check the §5.3
/// Nyquist condition `δ_s ≤ λ/(4·d_{M−1}/λ)…` before decoding.
pub fn mean_spacing(samples: &[Sample]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    Some((samples[samples.len() - 1].x - samples[0].x) / (samples.len() - 1).as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64, y: f64) -> Sample {
        Sample { x, y }
    }

    #[test]
    fn sort_and_average_duplicates() {
        let mut v = vec![s(2.0, 4.0), s(1.0, 1.0), s(2.0, 6.0)];
        sort_dedup(&mut v);
        assert_eq!(v, vec![s(1.0, 1.0), s(2.0, 5.0)]);
    }

    #[test]
    fn interp_linear_between_points() {
        let v = vec![s(0.0, 0.0), s(1.0, 10.0)];
        assert_eq!(interp(&v, 0.25), 2.5);
        assert_eq!(interp(&v, 0.5), 5.0);
    }

    #[test]
    fn interp_clamps_outside() {
        let v = vec![s(0.0, 3.0), s(1.0, 7.0)];
        assert_eq!(interp(&v, -5.0), 3.0);
        assert_eq!(interp(&v, 5.0), 7.0);
    }

    #[test]
    fn interp_degenerate() {
        assert_eq!(interp(&[], 0.5), 0.0);
        assert_eq!(interp(&[s(1.0, 9.0)], 42.0), 9.0);
    }

    #[test]
    fn resample_recovers_linear_function() {
        // y = 2x sampled non-uniformly, resampled uniformly.
        let xs = [0.0, 0.13, 0.41, 0.55, 0.78, 1.0];
        let samples: Vec<Sample> = xs.iter().map(|&x| s(x, 2.0 * x)).collect();
        let out = resample_uniform(samples, 0.0, 1.0, 11);
        for (i, &y) in out.iter().enumerate() {
            let x = i as f64 / 10.0;
            assert!((y - 2.0 * x).abs() < 1e-12, "at {x}: {y}");
        }
    }

    #[test]
    fn resample_unsorted_input() {
        let samples = vec![s(1.0, 2.0), s(0.0, 0.0), s(0.5, 1.0)];
        let out = resample_uniform(samples, 0.0, 1.0, 3);
        assert_eq!(out, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn resample_empty_and_single() {
        assert!(resample_uniform(vec![], 0.0, 1.0, 8).is_empty());
        assert!(resample_uniform(vec![s(0.0, 1.0)], 0.0, 1.0, 0).is_empty());
        let out = resample_uniform(vec![s(0.3, 7.0)], 0.0, 1.0, 4);
        assert_eq!(out, vec![7.0; 4]);
    }

    #[test]
    fn resample_single_point_grid() {
        let out = resample_uniform(vec![s(0.0, 0.0), s(1.0, 10.0)], 0.0, 1.0, 1);
        assert_eq!(out, vec![5.0]); // midpoint of the span
    }

    #[test]
    fn mean_spacing_uniform() {
        let v: Vec<Sample> = (0..5).map(|i| s(i as f64 * 0.5, 0.0)).collect();
        assert_eq!(mean_spacing(&v), Some(0.5));
        assert_eq!(mean_spacing(&v[..1]), None);
        assert_eq!(mean_spacing(&[]), None);
    }
}
