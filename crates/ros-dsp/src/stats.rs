//! Summary statistics for the evaluation harness.
//!
//! The paper reports medians, quartile boxes, and SNR values defined as
//! `(μ₁ − μ₀)² / σ²` over coding-peak amplitudes (§7.1). These helpers
//! compute those quantities plus the basics every experiment needs.

use ros_em::units::cast::{self, AsF64};

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len().as_f64()
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len().as_f64()
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated quantile, `q ∈ [0, 1]`; 0.0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1).as_f64();
    let lo = cast::floor_usize(pos);
    let hi = cast::ceil_usize(pos);
    if lo == hi {
        v[lo]
    } else {
        let t = pos - lo.as_f64();
        v[lo] * (1.0 - t) + v[hi] * t
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Five-number box-plot summary used by several figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary; all zeros for an empty slice.
    pub fn from(xs: &[f64]) -> BoxStats {
        BoxStats {
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
        }
    }
}

/// The paper's OOK decoding SNR (§7.1):
/// `SNR = (μ₁ − μ₀)² / σ²`,
/// where `μ₁`/`μ₀` are the mean amplitudes of "1"/"0" coding peaks and
/// `σ` is the pooled standard deviation of the peak amplitudes.
///
/// When no "0" bins exist (`zeros` empty), `μ₀ = 0` — the all-ones tag
/// case the paper predominantly measures. When the pooled deviation is
/// zero (noise-free simulation), returns `f64::INFINITY`.
pub fn ook_snr(ones: &[f64], zeros: &[f64], noise_sigma: f64) -> f64 {
    let mu1 = mean(ones);
    let mu0 = if zeros.is_empty() { 0.0 } else { mean(zeros) };
    let pooled_var = {
        let n1 = ones.len();
        let n0 = zeros.len();
        if n1 + n0 == 0 {
            0.0
        } else {
            (variance(ones) * n1.as_f64() + variance(zeros) * n0.as_f64()) / (n1 + n0).as_f64()
        }
    };
    let sigma2 = pooled_var.max(noise_sigma * noise_sigma);
    if sigma2 <= 0.0 {
        return f64::INFINITY;
    }
    (mu1 - mu0).powi(2) / sigma2
}

/// Converts the paper's SNR to dB.
pub fn snr_db(snr_linear: f64) -> f64 {
    10.0 * snr_linear.log10()
}

/// OOK bit-error rate from linear SNR: `BER = ½·erfc(√SNR / (2√2))`
/// (§7.1, citing the OOK minimum-energy-coding model).
pub fn ook_ber(snr_linear: f64) -> f64 {
    0.5 * ros_em::special::erfc(snr_linear.sqrt() / (2.0 * std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert!((std_dev(&xs) - 1.1180).abs() < 1e-4);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantiles_and_median() {
        let xs = [3.0, 1.0, 2.0, 4.0, 5.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        let even = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&even), 2.5);
    }

    #[test]
    fn box_stats_ordered() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 7.3) % 13.0).collect();
        let b = BoxStats::from(&xs);
        assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
    }

    #[test]
    fn ook_snr_separable_bits() {
        // Ones at 10±0.1, zeros at 1±0.1 → big SNR.
        let ones = [9.9, 10.0, 10.1];
        let zeros = [0.9, 1.0, 1.1];
        let snr = ook_snr(&ones, &zeros, 0.0);
        assert!(snr > 1000.0);
        // Degenerate noise-free case.
        assert_eq!(ook_snr(&[5.0], &[], 0.0), f64::INFINITY);
    }

    #[test]
    fn ook_snr_uses_noise_floor_sigma() {
        let ones = [10.0, 10.0];
        let snr = ook_snr(&ones, &[], 1.0);
        assert!((snr - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ber_anchor_points() {
        // Paper anchors: 15.8 dB → 0.1 %, 14 dB → 0.6 %, 10 dB → 5.7 %.
        let lin = |db: f64| 10f64.powf(db / 10.0);
        assert!((ook_ber(lin(15.8)) - 0.001).abs() < 3e-4);
        assert!((ook_ber(lin(14.0)) - 0.006).abs() < 2e-3);
        assert!((ook_ber(lin(10.0)) - 0.057).abs() < 8e-3);
        // Monotone decreasing in SNR.
        assert!(ook_ber(lin(20.0)) < ook_ber(lin(10.0)));
    }

    #[test]
    fn snr_db_conversion() {
        assert_eq!(snr_db(100.0), 20.0);
        assert!((snr_db(2.0) - 3.0103).abs() < 1e-3);
    }
}
