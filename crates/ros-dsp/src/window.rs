//! Window (taper) functions for spectral analysis.
//!
//! The RCS frequency spectrum (paper Eq. 7) is computed from a finite
//! aperture of `u = cos θ` — truncation sidelobes from strong coding
//! peaks can mask weak ones or fill coding nulls, directly hurting the
//! OOK SNR. A Hann or Blackman taper trades a little main-lobe width
//! for 30–60 dB sidelobe suppression; Fig. 17's "FoV truncation"
//! experiment is exactly a window-length study.

use ros_em::units::cast::AsF64;

/// Supported window shapes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Window {
    /// No taper (boxcar). −13 dB first sidelobe.
    Rect,
    /// Hann (raised cosine). −31.5 dB first sidelobe.
    Hann,
    /// Hamming. −42.7 dB first sidelobe, non-zero ends.
    Hamming,
    /// Blackman. −58 dB first sidelobe, widest main lobe of the set.
    Blackman,
}

impl Window {
    /// Evaluates the window at sample `i` of `n` (symmetric convention).
    pub fn coeff(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = i.as_f64() / (n - 1).as_f64();
        let tau = std::f64::consts::TAU;
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => {
                0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos()
            }
        }
    }

    /// Generates the full window of length `n`.
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coeff(i, n)).collect()
    }

    /// Applies the window to a signal in place.
    pub fn apply(self, signal: &mut [f64]) {
        let n = signal.len();
        for (i, s) in signal.iter_mut().enumerate() {
            *s *= self.coeff(i, n);
        }
    }

    /// Coherent gain: mean of the coefficients (amplitude scaling a
    /// windowed tone suffers); used to normalize peak amplitudes.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.generate(n).iter().sum::<f64>() / n.as_f64()
    }

    /// Stable cache key for plan maps (`BTreeMap`-friendly).
    pub fn key(self) -> u8 {
        match self {
            Window::Rect => 0,
            Window::Hann => 1,
            Window::Hamming => 2,
            Window::Blackman => 3,
        }
    }
}

/// A window evaluated once for a fixed length: coefficient table plus
/// precomputed coherent gain.
///
/// [`Window::apply`] and [`Window::coherent_gain`] re-evaluate the
/// taper (and the gain even allocates a scratch vector) on every call;
/// on the per-frame hot path that cost is pure waste because the
/// length never changes. `WindowTable` front-loads both, and its
/// [`taper`](WindowTable::taper) runs allocation-free with bit-identical
/// results (the table is filled by the same [`Window::coeff`] the
/// direct path evaluates).
#[derive(Clone, Debug)]
pub struct WindowTable {
    window: Window,
    coeffs: Vec<f64>,
    gain: f64,
}

impl WindowTable {
    /// Evaluates `window` for signals of length `n`.
    pub fn new(window: Window, n: usize) -> Self {
        WindowTable {
            window,
            coeffs: window.generate(n),
            gain: window.coherent_gain(n),
        }
    }

    /// The window shape this table was built from.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Signal length the table covers.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when built for length 0.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The raw coefficient table.
    pub(crate) fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Precomputed coherent gain — the same value
    /// [`Window::coherent_gain`] computes, without the per-call
    /// allocation.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Applies the taper in place; bit-identical to [`Window::apply`]
    /// on a signal of the planned length.
    ///
    /// # Panics
    /// Panics if `signal.len()` differs from the table length.
    // lint: hot-path
    pub fn taper(&self, signal: &mut [f64]) {
        assert_eq!(
            signal.len(),
            self.coeffs.len(),
            "window table is for length {}",
            self.coeffs.len()
        );
        for (s, &c) in signal.iter_mut().zip(self.coeffs.iter()) {
            *s *= c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_all_ones() {
        assert!(Window::Rect.generate(9).iter().all(|&c| c == 1.0));
        assert_eq!(Window::Rect.coherent_gain(16), 1.0);
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let w = Window::Hann.generate(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_nonzero() {
        let w = Window::Hamming.generate(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
        assert!((w[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blackman_endpoints_zero() {
        let w = Window::Blackman.generate(17);
        assert!(w[0].abs() < 1e-12);
        assert!((w[8] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [Window::Rect, Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.generate(33);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "{win:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn coherent_gains_ordered() {
        // Heavier tapers give smaller coherent gain.
        let n = 256;
        let rect = Window::Rect.coherent_gain(n);
        let hann = Window::Hann.coherent_gain(n);
        let blackman = Window::Blackman.coherent_gain(n);
        assert!(rect > hann && hann > blackman);
        assert!((hann - 0.5).abs() < 0.01);
        assert!((blackman - 0.42).abs() < 0.01);
    }

    #[test]
    fn apply_scales_signal() {
        let mut s = vec![2.0; 5];
        Window::Hann.apply(&mut s);
        assert!(s[0].abs() < 1e-12);
        assert!((s[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.generate(0).len(), 0);
        assert_eq!(Window::Hann.generate(1), vec![1.0]);
        assert_eq!(Window::Blackman.coeff(0, 1), 1.0);
    }

    #[test]
    fn table_matches_direct_window_bitwise() {
        for win in [Window::Rect, Window::Hann, Window::Hamming, Window::Blackman] {
            for n in [0usize, 1, 7, 64] {
                let table = WindowTable::new(win, n);
                assert_eq!(table.window(), win);
                assert_eq!(table.len(), n);
                assert_eq!(
                    table.gain().to_bits(),
                    win.coherent_gain(n).to_bits(),
                    "{win:?} n={n}"
                );
                let mut direct: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
                let mut tabled = direct.clone();
                win.apply(&mut direct);
                table.taper(&mut tabled);
                for (a, b) in direct.iter().zip(&tabled) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{win:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn window_keys_distinct() {
        let keys: Vec<u8> = [Window::Rect, Window::Hann, Window::Hamming, Window::Blackman]
            .iter()
            .map(|w| w.key())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn hann_sidelobes_below_30db() {
        // Windowed tone: sidelobe level in the padded spectrum.
        use crate::fft::{magnitudes, spectrum_padded};
        let n = 64;
        let k0 = 8.0;
        let mut x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * k0 * i as f64 / n as f64).cos())
            .collect();
        Window::Hann.apply(&mut x);
        let spec = magnitudes(&spectrum_padded(&x, n * 16));
        let nfft = spec.len();
        let peak_bin = (k0 as usize) * nfft / n;
        let peak = spec[peak_bin.saturating_sub(8)..peak_bin + 8]
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        // Far sidelobe well away from the main lobe (and its image).
        let far = spec[nfft / 4]; // bin 16-of-64 equivalent, ~8 bins away
        let ratio_db = 20.0 * (peak / far).log10();
        assert!(ratio_db > 30.0, "sidelobe suppression only {ratio_db:.1} dB");
    }
}
