//! Atmospheric attenuation at automotive-radar frequencies.
//!
//! §7.3 quotes the two numbers that make radar the all-weather sensor:
//! at 79 GHz, heavy fog (1 g/m³ liquid water) attenuates ≈2 dB per
//! 100 m, and heavy rain (100 mm/h) ≈3.2 dB per 100 m — negligible at
//! tag-reading distances, which is exactly what Fig. 16c demonstrates.
//!
//! We expose a small model that is linear in distance with a
//! level-dependent specific attenuation, plus a water-film loss term
//! for fog condensing directly on the tag surface (which in practice
//! dominates at short range and produces the small SNR spread the
//! paper measures across fog levels).
//!
//! Typed entry points ([`fog_one_way`], [`fog_round_trip`],
//! [`rain_one_way`]) return [`Db`]; the `*_db` forms are thin `f64`
//! wrappers kept for call sites that haven't migrated to the typed
//! layer yet.

use crate::units::{Db, Meters};

/// Fog density levels used in the paper's Fig. 16c.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FogLevel {
    /// No fog.
    Clear,
    /// Light fog (visibility ≈ a few hundred metres).
    Light,
    /// Heavy fog (≈1 g/m³ liquid water, visibility ≈ 50 m).
    Heavy,
}

impl FogLevel {
    /// All levels in increasing severity, matching the Fig. 16c x-axis.
    pub const ALL: [FogLevel; 3] = [FogLevel::Clear, FogLevel::Light, FogLevel::Heavy];

    /// Specific one-way attenuation at 79 GHz \[dB per 100 m\].
    ///
    /// Heavy-fog value from the paper (§7.3, citing Balal et al.);
    /// light fog scaled by the roughly linear dependence of fog
    /// attenuation on liquid-water content.
    pub(crate) fn db_per_100m(self) -> f64 {
        match self {
            FogLevel::Clear => 0.0,
            FogLevel::Light => 0.7,
            FogLevel::Heavy => 2.0,
        }
    }

    /// Extra two-way loss from a condensed water film on the tag \[dB\].
    ///
    /// Small (<1 dB) — included so fog levels are distinguishable at
    /// the short ranges of Fig. 16c rather than numerically identical.
    pub(crate) fn surface_film_loss_db(self) -> f64 {
        match self {
            FogLevel::Clear => 0.0,
            FogLevel::Light => 0.3,
            FogLevel::Heavy => 0.8,
        }
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(self) -> &'static str {
        match self {
            FogLevel::Clear => "Clear",
            FogLevel::Light => "Light Fog",
            FogLevel::Heavy => "Heavy Fog",
        }
    }

    /// Typed form of [`Self::db_per_100m`]: specific one-way
    /// attenuation per 100 m of path.
    pub(crate) fn specific_attenuation(self) -> Db {
        Db::new(self.db_per_100m())
    }

    /// Typed form of [`Self::surface_film_loss_db`].
    pub(crate) fn surface_film_loss(self) -> Db {
        Db::new(self.surface_film_loss_db())
    }
}

/// One-way fog attenuation over a path of length `d`.
pub(crate) fn fog_one_way(level: FogLevel, d: Meters) -> Db {
    level.specific_attenuation() * (d.value() / 100.0)
}

/// Raw-`f64` form of [`fog_one_way`] (metres in, dB out).
pub fn fog_one_way_db(level: FogLevel, d_m: f64) -> f64 {
    fog_one_way(level, Meters::new(d_m)).value()
}

/// Round-trip fog loss for a monostatic radar at distance `d`,
/// including the tag surface film.
pub(crate) fn fog_round_trip(level: FogLevel, d: Meters) -> Db {
    2.0 * fog_one_way(level, d) + level.surface_film_loss()
}

/// Raw-`f64` form of [`fog_round_trip`] (metres in, dB out).
pub fn fog_round_trip_db(level: FogLevel, d_m: f64) -> f64 {
    fog_round_trip(level, Meters::new(d_m)).value()
}

/// One-way rain attenuation at 79 GHz for a rain rate in mm/h, using
/// the standard power-law `a·R^b` fitted through the paper's
/// heavy-rain anchor (3.2 dB/100 m at 100 mm/h).
pub(crate) fn rain_one_way(rain_rate_mm_h: f64, d: Meters) -> Db {
    // ITU-style k·R^α with α ≈ 0.73 near 80 GHz; k chosen so that
    // R = 100 mm/h gives 3.2 dB per 100 m.
    const ALPHA: f64 = 0.73;
    let k = 3.2 / 100f64.powf(ALPHA);
    Db::new(k * rain_rate_mm_h.powf(ALPHA) * d.value() / 100.0)
}

/// Raw-`f64` form of [`rain_one_way`] (mm/h and metres in, dB out).
pub fn rain_one_way_db(rain_rate_mm_h: f64, d_m: f64) -> f64 {
    rain_one_way(rain_rate_mm_h, Meters::new(d_m)).value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_fog_matches_paper_anchor() {
        // 2 dB per 100 m one-way.
        assert!((fog_one_way_db(FogLevel::Heavy, 100.0) - 2.0).abs() < 1e-12);
        assert_eq!(fog_one_way_db(FogLevel::Clear, 1000.0), 0.0);
    }

    #[test]
    fn fog_negligible_at_tag_range() {
        // At 6 m the round-trip path attenuation is ≈0.24 dB — this is
        // why Fig. 16c shows SNR barely moving across fog levels.
        let loss = fog_round_trip_db(FogLevel::Heavy, 6.0);
        assert!(loss < 1.5, "got {loss}");
        assert!(loss > 0.0);
    }

    #[test]
    fn fog_levels_are_ordered() {
        let d = 50.0;
        let l: Vec<f64> = FogLevel::ALL
            .iter()
            .map(|&f| fog_round_trip_db(f, d))
            .collect();
        assert!(l[0] < l[1] && l[1] < l[2]);
    }

    #[test]
    fn heavy_rain_matches_paper_anchor() {
        // 3.2 dB per 100 m at 100 mm/h.
        let loss = rain_one_way_db(100.0, 100.0);
        assert!((loss - 3.2).abs() < 1e-9);
        // Rain attenuation grows sub-linearly with rate.
        assert!(rain_one_way_db(50.0, 100.0) > 3.2 / 2.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = FogLevel::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.windows(2).all(|w| w[0] != w[1]));
    }
}
