//! Circular polarization (§8's range-extension path).
//!
//! The PSVAA pays 6 dB because only half its elements re-radiate into
//! the orthogonal *linear* polarization. §8: *"The range can be
//! further improved by overcoming the 6 dB RCS loss of the PSVAA with
//! circularly polarized (CP) antenna elements. While common objects
//! change the left/right-hand direction of circular polarized signals
//! upon reflection, the PSVAA with CP antennas does not, enabling the
//! radar to separate the reflections without the 6 dB loss."*
//!
//! This module provides the circular basis on top of the linear Jones
//! calculus and the two canonical reflection operators:
//!
//! * [`mirror_reflection`] — an ordinary (specular, metallic)
//!   reflection **flips** handedness,
//! * [`phase_conjugating_reflection`] — a retrodirective
//!   (Van Atta / phase-conjugating) surface **preserves** handedness,
//!
//! which is exactly the discrimination a CP radar exploits.

use crate::complex::Complex64;
use crate::jones::{JonesMatrix, JonesVector};

/// Circular polarization handedness (IEEE convention, from the
/// transmitter's point of view).
///
/// ```
/// use ros_em::circular::{mirror_channel_power, Handedness};
/// // Ordinary reflections flip handedness: a same-handed CP receiver
/// // rejects clutter entirely.
/// let tx = Handedness::Right;
/// assert!(mirror_channel_power(tx, tx) < 1e-9);
/// assert!((mirror_channel_power(tx, tx.flip()) - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Handedness {
    /// Right-hand circular.
    Right,
    /// Left-hand circular.
    Left,
}

impl Handedness {
    /// The opposite handedness.
    pub fn flip(self) -> Handedness {
        match self {
            Handedness::Right => Handedness::Left,
            Handedness::Left => Handedness::Right,
        }
    }

    /// Unit Jones vector in the linear (V, H) basis:
    /// RHC = (1, −j)/√2, LHC = (1, +j)/√2.
    pub fn jones(self) -> JonesVector {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        match self {
            Handedness::Right => JonesVector::new(
                Complex64::real(s),
                Complex64::new(0.0, -s),
            ),
            Handedness::Left => JonesVector::new(
                Complex64::real(s),
                Complex64::new(0.0, s),
            ),
        }
    }
}

/// Projects a field onto a circular receive port, returning the
/// complex voltage (inner product with the conjugate basis vector).
pub fn project_circular(e: JonesVector, rx: Handedness) -> Complex64 {
    let b = rx.jones();
    b.v.conj() * e.v + b.h.conj() * e.h
}

/// An ordinary mirror-like reflection in the linear basis.
///
/// A metallic reflection reverses the propagation direction; keeping
/// the observer's coordinate convention fixed, one transverse
/// component changes sign — which is what flips circular handedness.
pub(crate) fn mirror_reflection() -> JonesMatrix {
    JonesMatrix::new(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        -Complex64::ONE,
    )
}

/// A phase-conjugating (retrodirective) reflection: the Van Atta
/// mechanism re-radiates the conjugate field, which preserves circular
/// handedness. In the linear basis this is the conjugation operator
/// composed with the mirror; for the power accounting used here the
/// net effect is the identity on handedness.
pub(crate) fn phase_conjugating_reflection(e: JonesVector) -> JonesVector {
    // Conjugate each component (phase conjugation), then mirror.
    let conj = JonesVector::new(e.v.conj(), e.h.conj());
    mirror_reflection().apply(conj)
}

/// Power fraction of a `tx`-handed interrogation received on an
/// `rx`-handed port after an **ordinary** reflection.
pub fn mirror_channel_power(tx: Handedness, rx: Handedness) -> f64 {
    let out = mirror_reflection().apply(tx.jones());
    project_circular(out, rx).norm_sqr()
}

/// Power fraction after a **phase-conjugating** (CP-Van-Atta)
/// reflection.
pub fn conjugating_channel_power(tx: Handedness, rx: Handedness) -> f64 {
    let out = phase_conjugating_reflection(tx.jones());
    project_circular(out, rx).norm_sqr()
}

/// RCS gain of a CP PSVAA over the linear PSVAA \[dB\]: the full
/// aperture re-radiates (no half-element split), recovering §4.2's
/// 6 dB penalty.
pub const CP_RCS_GAIN_DB: f64 = 6.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_vectors_are_unit_and_orthogonal() {
        for h in [Handedness::Right, Handedness::Left] {
            assert!((h.jones().power() - 1.0).abs() < 1e-12);
        }
        let cross = project_circular(Handedness::Right.jones(), Handedness::Left);
        assert!(cross.abs() < 1e-12, "RHC/LHC not orthogonal: {cross:?}");
        let co = project_circular(Handedness::Right.jones(), Handedness::Right);
        assert!((co.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flip_is_involution() {
        assert_eq!(Handedness::Right.flip(), Handedness::Left);
        assert_eq!(Handedness::Right.flip().flip(), Handedness::Right);
    }

    #[test]
    fn ordinary_reflection_flips_handedness() {
        // Same-handed return ≈ 0, cross-handed ≈ 1.
        for tx in [Handedness::Right, Handedness::Left] {
            let same = mirror_channel_power(tx, tx);
            let cross = mirror_channel_power(tx, tx.flip());
            assert!(same < 1e-12, "{tx:?} same-handed {same}");
            assert!((cross - 1.0).abs() < 1e-12, "{tx:?} cross-handed {cross}");
        }
    }

    #[test]
    fn conjugating_reflection_preserves_handedness() {
        // The CP Van Atta returns the same handedness — the radar's
        // same-handed port sees the tag, and clutter (mirror-like)
        // lands in the other port.
        for tx in [Handedness::Right, Handedness::Left] {
            let same = conjugating_channel_power(tx, tx);
            let cross = conjugating_channel_power(tx, tx.flip());
            assert!((same - 1.0).abs() < 1e-12, "{tx:?} same {same}");
            assert!(cross < 1e-12, "{tx:?} cross {cross}");
        }
    }

    #[test]
    fn cp_discrimination_is_complete() {
        // The discrimination matrix tag-vs-clutter is exactly
        // complementary: a same-handed receiver keeps the full tag
        // power and no clutter power (before leakage effects).
        let tx = Handedness::Right;
        let tag = conjugating_channel_power(tx, tx);
        let clutter = mirror_channel_power(tx, tx);
        assert!(tag > 0.999 && clutter < 1e-9);
    }
}
