//! Minimal, fast complex arithmetic for baseband signals and phasors.
//!
//! The RoS workspace intentionally avoids external numeric crates; this
//! module provides the small subset of complex functionality the
//! simulator needs (arithmetic, polar forms, exponentials) with the
//! standard `f64` precision used throughout.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use ros_em::Complex64;
/// let j = Complex64::I;
/// assert_eq!(j * j, Complex64::new(-1.0, 0.0));
/// let p = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((p - Complex64::new(0.0, 2.0)).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·exp(jθ)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `exp(jθ)` — a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (power of a phasor), cheaper than [`abs`].
    ///
    /// [`abs`]: Complex64::abs
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I, Complex64::new(0.0, 1.0));
        assert_eq!(Complex64::real(3.5), Complex64::new(3.5, 0.0));
        assert_eq!(Complex64::from(2.0), Complex64::real(2.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!(close(z * z.inv(), Complex64::ONE));
        assert_eq!(-(-z), z);
        assert_eq!(z - z, Complex64::ZERO);
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex64::from_polar(2.0, FRAC_PI_4);
        let b = Complex64::from_polar(3.0, FRAC_PI_2);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < 1e-12);
        assert!((p.arg() - (FRAC_PI_4 + FRAC_PI_2)).abs() < 1e-12);
    }

    #[test]
    fn division() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert!(close(a / b * b, a));
        assert!(close(a / 2.0, Complex64::new(0.5, 1.0)));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), Complex64::real(25.0)));
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let th = k as f64 / 16.0 * 2.0 * PI;
            let u = Complex64::cis(th);
            assert!((u.abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(Complex64::cis(PI), Complex64::real(-1.0)));
    }

    #[test]
    fn exp_euler() {
        let z = Complex64::new(0.0, PI);
        assert!(close(z.exp(), Complex64::real(-1.0)));
        let z = Complex64::new(1.0, 0.0);
        assert!(close(z.exp(), Complex64::real(std::f64::consts::E)));
    }

    #[test]
    fn sqrt_principal_branch() {
        let z = Complex64::real(-4.0);
        assert!(close(z.sqrt(), Complex64::new(0.0, 2.0)));
        let w = Complex64::new(3.0, 4.0).sqrt();
        assert!(close(w * w, Complex64::new(3.0, 4.0)));
    }

    #[test]
    fn sum_iterators() {
        let v = vec![Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, Complex64::new(4.0, 4.0));
        let s2: Complex64 = v.into_iter().sum();
        assert_eq!(s2, Complex64::new(4.0, 4.0));
    }

    #[test]
    fn scalar_ops_commute() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z * 2.0, 2.0 * z);
        assert_eq!((z * 2.0) / 2.0, z);
    }

    #[test]
    fn nan_and_finite_flags() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::ONE;
        assert_eq!(z, Complex64::new(2.0, 1.0));
        z -= Complex64::I;
        assert_eq!(z, Complex64::new(2.0, 0.0));
        z *= Complex64::I;
        assert_eq!(z, Complex64::new(0.0, 2.0));
        z /= Complex64::new(0.0, 2.0);
        assert!(close(z, Complex64::ONE));
    }
}
