//! Physical constants and the RoS / automotive-radar frequency plan.
//!
//! All values trace to the paper (§3–§5) or standard physics. Keeping
//! them in one place prevents the usual drift where each crate hardcodes
//! a slightly different speed of light.

/// Speed of light in vacuum \[m/s\].
pub const C: f64 = 299_792_458.0;

/// Thermal noise power spectral density at 290 K \[dBm/Hz\].
///
/// The paper (§5.3) uses −173.9 dBm; the textbook kT value is
/// −173.98 dBm/Hz at 290 K. We keep the paper's constant so link-budget
/// numbers match the published ones.
pub(crate) const THERMAL_NOISE_DBM_PER_HZ: f64 = -173.9;

/// Lower edge of the automotive radar band \[Hz\] (76 GHz).
pub const BAND_LO_HZ: f64 = 76.0e9;

/// Upper edge of the automotive radar band \[Hz\] (81 GHz).
pub const BAND_HI_HZ: f64 = 81.0e9;

/// RoS design centre frequency \[Hz\] (79 GHz, §4.2).
pub const F_CENTER_HZ: f64 = 79.0e9;

/// Free-space wavelength at the 79 GHz design frequency \[m\] (≈3.79 mm).
pub const LAMBDA_CENTER_M: f64 = C / F_CENTER_HZ;

/// Guided wavelength in the PSVAA strip-line at 79 GHz \[m\] (§4.2:
/// λg = 2027 µm for the copper layer on the Rogers stackup).
pub const LAMBDA_GUIDED_79GHZ_M: f64 = 2027.0e-6;

/// Strip-line loss \[dB/m\].
///
/// Derived from §4.3: a 10.8 cm transmission line incurs ≈11 dB loss on
/// the chosen substrate, i.e. ≈101.9 dB/m.
pub const TL_LOSS_DB_PER_M: f64 = 11.0 / 0.108;

/// Converts a frequency to its free-space wavelength \[m\].
#[inline]
pub fn wavelength(freq_hz: f64) -> f64 {
    C / freq_hz
}

/// Converts miles-per-hour to metres-per-second.
#[inline]
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * 0.44704
}

/// Converts metres-per-second to miles-per-hour.
#[inline]
pub fn mps_to_mph(mps: f64) -> f64 {
    mps / 0.44704
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_at_79ghz_is_3_79_mm() {
        assert!((LAMBDA_CENTER_M - 3.794e-3).abs() < 2e-6);
        assert!((wavelength(F_CENTER_HZ) - LAMBDA_CENTER_M).abs() < 1e-15);
    }

    #[test]
    fn band_is_5_ghz_wide() {
        assert!((BAND_HI_HZ - BAND_LO_HZ - 5.0e9).abs() < 1.0);
        assert!(F_CENTER_HZ > BAND_LO_HZ && F_CENTER_HZ < BAND_HI_HZ);
    }

    #[test]
    fn tl_loss_matches_paper_example() {
        // §4.3: the farthest centrosymmetric pair needs a 10.8 cm TL
        // which induces an 11 dB loss.
        let loss = TL_LOSS_DB_PER_M * 0.108;
        assert!((loss - 11.0).abs() < 1e-9);
    }

    #[test]
    fn guided_wavelength_is_sub_freespace() {
        // Guided wavelength must be shorter than free-space wavelength
        // (ε_eff > 1), a fact §4.1 relies on (λg < λ ⇒ ΔL_min = 2λg).
        assert!(LAMBDA_GUIDED_79GHZ_M < LAMBDA_CENTER_M);
    }

    #[test]
    fn speed_conversions_roundtrip() {
        for mph in [10.0, 25.0, 30.0, 86.0] {
            assert!((mps_to_mph(mph_to_mps(mph)) - mph).abs() < 1e-9);
        }
        // §5.3: 38.5 m/s ≈ 86 mph.
        assert!((mps_to_mph(38.5) - 86.1).abs() < 0.2);
    }
}
