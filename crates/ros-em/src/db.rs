//! Decibel conversion helpers.
//!
//! Two families exist because RF engineering uses both:
//!
//! * **power ratios** — `pow_to_db` / `db_to_pow` (10·log₁₀),
//! * **amplitude (field) ratios** — `lin_to_db` / `db_to_lin` (20·log₁₀).
//!
//! Absolute helpers convert between dBm and watts/milliwatts.
//!
//! These are the ergonomic `f64` entry points; the arithmetic itself
//! lives in the typed layer ([`crate::units`]), which is the only
//! place in the workspace allowed to spell out `10^(x/10)`-style
//! expressions (enforced by `xtask lint`).

use crate::units::{Db, DbAmplitude, DbPower, Dbm, Watts};

/// Converts a linear **power** ratio to decibels (10·log₁₀).
#[inline]
pub fn pow_to_db(p: f64) -> f64 {
    DbPower::from_ratio(p).value()
}

/// Converts decibels to a linear **power** ratio.
#[inline]
pub fn db_to_pow(db: f64) -> f64 {
    DbPower::new(db).ratio()
}

/// Converts a linear **amplitude** ratio to decibels (20·log₁₀).
#[inline]
pub fn lin_to_db(a: f64) -> f64 {
    DbAmplitude::from_ratio(a).value()
}

/// Converts decibels to a linear **amplitude** ratio.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    DbAmplitude::new(db).ratio()
}

/// Converts milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    Dbm::from_milliwatts(mw).value()
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    Dbm::new(dbm).to_milliwatts()
}

/// Converts watts to dBm.
#[inline]
pub fn w_to_dbm(w: f64) -> f64 {
    Watts::new(w).to_dbm().value()
}

/// Converts dBm to watts.
#[inline]
pub fn dbm_to_w(dbm: f64) -> f64 {
    Dbm::new(dbm).to_watts().value()
}

/// Sums an iterator of powers expressed in dB into a total in dB.
///
/// Useful for combining incoherent contributions (e.g. noise sources).
/// Returns `f64::NEG_INFINITY` for an empty iterator, matching "zero
/// total power".
pub fn db_power_sum<I: IntoIterator<Item = f64>>(dbs: I) -> f64 {
    crate::units::db_power_sum(dbs.into_iter().map(Db::new)).value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_db_roundtrip() {
        for db in [-60.0, -3.0103, 0.0, 3.0, 30.0] {
            assert!((pow_to_db(db_to_pow(db)) - db).abs() < 1e-12);
        }
        assert!((pow_to_db(2.0) - 3.0103).abs() < 1e-3);
        assert!((db_to_pow(10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_db_roundtrip() {
        for db in [-40.0, 0.0, 6.0206, 20.0] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-12);
        }
        // Halving an amplitude costs 6.02 dB — the PSVAA penalty (§4.2).
        assert!((lin_to_db(0.5) + 6.0206).abs() < 1e-3);
    }

    #[test]
    fn dbm_conversions() {
        assert!((mw_to_dbm(1.0) - 0.0).abs() < 1e-12);
        assert!((w_to_dbm(1.0) - 30.0).abs() < 1e-12);
        assert!((dbm_to_w(30.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(20.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn db_sum_combines_incoherently() {
        // Two equal powers add 3 dB.
        let s = db_power_sum([0.0, 0.0]);
        assert!((s - 3.0103).abs() < 1e-3);
        assert_eq!(db_power_sum(std::iter::empty()), f64::NEG_INFINITY);
        // A dominant term masks a tiny one.
        let s = db_power_sum([0.0, -60.0]);
        assert!(s < 0.01 && s > 0.0);
    }
}
