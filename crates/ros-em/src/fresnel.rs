//! Fresnel-region helpers.
//!
//! The §5.3 capacity limit is a near-field story: the spatial code is
//! exact only beyond the Fraunhofer distance of the coding aperture.
//! These helpers quantify where each region begins and how much phase
//! curvature a given geometry suffers — used by the capacity analysis
//! and the near-field decoder's documentation.

use crate::units::cast::AsF64;

/// Fraunhofer (far-field) distance `2D²/λ` \[m\].
pub fn fraunhofer_distance_m(aperture_m: f64, lambda_m: f64) -> f64 {
    2.0 * aperture_m * aperture_m / lambda_m
}

/// Reactive near-field boundary `0.62·√(D³/λ)` \[m\] — inside this,
/// even amplitude patterns deform.
pub fn reactive_near_field_m(aperture_m: f64, lambda_m: f64) -> f64 {
    0.62 * (aperture_m.powi(3) / lambda_m).sqrt()
}

/// Peak one-way phase curvature error across an aperture `D` observed
/// from distance `d` \[rad\]: `π·D²/(4·λ·d)` (the edge-vs-centre path
/// difference `D²/(8d)` as phase).
pub fn curvature_phase_error_rad(aperture_m: f64, lambda_m: f64, d_m: f64) -> f64 {
    std::f64::consts::PI * aperture_m * aperture_m / (4.0 * lambda_m * d_m)
}

/// Radius of the `n`-th Fresnel zone at the midpoint of a link of
/// length `d` \[m\]: `√(n·λ·d/4)` — ground clearance below this mixes
/// a strong bounce into the direct path (the two-ray regime).
pub fn fresnel_zone_radius_m(n: usize, lambda_m: f64, d_m: f64) -> f64 {
    assert!(n >= 1);
    (n.as_f64() * lambda_m * d_m / 4.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::LAMBDA_CENTER_M;

    const LAM: f64 = LAMBDA_CENTER_M;

    #[test]
    fn fraunhofer_matches_design_rule() {
        // Same formula as ros-antenna's design::far_field_distance_m;
        // anchor: 19.5λ aperture → ≈2.9 m.
        let d = fraunhofer_distance_m(19.5 * LAM, LAM);
        assert!((d - 2.89).abs() < 0.05);
    }

    #[test]
    fn region_ordering() {
        // reactive < Fraunhofer for any aperture larger than ~λ.
        for ap in [5.0 * LAM, 20.0 * LAM, 50.0 * LAM] {
            assert!(reactive_near_field_m(ap, LAM) < fraunhofer_distance_m(ap, LAM));
        }
    }

    #[test]
    fn curvature_error_at_far_field_boundary_is_small() {
        // At exactly 2D²/λ the curvature error is π/8 (22.5°) — the
        // classical criterion.
        let ap = 19.5 * LAM;
        let d = fraunhofer_distance_m(ap, LAM);
        let err = curvature_phase_error_rad(ap, LAM, d);
        assert!((err - std::f64::consts::PI / 8.0).abs() < 1e-12);
        // Inside the near field it grows.
        assert!(curvature_phase_error_rad(ap, LAM, d / 3.0) > 3.0 * err * 0.99);
    }

    #[test]
    fn ground_clearance_at_roadside_geometry() {
        // 3 m link at 79 GHz: first Fresnel zone ≈ 5.3 cm — a 1 m radar
        // height clears it by far, which is why the flat-earth model
        // (ground off) matches the paper's measurements.
        let r = fresnel_zone_radius_m(1, LAM, 3.0);
        assert!(r > 0.04 && r < 0.07, "r1 = {r}");
    }

    #[test]
    #[should_panic]
    fn zone_zero_invalid() {
        fresnel_zone_radius_m(0, LAM, 3.0);
    }
}
