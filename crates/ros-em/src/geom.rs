//! Scene geometry: 3-D vectors and angle conventions.
//!
//! ## Coordinate frame
//!
//! The RoS workspace uses a right-handed road frame:
//!
//! * **x** — along the road (direction of vehicle travel),
//! * **y** — across the road, pointing away from the curb toward the
//!   lanes (from the tag's point of view, toward the radar),
//! * **z** — up.
//!
//! A tag mounted on the roadside faces the +y half-space. The *azimuth*
//! of a point relative to a tag is the angle in the x–y plane measured
//! from the +x axis (so broadside to the tag is 90°, matching the
//! paper's Fig. 4 where the retroreflective plateau is centred on 90°…
//! we plot it recentred on 0° = broadside, as most figures do).
//! *Elevation* is measured from the x–y plane toward +z.

use crate::units::{Degrees, Radians};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Converts degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    Degrees::new(deg).radians().value()
}

/// Converts radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    Radians::new(rad).degrees().value()
}

/// Wraps an angle to `(-π, π]`.
#[inline]
pub fn wrap_angle(rad: f64) -> f64 {
    Radians::new(rad).wrapped().value()
}

/// A 3-D vector / point in metres.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Vec3 {
    /// Along-road component \[m\].
    pub x: f64,
    /// Across-road component \[m\].
    pub y: f64,
    /// Vertical component \[m\].
    pub z: f64,
}

impl Vec3 {
    /// The origin.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along +x.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along +z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Unit vector in this direction; `None` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= 0.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Horizontal (x–y plane) range to another point.
    #[inline]
    pub fn ground_distance(self, o: Vec3) -> f64 {
        ((self.x - o.x).powi(2) + (self.y - o.y).powi(2)).sqrt()
    }

    /// Azimuth of `target` as seen from `self`, measured from the +x
    /// axis within the x–y plane, in radians `(-π, π]`.
    #[inline]
    pub fn azimuth_to(self, target: Vec3) -> f64 {
        (target.y - self.y).atan2(target.x - self.x)
    }

    /// Elevation of `target` as seen from `self`: the angle above the
    /// horizontal plane, in radians `[-π/2, π/2]`.
    #[inline]
    pub fn elevation_to(self, target: Vec3) -> f64 {
        let dz = target.z - self.z;
        let g = self.ground_distance(target);
        dz.atan2(g)
    }

    /// Linear interpolation: `self + t·(o − self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, k: f64) -> Vec3 {
        Vec3::new(self.x / k, self.y / k, self.z / k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn norm_and_dot() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sqr(), 25.0);
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(v.dot(v), 25.0);
    }

    #[test]
    fn cross_is_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        assert_eq!(Vec3::X.cross(Vec3::X), Vec3::ZERO);
    }

    #[test]
    fn normalized_unit_or_none() {
        assert_eq!(Vec3::ZERO.normalized(), None);
        let u = Vec3::new(0.0, 0.0, 9.0).normalized().unwrap();
        assert_eq!(u, Vec3::Z);
    }

    #[test]
    fn azimuth_elevation() {
        let o = Vec3::ZERO;
        assert!((o.azimuth_to(Vec3::new(1.0, 0.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.azimuth_to(Vec3::new(0.0, 1.0, 0.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((o.azimuth_to(Vec3::new(1.0, 1.0, 0.0)) - FRAC_PI_4).abs() < 1e-12);
        assert!((o.elevation_to(Vec3::new(1.0, 0.0, 1.0)) - FRAC_PI_4).abs() < 1e-12);
        assert!((o.elevation_to(Vec3::new(0.0, 5.0, 0.0))).abs() < 1e-12);
    }

    #[test]
    fn distance_and_lerp() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 0.0, 0.0);
        assert_eq!(a.distance(b), 2.0);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.ground_distance(Vec3::new(3.0, 4.0, 100.0)), 5.0);
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(0.1) - 0.1).abs() < 1e-15);
        for k in -8..=8 {
            let a = wrap_angle(k as f64 * 1.7);
            assert!(a > -PI - 1e-12 && a <= PI + 1e-12);
        }
    }
}
