//! Jones-calculus polarization model.
//!
//! RoS's central clutter-rejection trick (§4.2) is *polarization
//! switching*: the PSVAA re-radiates the incident wave in the orthogonal
//! linear polarization, while ordinary roadside objects "barely impact
//! the polarization of incident signals upon reflection". The radar
//! transmits on one linear polarization and receives on the orthogonal
//! one, so tag returns pass and clutter is suppressed.
//!
//! We model transverse field states as 2-component complex Jones
//! vectors in the (V, H) linear basis and reflectors as 2×2 Jones
//! matrices acting on them. This is exact for the far-field scalar
//! channels the simulator uses.

use crate::complex::Complex64;
use crate::units::Db;

/// Linear polarization axes used by radar ports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Polarization {
    /// Vertical (the TI radar's stock patch orientation).
    V,
    /// Horizontal (a port rotated by 90°, as in §7.1).
    H,
}

impl Polarization {
    /// The orthogonal linear polarization.
    #[inline]
    pub fn orthogonal(self) -> Polarization {
        match self {
            Polarization::V => Polarization::H,
            Polarization::H => Polarization::V,
        }
    }

    /// Unit Jones vector for this polarization.
    #[inline]
    pub fn jones(self) -> JonesVector {
        match self {
            Polarization::V => JonesVector::new(Complex64::ONE, Complex64::ZERO),
            Polarization::H => JonesVector::new(Complex64::ZERO, Complex64::ONE),
        }
    }
}

/// A transverse field state `(E_v, E_h)` with complex amplitudes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct JonesVector {
    /// Vertical field component.
    pub v: Complex64,
    /// Horizontal field component.
    pub h: Complex64,
}

impl JonesVector {
    /// Creates a Jones vector from components.
    #[inline]
    pub const fn new(v: Complex64, h: Complex64) -> Self {
        JonesVector { v, h }
    }

    /// The zero field.
    pub const ZERO: JonesVector = JonesVector {
        v: Complex64::ZERO,
        h: Complex64::ZERO,
    };

    /// Total field power `|E_v|² + |E_h|²`.
    #[inline]
    pub fn power(self) -> f64 {
        self.v.norm_sqr() + self.h.norm_sqr()
    }

    /// Projects onto a receive port with the given polarization,
    /// returning the complex voltage that port observes.
    #[inline]
    pub fn project(self, rx: Polarization) -> Complex64 {
        match rx {
            Polarization::V => self.v,
            Polarization::H => self.h,
        }
    }

    /// Scales both components by a complex factor.
    #[inline]
    pub fn scale(self, k: Complex64) -> JonesVector {
        JonesVector::new(self.v * k, self.h * k)
    }

    /// Adds another field coherently.
    #[inline]
    pub fn add(self, o: JonesVector) -> JonesVector {
        JonesVector::new(self.v + o.v, self.h + o.h)
    }
}

/// A 2×2 complex operator mapping incident to scattered Jones vectors.
///
/// Layout:
/// ```text
/// [ vv  vh ]   scattered_v = vv·incident_v + vh·incident_h
/// [ hv  hh ]   scattered_h = hv·incident_v + hh·incident_h
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct JonesMatrix {
    /// V-in → V-out coefficient.
    pub vv: Complex64,
    /// H-in → V-out coefficient.
    pub vh: Complex64,
    /// V-in → H-out coefficient.
    pub hv: Complex64,
    /// H-in → H-out coefficient.
    pub hh: Complex64,
}

impl JonesMatrix {
    /// Creates a matrix from row-major coefficients.
    #[inline]
    pub const fn new(vv: Complex64, vh: Complex64, hv: Complex64, hh: Complex64) -> Self {
        JonesMatrix { vv, vh, hv, hh }
    }

    /// The identity operator: reflection that preserves polarization
    /// exactly (an idealized clutter object).
    pub const IDENTITY: JonesMatrix = JonesMatrix {
        vv: Complex64::ONE,
        vh: Complex64::ZERO,
        hv: Complex64::ZERO,
        hh: Complex64::ONE,
    };

    /// A perfect polarization switcher: V in → H out and vice versa
    /// (an idealized PSVAA, before the −6 dB amplitude penalty).
    pub const SWITCHER: JonesMatrix = JonesMatrix {
        vv: Complex64::ZERO,
        vh: Complex64::ONE,
        hv: Complex64::ONE,
        hh: Complex64::ZERO,
    };

    /// Clutter reflection with imperfect polarization purity.
    ///
    /// Real objects leak some energy into the cross polarization; §7.2
    /// measures a median rejection of 16–19 dB for roadside objects.
    /// `rejection` is the *power* ratio between co- and cross-pol
    /// reflections (larger = purer).
    pub fn clutter(rejection: Db) -> JonesMatrix {
        // Amplitude cross-coupling for a power rejection R is 10^(-R/20):
        // the power rejection read on the amplitude scale.
        let leak = (-rejection).as_amplitude().ratio();
        JonesMatrix::new(
            Complex64::ONE,
            Complex64::real(leak),
            Complex64::real(leak),
            Complex64::ONE,
        )
    }

    /// The PSVAA operator: polarization switching with the −6 dB RCS
    /// penalty of §4.2 (half the elements re-radiate ⇒ field amplitude
    /// halved ⇒ RCS −6 dB).
    pub fn psvaa() -> JonesMatrix {
        JonesMatrix::new(
            Complex64::ZERO,
            Complex64::real(0.5),
            Complex64::real(0.5),
            Complex64::ZERO,
        )
    }

    /// Applies the operator to an incident field.
    #[inline]
    pub fn apply(self, e: JonesVector) -> JonesVector {
        JonesVector::new(
            self.vv * e.v + self.vh * e.h,
            self.hv * e.v + self.hh * e.h,
        )
    }

    /// Scalar channel gain from a `tx`-polarized port through this
    /// reflector into an `rx`-polarized port.
    #[inline]
    pub fn channel(self, tx: Polarization, rx: Polarization) -> Complex64 {
        self.apply(tx.jones()).project(rx)
    }

    /// Scales every coefficient by a complex factor.
    #[inline]
    pub fn scale(self, k: Complex64) -> JonesMatrix {
        JonesMatrix::new(self.vv * k, self.vh * k, self.hv * k, self.hh * k)
    }

    /// Matrix sum (coherent superposition of two reflectors at the same
    /// location).
    #[inline]
    pub fn add(self, o: JonesMatrix) -> JonesMatrix {
        JonesMatrix::new(
            self.vv + o.vv,
            self.vh + o.vh,
            self.hv + o.hv,
            self.hh + o.hh,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthogonal_polarizations() {
        assert_eq!(Polarization::V.orthogonal(), Polarization::H);
        assert_eq!(Polarization::H.orthogonal(), Polarization::V);
        assert_eq!(Polarization::V.orthogonal().orthogonal(), Polarization::V);
    }

    #[test]
    fn jones_vector_power_and_projection() {
        let e = JonesVector::new(Complex64::new(3.0, 0.0), Complex64::new(0.0, 4.0));
        assert_eq!(e.power(), 25.0);
        assert_eq!(e.project(Polarization::V), Complex64::new(3.0, 0.0));
        assert_eq!(e.project(Polarization::H), Complex64::new(0.0, 4.0));
    }

    #[test]
    fn identity_preserves_polarization() {
        let m = JonesMatrix::IDENTITY;
        let co = m.channel(Polarization::V, Polarization::V);
        let cross = m.channel(Polarization::V, Polarization::H);
        assert_eq!(co, Complex64::ONE);
        assert_eq!(cross, Complex64::ZERO);
    }

    #[test]
    fn switcher_swaps_polarization() {
        let m = JonesMatrix::SWITCHER;
        assert_eq!(m.channel(Polarization::V, Polarization::H), Complex64::ONE);
        assert_eq!(m.channel(Polarization::V, Polarization::V), Complex64::ZERO);
        assert_eq!(m.channel(Polarization::H, Polarization::V), Complex64::ONE);
    }

    #[test]
    fn psvaa_has_6db_penalty() {
        let m = JonesMatrix::psvaa();
        let g = m.channel(Polarization::V, Polarization::H);
        let power_db = 10.0 * g.norm_sqr().log10();
        assert!((power_db + 6.0206).abs() < 1e-3);
        // No co-pol retro return from the ideal PSVAA model.
        assert_eq!(m.channel(Polarization::V, Polarization::V), Complex64::ZERO);
    }

    #[test]
    fn clutter_rejection_matches_spec() {
        for rej in [16.0, 17.5, 19.0] {
            let m = JonesMatrix::clutter(Db::new(rej));
            let co = m.channel(Polarization::V, Polarization::V).norm_sqr();
            let cross = m.channel(Polarization::V, Polarization::H).norm_sqr();
            let measured = 10.0 * (co / cross).log10();
            assert!(
                (measured - rej).abs() < 1e-9,
                "rejection {rej} measured {measured}"
            );
        }
    }

    #[test]
    fn matrix_scale_and_add() {
        let m = JonesMatrix::IDENTITY.scale(Complex64::real(2.0));
        assert_eq!(m.vv, Complex64::real(2.0));
        let s = JonesMatrix::IDENTITY.add(JonesMatrix::SWITCHER);
        assert_eq!(s.vv, Complex64::ONE);
        assert_eq!(s.vh, Complex64::ONE);
    }

    #[test]
    fn apply_is_linear() {
        let m = JonesMatrix::new(
            Complex64::new(1.0, 1.0),
            Complex64::new(0.5, 0.0),
            Complex64::new(0.0, -1.0),
            Complex64::new(2.0, 0.0),
        );
        let a = JonesVector::new(Complex64::ONE, Complex64::I);
        let b = JonesVector::new(Complex64::real(2.0), Complex64::ZERO);
        let lhs = m.apply(a.add(b));
        let rhs = m.apply(a).add(m.apply(b));
        assert!((lhs.v - rhs.v).abs() < 1e-12);
        assert!((lhs.h - rhs.h).abs() < 1e-12);
    }
}
