#![warn(missing_docs)]

//! # ros-em — electromagnetics substrate for RoS
//!
//! Foundational electromagnetic and mathematical building blocks used by
//! every other crate in the RoS workspace:
//!
//! * [`Complex64`] — complex arithmetic (phasors, baseband samples),
//! * [`Vec3`] and angle utilities — scene geometry,
//! * [`jones`] — Jones-calculus polarization states and operators,
//! * [`circular`] — circular-polarization basis and reflection
//!   operators (the paper's §8 range-extension path),
//! * [`radar_eq`] — the monostatic radar equation and link budgets,
//! * [`rcs_shapes`] — closed-form reference RCS of canonical shapes
//!   (sphere, plate, corner reflectors),
//! * [`atten`] — atmospheric (fog / rain) attenuation at mmWave,
//! * [`db`] — decibel conversions,
//! * [`special`] — special functions (`erfc`, `sinc`) used by the
//!   OOK bit-error-rate model.
//!
//! The crate is deliberately dependency-free: it contains only `std`
//! numerics so that the physics layer stays auditable.
//!
//! ## Conventions
//!
//! * Frequencies in Hz, distances in metres, angles in radians unless a
//!   function name says otherwise (`*_deg`).
//! * Phasors use the engineering convention `exp(+j ω t)`; a wave
//!   travelling a distance `d` accrues phase `−2π d / λ`.
//! * Power quantities suffixed `_db`, `_dbm`, `_dbsm` are logarithmic;
//!   bare names are linear.

pub mod atten;
pub mod circular;
pub(crate) mod complex;
pub mod constants;
pub mod db;
pub mod fresnel;
pub mod geom;
pub mod jones;
pub mod radar_eq;
pub mod rcs_shapes;
pub mod special;
pub mod units;

pub use complex::Complex64;
pub use geom::Vec3;

/// Commonly used items, glob-importable as `use ros_em::prelude::*`.
pub mod prelude {
    pub use crate::complex::Complex64;
    pub use crate::constants::*;
    pub use crate::db::{db_to_lin, db_to_pow, lin_to_db, pow_to_db};
    pub use crate::geom::{deg_to_rad, rad_to_deg, Vec3};
    pub use crate::jones::{JonesMatrix, JonesVector, Polarization};
    pub use crate::units::cast::AsF64;
    pub use crate::units::{Db, DbAmplitude, DbPower, Dbm, Degrees, Hertz, Meters, Radians, Watts};
}
