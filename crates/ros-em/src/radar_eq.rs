//! The monostatic radar equation and RoS link budgets (§3.1, §5.3, §8).
//!
//! The paper's Eq. (1) governs everything the radar can see:
//!
//! ```text
//! P_r = P_t · G_t · G_r · λ² · σ / ((4π)³ · d⁴)
//! ```
//!
//! and the decode condition is `P_r > noise floor`, with the noise
//! floor `L₀ = c₀ · N_F · B_IF / (G_ra · G_rs)` expressed in §5.3 (on
//! the dB scale the gains *reduce* the effective floor seen by the
//! detector). This module provides:
//!
//! * [`received_power_dbm`] — the radar equation,
//! * [`RadarLinkBudget`] — a named parameter set with the paper's two
//!   radar presets ([`RadarLinkBudget::ti_eval`] and
//!   [`RadarLinkBudget::commercial`]),
//! * maximum-range solving ([`RadarLinkBudget::max_range_m`]).

use crate::constants::{wavelength, THERMAL_NOISE_DBM_PER_HZ};
use crate::db::{db_to_pow, pow_to_db};

/// Received power from the monostatic radar equation, in dBm.
///
/// * `pt_dbm` — transmit power (dBm)
/// * `gt_db`, `gr_db` — Tx / Rx gains (dB)
/// * `freq_hz` — carrier frequency (Hz)
/// * `rcs_dbsm` — target radar cross-section (dB relative to 1 m²)
/// * `d_m` — one-way radar-to-target distance (m)
pub fn received_power_dbm(
    pt_dbm: f64,
    gt_db: f64,
    gr_db: f64,
    freq_hz: f64,
    rcs_dbsm: f64,
    d_m: f64,
) -> f64 {
    let lambda = wavelength(freq_hz);
    pt_dbm + gt_db + gr_db + 20.0 * lambda.log10() + rcs_dbsm
        - 30.0 * (4.0 * std::f64::consts::PI).log10()
        - 40.0 * d_m.log10()
}

/// Free-space one-way path loss in dB (for completeness; the radar
/// equation above already folds the round trip in).
pub fn free_space_path_loss_db(freq_hz: f64, d_m: f64) -> f64 {
    let lambda = wavelength(freq_hz);
    20.0 * (4.0 * std::f64::consts::PI * d_m / lambda).log10()
}

/// A complete monostatic radar link budget in the paper's §5.3 form.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadarLinkBudget {
    /// Transmit power + Tx antenna gain (EIRP) \[dBm\].
    pub eirp_dbm: f64,
    /// Receive antenna gain G_ra \[dB\].
    pub rx_antenna_gain_db: f64,
    /// Rx processing gain from combining antennas/chirps, G_rs \[dB\].
    pub rx_processing_gain_db: f64,
    /// Additional Rx gain G_ri (LNA / mixer chain) \[dB\].
    pub rx_chain_gain_db: f64,
    /// Receiver noise figure N_F \[dB\].
    pub noise_figure_db: f64,
    /// Intermediate-frequency bandwidth B_IF \[Hz\].
    pub if_bandwidth_hz: f64,
    /// Carrier frequency \[Hz\].
    pub freq_hz: f64,
}

impl RadarLinkBudget {
    /// The TI IWR1443 evaluation radar used in the paper (§5.3):
    /// EIRP 21 dBm, G_ra = 9 dB, G_ri = 34 dB, G_rs = 12 dB (4 Rx),
    /// N_F = 15 dB, B_IF = 37.5 MHz at 79 GHz.
    pub fn ti_eval() -> Self {
        RadarLinkBudget {
            eirp_dbm: 21.0,
            rx_antenna_gain_db: 9.0,
            rx_processing_gain_db: 12.0,
            rx_chain_gain_db: 34.0,
            noise_figure_db: 15.0,
            if_bandwidth_hz: 37.5e6,
            freq_hz: crate::constants::F_CENTER_HZ,
        }
    }

    /// A commercial automotive radar (§8): N_F = 9 dB, EIRP = 50 dBm.
    pub fn commercial() -> Self {
        RadarLinkBudget {
            eirp_dbm: 50.0,
            noise_figure_db: 9.0,
            ..Self::ti_eval()
        }
    }

    /// Total receive gain G_r = G_ra + G_ri + G_rs \[dB\] (§5.3 gives
    /// 55 dB for the TI radar).
    pub fn total_rx_gain_db(&self) -> f64 {
        self.rx_antenna_gain_db + self.rx_chain_gain_db + self.rx_processing_gain_db
    }

    /// The decoder-referred noise floor \[dBm\].
    ///
    /// §5.3: `L₀ = c₀ · N_F · B_IF · G_ra · G_rs` (all factors multiply,
    /// i.e. add on the dB scale), which evaluates to −62 dBm for the TI
    /// preset. The decode condition is `P_r > L₀` with `P_r` computed
    /// at the full receive gain ([`Self::received_power_dbm`]).
    pub fn noise_floor_dbm(&self) -> f64 {
        THERMAL_NOISE_DBM_PER_HZ
            + self.noise_figure_db
            + pow_to_db(self.if_bandwidth_hz)
            + self.rx_antenna_gain_db
            + self.rx_processing_gain_db
    }

    /// Received power for a target of RCS `rcs_dbsm` at `d_m` \[dBm\],
    /// at the full receive gain `G_r = G_ra + G_ri + G_rs` (§5.3 uses
    /// G_r = 55 dB for the TI radar).
    pub fn received_power_dbm(&self, rcs_dbsm: f64, d_m: f64) -> f64 {
        received_power_dbm(
            self.eirp_dbm,
            0.0,
            self.total_rx_gain_db(),
            self.freq_hz,
            rcs_dbsm,
            d_m,
        )
    }

    /// Margin of the received power over the noise floor \[dB\],
    /// i.e. the §5.3 decode criterion `P_r − L₀`.
    pub fn snr_db(&self, rcs_dbsm: f64, d_m: f64) -> f64 {
        self.received_power_dbm(rcs_dbsm, d_m) - self.noise_floor_dbm()
    }

    /// Maximum range at which a target of RCS `rcs_dbsm` stays above
    /// the noise floor \[m\].
    ///
    /// Solves `P_r(d) = L₀` for `d` in closed form (`P_r ∝ d⁻⁴`).
    pub fn max_range_m(&self, rcs_dbsm: f64) -> f64 {
        let pr_at_1m = self.received_power_dbm(rcs_dbsm, 1.0);
        let margin_db = pr_at_1m - self.noise_floor_dbm();
        db_to_pow(margin_db / 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radar_equation_scales_as_d_minus_4() {
        let p1 = received_power_dbm(21.0, 0.0, 9.0, 79e9, -23.0, 2.0);
        let p2 = received_power_dbm(21.0, 0.0, 9.0, 79e9, -23.0, 4.0);
        // Doubling range costs 12.04 dB.
        assert!((p1 - p2 - 12.04).abs() < 0.01);
    }

    #[test]
    fn radar_equation_linear_in_rcs() {
        let p1 = received_power_dbm(21.0, 0.0, 9.0, 79e9, -23.0, 3.0);
        let p2 = received_power_dbm(21.0, 0.0, 9.0, 79e9, -17.0, 3.0);
        assert!((p2 - p1 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn fspl_reference_value() {
        // FSPL at 1 m, 79 GHz ≈ 70.4 dB.
        let l = free_space_path_loss_db(79e9, 1.0);
        assert!((l - 70.4).abs() < 0.1, "got {l}");
    }

    #[test]
    fn ti_noise_floor_matches_paper() {
        // §5.3: minimum RSS level is −62 dBm for the TI radar.
        let b = RadarLinkBudget::ti_eval();
        let floor = b.noise_floor_dbm();
        assert!((floor - (-62.0)).abs() < 0.6, "floor {floor}");
        assert!((b.total_rx_gain_db() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn ti_max_range_matches_paper() {
        // §5.3: σ = −23 dBsm tag ⇒ d ≈ 6.9 m with the TI radar.
        let b = RadarLinkBudget::ti_eval();
        let d = b.max_range_m(-23.0);
        assert!(
            (d - 6.9).abs() < 0.5,
            "expected ≈6.9 m from the paper, got {d:.2} m"
        );
    }

    #[test]
    fn commercial_radar_reaches_52m() {
        // §8: N_F = 9 dB, EIRP = 50 dBm ⇒ ≈52 m.
        let b = RadarLinkBudget::commercial();
        let d = b.max_range_m(-23.0);
        assert!(
            (d - 52.0).abs() < 4.0,
            "expected ≈52 m from the paper, got {d:.2} m"
        );
    }

    #[test]
    fn snr_positive_inside_max_range() {
        let b = RadarLinkBudget::ti_eval();
        let d_max = b.max_range_m(-23.0);
        assert!(b.snr_db(-23.0, d_max * 0.9) > 0.0);
        assert!(b.snr_db(-23.0, d_max * 1.1) < 0.0);
    }
}
