//! The monostatic radar equation and RoS link budgets (§3.1, §5.3, §8).
//!
//! The paper's Eq. (1) governs everything the radar can see:
//!
//! ```text
//! P_r = P_t · G_t · G_r · λ² · σ / ((4π)³ · d⁴)
//! ```
//!
//! and the decode condition is `P_r > noise floor`, with the noise
//! floor `L₀ = c₀ · N_F · B_IF / (G_ra · G_rs)` expressed in §5.3 (on
//! the dB scale the gains *reduce* the effective floor seen by the
//! detector). This module provides:
//!
//! * [`received_power`] — the radar equation on the typed dB layer,
//! * [`RadarLinkBudget`] — a named parameter set with the paper's two
//!   radar presets ([`RadarLinkBudget::ti_eval`] and
//!   [`RadarLinkBudget::commercial`]),
//! * maximum-range solving ([`RadarLinkBudget::max_range`]).
//!
//! All arithmetic goes through [`crate::units`] so that power-family
//! (10·log₁₀) and amplitude-family (20·log₁₀) conversions cannot be
//! mixed up silently.

use crate::constants::THERMAL_NOISE_DBM_PER_HZ;
use crate::units::{Db, DbAmplitude, DbPower, Dbm, Hertz, Meters};

/// Received power from the monostatic radar equation.
///
/// * `pt` — transmit power
/// * `gt`, `gr` — Tx / Rx gains
/// * `freq` — carrier frequency
/// * `rcs_dbsm` — target radar cross-section, dB relative to 1 m²
/// * `d` — one-way radar-to-target distance
pub fn received_power(pt: Dbm, gt: Db, gr: Db, freq: Hertz, rcs_dbsm: Db, d: Meters) -> Dbm {
    let lambda = freq.wavelength();
    // λ² and d⁴ are amplitude-like lengths entering as even powers:
    // λ² is 20·log₁₀(λ) on the dB scale, d⁴ is 40·log₁₀(d).
    let lambda_sq = DbAmplitude::from_ratio(lambda.value()).as_power();
    let d4 = 2.0 * DbAmplitude::from_ratio(d.value()).as_power();
    let four_pi_cubed = 3.0 * DbPower::from_ratio(4.0 * std::f64::consts::PI);
    pt + gt + gr + lambda_sq + rcs_dbsm - four_pi_cubed - d4
}

/// Raw-`f64` form of [`received_power`] (all dB-family values on the
/// 10·log₁₀ scale, distance in metres, frequency in Hz).
pub fn received_power_dbm(
    pt_dbm: f64,
    gt_gain: Db,
    gr_gain: Db,
    freq_hz: f64,
    rcs_dbsm: f64,
    d_m: f64,
) -> f64 {
    received_power(
        Dbm::new(pt_dbm),
        gt_gain,
        gr_gain,
        Hertz::new(freq_hz),
        Db::new(rcs_dbsm),
        Meters::new(d_m),
    )
    .value()
}

/// Free-space one-way path loss (for completeness; the radar equation
/// above already folds the round trip in).
pub(crate) fn free_space_path_loss(freq: Hertz, d: Meters) -> Db {
    let lambda = freq.wavelength();
    DbAmplitude::from_ratio(4.0 * std::f64::consts::PI * d.value() / lambda.value()).as_power()
}

/// Raw-`f64` form of [`free_space_path_loss`] (Hz and metres in, dB out).
pub fn free_space_path_loss_db(freq_hz: f64, d_m: f64) -> f64 {
    free_space_path_loss(Hertz::new(freq_hz), Meters::new(d_m)).value()
}

/// A complete monostatic radar link budget in the paper's §5.3 form.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadarLinkBudget {
    /// Transmit power + Tx antenna gain (EIRP) \[dBm\].
    pub eirp_dbm: f64,
    /// Receive antenna gain G_ra \[dB\].
    pub rx_antenna_gain_db: f64,
    /// Rx processing gain from combining antennas/chirps, G_rs \[dB\].
    pub rx_processing_gain_db: f64,
    /// Additional Rx gain G_ri (LNA / mixer chain) \[dB\].
    pub rx_chain_gain_db: f64,
    /// Receiver noise figure N_F \[dB\].
    pub noise_figure_db: f64,
    /// Intermediate-frequency bandwidth B_IF \[Hz\].
    pub if_bandwidth_hz: f64,
    /// Carrier frequency \[Hz\].
    pub freq_hz: f64,
}

impl RadarLinkBudget {
    /// The TI IWR1443 evaluation radar used in the paper (§5.3):
    /// EIRP 21 dBm, G_ra = 9 dB, G_ri = 34 dB, G_rs = 12 dB (4 Rx),
    /// N_F = 15 dB, B_IF = 37.5 MHz at 79 GHz.
    pub fn ti_eval() -> Self {
        RadarLinkBudget {
            eirp_dbm: 21.0,
            rx_antenna_gain_db: 9.0,
            rx_processing_gain_db: 12.0,
            rx_chain_gain_db: 34.0,
            noise_figure_db: 15.0,
            if_bandwidth_hz: 37.5e6,
            freq_hz: crate::constants::F_CENTER_HZ,
        }
    }

    /// A commercial automotive radar (§8): N_F = 9 dB, EIRP = 50 dBm.
    pub fn commercial() -> Self {
        RadarLinkBudget {
            eirp_dbm: 50.0,
            noise_figure_db: 9.0,
            ..Self::ti_eval()
        }
    }

    /// EIRP on the typed layer.
    pub(crate) fn eirp(&self) -> Dbm {
        Dbm::new(self.eirp_dbm)
    }

    /// Carrier frequency on the typed layer.
    pub fn freq(&self) -> Hertz {
        Hertz::new(self.freq_hz)
    }

    /// Total receive gain G_r = G_ra + G_ri + G_rs (§5.3 gives 55 dB
    /// for the TI radar).
    pub(crate) fn total_rx_gain(&self) -> Db {
        Db::new(self.rx_antenna_gain_db)
            + Db::new(self.rx_chain_gain_db)
            + Db::new(self.rx_processing_gain_db)
    }

    /// Raw-`f64` form of [`Self::total_rx_gain`].
    pub fn total_rx_gain_db(&self) -> f64 {
        self.total_rx_gain().value()
    }

    /// The decoder-referred noise floor.
    ///
    /// §5.3: `L₀ = c₀ · N_F · B_IF · G_ra · G_rs` (all factors multiply,
    /// i.e. add on the dB scale), which evaluates to −62 dBm for the TI
    /// preset. The decode condition is `P_r > L₀` with `P_r` computed
    /// at the full receive gain ([`Self::received_power`]).
    pub(crate) fn noise_floor(&self) -> Dbm {
        Dbm::new(THERMAL_NOISE_DBM_PER_HZ)
            + Db::new(self.noise_figure_db)
            + DbPower::from_ratio(self.if_bandwidth_hz)
            + Db::new(self.rx_antenna_gain_db)
            + Db::new(self.rx_processing_gain_db)
    }

    /// Raw-`f64` form of [`Self::noise_floor`] \[dBm\].
    pub fn noise_floor_dbm(&self) -> f64 {
        self.noise_floor().value()
    }

    /// Received power for a target of RCS `rcs` at distance `d`, at
    /// the full receive gain `G_r = G_ra + G_ri + G_rs` (§5.3 uses
    /// G_r = 55 dB for the TI radar).
    pub fn received_power(&self, rcs: Db, d: Meters) -> Dbm {
        received_power(self.eirp(), Db::ZERO, self.total_rx_gain(), self.freq(), rcs, d)
    }

    /// Raw-`f64` form of [`Self::received_power`] (dBsm and metres in,
    /// dBm out).
    pub fn received_power_dbm(&self, rcs_dbsm: f64, d_m: f64) -> f64 {
        self.received_power(Db::new(rcs_dbsm), Meters::new(d_m)).value()
    }

    /// Margin of the received power over the noise floor, i.e. the
    /// §5.3 decode criterion `P_r − L₀`.
    pub fn snr(&self, rcs: Db, d: Meters) -> Db {
        Db::new(self.received_power(rcs, d).value() - self.noise_floor().value())
    }

    /// Raw-`f64` form of [`Self::snr`] (dBsm and metres in, dB out).
    pub fn snr_db(&self, rcs_dbsm: f64, d_m: f64) -> f64 {
        self.received_power_dbm(rcs_dbsm, d_m) - self.noise_floor_dbm()
    }

    /// Maximum range at which a target of RCS `rcs` stays above the
    /// noise floor.
    ///
    /// Solves `P_r(d) = L₀` for `d` in closed form (`P_r ∝ d⁻⁴`).
    pub fn max_range(&self, rcs: Db) -> Meters {
        let pr_at_1m = self.received_power(rcs, Meters::new(1.0));
        let margin = Db::new(pr_at_1m.value() - self.noise_floor_dbm());
        Meters::new((margin / 4.0).ratio())
    }

    /// Raw-`f64` form of [`Self::max_range`] (dBsm in, metres out).
    pub fn max_range_m(&self, rcs_dbsm: f64) -> f64 {
        self.max_range(Db::new(rcs_dbsm)).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radar_equation_scales_as_d_minus_4() {
        let p1 = received_power_dbm(21.0, Db::ZERO, Db::new(9.0), 79e9, -23.0, 2.0);
        let p2 = received_power_dbm(21.0, Db::ZERO, Db::new(9.0), 79e9, -23.0, 4.0);
        // Doubling range costs 12.04 dB.
        assert!((p1 - p2 - 12.04).abs() < 0.01);
    }

    #[test]
    fn radar_equation_linear_in_rcs() {
        let p1 = received_power_dbm(21.0, Db::ZERO, Db::new(9.0), 79e9, -23.0, 3.0);
        let p2 = received_power_dbm(21.0, Db::ZERO, Db::new(9.0), 79e9, -17.0, 3.0);
        assert!((p2 - p1 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn typed_and_raw_forms_agree() {
        let typed = received_power(
            Dbm::new(21.0),
            Db::ZERO,
            Db::new(9.0),
            Hertz::new(79e9),
            Db::new(-23.0),
            Meters::new(3.0),
        );
        let raw = received_power_dbm(21.0, Db::ZERO, Db::new(9.0), 79e9, -23.0, 3.0);
        assert!((typed.value() - raw).abs() < 1e-12);
    }

    #[test]
    fn fspl_reference_value() {
        // FSPL at 1 m, 79 GHz ≈ 70.4 dB.
        let l = free_space_path_loss_db(79e9, 1.0);
        assert!((l - 70.4).abs() < 0.1, "got {l}");
    }

    #[test]
    fn ti_noise_floor_matches_paper() {
        // §5.3: minimum RSS level is −62 dBm for the TI radar.
        let b = RadarLinkBudget::ti_eval();
        let floor = b.noise_floor_dbm();
        assert!((floor - (-62.0)).abs() < 0.6, "floor {floor}");
        assert!((b.total_rx_gain_db() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn ti_max_range_matches_paper() {
        // §5.3: σ = −23 dBsm tag ⇒ d ≈ 6.9 m with the TI radar.
        let b = RadarLinkBudget::ti_eval();
        let d = b.max_range(Db::new(-23.0));
        assert!(
            (d.value() - 6.9).abs() < 0.5,
            "expected ≈6.9 m from the paper, got {d}"
        );
    }

    #[test]
    fn commercial_radar_reaches_52m() {
        // §8: N_F = 9 dB, EIRP = 50 dBm ⇒ ≈52 m.
        let b = RadarLinkBudget::commercial();
        let d = b.max_range_m(-23.0);
        assert!(
            (d - 52.0).abs() < 4.0,
            "expected ≈52 m from the paper, got {d:.2} m"
        );
    }

    #[test]
    fn snr_positive_inside_max_range() {
        let b = RadarLinkBudget::ti_eval();
        let d_max = b.max_range_m(-23.0);
        assert!(b.snr_db(-23.0, d_max * 0.9) > 0.0);
        assert!(b.snr_db(-23.0, d_max * 1.1) < 0.0);
    }
}
