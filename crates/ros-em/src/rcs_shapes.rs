//! Reference RCS formulas for canonical shapes.
//!
//! §2 positions the Van Atta array against "the most widely known
//! retro-directive antenna … the corner reflector". These closed-form
//! high-frequency (optics-region) RCS formulas let the workspace
//! compare the RoS tag against the classical alternatives — how big
//! would a trihedral corner have to be to match a tag's RCS, and what
//! would clutter of a given size look like?
//!
//! All formulas are standard radar-handbook results, valid when the
//! object is large compared to λ.

/// RCS of a perfectly conducting sphere of radius `r_m` in the optics
/// region (`2πr ≫ λ`): `σ = πr²` \[m²\].
pub fn sphere_rcs_m2(r_m: f64) -> f64 {
    std::f64::consts::PI * r_m * r_m
}

/// Peak (broadside) RCS of a flat rectangular plate `a × b` \[m²\]:
/// `σ = 4π a²b²/λ²`.
pub fn plate_rcs_m2(a_m: f64, b_m: f64, lambda_m: f64) -> f64 {
    4.0 * std::f64::consts::PI * (a_m * b_m).powi(2) / (lambda_m * lambda_m)
}

/// Peak RCS of a trihedral corner reflector with edge length `a_m`
/// \[m²\]: `σ = 4π a⁴ / (3λ²)`.
pub fn trihedral_rcs_m2(a_m: f64, lambda_m: f64) -> f64 {
    4.0 * std::f64::consts::PI * a_m.powi(4) / (3.0 * lambda_m * lambda_m)
}

/// Peak RCS of a dihedral corner reflector with faces `a × b` \[m²\]:
/// `σ = 8π a²b²/λ²`.
pub fn dihedral_rcs_m2(a_m: f64, b_m: f64, lambda_m: f64) -> f64 {
    8.0 * std::f64::consts::PI * (a_m * b_m).powi(2) / (lambda_m * lambda_m)
}

/// RCS of a thin cylinder (pole) of radius `r_m`, length `l_m`, viewed
/// broadside \[m²\]: `σ = 2π r l²/λ`.
pub fn cylinder_rcs_m2(r_m: f64, l_m: f64, lambda_m: f64) -> f64 {
    std::f64::consts::TAU * r_m * l_m * l_m / lambda_m
}

/// Edge length of the trihedral corner that matches a target RCS \[m\]:
/// the inverse of [`trihedral_rcs_m2`].
pub fn trihedral_edge_for_rcs_m(sigma_m2: f64, lambda_m: f64) -> f64 {
    (3.0 * lambda_m * lambda_m * sigma_m2 / (4.0 * std::f64::consts::PI)).powf(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::LAMBDA_CENTER_M;

    const LAM: f64 = LAMBDA_CENTER_M;

    #[test]
    fn sphere_scale() {
        // A 10 cm radius sphere: σ = π·0.01 ≈ −15 dBsm, λ-independent.
        let s = sphere_rcs_m2(0.1);
        assert!((10.0 * s.log10() - (-15.03)).abs() < 0.1);
    }

    #[test]
    fn plate_is_huge_at_mmwave() {
        // A 10×10 cm plate at 79 GHz: σ = 4π·1e-4/1.44e-5 ≈ +19.4 dBsm.
        let s = plate_rcs_m2(0.1, 0.1, LAM);
        let dbsm = 10.0 * s.log10();
        assert!((dbsm - 19.4).abs() < 0.5, "{dbsm}");
    }

    #[test]
    fn trihedral_roundtrip() {
        for a in [0.02, 0.05, 0.15] {
            let s = trihedral_rcs_m2(a, LAM);
            let back = trihedral_edge_for_rcs_m(s, LAM);
            assert!((back - a).abs() < 1e-12);
        }
    }

    #[test]
    fn tiny_corner_matches_tag_rcs() {
        // How big a trihedral matches the −23 dBsm RoS tag? At 79 GHz:
        // a ≈ 1 cm — corners are *extremely* efficient reflectors…
        let a = trihedral_edge_for_rcs_m(10f64.powf(-23.0 / 10.0), LAM);
        assert!(a > 0.005 && a < 0.02, "edge {a} m");
        // …but they encode zero bits, which is the whole point of RoS.
    }

    #[test]
    fn dihedral_twice_plate_coefficient() {
        let d = dihedral_rcs_m2(0.1, 0.1, LAM);
        let p = plate_rcs_m2(0.1, 0.1, LAM);
        assert!((d / p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cylinder_pole_scale() {
        // A street-lamp pole: r = 5 cm, l = 1 m at 79 GHz → ≈+19 dBsm
        // broadside glint (consistent with lamps being strong clutter).
        let s = cylinder_rcs_m2(0.05, 1.0, LAM);
        let dbsm = 10.0 * s.log10();
        assert!(dbsm > 15.0 && dbsm < 22.0, "{dbsm}");
    }

    #[test]
    fn rcs_grows_with_size() {
        assert!(trihedral_rcs_m2(0.2, LAM) > trihedral_rcs_m2(0.1, LAM));
        assert!(plate_rcs_m2(0.2, 0.1, LAM) > plate_rcs_m2(0.1, 0.1, LAM));
    }
}
