//! Special functions used by the RoS performance models.
//!
//! The OOK bit-error-rate model (§7.1) needs the complementary error
//! function, and array-factor math uses the normalized sinc and the
//! Dirichlet (periodic sinc) kernels. `std` provides none of these, so
//! we implement them here with accuracy sufficient for link-level
//! modelling (relative error < 1e-7 for `erfc`).

use crate::units::cast::{self, AsF64};

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses the rational Chebyshev approximation from Numerical Recipes
/// (`erfccheb`-style single formula), accurate to ~1.2e-7 everywhere,
/// far below the precision any BER plot needs.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Gaussian Q-function: the tail probability of a standard normal.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Normalized sinc: `sin(πx)/(πx)` with `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    // lint: allow-float-eq(removable singularity: only exact 0 needs the branch)
    if x == 0.0 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

/// Dirichlet kernel (periodic sinc): `sin(Nx/2)/(N·sin(x/2))`,
/// normalized to 1 at `x = 0`. This is the magnitude shape of an
/// `N`-element uniform array factor versus phase progression `x`.
pub fn dirichlet(x: f64, n: usize) -> f64 {
    debug_assert!(n > 0);
    let half = x / 2.0;
    let denom = half.sin();
    if denom.abs() < 1e-12 {
        // At multiples of 2π the ratio → ±1; take the limit.
        let k = cast::round_i64(x / std::f64::consts::TAU);
        // The limit is (−1)^(k·(n−1)); only the parity of the product
        // matters, and wrapping_sub preserves parity even for n = 0.
        let product_odd = k % 2 != 0 && n.wrapping_sub(1) % 2 != 0;
        return if product_odd { -1.0 } else { 1.0 };
    }
    (n.as_f64() * half).sin() / (n.as_f64() * denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Abramowitz & Stegun table values.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001),
            (1.0, 0.1572992),
            (1.5, 0.0338949),
            (2.0, 0.0046777),
            (3.0, 2.20905e-5),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                (got - want).abs() < 2e-7 * (1.0 + want),
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.4] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_complement() {
        for x in [-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn q_function_anchors() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        // Q(1.96) ≈ 0.025 (the 95% two-sided z-score).
        assert!((q_function(1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-15);
        assert!(sinc(0.5) > 0.63 && sinc(0.5) < 0.64);
    }

    #[test]
    fn dirichlet_peak_and_nulls() {
        let n = 8;
        assert!((dirichlet(0.0, n) - 1.0).abs() < 1e-12);
        // First null of an N-element uniform array at x = 2π/N.
        let null = dirichlet(std::f64::consts::TAU / n as f64, n);
        assert!(null.abs() < 1e-12, "got {null}");
        // Grating-lobe replica at x = 2π.
        assert!((dirichlet(std::f64::consts::TAU, n).abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ook_ber_anchors_from_paper() {
        // §7.1 & §7.2 anchor points: BER = ½·erfc(√SNR / (2√2)).
        let ber = |snr_db: f64| {
            let snr = 10f64.powf(snr_db / 10.0);
            0.5 * erfc(snr.sqrt() / (2.0 * std::f64::consts::SQRT_2))
        };
        assert!((ber(15.8) - 0.001).abs() < 3e-4); // "15.8 dB ↔ 0.1%"
        assert!((ber(14.0) - 0.006).abs() < 2e-3); // "14 dB ↔ 0.6%"
        assert!((ber(10.0) - 0.057).abs() < 8e-3); // "10 dB ↔ 5.7%"
    }
}
