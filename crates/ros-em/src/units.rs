//! Dimensional newtypes — compile-time unit safety for RoS physics.
//!
//! RoS correctness rests on arithmetic the bare `f64` type cannot
//! check: dB↔linear conversions come in *two* families (10·log₁₀ for
//! power, 20·log₁₀ for amplitude), angles flow between degrees and
//! radians on their way into the spatial-coding FFT over `u = cos θ`,
//! and link budgets mix absolute powers (dBm) with relative gains
//! (dB). Feeding a dB value where a linear power is expected silently
//! corrupts every downstream BER and link-budget figure. This module
//! makes those
//! mistakes unrepresentable:
//!
//! * [`DbPower`] — decibels of a **power** ratio (10·log₁₀ family);
//!   [`Db`] is an alias, it is the common currency for gains/losses.
//! * [`DbAmplitude`] — decibels of an **amplitude** (field) ratio
//!   (20·log₁₀ family). Same dB number line, different linear meaning;
//!   [`DbAmplitude::as_power`] converts between the families for free
//!   because `20·log₁₀(a) = 10·log₁₀(a²)`.
//! * [`Dbm`] / [`Watts`] — absolute power, log and linear.
//! * [`Meters`], [`Hertz`] — lengths and frequencies.
//! * [`Radians`] / [`Degrees`] — angles with explicit conversions.
//! * [`cast`] — checked/lossless numeric casts replacing raw `as`.
//!
//! Every type is `#[repr(transparent)]` over `f64` — zero cost, same
//! ABI — and every operation is panic-free (IEEE semantics: a negative
//! ratio yields NaN dB, exactly as `f64::log10` would).
//!
//! The companion static-analysis gate (`cargo run -p xtask -- lint`)
//! forbids raw dB/angle conversion expressions outside this module, so
//! the typed layer is the only door.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared newtype boilerplate: construction, accessors,
/// `Display`, and the linear `Add`/`Sub`/`Neg`/scalar ops.
macro_rules! scalar_newtype {
    ($(#[$doc:meta])* $name:ident, $unit:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw value already expressed in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw value in this unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// True when the payload is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, o: $name) -> $name {
                $name(self.0 + o.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, o: $name) -> $name {
                $name(self.0 - o.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, o: $name) {
                self.0 += o.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, o: $name) {
                self.0 -= o.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, k: f64) -> $name {
                $name(self.0 * k)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, v: $name) -> $name {
                $name(self * v.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, k: f64) -> $name {
                $name(self.0 / k)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }
    };
}

scalar_newtype! {
    /// Decibels of a **power** ratio: `10·log₁₀(P₁/P₀)`.
    ///
    /// Use for antenna/processing gains, path and fog losses, SNR
    /// margins, and relative RCS. See [`DbAmplitude`] for the
    /// 20·log₁₀ field-ratio family.
    DbPower, "dB"
}

scalar_newtype! {
    /// Decibels of an **amplitude** (field/voltage) ratio:
    /// `20·log₁₀(a₁/a₀)`.
    ///
    /// The spatial-coding pipeline works with field amplitudes (the
    /// FFT over reflected phasors); this family converts linear
    /// amplitude ratios. The same numeric dB value describes the power
    /// ratio of the squared amplitude — [`Self::as_power`] is free.
    DbAmplitude, "dB(amp)"
}

scalar_newtype! {
    /// Absolute power on the decibel-milliwatt scale.
    Dbm, "dBm"
}

scalar_newtype! {
    /// Absolute power in watts (linear scale).
    Watts, "W"
}

scalar_newtype! {
    /// Length / distance in metres.
    Meters, "m"
}

scalar_newtype! {
    /// Frequency in hertz.
    Hertz, "Hz"
}

scalar_newtype! {
    /// Angle in radians.
    Radians, "rad"
}

scalar_newtype! {
    /// Angle in degrees.
    Degrees, "deg"
}

/// The common currency for relative gains and losses (power family).
pub type Db = DbPower;

impl DbPower {
    /// dB value of a linear **power** ratio (`10·log₁₀`).
    ///
    /// Panic-free: negative ratios produce NaN, zero produces −∞,
    /// following IEEE `log10` semantics.
    #[inline]
    pub fn from_ratio(power_ratio: f64) -> Self {
        DbPower(10.0 * power_ratio.log10())
    }

    /// The linear **power** ratio this dB value describes (`10^(x/10)`).
    #[inline]
    pub fn ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Reinterprets on the amplitude scale: the same physical ratio
    /// expressed for fields, i.e. the identical dB number.
    #[inline]
    pub const fn as_amplitude(self) -> DbAmplitude {
        DbAmplitude(self.0)
    }
}

impl DbAmplitude {
    /// dB value of a linear **amplitude** ratio (`20·log₁₀`).
    #[inline]
    pub fn from_ratio(amplitude_ratio: f64) -> Self {
        DbAmplitude(20.0 * amplitude_ratio.log10())
    }

    /// The linear **amplitude** ratio this dB value describes
    /// (`10^(x/20)`).
    #[inline]
    pub fn ratio(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }

    /// Reinterprets on the power scale (`20·log₁₀(a) = 10·log₁₀(a²)`):
    /// the identical dB number.
    #[inline]
    pub const fn as_power(self) -> DbPower {
        DbPower(self.0)
    }
}

impl Dbm {
    /// Converts an absolute power in watts.
    #[inline]
    pub fn from_watts(w: Watts) -> Self {
        Dbm(10.0 * (w.value() * 1e3).log10())
    }

    /// Converts an absolute power in milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Dbm(10.0 * mw.log10())
    }

    /// This power in watts.
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts(10f64.powf(self.0 / 10.0) * 1e-3)
    }

    /// This power in milliwatts.
    #[inline]
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

/// Applying a gain to an absolute power: `dBm + dB = dBm`.
impl Add<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn add(self, gain: Db) -> Dbm {
        Dbm(self.0 + gain.value())
    }
}

/// Applying a loss to an absolute power: `dBm − dB = dBm`.
impl Sub<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn sub(self, loss: Db) -> Dbm {
        Dbm(self.0 - loss.value())
    }
}

impl Watts {
    /// This power on the dBm scale.
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        Dbm::from_watts(self)
    }
}

impl Hertz {
    /// Free-space wavelength `c / f`.
    #[inline]
    pub fn wavelength(self) -> Meters {
        Meters(crate::constants::C / self.0)
    }
}

impl Meters {
    /// Ratio of two lengths (dimensionless).
    #[inline]
    pub fn per(self, o: Meters) -> f64 {
        self.0 / o.0
    }
}

impl Degrees {
    /// Converts to radians — the only sanctioned degree→radian
    /// conversion in the workspace.
    #[inline]
    pub fn radians(self) -> Radians {
        Radians(self.0.to_radians())
    }

    /// Sine of this angle.
    #[inline]
    pub fn sin(self) -> f64 {
        self.radians().sin()
    }

    /// Cosine of this angle.
    #[inline]
    pub fn cos(self) -> f64 {
        self.radians().cos()
    }
}

impl Radians {
    /// Converts to degrees — the only sanctioned radian→degree
    /// conversion in the workspace.
    #[inline]
    pub fn degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Wraps to `(-π, π]`.
    #[inline]
    pub fn wrapped(self) -> Radians {
        let two_pi = std::f64::consts::TAU;
        let mut a = self.0 % two_pi;
        if a <= -std::f64::consts::PI {
            a += two_pi;
        } else if a > std::f64::consts::PI {
            a -= two_pi;
        }
        Radians(a)
    }

    /// Sine of this angle.
    #[inline]
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine of this angle.
    #[inline]
    pub fn cos(self) -> f64 {
        self.0.cos()
    }

    /// Tangent of this angle.
    #[inline]
    pub fn tan(self) -> f64 {
        self.0.tan()
    }
}

/// Sums incoherent power contributions expressed in dB.
///
/// Returns `Db::new(f64::NEG_INFINITY)` for an empty iterator
/// ("zero total power").
pub fn db_power_sum<I: IntoIterator<Item = Db>>(dbs: I) -> Db {
    let total: f64 = dbs.into_iter().map(|d| d.ratio()).sum();
    if total <= 0.0 {
        Db::new(f64::NEG_INFINITY)
    } else {
        Db::from_ratio(total)
    }
}

pub mod cast {
    //! Checked / lossless numeric casts replacing raw `as`.
    //!
    //! The `xtask lint` gate forbids bare `as` numeric casts in library
    //! crates because `as` silently truncates, wraps, and saturates.
    //! These helpers give every conversion an explicit, documented
    //! contract; all are panic-free.

    /// Lossless widening of an integer index/count into `f64`.
    ///
    /// Exact for magnitudes up to 2⁵³ — far beyond any array length or
    /// sample count in this workspace; beyond that the nearest
    /// representable value is returned (IEEE round-to-nearest), which
    /// is also what `as f64` does.
    pub trait AsF64 {
        /// This value as an `f64`.
        fn as_f64(self) -> f64;
    }

    macro_rules! impl_as_f64 {
        ($($t:ty),*) => {$(
            impl AsF64 for $t {
                #[inline]
                fn as_f64(self) -> f64 {
                    self as f64 // lint: allow-cast(lossless widening defined once, here)
                }
            }
        )*};
    }

    impl_as_f64!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    /// Floor of `x` as a `usize`, clamped to `[0, usize::MAX]`.
    ///
    /// NaN maps to 0. Use for converting non-negative continuous
    /// quantities (sample positions, bin indices) to array indexes.
    #[inline]
    pub fn floor_usize(x: f64) -> usize {
        if x.is_nan() || x <= 0.0 {
            0
        } else if x >= usize::MAX as f64 { // lint: allow-cast(clamp bound)
            usize::MAX
        } else {
            x.floor() as usize // lint: allow-cast(range checked above)
        }
    }

    /// Nearest integer of `x` as a `usize`, clamped to `[0, usize::MAX]`.
    #[inline]
    pub fn round_usize(x: f64) -> usize {
        floor_usize(x + 0.5)
    }

    /// Ceiling of `x` as a `usize`, clamped to `[0, usize::MAX]`.
    #[inline]
    pub fn ceil_usize(x: f64) -> usize {
        floor_usize(x.ceil())
    }

    /// Nearest integer of `x` as an `i64`, saturating at the type
    /// bounds; NaN maps to 0.
    #[inline]
    pub fn round_i64(x: f64) -> i64 {
        if x.is_nan() {
            0
        } else {
            // `as` from float to int saturates since Rust 1.45, which
            // is exactly the contract documented here.
            x.round() as i64 // lint: allow-cast(saturating by language contract)
        }
    }

    /// Converts a `usize` to `u64` (lossless on every supported
    /// platform).
    #[inline]
    pub fn u64_from_usize(n: usize) -> u64 {
        n as u64 // lint: allow-cast(usize is at most 64 bits here)
    }

    /// Converts a `u64` to `usize`, saturating on 32-bit platforms.
    #[inline]
    pub fn usize_from_u64(n: u64) -> usize {
        usize::try_from(n).unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::cast::AsF64;
    use super::*;

    #[test]
    fn power_family_roundtrip() {
        for db in [-60.0, -3.0103, 0.0, 3.0, 30.0] {
            let d = DbPower::new(db);
            assert!((DbPower::from_ratio(d.ratio()).value() - db).abs() < 1e-12);
        }
        assert!((DbPower::from_ratio(2.0).value() - 3.0103).abs() < 1e-3);
        assert!((DbPower::new(10.0).ratio() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_family_roundtrip() {
        for db in [-40.0, 0.0, 6.0206, 20.0] {
            let d = DbAmplitude::new(db);
            assert!((DbAmplitude::from_ratio(d.ratio()).value() - db).abs() < 1e-12);
        }
        // Halving an amplitude costs 6.02 dB — the PSVAA penalty (§4.2).
        assert!((DbAmplitude::from_ratio(0.5).value() + 6.0206).abs() < 1e-3);
    }

    #[test]
    fn families_are_distinct_types_with_shared_axis() {
        // 6 dB is ×4 in power but ×2 in amplitude.
        let d = DbPower::new(6.0206);
        assert!((d.ratio() - 4.0).abs() < 1e-3);
        assert!((d.as_amplitude().ratio() - 2.0).abs() < 1e-3);
        // Round-trip through the other family is the identity.
        assert_eq!(d.as_amplitude().as_power(), d);
    }

    #[test]
    fn dbm_watts() {
        assert!((Dbm::from_milliwatts(1.0).value() - 0.0).abs() < 1e-12);
        assert!((Watts::new(1.0).to_dbm().value() - 30.0).abs() < 1e-12);
        assert!((Dbm::new(30.0).to_watts().value() - 1.0).abs() < 1e-12);
        assert!((Dbm::new(20.0).to_milliwatts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn link_budget_algebra() {
        let p = Dbm::new(-30.0);
        let g = Db::new(9.0);
        assert_eq!((p + g).value(), -21.0);
        assert_eq!((p - g).value(), -39.0);
        // A dBm difference is a plain dB margin.
        let margin = Db::new((p + g).value() - p.value());
        assert_eq!(margin.value(), 9.0);
    }

    #[test]
    fn angles() {
        let d = Degrees::new(180.0);
        assert!((d.radians().value() - std::f64::consts::PI).abs() < 1e-12);
        assert!((d.radians().degrees().value() - 180.0).abs() < 1e-12);
        assert!((Degrees::new(90.0).sin() - 1.0).abs() < 1e-12);
        assert!(Degrees::new(90.0).cos().abs() < 1e-12);
        let w = Radians::new(3.0 * std::f64::consts::PI).wrapped();
        assert!((w.value() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn wavelength_at_79ghz() {
        let lam = Hertz::new(79.0e9).wavelength();
        assert!((lam.value() - 3.794e-3).abs() < 2e-6);
    }

    #[test]
    fn db_sum_combines_incoherently() {
        let s = db_power_sum([Db::new(0.0), Db::new(0.0)]);
        assert!((s.value() - 3.0103).abs() < 1e-3);
        assert_eq!(
            db_power_sum(std::iter::empty()).value(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn panic_free_on_degenerate_inputs() {
        assert!(DbPower::from_ratio(-1.0).value().is_nan());
        assert_eq!(DbPower::from_ratio(0.0).value(), f64::NEG_INFINITY);
        assert_eq!(cast::floor_usize(f64::NAN), 0);
        assert_eq!(cast::floor_usize(-3.2), 0);
        assert_eq!(cast::floor_usize(1e300), usize::MAX);
        assert_eq!(cast::round_i64(f64::INFINITY), i64::MAX);
    }

    #[test]
    fn casts_are_exact_for_indexes() {
        assert_eq!(4096usize.as_f64(), 4096.0);
        assert_eq!((1u64 << 53).as_f64(), 9007199254740992.0);
        assert_eq!(cast::floor_usize(7.99), 7);
        assert_eq!(cast::round_usize(7.5), 8);
        assert_eq!(cast::ceil_usize(7.01), 8);
        assert_eq!(cast::u64_from_usize(7), 7u64);
        assert_eq!(cast::usize_from_u64(7), 7usize);
    }

    #[test]
    fn repr_transparent_is_zero_cost() {
        assert_eq!(std::mem::size_of::<Db>(), std::mem::size_of::<f64>());
        assert_eq!(std::mem::align_of::<Dbm>(), std::mem::align_of::<f64>());
        assert_eq!(std::mem::size_of::<Degrees>(), 8);
    }
}
