//! Bounded blocking channels for long-running service pipelines.
//!
//! The `ros-serve` corridor service streams radar frames through
//! sharded workers; the seams between its stages are these channels.
//! Two properties the fleet workload needs that `std::sync::mpsc` does
//! not provide together:
//!
//! 1. **Explicit backpressure, never silent loss.** The buffer is hard
//!    bounded at its construction capacity. A producer that outruns its
//!    consumer *blocks* (and the blocking event is counted in
//!    [`ChannelStats::stalls`]) — frames are never dropped to make
//!    room. Frame-count conservation across a fan-in is therefore an
//!    assertable invariant, not a hope.
//! 2. **Observable occupancy.** The channel tracks its high-water mark
//!    ([`ChannelStats::max_occupancy`]), which by construction can
//!    never exceed the capacity — the slow-consumer integration test
//!    pins both facts.
//!
//! [`Sender`] is `Clone`, so one channel serves both the SPSC shape
//! (producer → shard worker) and the MPSC shape (worker fan-in →
//! aggregator). Disconnect semantics are conventional: `recv` returns
//! `None` once the buffer is empty and every sender is gone; `send`
//! returns the rejected value once the receiver is gone.
//!
//! Determinism note: a channel transports values, it does not create
//! them. Cross-thread *arrival order* at an MPSC fan-in is scheduler
//! dependent; consumers that need a reproducible aggregate (the serve
//! read log) must order by a deterministic key after draining, which is
//! exactly what `ros-serve` does.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Snapshot of a channel's backpressure counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Number of `send` calls that had to block on a full buffer
    /// (counted once per blocking send, not once per wakeup).
    pub stalls: u64,
    /// High-water mark of buffered items; `<= capacity` always.
    pub max_occupancy: usize,
    /// The bound the channel was built with.
    pub capacity: usize,
}

/// Mutex-guarded channel state (stats live under the same lock, so a
/// snapshot is always internally consistent).
struct State<T> {
    buf: VecDeque<T>,
    senders: usize,
    recv_alive: bool,
    stalls: u64,
    max_occupancy: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

impl<T> Shared<T> {
    fn stats(&self) -> ChannelStats {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        ChannelStats {
            stalls: st.stalls,
            max_occupancy: st.max_occupancy,
            capacity: self.cap,
        }
    }
}

/// The sending half of a bounded channel; clone it for MPSC fan-in.
// lint: allow-dead-pub(returned by bounded; callers bind it, never write the name)
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel (single consumer).
// lint: allow-dead-pub(returned by bounded; callers bind it, never write the name)
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Construction-time channel errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// The requested capacity was 0 — a zero-capacity buffer could
    /// never accept a send, so [`try_bounded`] refuses to build one.
    ZeroCapacity,
}

/// Fallible twin of [`bounded`]: rejects `cap == 0` with a typed error
/// instead of clamping. Use this where the capacity is configuration
/// input and a silent clamp would mask a misconfiguration; keep
/// [`bounded`] where the capacity is a computed internal constant.
pub fn try_bounded<T>(cap: usize) -> Result<(Sender<T>, Receiver<T>), ChannelError> {
    if cap == 0 {
        return Err(ChannelError::ZeroCapacity);
    }
    Ok(bounded(cap))
}

/// Creates a bounded blocking channel with room for `cap` items.
///
/// `cap` is clamped to at least 1 (a zero-capacity buffer could never
/// accept a send). The buffer is allocated up front, so steady-state
/// send/recv never allocates.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let cap = cap.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap),
            senders: 1,
            recv_alive: true,
            stalls: 0,
            max_occupancy: 0,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends `v`, blocking while the buffer is full. Each blocking send
    /// increments the stall counter exactly once. Returns `Err(v)` when
    /// the receiver is gone (the value is handed back, never dropped
    /// silently).
    pub fn send(&self, v: T) -> Result<(), T> {
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        let mut stalled = false;
        loop {
            if !st.recv_alive {
                return Err(v);
            }
            if st.buf.len() < self.shared.cap {
                break;
            }
            if !stalled {
                stalled = true;
                st.stalls += 1;
            }
            st = self
                .shared
                .not_full
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
        st.buf.push_back(v);
        if st.buf.len() > st.max_occupancy {
            st.max_occupancy = st.buf.len();
        }
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Backpressure counters as of now.
    pub fn stats(&self) -> ChannelStats {
        self.shared.stats()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        st.senders += 1;
        drop(st);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake a receiver parked on an empty buffer so it can
            // observe the disconnect and return `None`.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the buffer is empty.
    /// Returns `None` once the buffer is drained and every sender has
    /// been dropped — by then every sent item has been delivered.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(v);
            }
            if st.senders == 0 {
                return None;
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Backpressure counters as of now.
    pub fn stats(&self) -> ChannelStats {
        self.shared.stats()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        st.recv_alive = false;
        drop(st);
        // Wake every producer parked on a full buffer so their sends
        // can fail fast instead of blocking forever.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).map_err(|_| "receiver gone").unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        let stats = rx.stats();
        assert_eq!(stats.stalls, 0);
        assert_eq!(stats.max_occupancy, 5);
        assert_eq!(stats.capacity, 8);
    }

    #[test]
    fn occupancy_never_exceeds_cap_and_stalls_count() {
        let cap = 3;
        let (tx, rx) = bounded(cap);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..50u64 {
                    tx.send(i).map_err(|_| "receiver gone").unwrap();
                }
            });
            // Slow consumer: drain with a delay so the producer fills
            // the buffer and must stall.
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                std::thread::sleep(std::time::Duration::from_micros(200));
                got.push(v);
            }
            let expect: Vec<u64> = (0..50).collect();
            assert_eq!(got, expect, "no item lost or reordered");
            let stats = rx.stats();
            assert!(stats.max_occupancy <= cap, "occupancy {stats:?}");
            assert!(stats.stalls > 0, "producer never stalled: {stats:?}");
        });
    }

    #[test]
    fn mpsc_fan_in_conserves_items() {
        let (tx, rx) = bounded(4);
        let n_producers = 4;
        let per = 25u64;
        std::thread::scope(|s| {
            for p in 0..n_producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per {
                        tx.send(p * 1000 + i).map_err(|_| "receiver gone").unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<u64> = std::iter::from_fn(|| rx.recv()).collect();
            got.sort_unstable();
            let mut expect: Vec<u64> = (0..n_producers)
                .flat_map(|p| (0..per).map(move |i| p * 1000 + i))
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "fan-in must conserve every item");
        });
    }

    #[test]
    fn send_after_receiver_drop_returns_value() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(42), Err(42));
    }

    #[test]
    fn recv_after_senders_drop_drains_then_ends() {
        let (tx, rx) = bounded(4);
        tx.send(1).map_err(|_| "receiver gone").unwrap();
        tx.send(2).map_err(|_| "receiver gone").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let (tx, rx) = bounded(0);
        tx.send(7).map_err(|_| "receiver gone").unwrap();
        assert_eq!(rx.stats().capacity, 1);
        assert_eq!(rx.recv(), Some(7));
    }

    #[test]
    fn try_bounded_rejects_zero_capacity_with_typed_error() {
        assert_eq!(
            try_bounded::<u32>(0).map(|_| ()),
            Err(ChannelError::ZeroCapacity)
        );
        let (tx, rx) = try_bounded::<u32>(2).map_err(|e| format!("{e:?}")).unwrap();
        tx.send(9).map_err(|_| "receiver gone").unwrap();
        assert_eq!(rx.stats().capacity, 2);
        assert_eq!(rx.recv(), Some(9));
    }
}
