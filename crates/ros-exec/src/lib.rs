//! Deterministic parallel execution for the RoS pipeline.
//!
//! Every hot loop in the workspace — DE population evaluation, per-frame
//! echo synthesis, u-grid RCS sweeps, figure fan-out — is a map over
//! independent work items. This crate provides that map as a scoped-thread
//! chunked executor with two hard guarantees the simulation layers rely on:
//!
//! 1. **Stable ordering** — [`par_map`] returns results in input order
//!    regardless of how the OS schedules the worker threads. Output `i`
//!    is always `f(items[i])`.
//! 2. **Bit-reproducibility at any thread count** — work items never share
//!    mutable state, each item's floating-point evaluation order is the
//!    same as in a plain serial `iter().map()`, and randomness is derived
//!    per item from a master seed via [`ParSeed`], never from a shared RNG
//!    stream. `par_map` at 1, 2, or 64 threads therefore produces outputs
//!    whose `f64::to_bits()` are identical to the serial evaluation.
//!
//! The worker count comes from, in priority order: the scoped
//! [`ThreadGuard`] override, the `ROS_EXEC_THREADS` environment variable,
//! and finally [`std::thread::available_parallelism`]. `ROS_EXEC_THREADS=1`
//! turns every wired path back into plain serial execution (used by
//! `verify.sh` to cross-check determinism).
//!
//! The crate is std-only: scoped threads (`std::thread::scope`) carry
//! borrowed slices into the workers, so no `'static` bounds, no channels,
//! and no external dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod channel;

/// Runs `f` inside a scoped-thread region, as `std::thread::scope` does.
///
/// This crate is the workspace's single spawn boundary (the no-raw-spawn
/// lint bans direct `std::thread` spawning everywhere else), and the
/// `par_map` family only covers slice-shaped fan-out. Long-running
/// services — `ros-serve`'s producer/worker/aggregator topology — need
/// free-form scoped workers wired by [`channel`]s, so the escape hatch
/// lives here where the spawn policy is audited. Workers spawned on the
/// scope are joined before `scope` returns and panics propagate, same
/// as the underlying std primitive.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// Global programmatic thread-count override (0 = unset).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// An RAII worker-count override: pins the pool size for its scope and
/// restores the *prior* value on drop (including on panic).
///
/// This replaces a bare `set_threads(Some(1))` → `set_threads(None)`
/// pair, which clobbered any enclosing override and left the pool in
/// the wrong state when the code between the calls panicked — a race
/// waiting to happen for any test running concurrently in the same
/// process. Guards nest correctly:
///
/// ```
/// use ros_exec::ThreadGuard;
/// let outer = ThreadGuard::pin(Some(4));
/// assert_eq!(ros_exec::threads(), 4);
/// {
///     let _inner = ThreadGuard::pin(Some(1));
///     assert_eq!(ros_exec::threads(), 1);
/// } // inner drops: back to 4, not to "unset"
/// assert_eq!(ros_exec::threads(), 4);
/// drop(outer);
/// ```
///
/// Takes precedence over `ROS_EXEC_THREADS`. Intended for benchmarks
/// and determinism tests that compare the same code path at several
/// thread counts within one process; library code should not pin.
/// Overlapping guards from *different* threads still contend for one
/// global — hold a process-wide lock around cross-thread pinning (as
/// `tests/determinism.rs` does).
#[must_use = "dropping the guard immediately restores the prior thread count"]
pub struct ThreadGuard {
    prev: usize,
}

impl ThreadGuard {
    /// Pins the worker count to `n` (or clears the override with
    /// `None`) until the guard drops.
    pub fn pin(n: Option<usize>) -> Self {
        ThreadGuard {
            prev: THREAD_OVERRIDE.swap(n.unwrap_or(0), Ordering::SeqCst),
        }
    }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::SeqCst);
    }
}

/// The worker count [`par_map`] will use.
///
/// Resolution order: [`ThreadGuard`] override, then `ROS_EXEC_THREADS`
/// (a positive integer), then [`std::thread::available_parallelism`]
/// (1 if unavailable).
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(var) = std::env::var("ROS_EXEC_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Parallel map with stable output ordering: `out[i] = f(&items[i])`.
///
/// Items are split into at most [`threads`] contiguous chunks, one scoped
/// worker thread per chunk; within a chunk evaluation is the plain serial
/// loop, so per-item results are bit-identical to `items.iter().map(f)`.
///
/// ```
/// let squares = ros_exec::par_map(&[1i64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_chunked(threads(), items, &|_, item| f(item))
}

/// [`par_map`] with the item index: `out[i] = f(i, &items[i])`.
///
/// The index makes per-item seed derivation trivial:
///
/// ```
/// use ros_exec::{par_map_indexed, ParSeed};
/// let seeds = ParSeed::new(42);
/// let draws = par_map_indexed(&[(); 3], |i, _| seeds.stream(i as u64));
/// assert_eq!(draws.len(), 3);
/// assert_ne!(draws[0], draws[1]);
/// ```
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_chunked(threads(), items, &f)
}

/// [`par_map`] at an explicit worker count, ignoring the global setting.
///
/// Used by determinism tests and the `perf` benchmark to compare the
/// same path at several thread counts inside one process.
pub fn par_map_with<T, R, F>(n_threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_chunked(n_threads, items, &|_, item| f(item))
}

/// [`par_map_indexed`] at an explicit worker count.
pub fn par_map_indexed_with<T, R, F>(n_threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_chunked(n_threads, items, &f)
}

/// The chunked scoped-thread executor behind every `par_map` variant.
///
/// Chunks are contiguous index ranges assembled back in chunk order, so
/// the output ordering never depends on thread scheduling. A panic in
/// any worker is propagated to the caller after the scope joins.
fn run_chunked<T, R, F>(n_threads: usize, items: &[T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = n_threads.max(1).min(n);
    if workers <= 1 {
        // Serial fast path: no thread setup, identical evaluation order.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let start = w * chunk_len;
            let end = ((w + 1) * chunk_len).min(n);
            if start >= end {
                break;
            }
            let slice = &items[start..end];
            handles.push(scope.spawn(move || {
                slice
                    .iter()
                    .enumerate()
                    .map(|(j, t)| f(start + j, t))
                    .collect::<Vec<R>>()
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(part) => chunks.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    chunks.into_iter().flatten().collect()
}

/// Parallel in-place transform with per-worker scratch arenas:
/// `f(&mut scratches[w], i, &mut items[i])` for every item, where `w`
/// is the index of the worker chunk the item landed in.
///
/// This is the zero-allocation sibling of [`par_map`]: results are
/// written *into* the items (no output vector, no per-chunk collect
/// buffers), and each worker thread gets exclusive `&mut` access to
/// one scratch arena from the caller-held pool. Determinism at any
/// thread count holds under the same contract as `par_map` — `f`'s
/// writes to `items[i]` must depend only on `items[i]` (plus captured
/// shared state), never on scratch *contents* left by other items;
/// scratch is working memory, not a carrier of results.
///
/// At most `min(threads(), scratches.len(), items.len())` workers run;
/// with one worker the call degenerates to a plain serial loop over
/// `scratches[0]` with no thread machinery and no allocation at all,
/// which is what the steady-state allocation-budget tests pin.
///
/// # Panics
/// Panics if `scratches` is empty while `items` is not, and propagates
/// worker panics after the scope joins.
// lint: hot-path
pub fn par_for_each_mut<S, T, F>(scratches: &mut [S], items: &mut [T], f: F)
where
    S: Send,
    T: Send,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    assert!(
        !scratches.is_empty(),
        "par_for_each_mut needs at least one scratch arena"
    );
    let workers = threads().max(1).min(scratches.len()).min(n);
    if workers <= 1 {
        // Serial fast path: no thread setup, identical evaluation order.
        let scratch = &mut scratches[0];
        for (i, item) in items.iter_mut().enumerate() {
            f(scratch, i, item);
        }
        return;
    }
    let chunk_len = n.div_ceil(workers);
    std::thread::scope(|scope| {
        // Walk both slices with split_at_mut so each spawned worker
        // owns a disjoint (scratch, chunk) pair. No handle vector is
        // collected: the scope joins every worker on exit and re-raises
        // the first panic, so the spawn loop itself stays
        // allocation-free (thread spawning is the OS's business).
        let mut rest_items: &mut [T] = items;
        let mut rest_scratch: &mut [S] = scratches;
        let mut start = 0usize;
        while !rest_items.is_empty() {
            let take = chunk_len.min(rest_items.len());
            let (chunk, items_tail) = rest_items.split_at_mut(take);
            rest_items = items_tail;
            let (scratch, scratch_tail) = rest_scratch.split_at_mut(1);
            rest_scratch = scratch_tail;
            let scratch = &mut scratch[0];
            let base = start;
            let f = &f;
            scope.spawn(move || {
                for (j, item) in chunk.iter_mut().enumerate() {
                    f(scratch, base + j, item);
                }
            });
            start += take;
        }
    });
}

/// Splits one master seed into independent per-item RNG seeds.
///
/// Each work item `i` gets `stream(i)`, a 64-bit seed derived from the
/// master by a SplitMix64 finalizer over a Weyl sequence — the standard
/// construction for statistically independent streams from one seed.
/// The derivation depends only on `(master, index)`, never on which
/// thread or in which order the item runs, which is what makes every
/// parallelized random path bit-reproducible at any thread count
/// (including 1).
///
/// ```
/// let seeds = ros_exec::ParSeed::new(0xd21e);
/// assert_eq!(seeds.stream(7), ros_exec::ParSeed::new(0xd21e).stream(7));
/// assert_ne!(seeds.stream(0), seeds.stream(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParSeed {
    master: u64,
}

/// Weyl-sequence increment (the SplitMix64 golden-gamma constant).
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a bijective avalanche mix on 64 bits.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ParSeed {
    /// Creates a seed splitter rooted at `master`.
    pub fn new(master: u64) -> Self {
        ParSeed { master }
    }

    /// The independent seed of work item `index`.
    pub fn stream(&self, index: u64) -> u64 {
        splitmix64(
            self.master
                .wrapping_add(GAMMA)
                .wrapping_add(index.wrapping_mul(GAMMA)),
        )
    }

    /// A nested stream: item `index` within named sub-domain `tag`.
    ///
    /// Use distinct tags when one master seed feeds several different
    /// random consumers (e.g. decode-frame noise vs detect-frame noise)
    /// so their streams can never collide at equal indices.
    pub fn substream(&self, tag: u64, index: u64) -> u64 {
        ParSeed::new(splitmix64(self.master ^ splitmix64(tag))).stream(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_stable_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for t in [1, 2, 3, 8, 64, 1000] {
            let par = par_map_with(t, &items, |x| x * 3 + 1);
            assert_eq!(par, serial, "threads={t}");
        }
    }

    #[test]
    fn indexed_variant_sees_global_indices() {
        let items = vec![10u64; 100];
        let out = par_map_indexed_with(7, &items, |i, v| i as u64 + v);
        let expect: Vec<u64> = (0..100).map(|i| i + 10).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn float_results_bit_identical_across_thread_counts() {
        // A numerically touchy reduction per item: same per-item serial
        // order ⇒ identical bits no matter the worker count.
        let items: Vec<f64> = (0..1000).map(|i| 1e-3 * i as f64).collect();
        let eval = |x: &f64| (0..50).fold(*x, |acc, k| (acc + 1.0 / (k as f64 + 1.7)).sin());
        let one: Vec<u64> = par_map_with(1, &items, eval).iter().map(|v| v.to_bits()).collect();
        for t in [2, 5, 8] {
            let many: Vec<u64> = par_map_with(t, &items, eval).iter().map(|v| v.to_bits()).collect();
            assert_eq!(one, many, "threads={t}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map_with(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_with(8, &[5], |x| x + 1), vec![6]);
        assert_eq!(par_map_with(3, &[1, 2], |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_with(64, &[1, 2, 3], |x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn override_takes_precedence() {
        let guard = ThreadGuard::pin(Some(3));
        assert_eq!(threads(), 3);
        drop(guard);
        assert!(threads() >= 1);
    }

    #[test]
    fn thread_guards_nest_and_restore() {
        let outer = ThreadGuard::pin(Some(4));
        assert_eq!(threads(), 4);
        {
            let _inner = ThreadGuard::pin(Some(1));
            assert_eq!(threads(), 1);
        }
        assert_eq!(threads(), 4, "inner guard must restore the outer pin");
        drop(outer);
        assert!(threads() >= 1);
    }

    #[test]
    fn thread_guard_restores_on_panic() {
        let before = threads();
        let result = std::panic::catch_unwind(|| {
            let _pin = ThreadGuard::pin(Some(7));
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(threads(), before, "guard must restore across unwind");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map_with(4, &[1, 2, 3, 4, 5, 6, 7, 8], |x| {
                assert!(*x != 5, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn for_each_mut_matches_serial_at_every_thread_count() {
        let expect: Vec<f64> = (0..257)
            .map(|i| (i as f64 * 0.37).sin() * (i as f64 + 1.0))
            .collect();
        for t in [1usize, 2, 3, 8, 64] {
            let _pin = ThreadGuard::pin(Some(t));
            let mut items: Vec<f64> = (0..257).map(|i| i as f64).collect();
            let mut scratches = vec![0.0f64; t];
            par_for_each_mut(&mut scratches, &mut items, |scratch, i, item| {
                // Scratch is used as working memory but never carries
                // information between items.
                *scratch = (*item * 0.37).sin();
                *item = *scratch * (i as f64 + 1.0);
            });
            let bits: Vec<u64> = items.iter().map(|v| v.to_bits()).collect();
            let expect_bits: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, expect_bits, "threads={t}");
        }
    }

    #[test]
    fn for_each_mut_clamps_workers_to_scratch_pool() {
        // 8 threads requested but only 2 arenas: must still process
        // every item exactly once, in order-independent fashion.
        let _pin = ThreadGuard::pin(Some(8));
        let mut items: Vec<u64> = (0..100).collect();
        let mut scratches = [0u64; 2];
        par_for_each_mut(&mut scratches, &mut items, |_, i, item| {
            *item += i as u64;
        });
        let expect: Vec<u64> = (0..100).map(|i| 2 * i).collect();
        assert_eq!(items, expect);
    }

    #[test]
    fn for_each_mut_empty_items_is_noop() {
        let mut items: Vec<u64> = Vec::new();
        let mut scratches: [u64; 0] = [];
        // Empty items must not even touch the (empty) scratch pool.
        par_for_each_mut(&mut scratches, &mut items, |_, _, _| {});
    }

    #[test]
    fn for_each_mut_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let _pin = ThreadGuard::pin(Some(4));
            let mut items = [1u64, 2, 3, 4, 5, 6, 7, 8];
            let mut scratches = [0u64; 4];
            par_for_each_mut(&mut scratches, &mut items, |_, _, item| {
                assert!(*item != 5, "boom");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_seed_is_deterministic_and_spread() {
        let s = ParSeed::new(0x5eed);
        assert_eq!(s.stream(0), ParSeed::new(0x5eed).stream(0));
        // No collisions over a modest index range (bijective mix of
        // distinct inputs makes collisions astronomically unlikely).
        // Membership-only set (insert/contains, never iterated), so
        // hash order cannot reach any assertion — nondet-iter audit.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(s.stream(i)), "collision at {i}");
        }
        // Different masters diverge.
        assert_ne!(ParSeed::new(1).stream(0), ParSeed::new(2).stream(0));
    }

    #[test]
    fn substreams_do_not_collide_with_streams() {
        let s = ParSeed::new(77);
        for i in 0..100 {
            assert_ne!(s.stream(i), s.substream(1, i));
            assert_ne!(s.substream(1, i), s.substream(2, i));
        }
    }

    #[test]
    fn seeded_parallel_draws_match_serial() {
        let s = ParSeed::new(0xabcdef);
        let idx: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = idx.iter().map(|&i| s.stream(i)).collect();
        for t in [2, 8] {
            assert_eq!(par_map_with(t, &idx, |&i| s.stream(i)), serial);
        }
    }
}
