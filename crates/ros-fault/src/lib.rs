//! Deterministic fault injection for the RoS pipeline.
//!
//! Every other layer of this workspace assumes a clean radar: no frame
//! ever drops, no chirp saturates, no interferer lights up mid-pass.
//! The paper's own evaluation (§7) stresses rain, fog, blockage and
//! tracking error, and roadside mmWave deployments treat transient
//! interference and dropout as the *normal* operating regime — so the
//! reader has to degrade gracefully, and proving that it does needs a
//! fault harness whose injections are exactly reproducible.
//!
//! This crate provides that harness in two halves:
//!
//! * [`FaultPlan`] — the *declaration*: a seed plus a list of
//!   [`FaultSpec`]s (fault kind × rate × time window). Plans are plain
//!   data; they can be built in tests, swept by `bench faults`, or
//!   attached to a `DriveBy` scenario.
//! * [`FaultSchedule`] — the *realization*: [`FaultPlan::schedule`]
//!   draws every per-frame fault decision **serially, up front**, from
//!   [`ros_exec::ParSeed`] substreams keyed by `(spec index, frame
//!   index)`. The schedule is a pure function of `(plan, frame times)`
//!   — never of thread count or scheduling — which is what makes any
//!   faulted pipeline run bit-identical at 1, 2, or 8 workers, the
//!   same guarantee `capture_batch`'s pre-drawn noise packets give the
//!   clean pipeline.
//!
//! Consumers walk the schedule at the pipeline's natural seams (frame
//! capture, echo synthesis, point-cloud assembly, track estimation)
//! and call [`FrameFaults::record`] from serial code so every injected
//! fault lands in a `ros-obs` `fault.*` counter and traces show
//! exactly what was injected.
//!
//! ```
//! use ros_fault::{FaultKind, FaultPlan};
//! let plan = FaultPlan::new(7).with(FaultKind::FrameDrop, 0.5);
//! let times: Vec<f64> = (0..100).map(|i| i as f64 * 1e-3).collect();
//! let schedule = plan.schedule(&times);
//! let dropped = schedule.frames.iter().filter(|f| f.dropped).count();
//! assert!(dropped > 25 && dropped < 75, "rate 0.5 over 100 frames");
//! // Bit-exactly reproducible: same plan, same times, same schedule.
//! assert_eq!(schedule, plan.schedule(&times));
//! ```

mod plan;
mod schedule;

pub use plan::{CorruptionMode, FaultKind, FaultPlan, FaultSpec, TimeWindow};
pub use schedule::{BurstDraw, CorruptDraw, FaultSchedule, FrameFaults, SpikeDraw};
