//! Fault declarations: what to inject, how often, and when.

use crate::schedule::{unit01, BurstDraw, CorruptDraw, FaultSchedule, FrameFaults, SpikeDraw};
use ros_exec::ParSeed;

/// How a corrupted point-cloud return is mangled (ahead of DBSCAN).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CorruptionMode {
    /// Ranges become NaN — the classic "propagated through a mean"
    /// poison value.
    NaN,
    /// Ranges become +∞ (a stuck range gate).
    Inf,
    /// Ranges are displaced by up to ±`offset_m` (ghost reflections /
    /// multipath outliers).
    Outlier {
        /// Maximum displacement magnitude \[m\].
        offset_m: f64,
    },
}

impl CorruptionMode {
    /// Short stable name (CSV / obs payloads).
    pub fn name(&self) -> &'static str {
        match self {
            CorruptionMode::NaN => "nan",
            CorruptionMode::Inf => "inf",
            CorruptionMode::Outlier { .. } => "outlier",
        }
    }
}

/// One kind of injectable fault, with its kind-specific magnitude.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The frame never arrives (radar hiccup, bus overrun).
    FrameDrop,
    /// The frame is delivered twice (retransmission glitch).
    FrameDuplicate,
    /// The chirp ADC saturates: I/Q rails hard-clip at ±`full_scale`
    /// \[√mW\] (a strong nearby reflector overdriving the front end).
    AdcSaturation {
        /// Clip level per I/Q rail \[√mW\].
        full_scale: f64,
    },
    /// A burst interferer `excess_db` above the thermal noise floor is
    /// injected into the echo synthesis for this frame (an adjacent
    /// radar sweeping through the band, §7.4-style).
    InterferenceBurst {
        /// Interferer power over the thermal floor \[dB\].
        excess_db: f64,
    },
    /// Every point the radar returns for this frame is corrupted ahead
    /// of DBSCAN.
    PointCorruption {
        /// How the returns are mangled.
        mode: CorruptionMode,
    },
    /// The believed radar pose spikes by up to `magnitude_m` for this
    /// frame (GNSS multipath / dead-reckoning glitch).
    TrackingSpike {
        /// Maximum spike magnitude per axis \[m\].
        magnitude_m: f64,
    },
}

impl FaultKind {
    /// Short stable name (CSV / obs payloads).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::FrameDrop => "frame_drop",
            FaultKind::FrameDuplicate => "frame_duplicate",
            FaultKind::AdcSaturation { .. } => "adc_saturation",
            FaultKind::InterferenceBurst { .. } => "interference_burst",
            FaultKind::PointCorruption { .. } => "point_corruption",
            FaultKind::TrackingSpike { .. } => "tracking_spike",
        }
    }
}

/// The pass interval a spec is active in \[s\].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeWindow {
    /// Window start \[s\] into the pass.
    pub t_start_s: f64,
    /// Window end \[s\].
    pub t_end_s: f64,
}

impl TimeWindow {
    /// The whole pass.
    pub const ALWAYS: TimeWindow = TimeWindow {
        t_start_s: f64::NEG_INFINITY,
        t_end_s: f64::INFINITY,
    };

    /// True when `t` falls inside the window (inclusive).
    pub fn contains(&self, t: f64) -> bool {
        t >= self.t_start_s && t <= self.t_end_s
    }
}

/// One fault stream: a kind, its per-frame firing rate, and the time
/// window it is active in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Per-frame Bernoulli firing probability in \[0, 1\].
    pub rate: f64,
    /// When the spec is live.
    pub window: TimeWindow,
}

/// A declarative fault-injection plan: a master seed plus any number
/// of fault streams. Plans are inert data until [`FaultPlan::schedule`]
/// realizes them against a concrete frame timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed all per-frame draws derive from.
    pub seed: u64,
    /// The fault streams.
    pub specs: Vec<FaultSpec>,
}

/// Substream tags partitioning the plan's seed space: decision draws
/// and each kind's magnitude draws must never collide at equal frame
/// indices.
const TAG_MAGNITUDE: u64 = 0x00ff;

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// A single-stream plan.
    pub fn single(seed: u64, kind: FaultKind, rate: f64) -> Self {
        FaultPlan::new(seed).with(kind, rate)
    }

    /// Adds a stream active over the whole pass.
    pub fn with(self, kind: FaultKind, rate: f64) -> Self {
        self.with_windowed(kind, rate, TimeWindow::ALWAYS)
    }

    /// Adds a stream active inside `window` only.
    pub fn with_windowed(mut self, kind: FaultKind, rate: f64, window: TimeWindow) -> Self {
        self.specs.push(FaultSpec { kind, rate, window });
        self
    }

    /// True when the plan has no streams.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The canonical conformance matrix: every fault kind at three
    /// rates, plus one windowed and one composite plan. This is the
    /// fixed set the determinism suite and `bench faults` sweep, so
    /// "bit-identical at 1/2/8 threads" is checked against the same
    /// plans everywhere.
    pub fn canonical_matrix(seed: u64) -> Vec<FaultPlan> {
        const RATES: [f64; 3] = [0.05, 0.2, 0.5];
        let kinds = [
            FaultKind::FrameDrop,
            FaultKind::FrameDuplicate,
            FaultKind::AdcSaturation { full_scale: 2e-3 },
            FaultKind::InterferenceBurst { excess_db: 20.0 },
            FaultKind::PointCorruption {
                mode: CorruptionMode::NaN,
            },
            FaultKind::TrackingSpike { magnitude_m: 0.5 },
        ];
        let mut plans = Vec::new();
        for (ki, kind) in kinds.iter().enumerate() {
            for (ri, rate) in RATES.iter().enumerate() {
                // lint: allow-cast(matrix indices, lossless widening)
                let plan_seed = ParSeed::new(seed).substream(ki as u64, ri as u64);
                plans.push(FaultPlan::single(plan_seed, *kind, *rate));
            }
        }
        // A mid-pass burst window…
        plans.push(FaultPlan::new(seed ^ 0x51).with_windowed(
            FaultKind::InterferenceBurst { excess_db: 25.0 },
            0.8,
            TimeWindow {
                t_start_s: 0.5,
                t_end_s: 1.5,
            },
        ));
        // …and a composite storm: several streams at once.
        plans.push(
            FaultPlan::new(seed ^ 0xc0)
                .with(FaultKind::FrameDrop, 0.1)
                .with(FaultKind::AdcSaturation { full_scale: 2e-3 }, 0.1)
                .with(
                    FaultKind::PointCorruption {
                        mode: CorruptionMode::Outlier { offset_m: 4.0 },
                    },
                    0.2,
                )
                .with(FaultKind::TrackingSpike { magnitude_m: 0.3 }, 0.05),
        );
        plans
    }

    /// Realizes the plan against a frame timeline: one [`FrameFaults`]
    /// per frame, every decision and magnitude drawn serially from
    /// `(seed, spec index, frame index)` substreams. Pure and
    /// thread-independent — calling this from any context yields the
    /// same schedule bit for bit.
    pub fn schedule(&self, frame_times: &[f64]) -> FaultSchedule {
        let seeds = ParSeed::new(self.seed);
        let mut frames = Vec::with_capacity(frame_times.len());
        for (i, &t) in frame_times.iter().enumerate() {
            let mut ff = FrameFaults::clean();
            for (s, spec) in self.specs.iter().enumerate() {
                if !spec.window.contains(t) {
                    continue;
                }
                // lint: allow-cast(spec/frame indices, lossless widening)
                let fires = unit01(seeds.substream(s as u64, i as u64)) < spec.rate;
                if !fires {
                    continue;
                }
                // Kind-specific magnitudes draw from a disjoint tag so
                // adding a spec never perturbs another spec's stream.
                // lint: allow-cast(spec/frame indices, lossless widening)
                let mag_seed = seeds.substream(TAG_MAGNITUDE ^ (s as u64), i as u64);
                match spec.kind {
                    FaultKind::FrameDrop => ff.dropped = true,
                    FaultKind::FrameDuplicate => ff.duplicated = true,
                    FaultKind::AdcSaturation { full_scale } => {
                        // Compose conservatively: the tighter clip wins.
                        ff.saturation = Some(match ff.saturation {
                            Some(fs) => fs.min(full_scale),
                            None => full_scale,
                        });
                    }
                    FaultKind::InterferenceBurst { excess_db } => {
                        ff.burst = Some(BurstDraw::new(excess_db, mag_seed));
                    }
                    FaultKind::PointCorruption { mode } => {
                        ff.corruption = Some(CorruptDraw::new(mode, mag_seed));
                    }
                    FaultKind::TrackingSpike { magnitude_m } => {
                        let s2 = ParSeed::new(mag_seed);
                        ff.spike = Some(SpikeDraw {
                            dx_m: (2.0 * unit01(s2.stream(0)) - 1.0) * magnitude_m,
                            dy_m: (2.0 * unit01(s2.stream(1)) - 1.0) * magnitude_m,
                        });
                    }
                }
            }
            frames.push(ff);
        }
        FaultSchedule { frames }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 1e-3).collect()
    }

    #[test]
    fn schedule_output_order_is_bit_stable() {
        // Regression for the nondet-iter arc: scheduling the canonical
        // matrix twice must yield identical per-frame fault sequences —
        // no hash-ordered structure may reach the realized schedule.
        let ts = times(64);
        for plan in FaultPlan::canonical_matrix(0xfa17) {
            assert_eq!(plan.schedule(&ts), plan.schedule(&ts), "seed {}", plan.seed);
        }
    }

    #[test]
    fn empty_plan_is_all_clean() {
        let s = FaultPlan::new(1).schedule(&times(50));
        assert_eq!(s.frames.len(), 50);
        assert!(s.frames.iter().all(|f| f.is_clean()));
        assert_eq!(s.injected(), 0);
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::new(42)
            .with(FaultKind::FrameDrop, 0.3)
            .with(FaultKind::InterferenceBurst { excess_db: 15.0 }, 0.2);
        let t = times(200);
        assert_eq!(plan.schedule(&t), plan.schedule(&t));
    }

    #[test]
    fn rates_hit_their_target_roughly() {
        for rate in [0.1, 0.5, 0.9] {
            let plan = FaultPlan::single(9, FaultKind::FrameDrop, rate);
            let s = plan.schedule(&times(2000));
            let hits = s.frames.iter().filter(|f| f.dropped).count();
            let got = hits as f64 / 2000.0;
            assert!(
                (got - rate).abs() < 0.05,
                "rate {rate} realized as {got}"
            );
        }
    }

    #[test]
    fn rate_zero_never_fires_rate_one_always_fires() {
        let never = FaultPlan::single(3, FaultKind::FrameDrop, 0.0).schedule(&times(100));
        assert!(never.frames.iter().all(|f| !f.dropped));
        let always = FaultPlan::single(3, FaultKind::FrameDrop, 1.0).schedule(&times(100));
        assert!(always.frames.iter().all(|f| f.dropped));
    }

    #[test]
    fn window_gates_injection() {
        let plan = FaultPlan::new(5).with_windowed(
            FaultKind::FrameDrop,
            1.0,
            TimeWindow {
                t_start_s: 0.010,
                t_end_s: 0.020,
            },
        );
        let s = plan.schedule(&times(50));
        for (i, f) in s.frames.iter().enumerate() {
            let t = i as f64 * 1e-3;
            assert_eq!(f.dropped, (0.010..=0.020).contains(&t), "frame {i}");
        }
    }

    #[test]
    fn seeds_decorrelate_plans() {
        let t = times(500);
        let a = FaultPlan::single(1, FaultKind::FrameDrop, 0.5).schedule(&t);
        let b = FaultPlan::single(2, FaultKind::FrameDrop, 0.5).schedule(&t);
        assert_ne!(a, b);
    }

    #[test]
    fn adding_a_spec_does_not_perturb_earlier_streams() {
        // Stream draws are keyed by spec index, so appending a new
        // spec leaves every earlier stream's decisions untouched.
        let t = times(300);
        let base = FaultPlan::single(77, FaultKind::FrameDrop, 0.3);
        let extended = base
            .clone()
            .with(FaultKind::TrackingSpike { magnitude_m: 0.2 }, 0.3);
        let a = base.schedule(&t);
        let b = extended.schedule(&t);
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa.dropped, fb.dropped);
        }
    }

    #[test]
    fn composed_saturation_takes_tighter_clip() {
        let plan = FaultPlan::new(4)
            .with(FaultKind::AdcSaturation { full_scale: 1e-2 }, 1.0)
            .with(FaultKind::AdcSaturation { full_scale: 1e-4 }, 1.0);
        let s = plan.schedule(&times(3));
        for f in &s.frames {
            assert_eq!(f.saturation, Some(1e-4));
        }
    }

    #[test]
    fn spike_draws_are_bounded_and_spread() {
        let plan = FaultPlan::single(8, FaultKind::TrackingSpike { magnitude_m: 0.4 }, 1.0);
        let s = plan.schedule(&times(200));
        let mut distinct = std::collections::BTreeSet::new();
        for f in &s.frames {
            let sp = f.spike.expect("rate 1.0 fires every frame");
            assert!(sp.dx_m.abs() <= 0.4 && sp.dy_m.abs() <= 0.4);
            distinct.insert((sp.dx_m.to_bits(), sp.dy_m.to_bits()));
        }
        assert!(distinct.len() > 150, "spikes must vary per frame");
    }

    #[test]
    fn canonical_matrix_covers_every_kind_and_rate() {
        let plans = FaultPlan::canonical_matrix(0xfa17);
        assert!(plans.len() >= 18, "6 kinds × 3 rates + extras");
        let names: std::collections::BTreeSet<&str> = plans
            .iter()
            .flat_map(|p| p.specs.iter().map(|s| s.kind.name()))
            .collect();
        for kind in [
            "frame_drop",
            "frame_duplicate",
            "adc_saturation",
            "interference_burst",
            "point_corruption",
            "tracking_spike",
        ] {
            assert!(names.contains(kind), "matrix missing {kind}");
        }
    }
}
