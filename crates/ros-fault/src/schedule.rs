//! Realized fault schedules: per-frame decisions and magnitude draws.

use crate::plan::CorruptionMode;
use ros_exec::ParSeed;

/// Maps a 64-bit draw onto \[0, 1): the top 53 bits scaled by 2⁻⁵³,
/// the standard exact-mantissa construction.
pub(crate) fn unit01(bits: u64) -> f64 {
    // lint: allow-cast(53-bit value is exactly representable in f64)
    (bits >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// A believed-pose spike for one frame \[m\].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpikeDraw {
    /// Along-road offset \[m\].
    pub dx_m: f64,
    /// Lateral offset \[m\].
    pub dy_m: f64,
}

/// One frame's interference burst: the declared excess power plus a
/// private seed for its waveform draws.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstDraw {
    /// Interferer power over the thermal floor \[dB\].
    pub excess_db: f64,
    seed: u64,
}

impl BurstDraw {
    pub(crate) fn new(excess_db: f64, seed: u64) -> Self {
        BurstDraw { excess_db, seed }
    }

    /// The `k`-th unit draw of this burst in \[0, 1) — deterministic in
    /// `(burst, k)`, so consumers can shape the interferer (position,
    /// phase, per-sample noise) without owning an RNG.
    pub fn unit(&self, k: u64) -> f64 {
        unit01(ParSeed::new(self.seed).stream(k))
    }

    /// The `k`-th standard-Gaussian pair (Box–Muller over two unit
    /// draws) — for complex interference amplitudes.
    pub fn gaussian_pair(&self, k: u64) -> (f64, f64) {
        let s = ParSeed::new(self.seed);
        let u1 = unit01(s.substream(1, k)).max(1e-300);
        let u2 = unit01(s.substream(2, k));
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
        (r * cos, r * sin)
    }
}

/// One frame's point-cloud corruption: the mode plus a private seed
/// for per-point draws.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorruptDraw {
    /// How the returns are mangled.
    pub mode: CorruptionMode,
    seed: u64,
}

impl CorruptDraw {
    pub(crate) fn new(mode: CorruptionMode, seed: u64) -> Self {
        CorruptDraw { mode, seed }
    }

    /// The `k`-th unit draw in \[0, 1) (outlier displacement shapes).
    pub fn unit(&self, k: u64) -> f64 {
        unit01(ParSeed::new(self.seed).stream(k))
    }
}

/// Every fault that hits one frame. The clean value injects nothing.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct FrameFaults {
    /// The frame never arrives.
    pub dropped: bool,
    /// The frame is delivered twice.
    pub duplicated: bool,
    /// I/Q hard-clip level \[√mW\], when the ADC saturates.
    pub saturation: Option<f64>,
    /// Burst interference, when an interferer fires.
    pub burst: Option<BurstDraw>,
    /// Point-cloud corruption, when returns are mangled.
    pub corruption: Option<CorruptDraw>,
    /// Believed-pose spike, when tracking glitches.
    pub spike: Option<SpikeDraw>,
}

/// A frame with no faults (what out-of-schedule lookups return).
const CLEAN: FrameFaults = FrameFaults {
    dropped: false,
    duplicated: false,
    saturation: None,
    burst: None,
    corruption: None,
    spike: None,
};

impl FrameFaults {
    /// No faults.
    pub fn clean() -> Self {
        CLEAN
    }

    /// True when nothing is injected into this frame.
    pub fn is_clean(&self) -> bool {
        *self == CLEAN
    }

    /// Emits one `ros-obs` `fault.*` counter per active fault.
    /// `corrupted_points` is the number of point returns actually
    /// mangled (0 when the consumer has no point cloud, e.g. the fast
    /// reader). Call from serial code only, like every other summary
    /// emission, so traces stay bit-identical across thread counts.
    pub fn record(&self, corrupted_points: usize) {
        if self.dropped {
            ros_obs::count("fault.frames_dropped", 1);
        }
        if self.duplicated {
            ros_obs::count("fault.frames_duplicated", 1);
        }
        if self.saturation.is_some() {
            ros_obs::count("fault.frames_saturated", 1);
        }
        if self.burst.is_some() {
            ros_obs::count("fault.bursts_injected", 1);
        }
        if corrupted_points > 0 {
            ros_obs::count("fault.points_corrupted", corrupted_points);
        }
        if self.spike.is_some() {
            ros_obs::count("fault.tracking_spikes", 1);
        }
    }
}

/// A realized plan: one [`FrameFaults`] per frame of the pass.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    /// Per-frame faults, indexed by frame number.
    pub frames: Vec<FrameFaults>,
}

impl FaultSchedule {
    /// An all-clean schedule of `n` frames.
    pub fn clean(n: usize) -> Self {
        FaultSchedule {
            frames: vec![FrameFaults::clean(); n],
        }
    }

    /// The faults of frame `i` (clean beyond the scheduled range, so
    /// consumers never index out of bounds on ragged frame counts).
    pub fn get(&self, i: usize) -> &FrameFaults {
        self.frames.get(i).unwrap_or(&CLEAN)
    }

    /// Number of frames with at least one fault.
    pub fn injected(&self) -> usize {
        self.frames.iter().filter(|f| !f.is_clean()).count()
    }

    /// Iterator over `(frame index, spike)` pairs — the shape
    /// `ros_scene::tracking::apply_spikes` consumes.
    pub fn spikes(&self) -> impl Iterator<Item = (usize, SpikeDraw)> + '_ {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.spike.map(|s| (i, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit01_is_in_range_and_spread() {
        let s = ParSeed::new(0xfeed);
        let mut lo = false;
        let mut hi = false;
        for i in 0..10_000 {
            let u = unit01(s.stream(i));
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "draws must cover the unit interval");
    }

    #[test]
    fn clean_frame_roundtrip() {
        assert!(FrameFaults::clean().is_clean());
        let mut f = FrameFaults::clean();
        f.dropped = true;
        assert!(!f.is_clean());
    }

    #[test]
    fn out_of_range_lookup_is_clean() {
        let s = FaultSchedule::clean(3);
        assert!(s.get(2).is_clean());
        assert!(s.get(999).is_clean());
    }

    #[test]
    fn gaussian_pairs_are_deterministic_and_plausible() {
        let b = BurstDraw::new(20.0, 12345);
        assert_eq!(b.gaussian_pair(7), b.gaussian_pair(7));
        // Sample mean near 0, variance near 1 over many draws.
        let n = 4000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for k in 0..n {
            let (a, bb) = b.gaussian_pair(k);
            sum += a + bb;
            sq += a * a + bb * bb;
        }
        let count = (2 * n) as f64; // lint: allow-cast(small integer)
        let mean = sum / count;
        let var = sq / count - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn record_counts_every_active_fault() {
        let buffer = ros_obs::install_memory_sink();
        ros_obs::reset_metrics();
        ros_obs::set_level(ros_obs::Level::Summary);
        let f = FrameFaults {
            dropped: true,
            duplicated: true,
            saturation: Some(1e-3),
            burst: Some(BurstDraw::new(10.0, 1)),
            corruption: Some(CorruptDraw::new(CorruptionMode::NaN, 2)),
            spike: Some(SpikeDraw { dx_m: 0.1, dy_m: 0.0 }),
        };
        f.record(17);
        ros_obs::flush();
        ros_obs::set_level(ros_obs::Level::Off);
        ros_obs::reset_metrics();
        let lines = buffer.lock().expect("sink buffer").join("\n");
        for name in [
            "fault.frames_dropped",
            "fault.frames_duplicated",
            "fault.frames_saturated",
            "fault.bursts_injected",
            "fault.points_corrupted",
            "fault.tracking_spikes",
        ] {
            assert!(lines.contains(name), "missing counter {name}");
        }
        assert!(lines.contains("\"name\":\"fault.points_corrupted\",\"kind\":\"counter\",\"value\":17"));
    }

    #[test]
    fn spikes_iterator_pairs_indices() {
        let mut s = FaultSchedule::clean(4);
        s.frames[2].spike = Some(SpikeDraw { dx_m: 0.3, dy_m: -0.1 });
        let got: Vec<(usize, SpikeDraw)> = s.spikes().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 2);
    }
}
