//! The grandfathered-debt baseline.
//!
//! `lint-baseline.json` (checked in at the workspace root) records
//! findings that predate a rule and are tracked rather than fixed.
//! Matching is by `(rule, file, message)` with a count — deliberately
//! *not* by line, so unrelated edits that shift code do not churn the
//! baseline. If a file accumulates more findings of the same shape
//! than the baseline grants, the excess is new debt and fails the
//! gate; if it has fewer, the surplus entries are reported as stale so
//! the baseline can be re-tightened with `xtask lint
//! --update-baseline`.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::{self, Value};
use crate::rules::Finding;

/// Canonical baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

type Key = (String, String, String);

/// Parsed baseline: grandfathered finding counts keyed by
/// `(rule, file, message)`.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<Key, usize>,
}

/// One finding judged against the baseline.
#[derive(Debug)]
pub struct JudgedFinding {
    /// The finding itself.
    pub finding: Finding,
    /// Covered by a baseline entry (tracked debt, not a gate failure).
    pub baselined: bool,
}

/// All findings of a run, judged, plus baseline bookkeeping.
#[derive(Debug, Default)]
pub struct Judged {
    /// Every finding, in (file, line, rule) order, judged.
    pub findings: Vec<JudgedFinding>,
    /// Baseline entries whose debt has (partially) disappeared:
    /// `(rule, file, message, surplus_count)`.
    pub stale: Vec<(String, String, String, usize)>,
}

impl Judged {
    /// Number of non-baselined findings — the gate fails when > 0.
    pub fn new_count(&self) -> usize {
        self.findings.iter().filter(|f| !f.baselined).count()
    }

    /// Number of baselined findings.
    pub fn baselined_count(&self) -> usize {
        self.findings.iter().filter(|f| f.baselined).count()
    }
}

impl Baseline {
    /// Distinct rule IDs carrying baseline debt, in sorted order.
    pub fn rules(&self) -> Vec<String> {
        let mut out: Vec<String> = self.counts.keys().map(|(r, _, _)| r.clone()).collect();
        out.dedup();
        out
    }

    /// Total grandfathered debt for one rule, summed across entries.
    pub fn rule_debt(&self, rule: &str) -> usize {
        self.counts
            .iter()
            .filter(|((r, _, _), _)| r == rule)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Judges `findings` (sorted by the engine) against this baseline.
    pub fn judge(&self, findings: &[Finding]) -> Judged {
        let mut remaining = self.counts.clone();
        let mut out = Judged::default();
        for f in findings {
            let key = (f.rule.to_string(), f.file.clone(), f.message.clone());
            let slot = remaining.get_mut(&key);
            let baselined = match slot {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            };
            out.findings.push(JudgedFinding {
                finding: f.clone(),
                baselined,
            });
        }
        for ((rule, file, message), n) in remaining {
            if n > 0 {
                out.stale.push((rule, file, message, n));
            }
        }
        out
    }
}

/// Loads the baseline; a missing file is an empty baseline, a
/// malformed one is an error (a silently ignored baseline would turn
/// the gate green by accident).
pub fn load(path: &Path) -> Result<Baseline, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let doc =
        json::parse(&text).map_err(|e| format!("malformed baseline {}: {e}", path.display()))?;
    let entries = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("baseline {} has no `entries` array", path.display()))?;
    let mut counts = BTreeMap::new();
    for e in entries {
        let field = |k: &str| -> Result<String, String> {
            e.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline entry missing string field `{k}`"))
        };
        let count = e
            .get("count")
            .and_then(Value::as_f64)
            .filter(|n| (1.0..=1e6).contains(n) && n.fract() <= 0.0)
            .ok_or_else(|| "baseline entry missing positive integer `count`".to_string())?;
        let n = count as usize; // lint: allow-cast(validated integral, 1..=1e6)
        counts.insert((field("rule")?, field("file")?, field("message")?), n);
    }
    Ok(Baseline { counts })
}

/// Renders the current findings as a fresh baseline document.
pub fn render(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<Key, usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.file.clone(), f.message.clone()))
            .or_insert(0) += 1;
    }
    let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
    let total = counts.len();
    for (i, ((rule, file, message), n)) in counts.iter().enumerate() {
        let comma = if i + 1 < total { "," } else { "" };
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {n}, \"message\": \"{}\"}}{comma}\n",
            json::escape(rule),
            json::escape(file),
            json::escape(message)
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Canonical debt-ratchet file name, resolved against the workspace
/// root. Maps rule IDs to the *maximum* baselined debt each may carry;
/// `xtask ratchet` fails whenever a rule's baseline debt exceeds its
/// ceiling — and also when it dips below it, forcing the ceiling down
/// (`--tighten`) so the count can never silently bounce back up.
pub const RATCHET_FILE: &str = "lint-ratchet.json";

/// Loads the ratchet ceilings. A missing file means no ceilings (the
/// check is opt-in per rule); a malformed one is an error for the same
/// reason a malformed baseline is.
pub fn load_ratchet(path: &Path) -> Result<BTreeMap<String, usize>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let doc =
        json::parse(&text).map_err(|e| format!("malformed ratchet {}: {e}", path.display()))?;
    let entries = doc
        .get("ceilings")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("ratchet {} has no `ceilings` array", path.display()))?;
    let mut out = BTreeMap::new();
    for e in entries {
        let rule = e
            .get("rule")
            .and_then(Value::as_str)
            .ok_or_else(|| "ratchet entry missing string field `rule`".to_string())?;
        let max = e
            .get("max")
            .and_then(Value::as_f64)
            .filter(|n| (0.0..=1e6).contains(n) && n.fract() <= 0.0)
            .ok_or_else(|| "ratchet entry missing non-negative integer `max`".to_string())?;
        out.insert(rule.to_string(), max as usize); // lint: allow-cast(validated integral, 0..=1e6)
    }
    Ok(out)
}

/// Renders ceilings as a ratchet document.
pub fn render_ratchet(ceilings: &BTreeMap<String, usize>) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"ceilings\": [\n");
    let total = ceilings.len();
    for (i, (rule, max)) in ceilings.iter().enumerate() {
        let comma = if i + 1 < total { "," } else { "" };
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"max\": {max}}}{comma}\n",
            json::escape(rule)
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Judges the baseline's per-rule debt against the ratchet ceilings.
/// Returns one human-readable violation per broken ceiling; an empty
/// vector is a pass. Both directions fail: debt above the ceiling is
/// regression, debt below it means the ceiling itself must be lowered
/// so the improvement is locked in.
pub fn judge_ratchet(baseline: &Baseline, ceilings: &BTreeMap<String, usize>) -> Vec<String> {
    let mut violations = Vec::new();
    for (rule, &max) in ceilings {
        let debt = baseline.rule_debt(rule);
        if debt > max {
            violations.push(format!(
                "`{rule}` baseline debt grew to {debt} (ratchet ceiling {max}); \
                 fix the regression instead of re-baselining"
            ));
        } else if debt < max {
            violations.push(format!(
                "`{rule}` baseline debt fell to {debt} but the ratchet ceiling is \
                 still {max}; run `cargo run -p xtask -- ratchet --tighten` to lock \
                 the improvement in"
            ));
        }
    }
    violations
}

/// Cross-checks the baseline and ratchet against the rule registry.
/// Returns one violation string per drift; an empty vector is a pass.
/// Three invariants: every baselined rule is registered (a rename or
/// deletion must clean its debt out), every ceiling names a registered
/// rule, and every registered rule carries a ceiling (new rules cannot
/// ship without a ratchet entry — the gate would otherwise let their
/// debt float).
pub fn check_registry_drift(
    baseline: &Baseline,
    ceilings: &BTreeMap<String, usize>,
) -> Vec<String> {
    let registry: std::collections::BTreeSet<&str> =
        crate::rules::RULES.iter().map(|r| r.id).collect();
    let mut violations = Vec::new();
    for rule in baseline.rules() {
        if !registry.contains(rule.as_str()) {
            violations.push(format!(
                "baseline carries debt for unregistered rule `{rule}`; the rule was \
                 renamed or removed — purge its entries from {BASELINE_FILE}"
            ));
        }
    }
    for rule in ceilings.keys() {
        if !registry.contains(rule.as_str()) {
            violations.push(format!(
                "ratchet has a ceiling for unregistered rule `{rule}`; remove the \
                 entry from {RATCHET_FILE} or restore the rule"
            ));
        }
    }
    for id in &registry {
        if !ceilings.contains_key(*id) {
            violations.push(format!(
                "registered rule `{id}` has no ratchet ceiling; add `{{\"rule\": \
                 \"{id}\", \"max\": <debt>}}` to {RATCHET_FILE}"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Severity};

    fn finding(rule: &'static str, file: &str, line: usize, msg: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message: msg.to_string(),
        }
    }

    #[test]
    fn render_load_judge_round_trip() {
        let fs = [
            finding("float-eq", "a.rs", 3, "m1"),
            finding("float-eq", "a.rs", 9, "m1"),
            finding("dead-pub", "b.rs", 1, "m2"),
        ];
        let rendered = render(&fs);
        let dir = std::env::temp_dir().join(format!("ros-lint-bl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(BASELINE_FILE);
        std::fs::write(&path, &rendered).expect("write");
        let bl = load(&path).expect("load");

        // The same findings judge fully baselined, line moves included.
        let moved = [
            finding("float-eq", "a.rs", 30, "m1"),
            finding("float-eq", "a.rs", 90, "m1"),
            finding("dead-pub", "b.rs", 10, "m2"),
        ];
        let judged = bl.judge(&moved);
        assert_eq!(judged.new_count(), 0);
        assert_eq!(judged.baselined_count(), 3);
        assert!(judged.stale.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn excess_findings_are_new_and_missing_are_stale() {
        let bl_src = render(&[
            finding("float-eq", "a.rs", 3, "m1"),
            finding("no-unwrap", "gone.rs", 7, "m3"),
        ]);
        let dir = std::env::temp_dir().join(format!("ros-lint-bl2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(BASELINE_FILE);
        std::fs::write(&path, &bl_src).expect("write");
        let bl = load(&path).expect("load");

        // Two findings of a shape granted once: one new. The unwrap
        // debt is gone: stale.
        let judged = bl.judge(&[
            finding("float-eq", "a.rs", 3, "m1"),
            finding("float-eq", "a.rs", 4, "m1"),
        ]);
        assert_eq!(judged.new_count(), 1);
        assert_eq!(judged.baselined_count(), 1);
        assert_eq!(judged.stale.len(), 1);
        assert_eq!(judged.stale[0].1, "gone.rs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ratchet_passes_only_at_the_exact_ceiling() {
        let bl_src = render(&[
            finding("alloc-in-hot-path", "a.rs", 3, "m1"),
            finding("alloc-in-hot-path", "a.rs", 9, "m1"),
            finding("alloc-in-hot-path", "b.rs", 1, "m2"),
            finding("float-eq", "c.rs", 2, "m3"),
        ]);
        let dir = std::env::temp_dir().join(format!("ros-lint-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(BASELINE_FILE);
        std::fs::write(&path, &bl_src).expect("write");
        let bl = load(&path).expect("load");
        assert_eq!(bl.rule_debt("alloc-in-hot-path"), 3);
        assert_eq!(bl.rule_debt("float-eq"), 1);
        assert_eq!(bl.rule_debt("no-such-rule"), 0);

        let at = BTreeMap::from([("alloc-in-hot-path".to_string(), 3usize)]);
        assert!(judge_ratchet(&bl, &at).is_empty());

        // Debt above the ceiling: regression.
        let below = BTreeMap::from([("alloc-in-hot-path".to_string(), 2usize)]);
        let v = judge_ratchet(&bl, &below);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("grew"), "{}", v[0]);

        // Debt below the ceiling: the ceiling must come down too.
        let above = BTreeMap::from([("alloc-in-hot-path".to_string(), 7usize)]);
        let v = judge_ratchet(&bl, &above);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("tighten"), "{}", v[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ratchet_round_trips_and_tolerates_absence() {
        let dir = std::env::temp_dir().join(format!("ros-lint-rt2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(RATCHET_FILE);
        assert!(load_ratchet(&path).expect("missing = empty").is_empty());

        let ceilings = BTreeMap::from([
            ("alloc-in-hot-path".to_string(), 0usize),
            ("nondet-iter".to_string(), 4usize),
        ]);
        std::fs::write(&path, render_ratchet(&ceilings)).expect("write");
        assert_eq!(load_ratchet(&path).expect("load"), ceilings);

        std::fs::write(&path, "{ not json").expect("write");
        assert!(load_ratchet(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_drift_catches_unknown_rules_and_missing_ceilings() {
        // A fully covered registry with a real baselined rule: clean.
        let bl_src = render(&[finding("float-eq", "a.rs", 3, "m1")]);
        let dir = std::env::temp_dir().join(format!("ros-lint-drift-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(BASELINE_FILE);
        std::fs::write(&path, &bl_src).expect("write");
        let bl = load(&path).expect("load");
        assert_eq!(bl.rules(), vec!["float-eq".to_string()]);

        let full: BTreeMap<String, usize> = crate::rules::RULES
            .iter()
            .map(|r| (r.id.to_string(), 0usize))
            .collect();
        assert!(check_registry_drift(&bl, &full).is_empty());

        // A ceiling for a rule that does not exist: drift.
        let mut with_ghost = full.clone();
        with_ghost.insert("no-such-rule".to_string(), 3);
        let v = check_registry_drift(&bl, &with_ghost);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("no-such-rule"), "{}", v[0]);

        // A registered rule with no ceiling: drift.
        let mut missing = full.clone();
        missing.remove("lock-order");
        let v = check_registry_drift(&bl, &missing);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("lock-order"), "{}", v[0]);

        // Baseline debt for an unregistered rule: drift.
        let ghost_bl = render(&[finding("retired-rule", "a.rs", 1, "m")]);
        std::fs::write(&path, &ghost_bl).expect("write");
        let ghost = load(&path).expect("load");
        let v = check_registry_drift(&ghost, &full);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("retired-rule"), "{}", v[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty_malformed_is_error() {
        let none = load(Path::new("/nonexistent/lint-baseline.json")).expect("missing = empty");
        assert_eq!(none.judge(&[]).new_count(), 0);
        let dir = std::env::temp_dir().join(format!("ros-lint-bl3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(BASELINE_FILE);
        std::fs::write(&path, "{ not json").expect("write");
        assert!(load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
