//! Cross-crate call graph over the scanned workspace.
//!
//! Nodes are the non-test `fn` items of library files; edges are the
//! call sites [`crate::syntax::calls_in`] recovers from each body,
//! resolved **by name** — the same deliberate over-approximation
//! `dead-pub`'s reference graph uses, with the same justification: no
//! type inference, total over malformed input, and the consuming rule
//! (`alloc-in-hot-path`) has both a baseline and a marker escape, so a
//! spurious edge costs an annotation, never a missed regression.
//!
//! Resolution, in decreasing specificity:
//!
//! * `Owner::name(…)` — links only to fns recorded with that impl
//!   owner. A qualifier that is no known owner (`Vec::new`,
//!   `f64::powi`, module paths) falls back to the free-fn namespace,
//!   so `shaping::standard_profile(…)` still resolves; std types
//!   simply find no node.
//! * `recv.name(…)` — links to every impl fn of that name, any owner
//!   (receiver types are unknowable without inference).
//! * `name(…)` — links to free fns (no owner) of that name.
//!
//! Hot entry points are marked in source with a `// lint: hot-path`
//! comment on the line of (or directly above) the `fn` keyword.
//! [`build`] runs a BFS from every entry and records, per reachable
//! node, a deterministic *witness* — the lexicographically first entry
//! that reaches it — so `alloc-in-hot-path` messages are stable
//! baseline keys.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::FileAnalysis;
use crate::scan::ItemKind;
use crate::syntax::{calls_in, CallSite, CodeView};

/// One `fn` node of the graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the declaring file in the slice passed to [`build`].
    pub file: usize,
    /// Declared name.
    pub name: String,
    /// Impl-block self type, for methods.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Raw token range of the body (braces included), when present.
    pub body: Option<(usize, usize)>,
    /// The fn carries a `// lint: hot-path` annotation.
    pub hot_entry: bool,
}

impl FnNode {
    /// `Owner::name` / `name` — the display form reports use.
    pub fn qualified_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph plus the hot-path reachability closure.
pub struct CallGraph {
    /// All nodes, in (file, source) order.
    pub nodes: Vec<FnNode>,
    /// `edges[i]` — callee node indices of node `i`, sorted, deduped.
    pub edges: Vec<Vec<usize>>,
    /// `hot_from[i]` — node index of the witness entry point whose
    /// call chain reaches node `i` (`None`: not on any hot path).
    pub hot_from: Vec<Option<usize>>,
}

impl CallGraph {
    /// The witness entry node for `i`, when `i` lies on a hot path.
    pub fn hot_witness(&self, i: usize) -> Option<&FnNode> {
        self.hot_from.get(i).copied().flatten().map(|e| &self.nodes[e])
    }
}

/// The annotation that marks a hot-path entry point.
pub const HOT_PATH_MARKER: &str = "lint: hot-path";

/// Name-based call resolution over a node set — the one implementation
/// of the over-approximation documented at the top of this module,
/// shared by [`build`] and by [`crate::lockgraph`] (which resolves the
/// same call sites a second time to propagate may-lock sets).
pub struct Resolver<'a> {
    free: BTreeMap<&'a str, Vec<usize>>,
    methods: BTreeMap<&'a str, Vec<usize>>,
    owned: BTreeMap<&'a str, BTreeMap<&'a str, Vec<usize>>>,
    known_owner: BTreeSet<&'a str>,
}

impl<'a> Resolver<'a> {
    /// Indexes `nodes` for by-name lookup.
    pub fn new(nodes: &'a [FnNode]) -> Self {
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut owned: BTreeMap<&str, BTreeMap<&str, Vec<usize>>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            match &n.owner {
                Some(o) => {
                    methods.entry(n.name.as_str()).or_default().push(i);
                    owned
                        .entry(o.as_str())
                        .or_default()
                        .entry(n.name.as_str())
                        .or_default()
                        .push(i);
                }
                None => free.entry(n.name.as_str()).or_default().push(i),
            }
        }
        let known_owner: BTreeSet<&str> =
            nodes.iter().filter_map(|n| n.owner.as_deref()).collect();
        Resolver { free, methods, owned, known_owner }
    }

    /// Candidate callee node indices for one call site (resolution
    /// precedence documented at the top of the module).
    pub fn resolve(&self, call: &CallSite) -> &[usize] {
        match (&call.qualifier, call.method) {
            (Some(q), _) if self.known_owner.contains(q.as_str()) => self
                .owned
                .get(q.as_str())
                .and_then(|m| m.get(call.name.as_str()))
                .map_or(&[], Vec::as_slice),
            // Module-qualified free call, or a std/external type:
            // the free namespace decides (std finds nothing).
            (Some(_), _) => self.free.get(call.name.as_str()).map_or(&[], Vec::as_slice),
            (None, true) => self.methods.get(call.name.as_str()).map_or(&[], Vec::as_slice),
            (None, false) => self.free.get(call.name.as_str()).map_or(&[], Vec::as_slice),
        }
    }
}

/// Builds the call graph over `files`. Only library files contribute
/// nodes (harness and reference code is neither annotated nor judged);
/// test-region fns are excluded outright.
pub fn build(files: &[FileAnalysis]) -> CallGraph {
    let mut nodes = Vec::new();
    for (fi, fa) in files.iter().enumerate() {
        if !fa.is_library() {
            continue;
        }
        // Lines carrying the hot-path annotation (trivia only, so a
        // string literal spelling the marker does not annotate).
        let hot_lines: Vec<usize> = fa
            .tokens
            .iter()
            .filter(|t| t.is_trivia() && t.text(&fa.text).contains(HOT_PATH_MARKER))
            .map(|t| t.line)
            .collect();
        for item in &fa.facts.items {
            if item.kind != ItemKind::Fn || item.in_test || item.name.is_empty() {
                continue;
            }
            let hot_entry = hot_lines
                .iter()
                .any(|&l| l == item.line || l + 1 == item.line);
            nodes.push(FnNode {
                file: fi,
                name: item.name.clone(),
                owner: item.owner.clone(),
                line: item.line,
                body: item.body,
                hot_entry,
            });
        }
    }

    // Name-resolution maps (BTreeMap inside: edge order must be stable).
    let resolver = Resolver::new(&nodes);

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        let Some((bs, be)) = n.body else { continue };
        let view = CodeView::new(&files[n.file]);
        let (cs, ce) = (view.ci_at_or_after(bs), view.ci_at_or_after(be));
        let mut out = Vec::new();
        for call in calls_in(&view, cs, ce) {
            out.extend_from_slice(resolver.resolve(&call));
        }
        out.sort_unstable();
        out.dedup();
        edges[i] = out;
    }

    // Hot closure: BFS from each entry, entries in lexicographic
    // (name, file, line) order so the recorded witness is deterministic.
    let mut entries: Vec<usize> = (0..nodes.len()).filter(|&i| nodes[i].hot_entry).collect();
    entries.sort_by(|&a, &b| {
        let ka = (&nodes[a].name, nodes[a].file, nodes[a].line);
        let kb = (&nodes[b].name, nodes[b].file, nodes[b].line);
        ka.cmp(&kb)
    });
    let mut hot_from: Vec<Option<usize>> = vec![None; nodes.len()];
    for &entry in &entries {
        if hot_from[entry].is_some() {
            continue; // already reached by an earlier entry
        }
        let mut queue = std::collections::VecDeque::from([entry]);
        hot_from[entry] = Some(entry);
        while let Some(u) = queue.pop_front() {
            for &v in &edges[u] {
                if hot_from[v].is_none() {
                    hot_from[v] = Some(entry);
                    queue.push_back(v);
                }
            }
        }
    }

    CallGraph { nodes, edges, hot_from }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileRole;

    fn fa(rel: &str, src: &str) -> FileAnalysis {
        let crate_name = rel.split('/').nth(1).unwrap_or("x").to_string();
        FileAnalysis::new(rel.to_string(), crate_name, FileRole::Library, src.to_string())
    }

    fn node<'a>(g: &'a CallGraph, name: &str) -> (usize, &'a FnNode) {
        g.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.name == name)
            .unwrap_or_else(|| panic!("no node `{name}`"))
    }

    fn calls(g: &CallGraph, from: &str) -> Vec<String> {
        let (i, _) = node(g, from);
        g.edges[i].iter().map(|&j| g.nodes[j].qualified_name()).collect()
    }

    #[test]
    fn resolves_free_qualified_and_method_calls() {
        let a = fa(
            "crates/ros-dsp/src/a.rs",
            "pub fn top() { helper(); Fft::plan(1); buf.push_frame(); Vec::new(); }\n\
             fn helper() {}\n",
        );
        let b = fa(
            "crates/ros-dsp/src/b.rs",
            "pub struct Fft;\nimpl Fft {\n    pub fn plan(n: usize) {}\n}\n\
             pub struct Buf;\nimpl Buf {\n    pub fn push_frame(&self) {}\n}\n",
        );
        let files = [a, b];
        let g = build(&files);
        assert_eq!(calls(&g, "top"), ["helper", "Fft::plan", "Buf::push_frame"]);
    }

    #[test]
    fn qualified_call_with_known_owner_does_not_leak_across_owners() {
        let src = "\
pub struct A;\nimpl A {\n    pub fn make() {}\n}\n\
pub struct B;\nimpl B {\n    pub fn make() {}\n}\n\
pub fn top() { A::make(); }\n";
        let files = [fa("crates/core/src/x.rs", src)];
        let g = build(&files);
        assert_eq!(calls(&g, "top"), ["A::make"]);
    }

    #[test]
    fn module_qualified_free_call_resolves_via_free_namespace() {
        let a = fa("crates/core/src/a.rs", "pub fn top() { shaping::profile(3); }\n");
        let b = fa("crates/ros-antenna/src/shaping.rs", "pub fn profile(n: usize) {}\n");
        let files = [a, b];
        let g = build(&files);
        assert_eq!(calls(&g, "top"), ["profile"]);
    }

    #[test]
    fn hot_propagation_is_transitive_with_deterministic_witness() {
        let src = "\
// lint: hot-path
pub fn entry_b() { mid(); }\n\
// lint: hot-path
pub fn entry_a() { mid(); }\n\
fn mid() { leaf(); }\n\
fn leaf() {}\n\
fn cold() { leaf_cold(); }\n\
fn leaf_cold() {}\n";
        let files = [fa("crates/core/src/x.rs", src)];
        let g = build(&files);
        let (leaf, _) = node(&g, "leaf");
        // entry_a sorts before entry_b, so it is the witness even
        // though entry_b appears first in the source.
        assert_eq!(g.hot_witness(leaf).map(|n| n.name.as_str()), Some("entry_a"));
        let (cold, _) = node(&g, "cold");
        assert!(g.hot_witness(cold).is_none());
        let (lc, _) = node(&g, "leaf_cold");
        assert!(g.hot_witness(lc).is_none());
    }

    #[test]
    fn hot_marker_in_string_or_test_code_does_not_annotate() {
        let src = "\
pub fn not_hot() { let s = \"lint: hot-path\"; }\n\
#[cfg(test)]\nmod tests {\n    // lint: hot-path\n    fn t() {}\n}\n";
        let files = [fa("crates/core/src/x.rs", src)];
        let g = build(&files);
        assert!(g.hot_from.iter().all(Option::is_none));
        assert!(g.nodes.iter().all(|n| n.name != "t"), "test fns excluded");
    }

    #[test]
    fn cross_crate_edges_resolve() {
        let radar = fa(
            "crates/ros-radar/src/radar.rs",
            "// lint: hot-path\npub fn capture() { ros_dsp::resample(1.0); }\n",
        );
        let dsp = fa(
            "crates/ros-dsp/src/resample.rs",
            "pub fn resample(x: f64) { grow(); }\nfn grow() {}\n",
        );
        let files = [radar, dsp];
        let g = build(&files);
        let (grow, _) = node(&g, "grow");
        assert_eq!(g.hot_witness(grow).map(|n| n.name.as_str()), Some("capture"));
    }
}
