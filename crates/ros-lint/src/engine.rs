//! Workspace loading and the gate driver.
//!
//! The engine walks the repository, lexes and scans every Rust file,
//! runs the per-file and cross-crate rules, applies the baseline, and
//! renders the human and JSON reports. It never prints and never
//! exits — `xtask` owns the terminal and the exit code.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};

use crate::baseline::{self, Baseline};
use crate::lexer::{self, Token};
use crate::report;
use crate::rules;
use crate::scan::{self, FileFacts};

/// How a file participates in analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileRole {
    /// `crates/<lib>/src` — every rule applies.
    Library,
    /// `crates/{bench,xtask}/src` — measurement harnesses: the
    /// crate-wide rules apply, the library-API rules do not.
    Harness,
    /// Integration tests, examples, per-crate `tests/` — scanned only
    /// as a reference corpus (for `dead-pub`), no rules applied.
    Reference,
}

/// Crates whose binaries are harnesses rather than library API.
pub const NON_LIBRARY_CRATES: &[&str] = &["bench", "xtask"];

/// One fully analyzed source file.
pub struct FileAnalysis {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Owning crate (`ros-em`, `bench`, …; `ros-tests` / `ros-examples`
    /// for the top-level test and example trees).
    pub crate_name: String,
    /// Analysis role.
    pub role: FileRole,
    /// Raw source text.
    pub text: String,
    /// Complete token stream.
    pub tokens: Vec<Token>,
    /// Structural facts (items, test regions).
    pub facts: FileFacts,
    /// `lint: allow-…(…)` markers by 1-based line.
    pub markers: HashMap<usize, Vec<String>>,
    /// The file opens with module-level inner docs (`//!` / `/*!`),
    /// the repo's convention for documenting file modules.
    pub has_module_docs: bool,
    /// Marker lines that suppressed at least one rule probe this run —
    /// what `stale-suppression` subtracts from the declared markers.
    /// Interior mutability because rules hold `&FileAnalysis`.
    pub used_markers: RefCell<BTreeSet<usize>>,
}

impl FileAnalysis {
    /// Builds the analysis for one file.
    pub fn new(rel: String, crate_name: String, role: FileRole, text: String) -> Self {
        let tokens = lexer::lex(&text);
        let facts = scan::analyze(&text, &tokens);
        Self::from_parts(rel, crate_name, role, text, tokens, facts)
    }

    /// Assembles the analysis from an already lexed and scanned file
    /// (the timed loader measures those two passes separately).
    fn from_parts(
        rel: String,
        crate_name: String,
        role: FileRole,
        text: String,
        tokens: Vec<Token>,
        facts: FileFacts,
    ) -> Self {
        let mut markers: HashMap<usize, Vec<String>> = HashMap::new();
        for t in tokens.iter().filter(|t| t.is_trivia()) {
            let body = t.text(&text);
            if body.contains("lint: allow-") {
                markers.entry(t.line).or_default().push(body.to_string());
            }
        }
        let has_module_docs = leading_inner_docs(&text, &tokens);
        FileAnalysis {
            rel,
            crate_name,
            role,
            text,
            tokens,
            facts,
            markers,
            has_module_docs,
            used_markers: RefCell::new(BTreeSet::new()),
        }
    }

    /// True when `line` (or the line above it) carries a
    /// `lint: allow-<which>(` marker. A hit records the marker line as
    /// used, so rules must only probe once the finding would otherwise
    /// be reported (`stale-suppression` audits the leftovers).
    pub fn has_marker(&self, line: usize, which: &str) -> bool {
        let probe = |l: usize| {
            let hit = self
                .markers
                .get(&l)
                .is_some_and(|ms| ms.iter().any(|m| m.contains(which)));
            if hit {
                self.used_markers.borrow_mut().insert(l);
            }
            hit
        };
        let same = probe(line);
        let above = line > 1 && probe(line - 1);
        same || above
    }

    /// True for files where the library-API rules apply.
    pub fn is_library(&self) -> bool {
        self.role == FileRole::Library
    }
}

/// True when the token stream opens with inner docs (`//!` or `/*!`),
/// skipping plain comments. Used both for whole files (module docs)
/// and for inline `mod` bodies.
pub fn leading_inner_docs<'a, I>(text: &str, tokens: I) -> bool
where
    I: IntoIterator<Item = &'a Token>,
{
    for t in tokens {
        match t.kind {
            lexer::TokenKind::LineComment | lexer::TokenKind::BlockComment => {}
            lexer::TokenKind::DocComment => {
                let s = t.text(text);
                return s.starts_with("//!") || s.starts_with("/*!");
            }
            _ => return false,
        }
    }
    false
}

/// Walks the workspace and analyzes every relevant Rust file:
/// `crates/*/src` (rule targets) plus `crates/*/tests`, `tests/`, and
/// `examples/` (reference corpus). Files come back sorted by path.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<FileAnalysis>> {
    Ok(load_workspace_timed(root, None)?.0)
}

/// Reads `clock` when injected; a missing clock reads as a frozen zero
/// so every duration degrades to zero instead of branching everywhere.
fn now(clock: Option<fn() -> u64>) -> u64 {
    clock.map_or(0, |c| c())
}

/// [`load_workspace`] plus per-pass wall time: total nanoseconds spent
/// lexing and scanning across all files.
fn load_workspace_timed(
    root: &Path,
    clock: Option<fn() -> u64>,
) -> std::io::Result<(Vec<FileAnalysis>, u64, u64)> {
    let mut paths: Vec<(PathBuf, String, FileRole)> = Vec::new();

    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let dir = entry?.path();
        if !dir.is_dir() {
            continue;
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if src.is_dir() {
            let role = if NON_LIBRARY_CRATES.contains(&name.as_str()) {
                FileRole::Harness
            } else {
                FileRole::Library
            };
            collect_rs(&src, &mut paths, &name, role)?;
        }
        let tests = dir.join("tests");
        if tests.is_dir() {
            collect_rs(&tests, &mut paths, &name, FileRole::Reference)?;
        }
    }
    for (sub, crate_name) in [("tests", "ros-tests"), ("examples", "ros-examples")] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths, crate_name, FileRole::Reference)?;
        }
    }
    paths.sort();

    let mut out = Vec::with_capacity(paths.len());
    let (mut lex_ns, mut scan_ns) = (0u64, 0u64);
    for (path, crate_name, role) in paths {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let t0 = now(clock);
        let tokens = lexer::lex(&text);
        let t1 = now(clock);
        let facts = scan::analyze(&text, &tokens);
        let t2 = now(clock);
        lex_ns += t1.saturating_sub(t0);
        scan_ns += t2.saturating_sub(t1);
        out.push(FileAnalysis::from_parts(rel, crate_name, role, text, tokens, facts));
    }
    Ok((out, lex_ns, scan_ns))
}

fn collect_rs(
    dir: &Path,
    out: &mut Vec<(PathBuf, String, FileRole)>,
    crate_name: &str,
    role: FileRole,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out, crate_name, role)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((path.clone(), crate_name.to_string(), role));
        }
    }
    Ok(())
}

/// Options for one gate run.
#[derive(Debug, Default)]
pub struct GateOptions {
    /// Write the machine-readable findings artifact here.
    pub json_path: Option<PathBuf>,
    /// Rewrite the baseline to match the current findings instead of
    /// judging against it.
    pub update_baseline: bool,
    /// Ignore the baseline entirely (every finding is "new").
    pub no_baseline: bool,
    /// Monotonic nanosecond clock injected by the driver; `None`
    /// leaves every reported pass time at zero (the engine itself
    /// never reads the OS clock — that is the driver's edge).
    pub clock: Option<fn() -> u64>,
}

/// Wall time of each analyzer pass, nanoseconds. All zero unless the
/// driver injects a clock via [`GateOptions::clock`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassTimings {
    /// Lexing every workspace file.
    pub lex_ns: u64,
    /// Item/test-region scanning.
    pub scan_ns: u64,
    /// Call-graph construction.
    pub callgraph_ns: u64,
    /// Lock-graph construction.
    pub lockgraph_ns: u64,
    /// Rule execution (everything else in `check_all`).
    pub rules_ns: u64,
    /// The whole gate run, load to report.
    pub total_ns: u64,
}

/// The outcome of one gate run, ready for the driver to print.
pub struct GateOutcome {
    /// The gate passed (no non-baselined findings).
    pub passed: bool,
    /// Human-readable report (print as-is).
    pub human_report: String,
    /// Actions the engine performed (file writes), for the driver log.
    pub notes: Vec<String>,
    /// Per-pass wall time (zeros without an injected clock).
    pub timings: PassTimings,
}

/// Runs the full gate: load → analyze → baseline → report.
///
/// `root` is the workspace root (the directory holding `crates/` and
/// `lint-baseline.json`).
pub fn run_gate(root: &Path, opts: &GateOptions) -> Result<GateOutcome, String> {
    let t0 = now(opts.clock);
    let (files, lex_ns, scan_ns) = load_workspace_timed(root, opts.clock)
        .map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    let (findings, callgraph_ns, lockgraph_ns, rules_ns) =
        rules::check_all_timed(&files, opts.clock);
    let mut timings = PassTimings {
        lex_ns,
        scan_ns,
        callgraph_ns,
        lockgraph_ns,
        rules_ns,
        total_ns: 0,
    };

    let baseline_path = root.join(baseline::BASELINE_FILE);
    let mut notes = Vec::new();

    if opts.update_baseline {
        let rendered = baseline::render(&findings);
        std::fs::write(&baseline_path, rendered)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        notes.push(format!(
            "baseline updated: {} ({} finding(s) grandfathered)",
            baseline_path.display(),
            findings.len()
        ));
    }

    let baseline = if opts.no_baseline {
        Baseline::default()
    } else {
        baseline::load(&baseline_path)?
    };
    let judged = baseline.judge(&findings);

    let n_files = files
        .iter()
        .filter(|f| f.role != FileRole::Reference)
        .count();
    timings.total_ns = now(opts.clock).saturating_sub(t0);
    if let Some(json_path) = &opts.json_path {
        let artifact = report::json_report(&judged, n_files, &timings);
        if let Some(parent) = json_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(json_path, artifact)
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        notes.push(format!("findings artifact: {}", json_path.display()));
    }

    let passed = judged.new_count() == 0;
    let human_report = report::human_report(&judged, n_files);
    Ok(GateOutcome {
        passed,
        human_report,
        notes,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fa(src: &str) -> FileAnalysis {
        FileAnalysis::new(
            "crates/ros-em/src/s.rs".to_string(),
            "ros-em".to_string(),
            FileRole::Library,
            src.to_string(),
        )
    }

    #[test]
    fn marker_probes_finding_line_and_line_above() {
        let f = fa(
            "// lint: allow-cast(above)\nlet a = n as f64;\nlet b = m as f64; // lint: allow-cast(same)\n\nlet c = k as f64;\n",
        );
        assert!(f.has_marker(2, "allow-cast"));
        assert!(f.has_marker(3, "allow-cast"));
        assert!(!f.has_marker(5, "allow-cast"));
        // Marker names do not cross-suppress.
        assert!(!f.has_marker(2, "allow-panic"));
    }

    #[test]
    fn marker_in_string_literal_is_not_a_marker() {
        let f = fa("let s = \"lint: allow-cast(nope)\";\nlet a = n as f64;\n");
        assert!(!f.has_marker(2, "allow-cast"));
    }

    #[test]
    fn leading_inner_docs_rules() {
        let yes = fa("//! module docs\nfn f() {}\n");
        assert!(yes.has_module_docs);
        let block = fa("/*! module docs */\nfn f() {}\n");
        assert!(block.has_module_docs);
        // Plain comments may precede the inner doc.
        let after_comment = fa("// SPDX-ish header\n//! docs\n");
        assert!(after_comment.has_module_docs);
        // An item before any `//!` means the file has no module docs.
        let no = fa("fn f() {}\n//! too late\n");
        assert!(!no.has_module_docs);
        // Outer docs at the top document the first item, not the module.
        let outer = fa("/// item docs\nfn f() {}\n");
        assert!(!outer.has_module_docs);
        assert!(!fa("").has_module_docs);
    }

    #[test]
    fn roles_and_is_library() {
        assert!(fa("").is_library());
        let bench = FileAnalysis::new(
            "crates/bench/src/main.rs".to_string(),
            "bench".to_string(),
            FileRole::Harness,
            String::new(),
        );
        assert!(!bench.is_library());
        assert!(NON_LIBRARY_CRATES.contains(&"bench") && NON_LIBRARY_CRATES.contains(&"xtask"));
    }
}
