//! Minimal JSON reading and writing (the workspace carries no serde).
//!
//! Covers exactly what the lint engine needs: writing the findings
//! artifact and round-tripping `lint-baseline.json`. The parser is a
//! plain recursive-descent over the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null); numbers are
//! kept as `f64`, which is exact for every count the baseline stores.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser { b: src.as_bytes(), i: 0 };
    p.ws();
    let v = p.parse_value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(ParseError { at: p.i, msg: "trailing content" });
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_literal(&mut self, word: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let k = self.parse_string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.parse_value()?;
            m.insert(k, v);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut a = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(a));
        }
        loop {
            self.ws();
            a.push(self.parse_value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(a));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return Err(self.err("bad \\u escape"));
                            };
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x80 => {
                    s.push(char::from(c));
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole char.
                    let start = self.i;
                    self.i += 1;
                    while self.b.get(self.i).is_some_and(|c| (0x80..0xc0).contains(c)) {
                        self.i += 1;
                    }
                    match std::str::from_utf8(&self.b[start..self.i]) {
                        Ok(chunk) => s.push_str(chunk),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Escapes `s` as a JSON string body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Value {
        parse(src).unwrap_or_else(|e| panic!("{src:?}: {e}"))
    }

    #[test]
    fn parses_scalars() {
        assert!(matches!(p("null"), Value::Null));
        assert!(matches!(p("true"), Value::Bool(true)));
        assert_eq!(p("-1.5e2").as_f64(), Some(-150.0));
        assert_eq!(p("\"a b\"").as_str(), Some("a b"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = p(r#"{"a": [1, {"b": "c"}], "d": null}"#);
        let arr = v.get("a").and_then(Value::as_arr).expect("a");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("c"));
        assert!(matches!(v.get("d"), Some(Value::Null)));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = p(r#""q\" b\\ n\n t\t uA""#);
        assert_eq!(v.as_str(), Some("q\" b\\ n\n t\t uA"));
        // escape() produces text parse() accepts, for any content.
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let rendered = format!("\"{}\"", escape(nasty));
        assert_eq!(p(&rendered).as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        // The error carries a byte offset.
        let e = parse("[1, !]").expect_err("bad token");
        assert!(e.at > 0 && e.to_string().contains("byte"));
    }
}
