//! A total, lossless Rust lexer.
//!
//! "Total": any byte sequence lexes — malformed input (an unterminated
//! string, a stray control byte) degrades to a token that runs to the
//! end of the file or to a one-byte [`TokenKind::Unknown`], never a
//! panic. "Lossless": every non-whitespace byte of the input lands in
//! exactly one token slice, comments included, so concatenating the
//! token slices and deleting whitespace reproduces the input with its
//! whitespace deleted (pinned by a property test).
//!
//! The lexer exists to replace the line-oriented text scanner the old
//! `xtask lint` used, whose structural blind spots produced real
//! misses (see the regression corpus in the tests: a `'"'` char
//! literal flipped its string-stripping state; nested block comments
//! closed at the first `*/`; raw strings with two or more hashes were
//! not recognized at all). Token slices borrow from the source string;
//! a [`Token`] carries byte offsets plus the 1-based line of its first
//! byte, which is what lint findings report.

/// The lexical class of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `foo`, `f64`, …).
    Ident,
    /// Raw identifier (`r#type`).
    RawIdent,
    /// Lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// Character literal (`'x'`, `'\n'`, `'"'`).
    Char,
    /// Byte literal (`b'x'`).
    Byte,
    /// String literal (`"…"`, escapes handled).
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `r##"…"##`, any hashes).
    RawStr,
    /// Byte-string literal (`b"…"`).
    ByteStr,
    /// Raw byte-string literal (`br#"…"#`, any hashes).
    RawByteStr,
    /// Integer literal (`42`, `0xff_u32`).
    Int,
    /// Floating-point literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// Non-doc line comment (`// …`, `//// …`).
    LineComment,
    /// Non-doc block comment (`/* … */`, nesting tracked to any depth).
    BlockComment,
    /// Doc comment: `/// …`, `//! …`, `/** … */`, or `/*! … */`.
    DocComment,
    /// Operator or punctuation, maximal munch (`==`, `..=`, `::`, `(`).
    Punct,
    /// Any byte that fits no other class (total-lexer fallback).
    Unknown,
}

/// One lexed token: a classified byte range of the source.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of the first byte.
    pub line: usize,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for comment tokens (doc and non-doc alike).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
        )
    }
}

/// Multi-byte operators, longest first so maximal munch is a plain
/// linear scan (`<<=` must match before `<<` before `<`).
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Single-character punctuation accepted as [`TokenKind::Punct`].
const SINGLE_PUNCT: &[u8] = b"+-*/%^&|!=<>.,;:#$?@~()[]{}";

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into its complete token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                if b == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
                continue;
            }
            let start = self.pos;
            let start_line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            if self.pos == start {
                // Defensive: never loop forever, even on a logic bug.
                self.pos += 1;
            }
            out.push(Token {
                kind,
                start,
                end: self.pos,
                line: start_line,
            });
        }
        out
    }

    /// Dispatches on the byte at `self.pos`, consumes one token, and
    /// returns its kind. Newlines inside the consumed range update the
    /// line counter as they are passed.
    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'r' if self.raw_string_hashes(1).is_some() => {
                let hashes = self.raw_string_hashes(1).unwrap_or(0);
                self.raw_string(1, hashes);
                TokenKind::RawStr
            }
            b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                self.pos += 2;
                self.eat_ident();
                TokenKind::RawIdent
            }
            b'b' if self.peek(1) == Some(b'\'') => {
                self.pos += 2;
                self.char_body();
                TokenKind::Byte
            }
            b'b' if self.peek(1) == Some(b'"') => {
                self.pos += 2;
                self.string_body();
                TokenKind::ByteStr
            }
            b'b' if self.peek(1) == Some(b'r') && self.raw_string_hashes(2).is_some() => {
                let hashes = self.raw_string_hashes(2).unwrap_or(0);
                self.raw_string(2, hashes);
                TokenKind::RawByteStr
            }
            b'\'' => self.quote(),
            b'"' => {
                self.pos += 1;
                self.string_body();
                TokenKind::Str
            }
            _ if b.is_ascii_digit() => self.number(),
            _ if is_ident_start(b) => {
                self.eat_ident();
                TokenKind::Ident
            }
            _ => self.punct(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// If position `offset` past `self.pos` starts `#* "` (zero or
    /// more hashes then a double quote), returns the hash count —
    /// i.e. `self.pos + offset` begins a raw-string body. `r#ident`
    /// (raw identifier) returns `None` because no quote follows.
    fn raw_string_hashes(&self, offset: usize) -> Option<usize> {
        let mut n = 0;
        while self.peek(offset + n) == Some(b'#') {
            n += 1;
        }
        (self.peek(offset + n) == Some(b'"')).then_some(n)
    }

    /// Consumes a raw (byte-)string: `prefix_len` bytes of `r`/`br`,
    /// `hashes` hashes, the opening quote, then everything up to a
    /// quote followed by the same number of hashes (or EOF).
    fn raw_string(&mut self, prefix_len: usize, hashes: usize) {
        self.pos += prefix_len + hashes + 1;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'\n' {
                self.line += 1;
            }
            if b == b'"' {
                let mut matched = 0;
                while matched < hashes && self.bytes.get(self.pos + 1 + matched) == Some(&b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Consumes the remainder of a `"…"` body (opening quote already
    /// eaten), honouring `\"` and `\\` escapes; stops at EOF if
    /// unterminated.
    fn string_body(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // A line-continuation escape (`\` before a newline)
                    // still advances the line counter.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos = (self.pos + 2).min(self.bytes.len());
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes the body of a char/byte literal after the opening
    /// quote: escapes, then the closing quote. Bounded lookahead —
    /// an unterminated literal stops at the next newline or EOF
    /// rather than swallowing the file.
    fn char_body(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.bytes.len()),
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => return,
                _ => self.pos += 1,
            }
        }
    }

    /// Disambiguates `'` between a lifetime/label and a char literal.
    ///
    /// The rustc rule: after the quote, an identifier run that is
    /// *not* immediately followed by another `'` is a lifetime
    /// (`'static`, `'a`, `'_`); anything else (`'x'`, `'\n'`, `'"'`)
    /// is a char literal. The old line scanner got `'"'` wrong — the
    /// quote inside flipped its string state and mis-cleaned the rest
    /// of the line.
    fn quote(&mut self) -> TokenKind {
        let next = self.peek(1);
        if next.is_some_and(is_ident_start) && next != Some(b'\'') {
            let mut end = self.pos + 2;
            while self.bytes.get(end).copied().is_some_and(is_ident_continue) {
                end += 1;
            }
            if self.bytes.get(end) != Some(&b'\'') {
                self.pos = end;
                return TokenKind::Lifetime;
            }
        }
        self.pos += 1;
        self.char_body();
        TokenKind::Char
    }

    fn line_comment(&mut self) -> TokenKind {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        // `///` and `//!` are doc comments; `////…` is plain again.
        let is_doc = (text.starts_with("///") && !text.starts_with("////"))
            || text.starts_with("//!");
        if is_doc {
            TokenKind::DocComment
        } else {
            TokenKind::LineComment
        }
    }

    /// Consumes a block comment, tracking nesting to arbitrary depth:
    /// `/* outer /* inner */ still comment */` is one token.
    fn block_comment(&mut self) -> TokenKind {
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos..].starts_with(b"/*") {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos..].starts_with(b"*/") {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        // `/** … */` and `/*! … */` are docs; `/**/` and `/*** …` are
        // not (rustc's exact rule).
        let is_doc = text.starts_with("/*!")
            || (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4);
        if is_doc {
            TokenKind::DocComment
        } else {
            TokenKind::BlockComment
        }
    }

    fn eat_ident(&mut self) {
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
    }

    /// Consumes a numeric literal and classifies int vs. float.
    ///
    /// Float iff: a `.` followed by a digit (or by nothing that could
    /// continue an expression, as in `1.`), a decimal exponent, or an
    /// `f32`/`f64` suffix. `1..n` and `1.max(2)` stay integers; the
    /// dot belongs to the range / method call.
    fn number(&mut self) -> TokenKind {
        let mut float = false;
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
            return TokenKind::Int;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') {
            let after = self.peek(1);
            if after.is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
                float = true;
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    self.pos += 1;
                }
            } else if !(after == Some(b'.') || after.is_some_and(is_ident_start)) {
                // Trailing-dot float: `1.` followed by `)`, `,`, EOF…
                self.pos += 1;
                float = true;
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let has_exp = sign.is_some_and(|c| c.is_ascii_digit())
                || (matches!(sign, Some(b'+' | b'-')) && digit.is_some_and(|c| c.is_ascii_digit()));
            if has_exp {
                self.pos += if sign.is_some_and(|c| c.is_ascii_digit()) { 2 } else { 3 };
                float = true;
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (`u32`, `f64`, …) is part of the literal token.
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn punct(&mut self) -> TokenKind {
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op) {
                self.pos += op.len();
                return TokenKind::Punct;
            }
        }
        let b = self.bytes[self.pos];
        self.pos += 1;
        if SINGLE_PUNCT.contains(&b) {
            TokenKind::Punct
        } else {
            // Skip the remaining bytes of a multi-byte UTF-8 char so
            // slices stay on char boundaries.
            while self.peek(0).is_some_and(|c| (0x80..0xc0).contains(&c)) {
                self.pos += 1;
            }
            TokenKind::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (kind, text) pairs for every token, trivia included.
    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn strip_ws(s: &str) -> String {
        s.chars().filter(|c| !c.is_whitespace()).collect()
    }

    /// The lossless property on one input.
    fn assert_roundtrip(src: &str) {
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "overlapping tokens in {src:?}");
            assert!(
                src[prev_end..t.start].chars().all(char::is_whitespace),
                "non-whitespace gap before {:?} in {src:?}",
                t.text(src)
            );
            prev_end = t.end;
            rebuilt.push_str(t.text(src));
        }
        assert!(
            src[prev_end..].chars().all(char::is_whitespace),
            "non-whitespace tail in {src:?}"
        );
        assert_eq!(strip_ws(&rebuilt), strip_ws(src), "roundtrip of {src:?}");
    }

    #[test]
    fn idents_keywords_numbers() {
        let got = kinds("fn f2(_x: u32) -> f64 { 1_000 }");
        assert_eq!(got[0], (TokenKind::Ident, "fn"));
        assert_eq!(got[1], (TokenKind::Ident, "f2"));
        assert!(got.contains(&(TokenKind::Ident, "_x")));
        assert!(got.contains(&(TokenKind::Int, "1_000")));
        assert!(got.contains(&(TokenKind::Punct, "->")));
    }

    #[test]
    fn float_vs_int_classification() {
        assert!(kinds("1.0").contains(&(TokenKind::Float, "1.0")));
        assert!(kinds("2e-3").contains(&(TokenKind::Float, "2e-3")));
        assert!(kinds("1f64").contains(&(TokenKind::Float, "1f64")));
        assert!(kinds("1.").contains(&(TokenKind::Float, "1.")));
        // A range or a method call on an integer literal stays Int.
        let range = kinds("1..n");
        assert!(range.contains(&(TokenKind::Int, "1")), "{range:?}");
        assert!(range.contains(&(TokenKind::Punct, "..")));
        let call = kinds("1.max(2)");
        assert!(call.contains(&(TokenKind::Int, "1")), "{call:?}");
        assert!(kinds("0xFF_u32").contains(&(TokenKind::Int, "0xFF_u32")));
        assert!(kinds("0b10").contains(&(TokenKind::Int, "0b10")));
    }

    #[test]
    fn char_literal_with_double_quote() {
        // Regression (old Scanner bug): `'"'` flipped the string state
        // and swallowed the rest of the line.
        let got = kinds("let c = '\"'; y.unwrap();");
        assert!(got.contains(&(TokenKind::Char, "'\"'")), "{got:?}");
        assert!(got.contains(&(TokenKind::Ident, "unwrap")), "{got:?}");
    }

    #[test]
    fn lifetime_vs_char() {
        let got = kinds("&'a str");
        assert!(got.contains(&(TokenKind::Lifetime, "'a")), "{got:?}");
        assert!(kinds("'x'").contains(&(TokenKind::Char, "'x'")));
        assert!(kinds("'\\''").contains(&(TokenKind::Char, "'\\''")));
        assert!(kinds("'\\u{1F600}'").contains(&(TokenKind::Char, "'\\u{1F600}'")));
        let stat = kinds("&'static str");
        assert!(stat.contains(&(TokenKind::Lifetime, "'static")), "{stat:?}");
        // A lifetime immediately before a string must not merge.
        let adj = kinds("x::<'a>(\"s\")");
        assert!(adj.contains(&(TokenKind::Lifetime, "'a")), "{adj:?}");
        assert!(adj.contains(&(TokenKind::Str, "\"s\"")), "{adj:?}");
    }

    #[test]
    fn byte_and_byte_string_literals() {
        assert!(kinds("b'x'").contains(&(TokenKind::Byte, "b'x'")));
        assert!(kinds("b\"ab\"").contains(&(TokenKind::ByteStr, "b\"ab\"")));
        assert!(kinds("br#\"a\"#").contains(&(TokenKind::RawByteStr, "br#\"a\"#")));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        // Regression: the old scanner only understood zero or one `#`.
        assert!(kinds("r\"a\"").contains(&(TokenKind::RawStr, "r\"a\"")));
        assert!(kinds("r#\"a\"#").contains(&(TokenKind::RawStr, "r#\"a\"#")));
        let two = "r##\"has \"# inside\"##";
        assert!(kinds(two).contains(&(TokenKind::RawStr, two)));
        let three = "r###\"x\"## still open\"###";
        assert!(kinds(three).contains(&(TokenKind::RawStr, three)));
        // r#ident is a raw identifier, not a raw string.
        assert!(kinds("r#type").contains(&(TokenKind::RawIdent, "r#type")));
    }

    #[test]
    fn nested_block_comments() {
        // Regression: the old scanner closed at the first `*/`.
        let src = "/* outer /* inner */ still comment */ code";
        let got = kinds(src);
        assert_eq!(got[0].0, TokenKind::BlockComment);
        assert_eq!(got[0].1, "/* outer /* inner */ still comment */");
        assert!(got.contains(&(TokenKind::Ident, "code")));
        // Depth three.
        let deep = "/* a /* b /* c */ b */ a */";
        assert_eq!(kinds(deep), vec![(TokenKind::BlockComment, deep)]);
    }

    #[test]
    fn doc_comment_classification() {
        assert_eq!(kinds("/// doc")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("//! inner doc")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("/** doc */")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("/*! inner */")[0].0, TokenKind::DocComment);
        // rustc's corner cases: these are NOT doc comments.
        assert_eq!(kinds("//// not doc")[0].0, TokenKind::LineComment);
        assert_eq!(kinds("// plain")[0].0, TokenKind::LineComment);
        assert_eq!(kinds("/**/")[0].0, TokenKind::BlockComment);
        assert_eq!(kinds("/***/")[0].0, TokenKind::BlockComment);
    }

    #[test]
    fn strings_with_escapes_and_continuations() {
        let s = r#""a\"b\\""#;
        assert!(kinds(s).contains(&(TokenKind::Str, s)));
        let cont = "\"a\\\n b\" x";
        let got = lex(cont);
        assert_eq!(got[0].kind, TokenKind::Str);
        // The continuation newline is inside the string; `x` is on
        // line 2.
        assert_eq!(got.last().map(|t| t.line), Some(2));
    }

    #[test]
    fn maximal_munch_operators() {
        let got = kinds("a <<= b ..= c :: d");
        assert!(got.contains(&(TokenKind::Punct, "<<=")));
        assert!(got.contains(&(TokenKind::Punct, "..=")));
        assert!(got.contains(&(TokenKind::Punct, "::")));
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let src = "a\nb\n\nc";
        let lines: Vec<usize> = lex(src).iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
        // Lines inside a block comment advance the counter.
        let src = "/* x\ny */\nz";
        let got = lex(src);
        assert_eq!(got[1].line, 3);
    }

    #[test]
    fn total_on_malformed_input() {
        // Unterminated constructs run to EOF; stray bytes degrade to
        // Unknown. Nothing panics.
        for src in [
            "\"never closed",
            "r##\"never closed\"#",
            "/* never closed",
            "'",
            "b'",
            "let × = 3£;",
            "\u{0}\u{1}",
        ] {
            let toks = lex(src);
            assert!(!toks.is_empty() || src.trim().is_empty());
            assert_roundtrip(src);
        }
    }

    #[test]
    fn roundtrip_corpus() {
        for src in [
            "",
            "   \n\t ",
            "fn main() { println!(\"hi\"); }",
            "let c = '\"'; let s = \"'\"; // tricky\n",
            "/* /* */ \"not a string\" */ real()",
            "r###\"raw \"## with hashes\"### + b\"bytes\"",
            "impl<'a> Foo<'a> { fn f(&'a self) -> &'a str { self.s } }",
            "let x = 1.0e-3f64 + 0x_ff as f64;",
            "#[cfg(test)]\nmod tests { #[test]\nfn t() {} }",
        ] {
            assert_roundtrip(src);
        }
    }
}
