//! ros-lint — token-level static analysis for the RoS workspace.
//!
//! The pipeline's correctness story (bit-identical parallelism, typed
//! degradation, fixed-order telemetry) is guarded by conventions that
//! `rustc` cannot see. This crate is the gate that enforces them: a
//! dependency-free analyzer that lexes every workspace source file
//! into a real token stream ([`lexer`]), recovers the item structure
//! lint rules need ([`scan`]), and runs a catalog of rules with stable
//! IDs ([`rules::RULES`]) — including cross-crate rules the old
//! line-oriented scanner structurally could not express (`dead-pub`'s
//! reference graph, `obs-names`' reconciliation against
//! `ros_obs::names::ALL`).
//!
//! Findings are judged against a checked-in baseline
//! (`lint-baseline.json`, see [`baseline`]): grandfathered debt is
//! tracked, anything new fails the gate. [`engine::run_gate`] is the
//! whole entry point; `cargo run -p xtask -- lint` is the thin driver
//! around it:
//!
//! ```text
//! cargo run -p xtask -- lint                      # gate (human report)
//! cargo run -p xtask -- lint --json target/lint.json
//! cargo run -p xtask -- lint --update-baseline    # re-grandfather
//! ```
//!
//! The crate never prints and never exits — it returns strings and
//! verdicts, which keeps it honest under its own `no-println` rule.

pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod lockgraph;
pub mod report;
pub mod rules;
pub mod scan;
pub mod syntax;

pub use engine::{run_gate, FileAnalysis, FileRole, GateOptions, GateOutcome};
pub use rules::{Finding, RuleInfo, Severity, RULES};
