//! The lock/channel graph: which locks each fn may acquire, and what
//! happens while a guard is live.
//!
//! This pass sits on top of [`crate::callgraph`] (node set, name
//! resolution) and [`crate::syntax`] (brace tree, call sites) and
//! recovers, per library fn:
//!
//! * **acquisition sites** — zero-argument `.lock()` / `.read()` /
//!   `.write()` method calls (the zero-arg shape is what separates
//!   `RwLock::read()` from `io::Read::read(&mut buf)`);
//! * **guard liveness** — `let [mut] g = <recv>.lock()<poison-adaptors>;`
//!   binds a guard that lives to the close of its innermost enclosing
//!   brace (ended early by `drop(g)`); any other acquisition shape is a
//!   temporary whose guard dies at the end of the statement;
//! * **blocking operations** — channel `.send(…)` / `.recv(…)` and
//!   `Condvar::.wait(g)` method calls, treated as pseudo-locks;
//! * **may-lock sets** — the transitive closure of acquisitions over
//!   the call graph, with a [`UBIQUITOUS_CALLEES`] denylist so that a
//!   `.clone()` or `.len()` call does not link every caller to the one
//!   workspace impl of that name that happens to take a lock.
//!
//! Lock identity is canonicalized to `{crate}:{root}` where the root is
//! the impl owner for `self`-rooted receiver chains (so a wrapper like
//! `GeomCache::lock` calling `self.inner.lock()` and its callers'
//! `self.lock()` name the *same* lock) and the receiver ident nearest
//! the call otherwise (`SINK.lock()` → `SINK`, statics and locals).
//!
//! Known approximations, by design (each costs a marker, never a missed
//! class of bug): closure bodies are analyzed in the fn that spells
//! them, so a guard held by `with_sink` is invisible to a closure
//! *passed into* it from another fn; guard-returning wrappers not named
//! `lock`/`read`/`write` do not start a tracked guard at their call
//! sites; `Condvar::wait` on a transitive path is not a pseudo-lock
//! (only direct `.wait(` sites are checked). Everything here is total
//! over malformed input — unclosed braces degrade to end-of-file scopes.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, Resolver};
use crate::engine::FileAnalysis;
use crate::lexer::TokenKind;
use crate::syntax::{brace_tree, calls_in, BraceNode, CodeView};

/// Zero-argument guard-producing method names.
pub const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Blocking channel/condvar operation names (pseudo-locks).
pub const BLOCKING_METHODS: &[&str] = &["send", "recv", "wait"];

/// Method/fn names excluded from transitive lock resolution: trait and
/// std-idiom names so common that the by-name over-approximation would
/// otherwise link every `.clone()` to the one workspace `Clone` impl
/// that takes a lock. Direct acquisitions and blocking ops are *not*
/// filtered — the denylist only gates call-graph propagation.
pub const UBIQUITOUS_CALLEES: &[&str] = &[
    "all", "and_then", "any", "as_mut", "as_ref", "borrow", "borrow_mut", "clear", "clone",
    "cmp", "collect", "contains", "contains_key", "default", "deref", "deref_mut", "drain",
    "drop", "eq", "expect", "extend", "filter", "find", "flush", "fmt", "fold", "for_each",
    "from", "get", "get_mut", "hash", "index", "index_mut", "insert", "into", "into_iter",
    "is_empty", "is_finite", "is_nan", "iter",
    "iter_mut", "join", "len", "lock", "map", "map_err", "max", "min", "ne", "new", "next",
    "ok_or", "ok_or_else", "parse", "partial_cmp", "pop", "pop_front", "position", "push",
    "push_back", "push_str", "read", "recv", "remove", "replace", "retain", "send", "sort",
    "sort_by", "sort_unstable", "split", "take", "to_owned", "to_string", "to_vec", "trim",
    "try_from", "try_into", "unwrap", "unwrap_or", "unwrap_or_else", "wait", "write",
];

/// A guard live at some event point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Held {
    /// Canonical lock id (`{crate}:{root}`).
    pub lock: String,
    /// Binding name, for `let`-bound guards (`None`: temporary).
    pub guard: Option<String>,
}

/// One direct acquisition, with the guards already live at that point.
#[derive(Clone, Debug)]
pub struct AcquireUnder {
    /// Canonical id of the lock being acquired.
    pub lock: String,
    /// 1-based line of the acquisition method name.
    pub line: usize,
    /// Guards live at the acquisition (source order; possibly empty).
    pub held: Vec<Held>,
}

/// One blocking channel/condvar op, with the guards live at that point.
#[derive(Clone, Debug)]
pub struct BlockingUnder {
    /// `send` / `recv` / `wait`.
    pub op: String,
    /// Receiver ident nearest the call (`tx` in `self.tx.send(…)`).
    pub recv_name: String,
    /// For `wait`: the single-ident argument, when the arg is one — the
    /// guard being atomically released, which is exempt from the
    /// blocking-under-lock check.
    pub wait_arg: Option<String>,
    /// 1-based line of the op method name.
    pub line: usize,
    /// Guards live at the op (source order; possibly empty).
    pub held: Vec<Held>,
}

/// A resolved, non-denylisted call made while at least one guard is
/// live.
#[derive(Clone, Debug)]
pub struct CallUnder {
    /// Callee display name (`name` or `qualifier::name`).
    pub callee: String,
    /// Resolved callee node indices (non-empty).
    pub callees: Vec<usize>,
    /// 1-based line of the call.
    pub line: usize,
    /// Guards live at the call (source order; non-empty).
    pub held: Vec<Held>,
}

/// Per-fn lock behaviour (indices parallel `CallGraph::nodes`).
#[derive(Clone, Debug, Default)]
pub struct NodeLocks {
    /// Every direct acquisition in the body.
    pub acquires: Vec<AcquireUnder>,
    /// Every blocking op in the body.
    pub blocking: Vec<BlockingUnder>,
    /// Calls under a live guard that resolve to workspace fns.
    pub calls_under: Vec<CallUnder>,
}

/// The workspace lock graph.
pub struct LockGraph {
    /// Per-node events, parallel to `CallGraph::nodes`.
    pub per_node: Vec<NodeLocks>,
    /// `may_lock[i]` — lock and pseudo-lock ids node `i` may acquire,
    /// directly or through (denylist-filtered) calls.
    pub may_lock: Vec<BTreeSet<String>>,
}

/// One tracked guard inside a body, with its live code-index range.
struct Guard {
    lock: String,
    name: Option<String>,
    /// Code index of the acquisition method name.
    acq_ci: usize,
    /// Exclusive end: the scope-closing `}` (bound) or the statement
    /// end (temporary). An event at `ci` is under this guard iff
    /// `acq_ci < ci && ci < end`.
    end: usize,
}

/// Builds the lock graph for the library nodes of `graph`.
pub fn build(files: &[FileAnalysis], graph: &CallGraph) -> LockGraph {
    let resolver = Resolver::new(&graph.nodes);
    let n = graph.nodes.len();
    let mut per_node: Vec<NodeLocks> = Vec::with_capacity(n);
    let mut direct: Vec<BTreeSet<String>> = Vec::with_capacity(n);
    let mut lock_edges: Vec<Vec<usize>> = Vec::with_capacity(n);

    let mut cur_file = usize::MAX;
    let mut cached: Option<(CodeView, Vec<BraceNode>)> = None;
    for node_i in 0..n {
        let node = &graph.nodes[node_i];
        if node.file != cur_file {
            cur_file = node.file;
            let view = CodeView::new(&files[node.file]);
            let tree = brace_tree(&view);
            cached = Some((view, tree));
        }
        let analyzed = match (&cached, node.body) {
            (Some((view, tree)), Some(body)) => {
                analyze_body(view, tree, body, node.owner.as_deref(), &resolver)
            }
            _ => (NodeLocks::default(), BTreeSet::new(), Vec::new()),
        };
        let (nl, dl, le) = analyzed;
        per_node.push(nl);
        direct.push(dl);
        lock_edges.push(le);
    }

    // May-lock fixpoint: propagate each node's set to its callers
    // until nothing changes (sets only grow, so this terminates).
    let mut may = direct;
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, es) in lock_edges.iter().enumerate() {
        for &j in es {
            callers[j].push(i);
        }
    }
    let mut work: Vec<usize> = (0..n).collect();
    while let Some(j) = work.pop() {
        if may[j].is_empty() {
            continue;
        }
        let add: Vec<String> = may[j].iter().cloned().collect();
        for ci in 0..callers[j].len() {
            let i = callers[j][ci];
            let before = may[i].len();
            may[i].extend(add.iter().cloned());
            if may[i].len() != before && !work.contains(&i) {
                work.push(i);
            }
        }
    }

    LockGraph { per_node, may_lock: may }
}

/// Analyzes one fn body: events, direct (pseudo-)locks, and the
/// denylist-filtered call edges used for may-lock propagation.
fn analyze_body(
    view: &CodeView<'_>,
    tree: &[BraceNode],
    body: (usize, usize),
    owner: Option<&str>,
    resolver: &Resolver<'_>,
) -> (NodeLocks, BTreeSet<String>, Vec<usize>) {
    let (bs, be) = body;
    let (cs, ce) = (view.ci_at_or_after(bs), view.ci_at_or_after(be));
    let crate_name = view.fa.crate_name.as_str();

    // Pass 1: guards (direct acquisitions with live ranges).
    let mut guards: Vec<Guard> = Vec::new();
    for ci in cs..ce.min(view.len()) {
        if !is_acquisition(view, ci) {
            continue;
        }
        let (has_self, nearest) = receiver_chain(view, ci);
        let root = match (has_self, owner) {
            (true, Some(o)) => o.to_string(),
            _ => nearest,
        };
        let lock = format!("{crate_name}:{root}");
        let (name, end) = match bound_guard_name(view, ci, cs) {
            Some(name) => (Some(name), scope_close(tree, ci, ce)),
            None => (None, stmt_end(view, ci, ce)),
        };
        guards.push(Guard { lock, name, acq_ci: ci, end });
    }
    // `drop(g)` ends a bound guard early.
    for ci in cs..ce.min(view.len()) {
        if view.is_ident(ci, "drop")
            && !(ci > 0 && view.is_punct(ci - 1, "."))
            && view.is_punct(ci + 1, "(")
            && view.kind(ci + 2) == Some(TokenKind::Ident)
            && view.is_punct(ci + 3, ")")
        {
            let dropped = view.text(ci + 2).to_string();
            for g in &mut guards {
                if g.name.as_deref() == Some(dropped.as_str()) && g.acq_ci < ci && ci < g.end {
                    g.end = ci;
                }
            }
        }
    }
    let held_at = |ci: usize| -> Vec<Held> {
        guards
            .iter()
            .filter(|g| g.acq_ci < ci && ci < g.end)
            .map(|g| Held { lock: g.lock.clone(), guard: g.name.clone() })
            .collect()
    };

    // Pass 2: events.
    let mut nl = NodeLocks::default();
    let mut direct: BTreeSet<String> = BTreeSet::new();
    let mut lock_edges: Vec<usize> = Vec::new();
    for g in &guards {
        direct.insert(g.lock.clone());
        nl.acquires.push(AcquireUnder {
            lock: g.lock.clone(),
            line: view.line(g.acq_ci),
            held: held_at(g.acq_ci),
        });
    }
    for call in calls_in(view, cs, ce) {
        if call.method && BLOCKING_METHODS.contains(&call.name.as_str()) {
            let (_, nearest) = receiver_chain(view, call.ci);
            let wait_arg = if call.name == "wait"
                && view.kind(call.ci + 2) == Some(TokenKind::Ident)
                && view.is_punct(call.ci + 3, ")")
            {
                Some(view.text(call.ci + 2).to_string())
            } else {
                None
            };
            // Channel ops are pseudo-locks for propagation; a condvar
            // wait blocks on the lock its guard argument already names.
            if call.name != "wait" {
                direct.insert(format!("{crate_name}:{nearest}"));
            }
            nl.blocking.push(BlockingUnder {
                op: call.name.clone(),
                recv_name: nearest,
                wait_arg,
                line: call.line,
                held: held_at(call.ci),
            });
            continue;
        }
        if UBIQUITOUS_CALLEES.contains(&call.name.as_str()) {
            continue;
        }
        let callees = resolver.resolve(&call);
        if callees.is_empty() {
            continue;
        }
        lock_edges.extend_from_slice(callees);
        let held = held_at(call.ci);
        if held.is_empty() {
            continue;
        }
        let display = match &call.qualifier {
            Some(q) => format!("{q}::{}", call.name),
            None => call.name.clone(),
        };
        nl.calls_under.push(CallUnder {
            callee: display,
            callees: callees.to_vec(),
            line: call.line,
            held,
        });
    }
    lock_edges.sort_unstable();
    lock_edges.dedup();
    (nl, direct, lock_edges)
}

/// True when `ci` heads a zero-argument lock-method call: `.lock()`,
/// `.read()`, `.write()`.
fn is_acquisition(view: &CodeView<'_>, ci: usize) -> bool {
    ci > 0
        && view.is_punct(ci - 1, ".")
        && view.ident_in(ci, LOCK_METHODS)
        && view.is_punct(ci + 1, "(")
        && view.is_punct(ci + 2, ")")
}

/// Walks the receiver chain of the method call at `ci` backward
/// (`a.b.c().d` shapes, path segments included) and reports whether it
/// is rooted at `self` plus the ident nearest the call — the lock's
/// display root for non-`self` chains.
fn receiver_chain(view: &CodeView<'_>, ci: usize) -> (bool, String) {
    let mut nearest: Option<String> = None;
    let mut has_self = false;
    let mut j = ci.checked_sub(2); // token before the `.`
    while let Some(ju) = j {
        if view.is_punct(ju, ")") {
            // A call group (`stderr()`): skip back to its `(`, then
            // continue with the callee ident before it. Scanning
            // starts on a `)`, so depth is ≥ 1 at every `(` test.
            let mut depth: usize = 0;
            let mut k = ju;
            loop {
                if view.is_punct(k, ")") {
                    depth += 1;
                } else if view.is_punct(k, "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                match k.checked_sub(1) {
                    Some(p) => k = p,
                    None => break,
                }
            }
            j = k.checked_sub(1);
            continue;
        }
        match view.kind(ju) {
            Some(TokenKind::Ident | TokenKind::RawIdent) => {
                let t = view.text(ju).trim_start_matches("r#");
                if t == "self" {
                    has_self = true;
                } else if nearest.is_none() {
                    nearest = Some(t.to_string());
                }
                match ju.checked_sub(1) {
                    Some(p) if view.is_punct(p, ".") || view.is_punct(p, "::") => {
                        j = p.checked_sub(1);
                    }
                    _ => break,
                }
            }
            _ => break,
        }
    }
    let root = match nearest {
        Some(r) => r,
        None if has_self => "self".to_string(),
        None => "<expr>".to_string(),
    };
    (has_self, root)
}

/// Adaptors that may trail a lock call in a guard binding without
/// un-guarding it (poison handling).
const POISON_ADAPTORS: &[&str] = &["unwrap_or_else", "unwrap", "expect"];

/// When the acquisition at `acq_ci` is the `let [mut] name = …` form —
/// receiver chain preceded by `=`, `name`, optional `mut`, `let`, and
/// only poison adaptors between the `()` and the `;` — returns the
/// bound guard's name.
fn bound_guard_name(view: &CodeView<'_>, acq_ci: usize, body_start: usize) -> Option<String> {
    // Backward: find the leftmost token of the receiver chain.
    let mut root = acq_ci.checked_sub(2)?;
    loop {
        if view.is_punct(root, ")") {
            // Walk the call group back to its `(` and past the callee.
            let mut depth: isize = 0;
            let mut k = root;
            loop {
                if view.is_punct(k, ")") {
                    depth += 1;
                } else if view.is_punct(k, "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            root = k.checked_sub(1)?;
            continue;
        }
        if !matches!(view.kind(root), Some(TokenKind::Ident | TokenKind::RawIdent)) {
            return None;
        }
        match root.checked_sub(1) {
            Some(p) if view.is_punct(p, ".") || view.is_punct(p, "::") => {
                root = p.checked_sub(1)?;
            }
            _ => break,
        }
    }
    if root <= body_start {
        return None;
    }
    let eq = root.checked_sub(1)?;
    if !view.is_punct(eq, "=") {
        return None;
    }
    let name_ci = eq.checked_sub(1)?;
    if view.kind(name_ci) != Some(TokenKind::Ident) {
        return None;
    }
    let name = view.text(name_ci);
    if name == "mut" {
        return None;
    }
    let let_ci = name_ci.checked_sub(1)?;
    let let_ci = if view.is_ident(let_ci, "mut") { let_ci.checked_sub(1)? } else { let_ci };
    if !view.is_ident(let_ci, "let") {
        return None;
    }
    // Forward: past `()`, only poison adaptors until `;`.
    let mut j = acq_ci + 3;
    loop {
        if view.is_punct(j, ";") {
            return Some(name.to_string());
        }
        if view.is_punct(j, ".") && view.ident_in(j + 1, POISON_ADAPTORS) && view.is_punct(j + 2, "(")
        {
            let mut depth: isize = 0;
            let mut k = j + 2;
            while k < view.len() {
                if view.is_punct(k, "(") {
                    depth += 1;
                } else if view.is_punct(k, ")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        return None;
    }
}

/// Code index of the statement end after `from`: the `;` at relative
/// depth 0, or the delimiter closing the enclosing group (expression
/// tails). Exclusive event bound for temporary guards.
fn stmt_end(view: &CodeView<'_>, from: usize, body_end: usize) -> usize {
    let mut depth: isize = 0;
    let mut j = from;
    let end = body_end.min(view.len());
    while j < end {
        if view.kind(j) == Some(TokenKind::Punct) {
            match view.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                ";" if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    end
}

/// Close index of the innermost brace group containing `ci`
/// (`default` when none contains it).
fn scope_close(tree: &[BraceNode], ci: usize, default: usize) -> usize {
    let mut best = default;
    let mut nodes = tree;
    loop {
        let Some(n) = nodes.iter().find(|n| n.open < ci && ci < n.close) else {
            return best;
        };
        best = n.close;
        nodes = &n.children;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::engine::{FileAnalysis, FileRole};

    fn fa(rel: &str, src: &str) -> FileAnalysis {
        let crate_name = rel.split('/').nth(1).unwrap_or("x").to_string();
        FileAnalysis::new(rel.to_string(), crate_name, FileRole::Library, src.to_string())
    }

    fn graph_and_locks(files: &[FileAnalysis]) -> (callgraph::CallGraph, LockGraph) {
        let g = callgraph::build(files);
        let lg = build(files, &g);
        (g, lg)
    }

    fn node_idx(g: &callgraph::CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node `{name}`"))
    }

    #[test]
    fn bound_guard_lives_to_scope_close_and_drop_ends_it() {
        let src = "\
pub fn f(a: M, b: M) {
    let g = a.lock().unwrap_or_else(|p| p.into_inner());
    helper();
    drop(g);
    helper();
}
pub fn helper() {}
";
        let files = [fa("crates/ros-cache/src/s.rs", src)];
        let (g, lg) = graph_and_locks(&files);
        let i = node_idx(&g, "f");
        let cu = &lg.per_node[i].calls_under;
        assert_eq!(cu.len(), 1, "only the pre-drop call is under the guard: {cu:?}");
        assert_eq!(cu[0].callee, "helper");
        assert_eq!(cu[0].held, vec![Held { lock: "ros-cache:a".into(), guard: Some("g".into()) }]);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "\
pub fn f(a: M) {
    a.lock().unwrap_or_else(|p| p.into_inner()).cleanup();
    helper();
}
pub fn helper() {}
pub struct M;
impl M { pub fn cleanup(&self) {} }
";
        let files = [fa("crates/ros-cache/src/s.rs", src)];
        let (g, lg) = graph_and_locks(&files);
        let i = node_idx(&g, "f");
        let names: Vec<&str> = lg.per_node[i].calls_under.iter().map(|c| c.callee.as_str()).collect();
        // `cleanup` is called inside the acquiring statement, so the
        // temporary guard covers it; `helper` after the `;` is clear.
        assert_eq!(names, ["cleanup"], "{:?}", lg.per_node[i].calls_under);
    }

    #[test]
    fn self_rooted_chains_canonicalize_to_the_impl_owner() {
        let src = "\
pub struct Store { inner: usize }
impl Store {
    pub fn lock(&self) -> usize { self.inner.lock().unwrap_or_else(|p| p.into_inner()) }
    pub fn len(&self) -> usize { self.lock() }
}
";
        let files = [fa("crates/ros-cache/src/s.rs", src)];
        let (g, lg) = graph_and_locks(&files);
        let i = node_idx(&g, "lock");
        assert_eq!(lg.per_node[i].acquires.len(), 1);
        assert_eq!(lg.per_node[i].acquires[0].lock, "ros-cache:Store");
        let j = node_idx(&g, "len");
        assert_eq!(lg.per_node[j].acquires[0].lock, "ros-cache:Store", "wrapper and field agree");
    }

    #[test]
    fn may_lock_propagates_through_calls_but_not_denylisted_names() {
        let src = "\
pub fn outer() { mid(); }
pub fn mid() { take_lock(); }
pub fn take_lock() { let g = STATE.lock().unwrap_or_else(|p| p.into_inner()); }
pub struct W;
impl W {
    pub fn clone(&self) -> W { let g = STATE.lock().unwrap_or_else(|p| p.into_inner()); W }
}
pub fn uses_clone(w: &W) { let c = w.clone(); }
";
        let files = [fa("crates/ros-exec/src/s.rs", src)];
        let (g, lg) = graph_and_locks(&files);
        let outer = node_idx(&g, "outer");
        assert!(lg.may_lock[outer].contains("ros-exec:STATE"), "{:?}", lg.may_lock[outer]);
        let uses = node_idx(&g, "uses_clone");
        assert!(lg.may_lock[uses].is_empty(), "`.clone()` must not propagate: {:?}", lg.may_lock[uses]);
    }

    #[test]
    fn blocking_ops_record_held_guards_and_wait_arg() {
        let src = "\
pub fn f(a: M, tx: Tx, cv: Cv) {
    let st = a.lock().unwrap_or_else(|p| p.into_inner());
    tx.send(1);
    let st2 = cv.wait(st);
}
";
        let files = [fa("crates/ros-exec/src/s.rs", src)];
        let (g, lg) = graph_and_locks(&files);
        let i = node_idx(&g, "f");
        let b = &lg.per_node[i].blocking;
        assert_eq!(b.len(), 2, "{b:?}");
        assert_eq!((b[0].op.as_str(), b[0].recv_name.as_str()), ("send", "tx"));
        assert_eq!(b[0].held.len(), 1);
        assert_eq!(b[1].op, "wait");
        assert_eq!(b[1].wait_arg.as_deref(), Some("st"));
        // send/recv are pseudo-locks; wait is not.
        let i_direct = &lg.may_lock[i];
        assert!(i_direct.contains("ros-exec:tx"));
        assert!(!i_direct.contains("ros-exec:cv"));
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let src = "\
pub fn f(file: F, buf: &mut [u8]) {
    file.read(buf);
    file.write(buf);
    helper();
}
pub fn helper() {}
";
        let files = [fa("crates/ros-cache/src/s.rs", src)];
        let (g, lg) = graph_and_locks(&files);
        let i = node_idx(&g, "f");
        assert!(lg.per_node[i].acquires.is_empty());
        assert!(lg.per_node[i].calls_under.is_empty());
    }

    #[test]
    fn malformed_input_degrades_without_panicking() {
        let src = "pub fn f() { let g = a.lock(\n"; // unclosed everything
        let files = [fa("crates/ros-cache/src/s.rs", src)];
        let (_, lg) = graph_and_locks(&files);
        assert_eq!(lg.per_node.len(), lg.may_lock.len());
    }
}
