//! Report rendering: the human console report and the `--json`
//! machine artifact. Pure string builders — the driver decides where
//! they go.

use std::collections::BTreeMap;

use crate::baseline::Judged;
use crate::engine::PassTimings;
use crate::json;
use crate::rules::RULES;

/// Per-rule tallies of one run.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    found: usize,
    baselined: usize,
}

fn tallies(judged: &Judged) -> BTreeMap<&'static str, Tally> {
    let mut map: BTreeMap<&'static str, Tally> = BTreeMap::new();
    for r in RULES {
        map.insert(r.id, Tally::default());
    }
    for jf in &judged.findings {
        let t = map.entry(jf.finding.rule).or_default();
        t.found += 1;
        if jf.baselined {
            t.baselined += 1;
        }
    }
    map
}

/// Renders the human console report: new findings in full, baselined
/// debt and stale entries summarized, then the per-rule table and the
/// verdict line.
pub fn human_report(judged: &Judged, n_files: usize) -> String {
    let mut s = String::new();
    for jf in judged.findings.iter().filter(|f| !f.baselined) {
        let f = &jf.finding;
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }

    let map = tallies(judged);
    let any_found = map.values().any(|t| t.found > 0);
    if any_found {
        s.push_str(&format!(
            "\n{:<20} {:>6} {:>10} {:>6}\n",
            "rule", "found", "baselined", "new"
        ));
        for r in RULES {
            let t = map.get(r.id).copied().unwrap_or_default();
            if t.found == 0 {
                continue;
            }
            s.push_str(&format!(
                "{:<20} {:>6} {:>10} {:>6}\n",
                r.id,
                t.found,
                t.baselined,
                t.found - t.baselined
            ));
        }
    }

    if !judged.stale.is_empty() {
        s.push_str(&format!(
            "\nnote: {} stale baseline entr{} (debt repaid); run \
             `cargo run -p xtask -- lint --update-baseline` to re-tighten:\n",
            judged.stale.len(),
            if judged.stale.len() == 1 { "y" } else { "ies" }
        ));
        for (rule, file, _msg, n) in &judged.stale {
            s.push_str(&format!("  {file}: [{rule}] x{n}\n"));
        }
    }

    let new = judged.new_count();
    let baselined = judged.baselined_count();
    if new == 0 {
        s.push_str(&format!(
            "\nros-lint: {n_files} files clean ({baselined} baselined finding(s) tracked)\n"
        ));
    } else {
        s.push_str(&format!(
            "\nros-lint: {new} new violation(s) in {n_files} files scanned \
             ({baselined} baselined)\n"
        ));
    }
    s
}

/// Renders the machine-readable findings artifact. `timings` lands as
/// a flat nanosecond object — verify.sh reads `total_ns` to fail on
/// analyzer-runtime regressions (all zeros without an injected clock).
pub fn json_report(judged: &Judged, n_files: usize, timings: &PassTimings) -> String {
    let map = tallies(judged);
    let mut s = String::from("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!("  \"files_scanned\": {n_files},\n"));
    s.push_str(&format!("  \"clean\": {},\n", judged.new_count() == 0));
    s.push_str(&format!(
        "  \"timings\": {{\"lex_ns\": {}, \"scan_ns\": {}, \"callgraph_ns\": {}, \
         \"lockgraph_ns\": {}, \"rules_ns\": {}, \"total_ns\": {}}},\n",
        timings.lex_ns,
        timings.scan_ns,
        timings.callgraph_ns,
        timings.lockgraph_ns,
        timings.rules_ns,
        timings.total_ns
    ));
    s.push_str("  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        let t = map.get(r.id).copied().unwrap_or_default();
        let comma = if i + 1 < RULES.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"severity\": \"{}\", \"summary\": \"{}\", \
             \"found\": {}, \"baselined\": {}, \"new\": {}}}{comma}\n",
            r.id,
            r.severity.as_str(),
            json::escape(r.summary),
            t.found,
            t.baselined,
            t.found - t.baselined
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"findings\": [\n");
    let total = judged.findings.len();
    for (i, jf) in judged.findings.iter().enumerate() {
        let f = &jf.finding;
        let comma = if i + 1 < total { "," } else { "" };
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"baselined\": {}, \"message\": \"{}\"}}{comma}\n",
            f.rule,
            f.severity.as_str(),
            json::escape(&f.file),
            f.line,
            jf.baselined,
            json::escape(&f.message)
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"stale_baseline\": [\n");
    let total = judged.stale.len();
    for (i, (rule, file, message, n)) in judged.stale.iter().enumerate() {
        let comma = if i + 1 < total { "," } else { "" };
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {n}, \"message\": \"{}\"}}{comma}\n",
            json::escape(rule),
            json::escape(file),
            json::escape(message)
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Severity};

    fn judged() -> Judged {
        let mk = |rule: &'static str, file: &str, line: usize, msg: &str, baselined: bool| {
            crate::baseline::JudgedFinding {
                finding: Finding {
                    rule,
                    severity: Severity::Error,
                    file: file.to_string(),
                    line,
                    message: msg.to_string(),
                },
                baselined,
            }
        };
        Judged {
            findings: vec![
                mk("no-unwrap", "crates/a/src/x.rs", 3, "`.unwrap()` in library code", false),
                mk("float-eq", "crates/b/src/y.rs", 9, "`==` on floats", true),
            ],
            stale: vec![(
                "no-panic".to_string(),
                "crates/c/src/z.rs".to_string(),
                "panic! in library code".to_string(),
                2,
            )],
        }
    }

    #[test]
    fn human_report_shows_new_debt_and_verdict() {
        let r = human_report(&judged(), 42);
        assert!(r.contains("crates/a/src/x.rs:3: [no-unwrap]"));
        // Baselined findings are tallied, not listed line-by-line.
        assert!(!r.contains("crates/b/src/y.rs:9:"));
        assert!(r.contains("stale baseline"));
        assert!(r.contains("1 new violation(s) in 42 files"));

        let clean = Judged {
            findings: vec![],
            stale: vec![],
        };
        let r = human_report(&clean, 7);
        assert!(r.contains("7 files clean"));
    }

    #[test]
    fn json_report_round_trips_through_own_parser() {
        let timings = PassTimings {
            lex_ns: 10,
            scan_ns: 20,
            callgraph_ns: 30,
            lockgraph_ns: 40,
            rules_ns: 50,
            total_ns: 160,
        };
        let s = json_report(&judged(), 42, &timings);
        let v = crate::json::parse(&s).expect("self-produced JSON must parse");
        assert_eq!(v.get("version").and_then(|x| x.as_f64()), Some(1.0));
        assert_eq!(v.get("files_scanned").and_then(|x| x.as_f64()), Some(42.0));
        let t = v.get("timings").expect("timings object");
        assert_eq!(t.get("lockgraph_ns").and_then(|x| x.as_f64()), Some(40.0));
        assert_eq!(t.get("total_ns").and_then(|x| x.as_f64()), Some(160.0));
        assert_eq!(v.get("clean"), Some(&crate::json::Value::Bool(false)));
        let rules = v.get("rules").and_then(|x| x.as_arr()).expect("rules");
        assert_eq!(rules.len(), RULES.len());
        let findings = v.get("findings").and_then(|x| x.as_arr()).expect("findings");
        assert_eq!(findings.len(), 2);
        let f0 = &findings[0];
        assert_eq!(f0.get("rule").and_then(|x| x.as_str()), Some("no-unwrap"));
        assert_eq!(f0.get("baselined"), Some(&crate::json::Value::Bool(false)));
        let stale = v.get("stale_baseline").and_then(|x| x.as_arr()).expect("stale");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].get("count").and_then(|x| x.as_f64()), Some(2.0));
    }
}
