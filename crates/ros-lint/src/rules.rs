//! The rule engine: stable rule IDs, severities, and the checks.
//!
//! Two rule shapes exist. *Per-file* rules see one analyzed file at a
//! time (`no-unwrap` … `doc-pub`). *Workspace* rules see every file at
//! once (`dead-pub` builds a cross-crate reference graph; `obs-names`
//! reconciles instrumentation sites against `ros_obs::names::ALL`).
//! All rules work on the token stream from [`crate::lexer`] — string
//! literals, comments, and `#[cfg(test)]` regions can no longer fool
//! them the way they fooled the old line scanner.
//!
//! Rule IDs are stable: they key the baseline file and the JSON
//! artifact, so renaming one invalidates grandfathered debt.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::callgraph;
use crate::engine::{leading_inner_docs, FileAnalysis, FileRole};
use crate::lexer::TokenKind;
use crate::lockgraph;
use crate::scan::{Item, ItemKind, Visibility};
use crate::syntax::{self, CodeView as View};

/// How bad a finding is. Every current rule is an [`Severity::Error`]
/// (the gate fails on any non-baselined finding); the distinction is
/// carried through the JSON schema for forward compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate unless baselined.
    Error,
    /// Reported, never fatal.
    Warning,
}

impl Severity {
    /// Stable lowercase name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Static description of one rule.
pub struct RuleInfo {
    /// Stable identifier (baseline key, JSON field, report tag).
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary for reports and docs.
    pub summary: &'static str,
    /// Why the rule exists — which workspace invariant it guards
    /// (`xtask lint --explain` prints this).
    pub rationale: &'static str,
    /// How to fix a finding (including the marker escape, if any).
    pub fix: &'static str,
}

/// The rule catalog, in report order. Seven rules migrated from the
/// old line scanner, four that need the token stream, three built on
/// the semantic layer ([`crate::syntax`] / [`crate::callgraph`]).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-unwrap",
        severity: Severity::Error,
        summary: ".unwrap()/.expect() forbidden outside #[cfg(test)]",
        rationale: "The pipeline degrades faulted input into typed verdicts; a stray \
                    unwrap turns a recoverable fault into a process abort.",
        fix: "Return a Result, handle the None case, or move the code into a \
              #[cfg(test)] region.",
    },
    RuleInfo {
        id: "no-panic",
        severity: Severity::Error,
        summary: "panic!/todo!/unimplemented!/unreachable! forbidden in library crates",
        rationale: "Same degradation contract as no-unwrap: library code must surface \
                    errors as values so the fault-injection matrix can exercise them.",
        fix: "Return a typed error; mark a provably dead arm with \
              `lint: allow-panic(reason)`.",
    },
    RuleInfo {
        id: "no-println",
        severity: Severity::Error,
        summary: "println!-family output forbidden in library crates (use ros-obs)",
        rationale: "Terminal output from library code bypasses the levelled, \
                    machine-readable ros-obs telemetry channel and corrupts bench \
                    table output.",
        fix: "Emit a ros_obs event/metric, or return the data to the caller.",
    },
    RuleInfo {
        id: "no-raw-spawn",
        severity: Severity::Error,
        summary: "thread::spawn/scope/Builder forbidden outside ros-exec",
        rationale: "Bit-identical parallelism holds because every fan-out goes through \
                    ros_exec::par_map, which owns the thread-count override and the \
                    deterministic merge order.",
        fix: "Fan out through ros_exec::par_map (or add the primitive to ros-exec).",
    },
    RuleInfo {
        id: "no-raw-cast",
        severity: Severity::Error,
        summary: "bare `as` numeric casts forbidden in library crates",
        rationale: "`as` silently truncates and saturates; the unit-audit arc moved \
                    every numeric conversion to checked or documented-exact forms.",
        fix: "Use ros_em::units::cast or try_from, or mark the line with \
              `lint: allow-cast(reason)`.",
    },
    RuleInfo {
        id: "typed-conversions",
        severity: Severity::Error,
        summary: "inline dB/angle conversion idioms forbidden outside ros_em::units",
        rationale: "Sign/factor errors in hand-rolled dB and angle math caused real \
                    regressions; one audited module owns the formulas.",
        fix: "Go through ros_em::units (Degrees/Radians, DbPower/DbAmplitude) or \
              ros_em::db.",
    },
    RuleInfo {
        id: "typed-db-params",
        severity: Severity::Error,
        summary: "public fns must not take bare f64 *_db/*_deg parameters",
        rationale: "A bare f64 named `gain_db` invites callers to pass linear gain; \
                    the typed wrappers make the unit part of the signature.",
        fix: "Take ros_em::units::Db / Degrees instead of f64.",
    },
    RuleInfo {
        id: "float-eq",
        severity: Severity::Error,
        summary: "==/!= on floating-point operands outside tests/approx helpers",
        rationale: "Exact float comparison is almost always a tolerance bug; the \
                    blessed approx helpers spell the tolerance out.",
        fix: "Compare magnitudes with a tolerance, restructure the guard, or mark an \
              exact-representation check with `lint: allow-float-eq(reason)`.",
    },
    RuleInfo {
        id: "doc-pub",
        severity: Severity::Error,
        summary: "every pub item in a library crate carries a doc comment",
        rationale: "The crates document their physics and contracts at the API \
                    boundary; an undocumented pub item is unreviewable surface.",
        fix: "Document the contract, or hide the item (pub(crate) / private).",
    },
    RuleInfo {
        id: "dead-pub",
        severity: Severity::Error,
        summary: "pub library items must be referenced from another crate, tests, or examples",
        rationale: "Unreferenced API surface rots silently — it compiles, is never \
                    exercised, and constrains refactors for no benefit.",
        fix: "Delete it, demote to pub(crate), or mark `lint: allow-dead-pub(reason)` \
              with the keep justification.",
    },
    RuleInfo {
        id: "obs-names",
        severity: Severity::Error,
        summary: "instrumentation names must match ros_obs::names::ALL (both directions)",
        rationale: "The metric export order is fixed by the names table; an \
                    undeclared or stale name silently breaks trace consumers.",
        fix: "Add the metric to ros_obs::names::ALL (or remove the stale entry), \
              keeping kinds consistent.",
    },
    RuleInfo {
        id: "nondet-iter",
        severity: Severity::Error,
        summary: "HashMap/HashSet iteration forbidden in library crates (order is random)",
        rationale: "Hash iteration order changes run to run, so any hash-ordered loop \
                    that reaches a golden trace or accumulation order breaks \
                    bit-identical determinism (the PR 5 cache-temperature incident).",
        fix: "Use BTreeMap/BTreeSet, or collect-and-sort before iterating; mark a \
              provably order-free loop with `lint: allow-nondet-iter(reason)`.",
    },
    RuleInfo {
        id: "no-wallclock",
        severity: Severity::Error,
        summary: "Instant/SystemTime forbidden outside the ros-obs clock boundary",
        rationale: "Wall-clock reads make runs unreproducible; all timing flows \
                    through the injectable monotonic clock in ros_obs::clock so tests \
                    can pin it.",
        fix: "Call ros_obs::clock::now_ns (or take a timestamp parameter); a true \
              process edge may mark `lint: allow-wallclock(reason)`.",
    },
    RuleInfo {
        id: "alloc-in-hot-path",
        severity: Severity::Error,
        summary: "allocation idioms forbidden in fns reachable from `lint: hot-path` entries",
        rationale: "ROADMAP item 2 targets zero allocations per steady-state frame on \
                    the capture→detect→decode path; the call-graph closure from the \
                    annotated entry points is that path, statically.",
        fix: "Hoist the allocation into a constructor/scratch buffer, or mark \
              `lint: allow-alloc(reason)` for setup-only code. Baselined findings \
              are the quantified zero-alloc debt.",
    },
    RuleInfo {
        id: "lock-order",
        severity: Severity::Error,
        summary: "two locks acquired in opposite orders somewhere in the workspace",
        rationale: "Inconsistent acquisition order is the classic deadlock: each \
                    thread holds one lock and waits forever for the other. The \
                    sharded corridor workers share the geometry cache and channels at \
                    production rates, so an ordering bug that never fires under test \
                    load will fire on the road. The lock graph sees both direct \
                    nesting and locks taken inside callees (may-lock closure).",
        fix: "Pick one global acquisition order for the two locks and restructure \
              the deviating path (or release the first guard before taking the \
              second); a reviewed exception may mark \
              `lint: allow-lock-order(reason)`.",
    },
    RuleInfo {
        id: "blocking-under-lock",
        severity: Severity::Error,
        summary: "channel send/recv, Condvar wait, or a transitively-locking call \
                  while a guard from a different lock is live",
        rationale: "A bounded-channel send can block until a consumer drains; doing \
                    that while holding an unrelated guard stalls every thread queued \
                    on that lock — and if the consumer needs the same lock, the \
                    system deadlocks. Guard liveness comes from the brace tree; \
                    `Condvar::wait(g)` is exempt for `g`'s own lock because wait \
                    atomically releases it.",
        fix: "Drop the guard (end its scope or call drop) before the blocking \
              operation, or move the blocking call out of the critical section; a \
              reviewed exception may mark `lint: allow-blocking-under-lock(reason)`.",
    },
    RuleInfo {
        id: "guard-across-hot-call",
        severity: Severity::Error,
        summary: "a live lock guard spans a call into a `lint: hot-path` region",
        rationale: "The hot path is budgeted to run at hardware speed with zero \
                    steady-state allocation; entering it with a lock held serializes \
                    the parallel pipeline behind that lock and inverts the latency \
                    budget (ROADMAP item 2).",
        fix: "Copy what the critical section needs, release the guard, then call \
              into the hot region; setup-only code may mark \
              `lint: allow-guard-across-hot-call(reason)`.",
    },
    RuleInfo {
        id: "stale-suppression",
        severity: Severity::Error,
        summary: "a `lint: allow-*` or `lint: hot-path` marker no longer does anything",
        rationale: "A suppression that outlives its finding is a silent hole: the \
                    next real violation on that line inherits the stale excuse. \
                    Auditing markers keeps the escape hatches as honest as the \
                    baseline (which already fails on stale entries).",
        fix: "Delete the marker, or move it onto the line (or fn, for hot-path) it \
              was meant to annotate. Unknown `allow-<name>` markers are typos: fix \
              the rule name.",
    },
];

/// Looks a rule up by ID.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable rule ID.
    pub rule: &'static str,
    /// Severity (from the catalog).
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation; stable per site class (baseline key part).
    pub message: String,
}

/// The one file allowed to spell out raw dB/angle conversions.
const UNITS_MODULE: &str = "crates/ros-em/src/units.rs";

/// The file declaring the canonical metric name table.
const NAMES_MODULE: &str = "crates/ros-obs/src/names.rs";

/// The injected-clock boundary: the one library file allowed to read
/// the OS clock (`no-wallclock` exempts it).
const CLOCK_MODULE: &str = "crates/ros-obs/src/clock.rs";

/// Numeric primitive types whose `as` casts the cast rule rejects.
const NUMERIC_TYPES: &[&str] = &[
    "f64", "f32", "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8",
];

/// Runs every rule over the analyzed workspace; findings come back
/// sorted by (file, line, rule).
pub fn check_all(files: &[FileAnalysis]) -> Vec<Finding> {
    check_all_timed(files, None).0
}

/// [`check_all`] plus per-pass wall time: `(findings, callgraph_ns,
/// lockgraph_ns, rules_ns)`. The clock is injected by the driver
/// (see `GateOptions::clock`); `None` reports zeros.
pub fn check_all_timed(
    files: &[FileAnalysis],
    clock: Option<fn() -> u64>,
) -> (Vec<Finding>, u64, u64, u64) {
    let now = |c: Option<fn() -> u64>| c.map_or(0, |f| f());
    let t0 = now(clock);
    let graph = callgraph::build(files);
    let t1 = now(clock);
    let lg = lockgraph::build(files, &graph);
    let t2 = now(clock);

    let mut out = Vec::new();
    let mod_docs: HashMap<&str, bool> = files
        .iter()
        .map(|f| (f.rel.as_str(), f.has_module_docs))
        .collect();
    for fa in files.iter().filter(|f| f.role != FileRole::Reference) {
        check_file(fa, &mut out);
        doc_pub(fa, &mod_docs, &mut out);
    }
    dead_pub(files, &mut out);
    obs_names(files, &mut out);
    alloc_in_hot_path(files, &graph, &mut out);
    lock_rules(files, &graph, &lg, &mut out);
    // Must run after every other rule: it audits which markers the
    // probes above actually consumed.
    stale_suppression(files, &mut out);
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    let t3 = now(clock);
    (
        out,
        t1.saturating_sub(t0),
        t2.saturating_sub(t1),
        t3.saturating_sub(t2),
    )
}

fn push(out: &mut Vec<Finding>, id: &'static str, fa: &FileAnalysis, line: usize, message: String) {
    let severity = rule(id).map_or(Severity::Error, |r| r.severity);
    out.push(Finding {
        rule: id,
        severity,
        file: fa.rel.clone(),
        line,
        message,
    });
}

/// Runs the per-file rules over one file. (`doc-pub` additionally
/// needs the workspace module-docs map and runs from [`check_all`];
/// the two cross-crate rules likewise.)
pub fn check_file(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let v = View::new(fa);
    no_unwrap(&v, out);
    no_panic(&v, out);
    no_println(&v, out);
    no_raw_spawn(&v, out);
    no_raw_cast(&v, out);
    typed_conversions(&v, out);
    typed_db_params(fa, out);
    float_eq(&v, out);
    nondet_iter(&v, out);
    no_wallclock(&v, out);
}

fn no_unwrap(v: &View<'_>, out: &mut Vec<Finding>) {
    for ci in 0..v.len() {
        if v.in_test(ci) || !v.is_punct(ci, ".") {
            continue;
        }
        let needle = if v.is_ident(ci + 1, "unwrap") && v.is_punct(ci + 2, "(") {
            ".unwrap()"
        } else if v.is_ident(ci + 1, "expect") && v.is_punct(ci + 2, "(") {
            ".expect("
        } else {
            continue;
        };
        push(
            out,
            "no-unwrap",
            v.fa,
            v.line(ci + 1),
            format!("`{needle}` outside #[cfg(test)]; return a Result or handle the None case"),
        );
    }
}

fn no_panic(v: &View<'_>, out: &mut Vec<Finding>) {
    if !v.fa.is_library() {
        return;
    }
    for ci in 0..v.len() {
        if v.in_test(ci)
            || !v.ident_in(ci, &["panic", "todo", "unimplemented", "unreachable"])
            || !v.is_punct(ci + 1, "!")
        {
            continue;
        }
        let line = v.line(ci);
        if v.fa.has_marker(line, "lint: allow-panic(") {
            continue;
        }
        push(
            out,
            "no-panic",
            v.fa,
            line,
            format!(
                "`{}!` in library code; return a typed error so faulted input degrades \
                 instead of aborting, or mark a provably dead arm with \
                 `lint: allow-panic(reason)`",
                v.text(ci)
            ),
        );
    }
}

fn no_println(v: &View<'_>, out: &mut Vec<Finding>) {
    if !v.fa.is_library() {
        return;
    }
    for ci in 0..v.len() {
        if v.in_test(ci)
            || !v.ident_in(ci, &["println", "eprintln", "print", "eprint"])
            || !v.is_punct(ci + 1, "!")
        {
            continue;
        }
        push(
            out,
            "no-println",
            v.fa,
            v.line(ci),
            format!(
                "`{}!` in library code; emit a ros_obs event/metric (or return the data) \
                 so output is levelled and machine-readable",
                v.text(ci)
            ),
        );
    }
}

fn no_raw_spawn(v: &View<'_>, out: &mut Vec<Finding>) {
    if v.fa.crate_name == "ros-exec" {
        return;
    }
    for ci in 0..v.len() {
        if v.in_test(ci)
            || !v.is_ident(ci, "thread")
            || !v.is_punct(ci + 1, "::")
            || !v.ident_in(ci + 2, &["spawn", "scope", "Builder"])
        {
            continue;
        }
        push(
            out,
            "no-raw-spawn",
            v.fa,
            v.line(ci),
            format!(
                "direct `thread::{}`; fan out through ros_exec::par_map so the \
                 thread-count override and determinism guarantees hold",
                v.text(ci + 2)
            ),
        );
    }
}

fn no_raw_cast(v: &View<'_>, out: &mut Vec<Finding>) {
    if !v.fa.is_library() {
        return;
    }
    for ci in 0..v.len() {
        if v.in_test(ci) || !v.is_ident(ci, "as") {
            continue;
        }
        let ty = v.text(ci + 1);
        if v.kind(ci + 1) != Some(TokenKind::Ident) || !NUMERIC_TYPES.contains(&ty) {
            continue;
        }
        let line = v.line(ci);
        if v.fa.has_marker(line, "lint: allow-cast(") {
            continue;
        }
        push(
            out,
            "no-raw-cast",
            v.fa,
            line,
            format!(
                "raw `as {ty}` cast; use ros_em::units::cast (or try_from), or mark the \
                 line with `lint: allow-cast(reason)`"
            ),
        );
    }
}

/// Literal receivers of `.powf(` that spell a dB-to-linear conversion.
const DB_BASE_LITERALS: &[&str] = &["10f64", "10.0f64", "10.0", "10_f64", "10."];

/// Divisors inside `powf(x / …)` that mark the dB families.
const DB_DIVISORS: &[&str] = &["10.0", "20.0", "10_f64", "20_f64", "10.0f64", "20.0f64"];

fn typed_conversions(v: &View<'_>, out: &mut Vec<Finding>) {
    if v.fa.rel == UNITS_MODULE {
        return;
    }
    for ci in 0..v.len() {
        if v.in_test(ci) {
            continue;
        }
        // `.to_radians()` / `.to_degrees()`
        if v.is_punct(ci, ".")
            && v.ident_in(ci + 1, &["to_radians", "to_degrees"])
            && v.is_punct(ci + 2, "(")
        {
            push(
                out,
                "typed-conversions",
                v.fa,
                v.line(ci + 1),
                format!(
                    "inline `.{}()` conversion; go through ros_em::units \
                     (Degrees/Radians, DbPower/DbAmplitude) or ros_em::db",
                    v.text(ci + 1)
                ),
            );
        }
        if v.is_punct(ci, ".") && v.is_ident(ci + 1, "powf") && v.is_punct(ci + 2, "(") {
            // `10f64.powf(…)`-style literal base.
            if ci > 0
                && matches!(v.kind(ci - 1), Some(TokenKind::Float | TokenKind::Int))
                && DB_BASE_LITERALS.contains(&v.text(ci - 1))
            {
                push(
                    out,
                    "typed-conversions",
                    v.fa,
                    v.line(ci + 1),
                    format!(
                        "inline `{}.powf(` conversion; go through ros_em::units or \
                         ros_em::db",
                        v.text(ci - 1)
                    ),
                );
            }
            // `powf(x / 10.0)` / `powf(x / 20.0)` dB idiom: scan the
            // argument group for `/ <10|20>)` at any nesting.
            let mut depth = 0usize;
            let mut cj = ci + 2;
            while cj < v.len() {
                if v.is_punct(cj, "(") {
                    depth += 1;
                } else if v.is_punct(cj, ")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if v.is_punct(cj, "/")
                    && v.kind(cj + 1) == Some(TokenKind::Float)
                    && DB_DIVISORS.contains(&v.text(cj + 1))
                    && v.is_punct(cj + 2, ")")
                {
                    push(
                        out,
                        "typed-conversions",
                        v.fa,
                        v.line(cj),
                        "inline dB-to-linear `powf(x / 10.0|20.0)`; use \
                         ros_em::db::db_to_pow / db_to_lin or the units types"
                            .to_string(),
                    );
                }
                cj += 1;
            }
        }
    }
}

fn typed_db_params(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    if !fa.is_library() {
        return;
    }
    for item in &fa.facts.items {
        if item.kind != ItemKind::Fn
            || item.vis != Visibility::Pub
            || item.in_test
            || item.in_trait_impl
        {
            continue;
        }
        let Some((sig_start, sig_end)) = item.sig else {
            continue;
        };
        // Walk the signature tokens for `<name>_db: f64` / `<name>_deg: f64`.
        let toks = &fa.tokens[sig_start..sig_end.min(fa.tokens.len())];
        for (k, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text(&fa.text);
            let suffix = if name.ends_with("_db") {
                "_db"
            } else if name.ends_with("_deg") {
                "_deg"
            } else {
                continue;
            };
            // Next two non-trivia tokens must be `:` and `f64`.
            let mut rest = toks[k + 1..].iter().filter(|t| !t.is_trivia());
            let colon = rest.next();
            let ty = rest.next();
            let is_colon = colon.is_some_and(|t| {
                t.kind == TokenKind::Punct && t.text(&fa.text) == ":"
            });
            let is_f64 = ty.is_some_and(|t| {
                t.kind == TokenKind::Ident && t.text(&fa.text) == "f64"
            });
            if is_colon && is_f64 {
                push(
                    out,
                    "typed-db-params",
                    fa,
                    item.line,
                    format!(
                        "public fn takes bare `{name}: f64`; use `ros_em::units::{}`",
                        if suffix == "_deg" { "Degrees" } else { "Db" }
                    ),
                );
            }
        }
    }
}

/// Idents that, adjacent to `==`/`!=`, mark a float special-value
/// comparison (`x == f64::NAN` is always a bug).
const FLOAT_CONSTS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY"];

fn float_eq(v: &View<'_>, out: &mut Vec<Finding>) {
    if !v.fa.is_library() {
        return;
    }
    for ci in 0..v.len() {
        if v.in_test(ci)
            || v.kind(ci) != Some(TokenKind::Punct)
            || !(v.text(ci) == "==" || v.text(ci) == "!=")
        {
            continue;
        }
        let prev_float = ci > 0
            && (v.kind(ci - 1) == Some(TokenKind::Float) || v.ident_in(ci - 1, FLOAT_CONSTS));
        let next_float = v.kind(ci + 1) == Some(TokenKind::Float)
            || v.ident_in(ci + 1, FLOAT_CONSTS)
            || (v.ident_in(ci + 1, &["f64", "f32"])
                && v.is_punct(ci + 2, "::")
                && v.ident_in(ci + 3, FLOAT_CONSTS));
        if !prev_float && !next_float {
            continue;
        }
        // Approx helpers (assertion utilities comparing with a
        // tolerance they define) are the sanctioned home for float
        // comparison plumbing.
        if v.fa
            .facts
            .enclosing_fn(v.tok_idx(ci))
            .is_some_and(|f| f.name.contains("approx"))
        {
            continue;
        }
        // Marker probe last: a consumed marker must mean a real
        // finding was suppressed (stale-suppression audits the rest).
        let line = v.line(ci);
        if v.fa.has_marker(line, "lint: allow-float-eq(") {
            continue;
        }
        push(
            out,
            "float-eq",
            v.fa,
            line,
            format!(
                "`{}` on floating-point operands; compare magnitudes with a tolerance, \
                 restructure the guard, or mark an exact-representation check with \
                 `lint: allow-float-eq(reason)`",
                v.text(ci)
            ),
        );
    }
}

/// Iteration adaptors whose visit order follows the hash map's
/// internal state.
const NONDET_ITER_METHODS: &[&str] = &[
    "drain", "into_iter", "into_keys", "into_values", "iter", "iter_mut", "keys", "retain",
    "values", "values_mut",
];

/// Flags order-nondeterministic iteration over `HashMap`/`HashSet`
/// receivers in library code. Receivers are resolved by declared type
/// (bindings, params, statics) and by struct-field name — see
/// [`syntax::hash_bindings`] / [`syntax::hash_fields`]; no inference,
/// deliberate over-approximation with a marker escape.
fn nondet_iter(v: &View<'_>, out: &mut Vec<Finding>) {
    if !v.fa.is_library() {
        return;
    }
    let mut watched = syntax::hash_bindings(v, 0, v.len());
    watched.extend(syntax::hash_fields(v));
    if watched.is_empty() {
        return;
    }
    let flag = |out: &mut Vec<Finding>, line: usize, what: String| {
        if v.fa.has_marker(line, "lint: allow-nondet-iter(") {
            return;
        }
        push(
            out,
            "nondet-iter",
            v.fa,
            line,
            format!(
                "{what} iterates a HashMap/HashSet in hash (nondeterministic) order; \
                 use BTreeMap/BTreeSet or sort first, or mark an order-free loop with \
                 `lint: allow-nondet-iter(reason)`"
            ),
        );
    };
    for ci in 0..v.len() {
        if v.in_test(ci) {
            continue;
        }
        // `recv.iter()`-family on a watched receiver.
        if v.is_punct(ci, ".")
            && v.ident_in(ci + 1, NONDET_ITER_METHODS)
            && ci > 0
            && matches!(v.kind(ci - 1), Some(TokenKind::Ident))
            && watched.contains(v.text(ci - 1))
        {
            let after = syntax::skip_turbofish(v, ci + 2);
            if v.is_punct(after, "(") {
                flag(out, v.line(ci + 1), format!("`{}.{}()`", v.text(ci - 1), v.text(ci + 1)));
            }
        }
        // `for pat in <expr> {` whose iterated expression names a
        // watched binding.
        if v.is_ident(ci, "for") {
            // Locate `in` at bracket depth 0 (bounded by `{` / `;`).
            let mut j = ci + 1;
            let mut depth: isize = 0;
            let mut in_at = None;
            while j < v.len() {
                if v.kind(j) == Some(TokenKind::Punct) {
                    match v.text(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" | ";" if depth == 0 => break,
                        _ => {}
                    }
                } else if depth == 0 && v.is_ident(j, "in") {
                    in_at = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_at) = in_at else { continue };
            // Scan the iterated expression for a watched name.
            let mut k = in_at + 1;
            let mut depth: isize = 0;
            while k < v.len() {
                if v.kind(k) == Some(TokenKind::Punct) {
                    match v.text(k) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" | ";" if depth == 0 => break,
                        _ => {}
                    }
                } else if matches!(v.kind(k), Some(TokenKind::Ident))
                    && watched.contains(v.text(k))
                {
                    flag(out, v.line(ci), format!("`for … in {}`", v.text(k)));
                    break;
                }
                k += 1;
            }
        }
    }
}

/// Flags wall-clock reads (`Instant`, `SystemTime`) in library code
/// outside the [`CLOCK_MODULE`] boundary, where they make runs
/// unreproducible.
fn no_wallclock(v: &View<'_>, out: &mut Vec<Finding>) {
    if !v.fa.is_library() || v.fa.rel == CLOCK_MODULE {
        return;
    }
    for ci in 0..v.len() {
        if v.in_test(ci) || !v.ident_in(ci, &["Instant", "SystemTime"]) {
            continue;
        }
        let line = v.line(ci);
        if v.fa.has_marker(line, "lint: allow-wallclock(") {
            continue;
        }
        push(
            out,
            "no-wallclock",
            v.fa,
            line,
            format!(
                "`{}` wall-clock access outside the ros_obs clock boundary; go \
                 through ros_obs::clock (injectable under test) or mark a process \
                 edge with `lint: allow-wallclock(reason)`",
                v.text(ci)
            ),
        );
    }
}

/// Constructor owners whose associated fns allocate.
const ALLOC_OWNERS: &[&str] = &["Box", "Vec"];

/// Allocating constructor names under [`ALLOC_OWNERS`].
const ALLOC_CTORS: &[&str] = &["from", "new", "with_capacity"];

/// Allocating method names (any receiver — no inference, deliberate
/// over-approximation behind the `allow-alloc` marker).
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_vec"];

/// Call-graph-propagated allocation lint: every fn reachable from a
/// `// lint: hot-path` entry point ([`callgraph::build`]) is scanned
/// for allocation idioms. Messages carry the enclosing fn and the
/// deterministic witness entry, not the line, so the baseline key
/// survives reformatting.
fn alloc_in_hot_path(files: &[FileAnalysis], graph: &callgraph::CallGraph, out: &mut Vec<Finding>) {
    for (i, node) in graph.nodes.iter().enumerate() {
        let Some(witness) = graph.hot_witness(i) else { continue };
        let Some((bs, be)) = node.body else { continue };
        let fa = &files[node.file];
        let v = View::new(fa);
        let (cs, ce) = (v.ci_at_or_after(bs), v.ci_at_or_after(be));
        let mut sites: Vec<(usize, String)> = Vec::new();
        for call in syntax::calls_in(&v, cs, ce) {
            if call.method && ALLOC_METHODS.contains(&call.name.as_str()) {
                sites.push((call.line, format!(".{}()", call.name)));
            } else if !call.method
                && ALLOC_CTORS.contains(&call.name.as_str())
                && call.qualifier.as_deref().is_some_and(|q| ALLOC_OWNERS.contains(&q))
            {
                sites.push((call.line, format!("{}::{}", call.qualifier.unwrap_or_default(), call.name)));
            }
        }
        for ci in cs..ce.min(v.len()) {
            if v.is_ident(ci, "vec") && v.is_punct(ci + 1, "!") {
                sites.push((v.line(ci), "vec![…]".to_string()));
            }
        }
        sites.sort();
        for (line, pat) in sites {
            if fa.has_marker(line, "lint: allow-alloc(") {
                continue;
            }
            push(
                out,
                "alloc-in-hot-path",
                fa,
                line,
                format!(
                    "allocation `{pat}` in `{}` on the hot path from `{}`; hoist it \
                     into a constructor/scratch buffer or mark \
                     `lint: allow-alloc(reason)`",
                    node.qualified_name(),
                    witness.qualified_name()
                ),
            );
        }
    }
}

/// The three lock-graph rules — `lock-order`, `blocking-under-lock`,
/// `guard-across-hot-call` — over the events [`lockgraph::build`]
/// recovered. Messages name fns and canonical lock ids, never lines,
/// so the baseline key survives reformatting.
fn lock_rules(
    files: &[FileAnalysis],
    graph: &callgraph::CallGraph,
    lg: &lockgraph::LockGraph,
    out: &mut Vec<Finding>,
) {
    // Union of may-lock sets over a call's resolved callees.
    let callee_locks = |callees: &[usize]| -> BTreeSet<&str> {
        callees
            .iter()
            .flat_map(|&c| lg.may_lock[c].iter().map(String::as_str))
            .collect()
    };

    // lock-order: collect every directed (held, then-acquired) pair in
    // the workspace — direct nesting and acquisition inside a callee —
    // then flag the sites of any pair whose reverse also exists.
    let mut pairs: BTreeSet<(String, String)> = BTreeSet::new();
    let mut sites: BTreeSet<(usize, usize, String, String, Option<String>)> = BTreeSet::new();
    for (i, nl) in lg.per_node.iter().enumerate() {
        for acq in &nl.acquires {
            for h in &acq.held {
                if h.lock != acq.lock {
                    pairs.insert((h.lock.clone(), acq.lock.clone()));
                    sites.insert((i, acq.line, h.lock.clone(), acq.lock.clone(), None));
                }
            }
        }
        for cu in &nl.calls_under {
            for l in callee_locks(&cu.callees) {
                for h in &cu.held {
                    if h.lock != l {
                        pairs.insert((h.lock.clone(), l.to_string()));
                        sites.insert((
                            i,
                            cu.line,
                            h.lock.clone(),
                            l.to_string(),
                            Some(cu.callee.clone()),
                        ));
                    }
                }
            }
        }
    }
    for (i, line, first, second, via) in &sites {
        if !pairs.contains(&(second.clone(), first.clone())) {
            continue;
        }
        let node = &graph.nodes[*i];
        let fa = &files[node.file];
        if fa.has_marker(*line, "lint: allow-lock-order(") {
            continue;
        }
        let how = match via {
            Some(callee) => format!("may be acquired via `{callee}(…)`"),
            None => "is acquired".to_string(),
        };
        push(
            out,
            "lock-order",
            fa,
            *line,
            format!(
                "`{second}` {how} while `{first}` is held in `{}`, but the opposite \
                 order exists elsewhere in the workspace (potential deadlock); pick \
                 one global acquisition order or mark `lint: allow-lock-order(reason)`",
                node.qualified_name()
            ),
        );
    }

    // blocking-under-lock and guard-across-hot-call, per node.
    for (i, nl) in lg.per_node.iter().enumerate() {
        let node = &graph.nodes[i];
        let fa = &files[node.file];
        for b in &nl.blocking {
            // `Condvar::wait(g)` atomically releases `g`'s own lock:
            // only *other* live guards make the wait a finding.
            let held: Vec<&lockgraph::Held> = b
                .held
                .iter()
                .filter(|h| !(b.op == "wait" && b.wait_arg.is_some() && h.guard == b.wait_arg))
                .collect();
            let Some(h) = held.first() else { continue };
            if fa.has_marker(b.line, "lint: allow-blocking-under-lock(") {
                continue;
            }
            push(
                out,
                "blocking-under-lock",
                fa,
                b.line,
                format!(
                    "blocking `.{}(…)` on `{}` while a guard on `{}` is live in `{}`; \
                     the consumer may need that lock (deadlock) and every thread \
                     queued on it stalls — drop the guard first or mark \
                     `lint: allow-blocking-under-lock(reason)`",
                    b.op,
                    b.recv_name,
                    h.lock,
                    node.qualified_name()
                ),
            );
        }
        for cu in &nl.calls_under {
            let held_ids: BTreeSet<&str> = cu.held.iter().map(|h| h.lock.as_str()).collect();
            let extra: Vec<&str> = callee_locks(&cu.callees)
                .into_iter()
                .filter(|l| !held_ids.contains(l))
                .collect();
            if let (Some(first_extra), Some(h)) = (extra.first(), cu.held.first()) {
                if !fa.has_marker(cu.line, "lint: allow-blocking-under-lock(") {
                    push(
                        out,
                        "blocking-under-lock",
                        fa,
                        cu.line,
                        format!(
                            "call to `{}(…)` (which may acquire or block on \
                             `{first_extra}`) while a guard on `{}` is live in `{}`; \
                             drop the guard before the call or mark \
                             `lint: allow-blocking-under-lock(reason)`",
                            cu.callee,
                            h.lock,
                            node.qualified_name()
                        ),
                    );
                }
            }
            let hot = cu.callees.iter().find_map(|&c| graph.hot_witness(c));
            if let (Some(witness), Some(h)) = (hot, cu.held.first()) {
                if !fa.has_marker(cu.line, "lint: allow-guard-across-hot-call(") {
                    push(
                        out,
                        "guard-across-hot-call",
                        fa,
                        cu.line,
                        format!(
                            "guard on `{}` is live across a call to `{}(…)` on the \
                             hot path from `{}` in `{}`; release the guard before \
                             entering the hot region or mark \
                             `lint: allow-guard-across-hot-call(reason)`",
                            h.lock,
                            cu.callee,
                            witness.qualified_name(),
                            node.qualified_name()
                        ),
                    );
                }
            }
        }
    }
}

/// Marker names the rules consult, with the owning rule id —
/// `stale-suppression`'s registry for spotting typos.
const KNOWN_MARKERS: &[(&str, &str)] = &[
    ("alloc", "alloc-in-hot-path"),
    ("blocking-under-lock", "blocking-under-lock"),
    ("cast", "no-raw-cast"),
    ("dead-pub", "dead-pub"),
    ("float-eq", "float-eq"),
    ("guard-across-hot-call", "guard-across-hot-call"),
    ("lock-order", "lock-order"),
    ("nondet-iter", "nondet-iter"),
    ("panic", "no-panic"),
    ("wallclock", "no-wallclock"),
];

/// Audits the suppression surface: every `lint: allow-*` marker whose
/// line no rule probe consumed this run, every `allow-<name>` naming
/// no known rule, and every `lint: hot-path` marker annotating no fn.
/// Runs last in [`check_all`] (marker use is recorded by the other
/// rules' probes). Doc comments are exempt — prose *about* markers is
/// not a marker — and so are test regions.
fn stale_suppression(files: &[FileAnalysis], out: &mut Vec<Finding>) {
    for fa in files.iter().filter(|f| f.role != FileRole::Reference) {
        let used = fa.used_markers.borrow();
        for (ti, t) in fa.tokens.iter().enumerate() {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            if fa.facts.in_test.get(ti).copied().unwrap_or(false) {
                continue;
            }
            let body = t.text(&fa.text);
            let mut rest = body;
            while let Some(at) = rest.find("lint: allow-") {
                let after = &rest[at + "lint: allow-".len()..];
                let name: String = after
                    .chars()
                    .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                    .collect();
                rest = &after[name.len()..];
                match KNOWN_MARKERS.iter().find(|(m, _)| *m == name) {
                    None => push(
                        out,
                        "stale-suppression",
                        fa,
                        t.line,
                        format!(
                            "unknown suppression marker `lint: allow-{name}(…)`; no \
                             rule consults it — fix the marker name or remove it"
                        ),
                    ),
                    Some((_, rule_id)) => {
                        if !used.contains(&t.line) {
                            push(
                                out,
                                "stale-suppression",
                                fa,
                                t.line,
                                format!(
                                    "`lint: allow-{name}(…)` suppresses nothing (rule \
                                     `{rule_id}` reports no finding on this line or \
                                     the one below); remove the stale marker"
                                ),
                            );
                        }
                    }
                }
            }
            if fa.is_library() && body.contains(callgraph::HOT_PATH_MARKER) {
                let l = t.line;
                let annotates = fa.facts.items.iter().any(|it| {
                    it.kind == ItemKind::Fn
                        && !it.in_test
                        && !it.name.is_empty()
                        && (it.line == l || it.line == l + 1)
                });
                if !annotates {
                    push(
                        out,
                        "stale-suppression",
                        fa,
                        l,
                        format!(
                            "`{}` marker annotates no function (no fn on this line \
                             or the next); move it onto the entry fn or remove it",
                            callgraph::HOT_PATH_MARKER
                        ),
                    );
                }
            }
        }
    }
}

fn item_kind_str(kind: ItemKind) -> &'static str {
    match kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Union => "union",
        ItemKind::Trait => "trait",
        ItemKind::TypeAlias => "type",
        ItemKind::Const => "const",
        ItemKind::Static => "static",
        ItemKind::Mod => "mod",
        ItemKind::Use => "use",
        ItemKind::MacroDef => "macro",
    }
}

/// Item kinds that must carry docs / be referenced.
fn is_api_item(item: &Item) -> bool {
    !matches!(item.kind, ItemKind::Use)
        && !item.name.is_empty()
        && item.vis == Visibility::Pub
        && !item.in_test
        && !item.in_trait_impl
}

/// A `mod` counts as documented via inner docs too: `//!` at the top
/// of an inline body, or at the top of the external file
/// (`name.rs` / `name/mod.rs`) for a `mod name;` declaration — the
/// repo's file-module convention.
fn mod_documented(fa: &FileAnalysis, item: &Item, mod_docs: &HashMap<&str, bool>) -> bool {
    if let Some((start, end)) = item.body {
        // `tokens[start]` is the opening `{`.
        let end = end.min(fa.tokens.len());
        return leading_inner_docs(&fa.text, &fa.tokens[(start + 1).min(end)..end]);
    }
    // External declaration: resolve `mod name;` the way rustc does.
    let (dir, file) = fa.rel.rsplit_once('/').unwrap_or(("", fa.rel.as_str()));
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    let base = if matches!(stem, "lib" | "main" | "mod") {
        dir.to_string()
    } else {
        format!("{dir}/{stem}")
    };
    [
        format!("{base}/{}.rs", item.name),
        format!("{base}/{}/mod.rs", item.name),
    ]
    .iter()
    .any(|cand| mod_docs.get(cand.as_str()).copied().unwrap_or(false))
}

fn doc_pub(fa: &FileAnalysis, mod_docs: &HashMap<&str, bool>, out: &mut Vec<Finding>) {
    if !fa.is_library() {
        return;
    }
    for item in fa.facts.items.iter().filter(|i| is_api_item(i)) {
        if item.has_doc {
            continue;
        }
        if item.kind == ItemKind::Mod && mod_documented(fa, item, mod_docs) {
            continue;
        }
        push(
            out,
            "doc-pub",
            fa,
            item.line,
            format!(
                "pub {} `{}` has no doc comment; document the contract or hide it",
                item_kind_str(item.kind),
                item.name
            ),
        );
    }
}

/// Cross-crate reference graph: a `pub` item in a library crate must
/// be referenced from another crate, from test code, or from the
/// examples/tests trees — otherwise it is dead API surface.
fn dead_pub(files: &[FileAnalysis], out: &mut Vec<Finding>) {
    // Ident occurrence sets: per-crate non-test code, and one global
    // set of test regions + reference files. BTree containers: the
    // membership queries are order-free, but ros-lint's own
    // `nondet-iter` rule judges this crate too, and `.iter().any` over
    // a hash map below would (rightly) trip it.
    let mut nontest: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut testref: HashSet<&str> = HashSet::new();
    for fa in files {
        for (i, t) in fa.tokens.iter().enumerate() {
            if !matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
                continue;
            }
            let txt = t.text(&fa.text).trim_start_matches("r#");
            if fa.role == FileRole::Reference || fa.facts.in_test.get(i).copied().unwrap_or(false)
            {
                testref.insert(txt);
            } else {
                nontest.entry(fa.crate_name.as_str()).or_default().insert(txt);
            }
        }
    }

    for fa in files.iter().filter(|f| f.is_library()) {
        for item in fa.facts.items.iter().filter(|i| is_api_item(i)) {
            let name = item.name.as_str();
            let referenced = testref.contains(name)
                || nontest
                    .iter()
                    .any(|(&c, set)| c != fa.crate_name && set.contains(name));
            if referenced {
                continue;
            }
            // Marker probe after the reference check: a marker on a
            // referenced item suppresses nothing and must read stale.
            if fa.has_marker(item.line, "lint: allow-dead-pub(") {
                continue;
            }
            push(
                out,
                "dead-pub",
                fa,
                item.line,
                format!(
                    "pub {} `{}` is never referenced outside `{}`; demote to pub(crate), \
                     delete it, or mark `lint: allow-dead-pub(reason)`",
                    item_kind_str(item.kind),
                    name,
                    fa.crate_name
                ),
            );
        }
    }
}

/// Instrumentation functions and the metric kind each implies.
const OBS_FUNCS: &[(&str, &str)] = &[
    ("count", "Counter"),
    ("gauge", "Gauge"),
    ("hist", "Histogram"),
    ("span", "Histogram"),
];

/// Reconciles every `ros_obs::{count,gauge,hist,span}("…")` call site
/// against the `ros_obs::names::ALL` table, both directions, kinds
/// included (span names map to `time.<stage>` histograms).
fn obs_names(files: &[FileAnalysis], out: &mut Vec<Finding>) {
    // Direction 1 inputs: the declared table.
    let mut declared: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let Some(names_fa) = files.iter().find(|f| f.rel == NAMES_MODULE) else {
        return; // no table, nothing to reconcile
    };
    let nv = View::new(names_fa);
    for ci in 0..nv.len() {
        if nv.is_punct(ci, "(")
            && nv.kind(ci + 1) == Some(TokenKind::Str)
            && nv.is_punct(ci + 2, ",")
            && nv.is_ident(ci + 3, "Kind")
            && nv.is_punct(ci + 4, "::")
            && nv.kind(ci + 5) == Some(TokenKind::Ident)
            && nv.is_punct(ci + 6, ")")
        {
            let name = str_lit_value(nv.text(ci + 1));
            declared.insert(name, (nv.text(ci + 5).to_string(), nv.line(ci + 1)));
        }
    }
    if declared.is_empty() {
        return;
    }

    // Direction 2 inputs: every literal-name instrumentation site in
    // non-test pipeline code.
    let mut used: HashSet<String> = HashSet::new();
    for fa in files.iter().filter(|f| f.role != FileRole::Reference) {
        let v = View::new(fa);
        for ci in 0..v.len() {
            if v.in_test(ci)
                || !v.is_ident(ci, "ros_obs")
                || !v.is_punct(ci + 1, "::")
                || v.kind(ci + 2) != Some(TokenKind::Ident)
            {
                continue;
            }
            let Some((_, kind)) = OBS_FUNCS.iter().find(|(f, _)| *f == v.text(ci + 2)) else {
                continue;
            };
            if !v.is_punct(ci + 3, "(") || v.kind(ci + 4) != Some(TokenKind::Str) {
                continue; // dynamic name: not statically checkable
            }
            let func = v.text(ci + 2).to_string();
            let lit = str_lit_value(v.text(ci + 4));
            let metric = if func == "span" {
                format!("time.{lit}")
            } else {
                lit.clone()
            };
            used.insert(metric.clone());
            match declared.get(&metric) {
                None => push(
                    out,
                    "obs-names",
                    fa,
                    v.line(ci + 4),
                    format!(
                        "metric `{metric}` (via ros_obs::{func}) is not declared in \
                         ros_obs::names::ALL; add it so the export order stays fixed"
                    ),
                ),
                Some((declared_kind, _)) if declared_kind != kind => push(
                    out,
                    "obs-names",
                    fa,
                    v.line(ci + 4),
                    format!(
                        "metric `{metric}` is declared as Kind::{declared_kind} in \
                         ros_obs::names::ALL but used via ros_obs::{func} (implies \
                         Kind::{kind})"
                    ),
                ),
                Some(_) => {}
            }
        }
    }

    // Direction 1: every declared name must have a live call site.
    for (name, (_, line)) in &declared {
        if !used.contains(name) {
            push(
                out,
                "obs-names",
                names_fa,
                *line,
                format!(
                    "metric `{name}` is declared in ros_obs::names::ALL but no \
                     instrumentation site emits it; remove the entry or wire the metric"
                ),
            );
        }
    }
}

/// The value of a plain `"…"` string-literal token (quotes stripped,
/// common escapes resolved — metric names use none).
fn str_lit_value(text: &str) -> String {
    text.trim_start_matches('"')
        .trim_end_matches('"')
        .replace("\\\"", "\"")
        .replace("\\\\", "\\")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileAnalysis;

    fn fa(rel: &str, src: &str) -> FileAnalysis {
        let crate_name = rel.split('/').nth(1).unwrap_or("x").to_string();
        let role = if crate::engine::NON_LIBRARY_CRATES.contains(&crate_name.as_str()) {
            FileRole::Harness
        } else if rel.starts_with("tests/") {
            FileRole::Reference
        } else {
            FileRole::Library
        };
        FileAnalysis::new(rel.to_string(), crate_name, role, src.to_string())
    }

    /// `rule:line` strings from the per-file rules, legacy-test shape.
    fn hits_in(rel: &str, src: &str) -> Vec<String> {
        let mut out = Vec::new();
        check_file(&fa(rel, src), &mut out);
        out.iter().map(|v| format!("{}:{}", v.rule, v.line)).collect()
    }

    fn scan_str(src: &str) -> Vec<String> {
        hits_in("crates/ros-em/src/sample.rs", src)
    }

    /// `rule:line` strings from the full workspace pass over a
    /// constructed file set (cross-crate rules included).
    fn all_hits(files: &[FileAnalysis]) -> Vec<String> {
        check_all(files)
            .iter()
            .map(|v| format!("{}:{}:{}", v.rule, v.file, v.line))
            .collect()
    }

    // ---- migrated legacy suite (token-stream equivalents) ----

    #[test]
    fn flags_raw_thread_spawn() {
        let hits = scan_str("fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(hits, ["no-raw-spawn:1"]);
        let hits = scan_str("fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n");
        assert_eq!(hits, ["no-raw-spawn:1"]);
    }

    #[test]
    fn ros_exec_may_spawn() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(hits_in("crates/ros-exec/src/lib.rs", src).is_empty());
    }

    #[test]
    fn spawn_in_test_block_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_println_in_library_code() {
        let hits = scan_str("fn f() { println!(\"x\"); }\n");
        assert_eq!(hits, ["no-println:1"]);
        let hits = scan_str("fn f() { eprintln!(\"x\"); }\n");
        assert_eq!(hits, ["no-println:1"]);
        let hits = scan_str("fn f() { eprint!(\"x\"); print!(\"y\"); }\n");
        assert_eq!(hits, ["no-println:1", "no-println:1"]);
    }

    #[test]
    fn println_allowed_in_tests_and_non_library_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}\n";
        assert!(scan_str(src).is_empty());
        let src = "fn f() { println!(\"table row\"); }\n";
        assert!(hits_in("crates/bench/src/sample.rs", src).is_empty());
    }

    #[test]
    fn println_in_comments_and_strings_ignored() {
        let src = "// println! lives here\nfn f() { let s = \"println!\"; }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_unwrap_outside_tests() {
        let hits = scan_str("fn f() {\n    let x = y.unwrap();\n}\n");
        assert_eq!(hits, ["no-unwrap:2"]);
        let hits = scan_str("fn f() { y.expect(\"reason\"); }\n");
        assert_eq!(hits, ["no-unwrap:1"]);
    }

    #[test]
    fn unwrap_flagged_even_in_harness_crates() {
        let src = "fn f() { y.unwrap(); }\n";
        assert_eq!(hits_in("crates/bench/src/sample.rs", src), ["no-unwrap:1"]);
    }

    #[test]
    fn ignores_unwrap_in_test_block() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { y.unwrap(); }\n}\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn ignores_unwrap_in_comments_and_strings() {
        let src = "// call .unwrap() here\nfn f() { let s = \".unwrap()\"; }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn unwrap_or_is_fine() {
        assert!(scan_str("fn f() { y.unwrap_or(0); y.unwrap_or_else(|| 0); }\n").is_empty());
    }

    #[test]
    fn flags_panic_macros_in_library_code() {
        for src in [
            "fn f() { panic!(\"boom\"); }\n",
            "fn f() { todo!() }\n",
            "fn f() { unimplemented!() }\n",
            "fn f(x: u8) { match x { _ => unreachable!() } }\n",
        ] {
            assert_eq!(hits_in("crates/ros-em/src/s.rs", src), ["no-panic:1"], "{src}");
        }
    }

    #[test]
    fn allow_panic_marker_suppresses() {
        let same = "fn f() { unreachable!() } // lint: allow-panic(n is 0..4 by construction)\n";
        assert!(scan_str(same).is_empty());
        let above = "// lint: allow-panic(dead arm)\nfn f() { panic!(\"x\") }\n";
        assert!(scan_str(above).is_empty());
    }

    #[test]
    fn panic_allowed_in_tests_and_non_library_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"assert helper\"); }\n}\n";
        assert!(scan_str(src).is_empty());
        let src = "fn f() { panic!(\"bad CLI flag\"); }\n";
        assert!(hits_in("crates/bench/src/sample.rs", src).is_empty());
    }

    #[test]
    fn assert_macros_are_not_panic_violations() {
        let src = "fn f(a: usize, b: usize) { assert_eq!(a, b); assert!(a > 0); }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_raw_casts_in_library_code() {
        let hits = scan_str("fn f(n: usize) -> f64 { n as f64 }\n");
        assert_eq!(hits, ["no-raw-cast:1"]);
    }

    #[test]
    fn allow_cast_marker_suppresses() {
        let same = "fn f(n: usize) -> f64 { n as f64 } // lint: allow-cast(exact)\n";
        assert!(scan_str(same).is_empty());
        let above = "// lint: allow-cast(exact)\nfn f(n: usize) -> f64 { n as f64 }\n";
        assert!(scan_str(above).is_empty());
    }

    #[test]
    fn cast_rule_skips_non_library_crates() {
        let src = "fn f(n: usize) -> f64 { n as f64 }\n";
        assert!(hits_in("crates/bench/src/sample.rs", src).is_empty());
    }

    #[test]
    fn as_inside_identifier_is_not_a_cast() {
        // `alias`/`bias` contain "as"; on a token stream this needs no
        // special-casing, which is the point of lexing first.
        assert!(scan_str("fn f() { let alias = bias; }\n").is_empty());
        assert!(scan_str("fn f() { let x = y as f64x; }\n").is_empty());
    }

    #[test]
    fn cast_in_string_or_comment_is_ignored() {
        let src = "// n as f64\nfn f() { let s = \"n as f64\"; }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_db_suffixed_f64_params_across_lines() {
        let src = "pub fn g(\n    gain_db: f64,\n    az_deg: f64,\n) -> f64 { gain_db + az_deg }\n";
        let hits = scan_str(src);
        assert_eq!(hits, ["typed-db-params:1", "typed-db-params:1"]);
    }

    #[test]
    fn typed_params_pass() {
        let src = "pub fn g(gain: Db, az: Degrees, d_m: f64, x_dbsm: f64) -> f64 { 0.0 }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_inline_conversions_outside_units() {
        let hits = scan_str("fn f(a: f64) -> f64 { a.to_radians() }\n");
        assert_eq!(hits, ["typed-conversions:1"]);
        let hits = scan_str("fn f(a: f64) -> f64 { 10f64.powf(a / 10.0) }\n");
        assert_eq!(hits, ["typed-conversions:1", "typed-conversions:1"]);
    }

    #[test]
    fn units_module_may_convert() {
        let src = "fn f(a: f64) -> f64 { a.to_radians() }\n";
        assert!(hits_in("crates/ros-em/src/units.rs", src).is_empty());
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/*\n x.unwrap()\n*/\nfn f() {}\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn code_resumes_after_test_block() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn f() { y.unwrap(); }\n";
        assert_eq!(scan_str(src), ["no-unwrap:5"]);
    }

    // ---- structural cases the old line scanner got wrong ----

    #[test]
    fn char_double_quote_regression() {
        // The old Scanner treated `'"'` as opening a string and
        // swallowed the rest of the line, hiding the unwrap.
        let src = "fn f() { let c = '\"'; y.unwrap(); }\n";
        assert_eq!(scan_str(src), ["no-unwrap:1"]);
    }

    #[test]
    fn nested_block_comment_regression() {
        // The old Scanner closed the comment at the first `*/`.
        let src = "/* outer /* inner */ y.unwrap() */\nfn f() {}\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn multi_hash_raw_string_regression() {
        // The old Scanner did not recognize `r##"…"##` at all.
        let src = "fn f() { let s = r##\"y.unwrap() \"# panic!()\"##; }\n";
        assert!(scan_str(src).is_empty());
    }

    // ---- float-eq ----

    #[test]
    fn float_eq_flags_literal_comparison() {
        assert_eq!(scan_str("fn f(x: f64) -> bool { x == 0.0 }\n"), ["float-eq:1"]);
        assert_eq!(scan_str("fn f(x: f64) -> bool { 1.5 != x }\n"), ["float-eq:1"]);
    }

    #[test]
    fn float_eq_flags_non_finite_idents() {
        assert_eq!(scan_str("fn f(x: f64) -> bool { x == f64::INFINITY }\n"), ["float-eq:1"]);
        assert_eq!(scan_str("fn f(x: f64) -> bool { f64::NAN == x }\n"), ["float-eq:1"]);
    }

    #[test]
    fn float_eq_ignores_integer_comparisons() {
        assert!(scan_str("fn f(n: usize) -> bool { n == 0 }\n").is_empty());
        assert!(scan_str("fn f(a: usize, b: usize) -> bool { a != b }\n").is_empty());
    }

    #[test]
    fn float_eq_exemptions() {
        // Tests may compare exactly.
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.5 }\n}\n";
        assert!(scan_str(src).is_empty());
        // Marker.
        let src = "// lint: allow-float-eq(sentinel)\nfn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(scan_str(src).is_empty());
        // Approx helpers are where exact comparisons legitimately live.
        let src = "fn approx_eq(a: f64, b: f64) -> bool { a == b || (a - b).abs() < 1e-12 }\n";
        assert!(scan_str(src).is_empty());
        // Harness crates are exempt (library rule).
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(hits_in("crates/bench/src/sample.rs", src).is_empty());
    }

    // ---- doc-pub ----

    #[test]
    fn doc_pub_flags_undocumented_pub_items() {
        let f = fa("crates/ros-em/src/s.rs", "//! mod docs\npub fn naked() {}\n");
        let doc: Vec<String> = all_hits(&[f])
            .into_iter()
            .filter(|h| h.starts_with("doc-pub"))
            .collect();
        assert_eq!(doc, ["doc-pub:crates/ros-em/src/s.rs:2"]);
    }

    #[test]
    fn doc_pub_passes_documented_and_non_api_items() {
        let src = "\
//! mod docs
/// Documented.
pub fn ok() {}
pub(crate) fn internal() {}
fn private() {}
#[cfg(test)]
mod tests {
    pub fn helper() {}
}
";
        let f = fa("crates/ros-em/src/s.rs", src);
        assert!(all_hits(&[f]).iter().all(|h| !h.starts_with("doc-pub")));
    }

    #[test]
    fn doc_pub_accepts_inner_docs_for_mods() {
        // Inline mod with `//!` body docs, and an out-of-line decl
        // whose file opens with `//!`: both documented.
        let lib = fa(
            "crates/ros-em/src/lib.rs",
            "//! crate docs\npub mod inline {\n    //! docs\n}\npub mod filemod;\n",
        );
        let filemod = fa("crates/ros-em/src/filemod.rs", "//! file docs\n");
        assert!(all_hits(&[lib, filemod]).iter().all(|h| !h.starts_with("doc-pub")));
        // Without the file docs the decl is flagged.
        let lib = fa("crates/ros-em/src/lib.rs", "//! crate docs\npub mod filemod;\n");
        let filemod = fa("crates/ros-em/src/filemod.rs", "pub fn x() {}\n");
        assert!(all_hits(&[lib, filemod]).iter().any(|h| h.starts_with("doc-pub")));
    }

    // ---- dead-pub ----

    #[test]
    fn dead_pub_flags_unreferenced_api() {
        let dead = fa("crates/ros-em/src/s.rs", "//! m\n/// D.\npub fn orphan() {}\n");
        let hits = all_hits(&[dead]);
        assert_eq!(hits, ["dead-pub:crates/ros-em/src/s.rs:3"]);
    }

    #[test]
    fn dead_pub_alive_via_other_crate_tests_or_reference() {
        let api = "//! m\n/// D.\npub fn used_somewhere() {}\n";
        // Another crate's non-test code.
        let dead = fa("crates/ros-em/src/s.rs", api);
        let user = fa("crates/ros-dsp/src/u.rs", "//! m\nfn f() { ros_em::used_somewhere(); }\n");
        assert!(all_hits(&[dead, user]).iter().all(|h| !h.starts_with("dead-pub")));
        // A test region in the same crate.
        let dead = fa("crates/ros-em/src/s.rs", api);
        let tests = fa(
            "crates/ros-em/src/t.rs",
            "//! m\n#[cfg(test)]\nmod tests {\n    fn t() { super::used_somewhere(); }\n}\n",
        );
        assert!(all_hits(&[dead, tests]).iter().all(|h| !h.starts_with("dead-pub")));
        // The integration-test reference corpus.
        let dead = fa("crates/ros-em/src/s.rs", api);
        let reference = fa("tests/e2e.rs", "fn t() { ros_em::used_somewhere(); }\n");
        assert!(all_hits(&[dead, reference]).iter().all(|h| !h.starts_with("dead-pub")));
    }

    #[test]
    fn dead_pub_same_crate_nontest_use_does_not_count() {
        let src = "//! m\n/// D.\npub fn self_used() {}\nfn f() { self_used(); }\n";
        let f = fa("crates/ros-em/src/s.rs", src);
        assert!(all_hits(&[f]).iter().any(|h| h.starts_with("dead-pub")));
    }

    #[test]
    fn dead_pub_marker_suppresses() {
        let src = "//! m\n/// D.\n// lint: allow-dead-pub(API symmetry)\npub fn kept() {}\n";
        let f = fa("crates/ros-em/src/s.rs", src);
        assert!(all_hits(&[f]).iter().all(|h| !h.starts_with("dead-pub")));
    }

    // ---- obs-names ----

    const NAMES_SRC: &str = "\
//! names
pub enum Kind { Counter, Gauge, Histogram }
pub const ALL: &[(&str, Kind)] = &[
    (\"decode.ok\", Kind::Counter),
    (\"reader.cloud_points\", Kind::Gauge),
    (\"time.decode\", Kind::Histogram),
];
";

    fn names_fa() -> FileAnalysis {
        fa(NAMES_MODULE, NAMES_SRC)
    }

    fn obs_hits(user_src: &str) -> Vec<String> {
        let user = fa("crates/core/src/u.rs", user_src);
        all_hits(&[names_fa(), user])
            .into_iter()
            .filter(|h| h.starts_with("obs-names"))
            .collect()
    }

    #[test]
    fn obs_names_clean_when_reconciled() {
        let src = "\
//! m
fn f() {
    ros_obs::count(\"decode.ok\", 1);
    ros_obs::gauge(\"reader.cloud_points\", 2.0);
    let _span = ros_obs::span(\"decode\");
}
";
        assert!(obs_hits(src).is_empty());
    }

    #[test]
    fn obs_names_flags_undeclared_metric() {
        let src = "//! m\nfn f() { ros_obs::count(\"decode.ok\", 1); ros_obs::gauge(\"reader.cloud_points\", 0.0); let _s = ros_obs::span(\"decode\"); ros_obs::count(\"decode.mystery\", 1); }\n";
        let hits = obs_hits(src);
        assert_eq!(hits, ["obs-names:crates/core/src/u.rs:2"]);
    }

    #[test]
    fn obs_names_flags_kind_mismatch() {
        // decode.ok is declared Counter but used as a gauge.
        let src = "//! m\nfn f() { ros_obs::gauge(\"decode.ok\", 1.0); ros_obs::gauge(\"reader.cloud_points\", 0.0); let _s = ros_obs::span(\"decode\"); }\n";
        let hits = obs_hits(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn obs_names_flags_declared_but_never_emitted() {
        // Nothing emits time.decode: the declaration is stale.
        let src = "//! m\nfn f() { ros_obs::count(\"decode.ok\", 1); ros_obs::gauge(\"reader.cloud_points\", 0.0); }\n";
        let hits = obs_hits(src);
        assert_eq!(hits, [format!("obs-names:{NAMES_MODULE}:6")]);
    }

    #[test]
    fn obs_names_ignores_dynamic_names_and_test_sites() {
        // A non-literal name cannot be checked statically; test-region
        // emissions are exempt.
        let src = "\
//! m
fn f(name: &str) {
    ros_obs::count(\"decode.ok\", 1);
    ros_obs::gauge(\"reader.cloud_points\", 0.0);
    let _s = ros_obs::span(\"decode\");
    ros_obs::count(name, 1);
}
#[cfg(test)]
mod tests {
    fn t() { ros_obs::count(\"test.only\", 1); }
}
";
        assert!(obs_hits(src).is_empty());
    }

    #[test]
    fn rules_catalog_is_consistent() {
        // Stable IDs: every rule resolvable, no duplicates; every rule
        // carries the --explain texts.
        let mut seen = std::collections::HashSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert_eq!(rule(r.id).map(|x| x.id), Some(r.id));
            assert!(!r.summary.is_empty());
            assert!(!r.rationale.is_empty(), "{} has no rationale", r.id);
            assert!(!r.fix.is_empty(), "{} has no fix guidance", r.id);
            assert_eq!(r.severity.as_str(), "error");
        }
        assert_eq!(RULES.len(), 18);
    }

    // ---- nondet-iter ----

    #[test]
    fn nondet_iter_flags_hash_iteration() {
        let src = "\
fn f(m: &HashMap<u32, u32>) {
    for (k, v) in m.iter() {}
}
";
        let hits = scan_str(src);
        // Both the `for … in` shape and the `.iter()` shape fire on
        // this site; one line, two lenses.
        assert!(hits.contains(&"nondet-iter:2".to_string()), "{hits:?}");
        assert_eq!(scan_str("fn f(s: HashSet<u8>) { let n: Vec<u8> = s.drain().collect(); }\n"), ["nondet-iter:1"]);
        let field = "\
struct S { cache: HashMap<u8, u8> }
fn f(s: &S) { for k in s.cache.keys() {} }
";
        assert!(scan_str(field).iter().any(|h| h == "nondet-iter:2"));
    }

    #[test]
    fn nondet_iter_clean_cases() {
        // BTree containers are ordered.
        assert!(scan_str("fn f(m: &BTreeMap<u32, u32>) { for (k, v) in m.iter() {} }\n").is_empty());
        // Membership queries do not iterate.
        assert!(scan_str("fn f(m: &HashMap<u32, u32>) -> bool { m.contains_key(&1) }\n").is_empty());
        // Test regions are exempt.
        let src = "#[cfg(test)]\nmod tests {\n    fn t(m: HashMap<u8, u8>) { for k in m.keys() {} }\n}\n";
        assert!(scan_str(src).is_empty());
        // Marker escape.
        let src = "// lint: allow-nondet-iter(count only)\nfn f(m: &HashMap<u8, u8>) -> usize { m.values().filter(|v| **v > 0).count() }\n";
        assert!(scan_str(src).is_empty());
        // Harness crates are exempt (library rule).
        let src = "fn f(m: &HashMap<u8, u8>) { for k in m.keys() {} }\n";
        assert!(hits_in("crates/bench/src/sample.rs", src).is_empty());
    }

    // ---- no-wallclock ----

    #[test]
    fn no_wallclock_flags_clock_reads() {
        assert_eq!(
            scan_str("fn f() -> Instant { Instant::now() }\n"),
            ["no-wallclock:1", "no-wallclock:1"]
        );
        assert_eq!(
            scan_str("fn f() { let t = std::time::SystemTime::now(); }\n"),
            ["no-wallclock:1"]
        );
    }

    #[test]
    fn no_wallclock_clean_cases() {
        // The clock module is the sanctioned boundary.
        let src = "pub fn now() -> u64 { Instant::now().elapsed().as_nanos() }\n";
        assert!(hits_in("crates/ros-obs/src/clock.rs", src).is_empty());
        // Marker escape.
        let src = "// lint: allow-wallclock(process edge)\nfn f() { let t = Instant::now(); }\n";
        assert!(scan_str(src).is_empty());
        // Tests and harness crates are exempt.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}\n";
        assert!(scan_str(src).is_empty());
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(hits_in("crates/bench/src/sample.rs", src).is_empty());
    }

    // ---- alloc-in-hot-path ----

    fn alloc_hits(files: &[FileAnalysis]) -> Vec<String> {
        all_hits(files)
            .into_iter()
            .filter(|h| h.starts_with("alloc-in-hot-path"))
            .collect()
    }

    #[test]
    fn alloc_flags_direct_and_transitive_sites() {
        let src = "\
//! m
// lint: hot-path
pub fn entry() { let v: Vec<u8> = Vec::new(); helper(); }
fn helper() { let b = Box::new(3); }
fn cold() { let v = vec![1, 2]; }
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = alloc_hits(&[f]);
        assert_eq!(
            hits,
            [
                "alloc-in-hot-path:crates/ros-dsp/src/s.rs:3",
                "alloc-in-hot-path:crates/ros-dsp/src/s.rs:4",
            ],
            "entry and transitive callee flagged, cold fn not"
        );
    }

    #[test]
    fn alloc_message_names_fn_and_witness_entry() {
        let src = "\
//! m
// lint: hot-path
pub fn entry() { helper(); }
fn helper() { let xs: Vec<u8> = ys.collect(); }
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let out = check_all(&[f]);
        let finding = out
            .iter()
            .find(|v| v.rule == "alloc-in-hot-path")
            .expect("collect() on hot path");
        assert!(finding.message.contains("`.collect()`"), "{}", finding.message);
        assert!(finding.message.contains("`helper`"), "{}", finding.message);
        assert!(finding.message.contains("`entry`"), "{}", finding.message);
    }

    #[test]
    fn alloc_clean_cases() {
        // allow-alloc marker.
        let src = "\
//! m
// lint: hot-path
pub fn entry() {
    // lint: allow-alloc(setup only, not steady-state)
    let v: Vec<u8> = Vec::new();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(alloc_hits(&[f]).is_empty());
        // No hot-path annotation anywhere: nothing is judged.
        let src = "//! m\npub fn f() { let v = vec![1]; }\n";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(alloc_hits(&[f]).is_empty());
        // Allocation in a fn not reachable from the entry.
        let src = "\
//! m
// lint: hot-path
pub fn entry() { }
fn unrelated() { let v = Vec::with_capacity(8); }
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(alloc_hits(&[f]).is_empty());
    }

    // ---- lock-order ----

    fn rule_hits(files: &[FileAnalysis], id: &str) -> Vec<Finding> {
        check_all(files).into_iter().filter(|v| v.rule == id).collect()
    }

    #[test]
    fn lock_order_flags_inconsistent_acquisition_order() {
        let src = "\
//! m
fn first(a: &M, b: &M) {
    let ga = a.lock();
    let gb = b.lock();
}
fn second(a: &M, b: &M) {
    let gb = b.lock();
    let ga = a.lock();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = rule_hits(&[f], "lock-order");
        assert_eq!(hits.len(), 2, "both conflicting sites flagged: {hits:?}");
        assert!(hits[0].message.contains("`ros-dsp:a`"), "{}", hits[0].message);
        assert!(hits[0].message.contains("`ros-dsp:b`"), "{}", hits[0].message);
        assert!(hits[0].message.contains("in `first`"), "{}", hits[0].message);
        assert!(hits[1].message.contains("in `second`"), "{}", hits[1].message);
    }

    #[test]
    fn lock_order_clean_cases() {
        // Consistent order everywhere: no pair conflict.
        let src = "\
//! m
fn first(a: &M, b: &M) {
    let ga = a.lock();
    let gb = b.lock();
}
fn second(a: &M, b: &M) {
    let ga = a.lock();
    let gb = b.lock();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "lock-order").is_empty());
        // Dropping the first guard before the second acquisition means
        // no order pair at all.
        let src = "\
//! m
fn first(a: &M, b: &M) {
    let ga = a.lock();
    drop(ga);
    let gb = b.lock();
}
fn second(a: &M, b: &M) {
    let gb = b.lock();
    drop(gb);
    let ga = a.lock();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "lock-order").is_empty());
    }

    #[test]
    fn lock_order_marker_suppresses() {
        let src = "\
//! m
fn first(a: &M, b: &M) {
    let ga = a.lock();
    // lint: allow-lock-order(init-only path, never concurrent)
    let gb = b.lock();
}
fn second(a: &M, b: &M) {
    let gb = b.lock();
    // lint: allow-lock-order(init-only path, never concurrent)
    let ga = a.lock();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "lock-order").is_empty());
        // The consumed markers are not stale.
        assert!(rule_hits(&[fa("crates/ros-dsp/src/s.rs", src)], "stale-suppression").is_empty());
    }

    // ---- blocking-under-lock ----

    #[test]
    fn blocking_flags_channel_op_under_guard() {
        let src = "\
//! m
fn f(q: &Chan, m: &M) {
    let g = m.lock();
    q.tx.send(1);
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = rule_hits(&[f], "blocking-under-lock");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("`.send(\u{2026})`"), "{}", hits[0].message);
        assert!(hits[0].message.contains("`ros-dsp:m`"), "{}", hits[0].message);
    }

    #[test]
    fn blocking_flags_transitively_locking_call_under_guard() {
        let src = "\
//! m
fn f(m: &M, x: &X) {
    let g = m.lock();
    helper(x);
}
fn helper(x: &X) {
    let g2 = SINK.lock();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = rule_hits(&[f], "blocking-under-lock");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("`helper(\u{2026})`"), "{}", hits[0].message);
        assert!(hits[0].message.contains("`ros-dsp:SINK`"), "{}", hits[0].message);
    }

    #[test]
    fn blocking_clean_cases() {
        // Condvar wait that consumes the held guard is the sanctioned
        // blocking-while-locked idiom, not a deadlock.
        let src = "\
//! m
fn f(cv: &Condvar, m: &M) {
    let g = m.lock().unwrap();
    let g = cv.wait(g);
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "blocking-under-lock").is_empty());
        // Guard dropped before the send.
        let src = "\
//! m
fn f(q: &Chan, m: &M) {
    let g = m.lock();
    drop(g);
    q.tx.send(1);
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "blocking-under-lock").is_empty());
        // Marker escape on the blocking line.
        let src = "\
//! m
fn f(q: &Chan, m: &M) {
    let g = m.lock();
    // lint: allow-blocking-under-lock(bounded queue, consumer never takes m)
    q.tx.send(1);
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "blocking-under-lock").is_empty());
    }

    // ---- guard-across-hot-call ----

    #[test]
    fn guard_across_hot_call_flags_live_guard_spanning_hot_callee() {
        let src = "\
//! m
// lint: hot-path
pub fn entry() { inner(); }
fn inner() {}
fn cold(m: &M) {
    let g = m.lock();
    inner();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = rule_hits(&[f], "guard-across-hot-call");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 7);
        assert!(hits[0].message.contains("`inner(\u{2026})`"), "{}", hits[0].message);
        assert!(hits[0].message.contains("from `entry`"), "{}", hits[0].message);
        assert!(hits[0].message.contains("`ros-dsp:m`"), "{}", hits[0].message);
    }

    #[test]
    fn guard_across_hot_call_clean_cases() {
        // Guard released before the hot call.
        let src = "\
//! m
// lint: hot-path
pub fn entry() { inner(); }
fn inner() {}
fn cold(m: &M) {
    let g = m.lock();
    drop(g);
    inner();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "guard-across-hot-call").is_empty());
        // Callee not on any hot path.
        let src = "\
//! m
fn inner() {}
fn cold(m: &M) {
    let g = m.lock();
    inner();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "guard-across-hot-call").is_empty());
        // Marker escape.
        let src = "\
//! m
// lint: hot-path
pub fn entry() { inner(); }
fn inner() {}
fn cold(m: &M) {
    let g = m.lock();
    // lint: allow-guard-across-hot-call(read-mostly lock, ns-scale hold)
    inner();
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "guard-across-hot-call").is_empty());
    }

    // ---- stale-suppression ----

    #[test]
    fn stale_suppression_flags_unconsumed_and_unknown_markers() {
        let src = "\
//! m
// lint: allow-panic(legacy shim)
/// D.
pub fn quiet() {}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = rule_hits(&[f], "stale-suppression");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].message.contains("suppresses nothing"), "{}", hits[0].message);
        assert!(hits[0].message.contains("no-panic"), "{}", hits[0].message);

        let src = "//! m\n// lint: allow-pancake(typo)\nfn f() {}\n";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = rule_hits(&[f], "stale-suppression");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("unknown suppression marker"), "{}", hits[0].message);
    }

    #[test]
    fn stale_suppression_flags_hot_path_marker_on_nothing() {
        let src = "//! m\n// lint: hot-path\npub struct S;\n";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = rule_hits(&[f], "stale-suppression");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("annotates no function"), "{}", hits[0].message);
        // An attribute between the marker and the fn silently detaches
        // the annotation — the exact bug this rule exists to catch.
        let src = "\
//! m
// lint: hot-path
#[allow(clippy::too_many_arguments)]
pub fn entry(a: u32, b: u32) {}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = rule_hits(&[f], "stale-suppression");
        assert_eq!(hits.len(), 1, "marker above an attribute annotates nothing: {hits:?}");
        // Below the attribute it binds.
        let src = "\
//! m
#[allow(clippy::too_many_arguments)]
// lint: hot-path
pub fn entry(a: u32, b: u32) {}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "stale-suppression").is_empty());
    }

    #[test]
    fn stale_suppression_clean_cases() {
        // A consumed marker is live, not stale (and the panic stays
        // suppressed).
        let src = "//! m\n// lint: allow-panic(unreachable invariant)\nfn f() { panic!(\"x\"); }\n";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        let hits = all_hits(&[f]);
        assert!(hits.is_empty(), "{hits:?}");
        // Markers in test regions are the test's business.
        let src = "\
//! m
#[cfg(test)]
mod tests {
    // lint: allow-panic(never fires)
    fn t() {}
}
";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "stale-suppression").is_empty());
        // Reference files are not audited.
        let f = fa("tests/e2e.rs", "// lint: allow-panic(stale here)\nfn t() {}\n");
        assert!(rule_hits(&[f], "stale-suppression").is_empty());
        // A hot-path marker that annotates a fn is live.
        let src = "//! m\n// lint: hot-path\npub fn entry() {}\n";
        let f = fa("crates/ros-dsp/src/s.rs", src);
        assert!(rule_hits(&[f], "stale-suppression").is_empty());
    }
}
