//! A lightweight item scanner over the token stream.
//!
//! This is not a parser — it is the minimal structural recovery the
//! lint rules need: which tokens are inside `#[cfg(test)]` regions,
//! which `pub` items exist (with their names, lines, and whether a doc
//! comment is attached), where each `fn` signature ends and its body
//! begins. It walks item positions recursively through `mod` and
//! `impl` blocks, skips function bodies and type bodies wholesale, and
//! recovers from anything it does not understand by advancing one
//! token — like the lexer, it is total.

use crate::lexer::{Token, TokenKind};

/// Item visibility, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// `pub` — part of the crate's external API.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// The syntactic class of a recovered item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free or in an `impl` block).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `type` alias.
    TypeAlias,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `mod` (inline or out-of-line).
    Mod,
    /// `use` declaration.
    Use,
    /// `macro_rules!` or `macro` definition.
    MacroDef,
}

/// One recovered item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Syntactic class.
    pub kind: ItemKind,
    /// Declared name (empty for `use` declarations).
    pub name: String,
    /// Visibility qualifier.
    pub vis: Visibility,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// A doc comment or `#[doc …]` attribute is attached.
    pub has_doc: bool,
    /// The item sits inside a `#[cfg(test)]` region (or carries the
    /// attribute itself).
    pub in_test: bool,
    /// The item is a method of a trait `impl` block (`impl T for U`);
    /// such fns inherit the trait's API surface and docs.
    pub in_trait_impl: bool,
    /// For fns declared inside an `impl` block: the self type's name
    /// (`FmcwRadar` for `impl FmcwRadar { fn capture … }`), which is
    /// how the call graph resolves `Type::method(…)` calls.
    pub owner: Option<String>,
    /// For fns: token-index range `[start, end)` of the signature —
    /// from the `fn` keyword up to (not including) the body `{` or
    /// the terminating `;`.
    pub sig: Option<(usize, usize)>,
    /// For fns with bodies: token-index range `[start, end)` of the
    /// body, braces included.
    pub body: Option<(usize, usize)>,
}

/// Everything the rules need to know about one file's structure.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Recovered items, in source order (all nesting levels the
    /// scanner visits: top level, `mod` blocks, `impl` blocks).
    pub items: Vec<Item>,
    /// Per-token flag: the token lies inside a `#[cfg(test)]` /
    /// `#[test]` region (the attribute tokens themselves included).
    pub in_test: Vec<bool>,
}

impl FileFacts {
    /// The innermost `fn` item whose body contains token `idx`, if
    /// any (used for the approx-helper exemption of `float-eq`).
    pub fn enclosing_fn(&self, idx: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.body.is_some_and(|(s, e)| s <= idx && idx < e))
            .last()
    }
}

/// Scans the token stream of one file.
pub fn analyze(src: &str, toks: &[Token]) -> FileFacts {
    let mut facts = FileFacts {
        items: Vec::new(),
        in_test: vec![false; toks.len()],
    };
    let mut s = Scanner { src, toks, facts: &mut facts };
    s.scan_block(0, toks.len(), &Ctx::default());
    facts
}

/// Scanning context threaded through nested blocks.
#[derive(Clone, Default)]
struct Ctx {
    in_test: bool,
    in_trait_impl: bool,
    /// Self-type name of the enclosing `impl` block, if any.
    owner: Option<String>,
}

struct Scanner<'a> {
    src: &'a str,
    toks: &'a [Token],
    facts: &'a mut FileFacts,
}

/// Item keywords that begin a recoverable item.
const QUALIFIERS: &[&str] = &["unsafe", "async", "extern", "default"];

impl Scanner<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks[i].text(self.src)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Punct && self.text(i) == p
    }

    fn is_ident(&self, i: usize, id: &str) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Ident && self.text(i) == id
    }

    /// First non-trivia token index at or after `i`, bounded by `end`.
    fn skip_trivia(&self, mut i: usize, end: usize) -> usize {
        while i < end && self.toks[i].is_trivia() {
            i += 1;
        }
        i
    }

    /// Advances past a delimited group: `i` must sit on the opening
    /// delimiter; returns the index one past its matching closer
    /// (or `end` if unbalanced). Only tokens of the same delimiter
    /// class are counted, so `{ "}" }` nests correctly — string and
    /// comment contents are opaque token slices.
    fn skip_group(&self, mut i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        while i < end {
            if self.is_punct(i, open) {
                depth += 1;
            } else if self.is_punct(i, close) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Advances to one past the terminating `;` at brace depth 0
    /// (initializer expressions may contain `{ … }` blocks).
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        let mut brace = 0usize;
        while i < end {
            if self.is_punct(i, "{") {
                brace += 1;
            } else if self.is_punct(i, "}") {
                brace = brace.saturating_sub(1);
            } else if brace == 0 && self.is_punct(i, ";") {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    fn mark_test(&mut self, from: usize, to: usize) {
        let to = to.min(self.facts.in_test.len());
        for f in &mut self.facts.in_test[from..to] {
            *f = true;
        }
    }

    /// Scans the item positions in `[i, end)`.
    fn scan_block(&mut self, mut i: usize, end: usize, ctx: &Ctx) {
        if ctx.in_test {
            self.mark_test(i, end);
        }
        while i < end {
            i = self.item(i, end, ctx);
        }
    }

    /// Consumes one item (or recovers by one token); returns the index
    /// of the next item position.
    fn item(&mut self, start: usize, end: usize, ctx: &Ctx) -> usize {
        let mut i = start;
        let mut has_doc = false;
        let mut cfg_test = false;

        // Pending doc comments and attributes, in any interleaving.
        loop {
            if i >= end {
                return end;
            }
            match self.toks[i].kind {
                TokenKind::DocComment => {
                    // Outer docs (`///`, `/**`) attach to the next
                    // item; inner docs (`//!`, `/*!`) document the
                    // enclosing module and attach to nothing.
                    let t = self.text(i);
                    if t.starts_with("///") || t.starts_with("/**") {
                        has_doc = true;
                    }
                    i += 1;
                }
                TokenKind::LineComment | TokenKind::BlockComment => i += 1,
                TokenKind::Punct if self.text(i) == "#" => {
                    let mut j = i + 1;
                    let inner_attr = self.is_punct(j, "!");
                    if inner_attr {
                        j += 1;
                    }
                    if !self.is_punct(j, "[") {
                        return i + 1; // stray `#`, recover
                    }
                    let attr_end = self.skip_group(j, end, "[", "]");
                    if !inner_attr {
                        let (is_test, is_doc) = self.classify_attr(j, attr_end);
                        cfg_test |= is_test;
                        has_doc |= is_doc;
                    }
                    i = attr_end;
                }
                _ => break,
            }
        }

        // Visibility qualifier.
        let mut vis = Visibility::Private;
        if self.is_ident(i, "pub") {
            vis = Visibility::Pub;
            i = self.skip_trivia(i + 1, end);
            if self.is_punct(i, "(") {
                vis = Visibility::Restricted;
                i = self.skip_trivia(self.skip_group(i, end, "(", ")"), end);
            }
        }

        // Fn qualifiers (`unsafe`, `async`, `extern "C"`, `const fn`).
        let mut saw_extern = false;
        loop {
            if QUALIFIERS.iter().any(|q| self.is_ident(i, q)) {
                saw_extern |= self.is_ident(i, "extern");
                i = self.skip_trivia(i + 1, end);
            } else if saw_extern && matches!(self.toks.get(i).map(|t| t.kind), Some(TokenKind::Str))
            {
                i = self.skip_trivia(i + 1, end);
            } else if self.is_ident(i, "const") {
                // `const` is both a qualifier (`const fn`) and an item
                // keyword (`const X: …`); peek to tell them apart.
                let next = self.skip_trivia(i + 1, end);
                if self.is_ident(next, "fn") {
                    i = next;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if i >= end {
            return end;
        }

        let item_test = ctx.in_test || cfg_test;
        let line = self.toks[i].line;
        let kw = if self.toks[i].kind == TokenKind::Ident {
            self.text(i).to_string()
        } else {
            String::new()
        };
        let item_ctx = Ctx {
            in_test: item_test,
            ..ctx.clone()
        };
        let next = match kw.as_str() {
            "fn" => self.item_fn(i, end, vis, line, has_doc, &item_ctx),
            "mod" => self.item_mod(i, end, vis, line, has_doc, item_test),
            "impl" => self.item_impl(i, end, item_test),
            "struct" | "enum" | "union" | "trait" => {
                let kind = match kw.as_str() {
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    "union" => ItemKind::Union,
                    _ => ItemKind::Trait,
                };
                self.item_type_like(i, end, kind, vis, line, has_doc, item_test)
            }
            "type" => self.item_terminated(i, end, ItemKind::TypeAlias, vis, line, has_doc, item_test),
            "const" | "static" => {
                let kind = if kw == "const" { ItemKind::Const } else { ItemKind::Static };
                self.item_terminated(i, end, kind, vis, line, has_doc, item_test)
            }
            "use" => {
                let next = self.skip_to_semi(i, end);
                self.push(ItemKind::Use, String::new(), vis, line, has_doc, item_test, false, None, None, None);
                next
            }
            "macro_rules" | "macro" => self.item_macro(i, end, vis, line, has_doc, item_test),
            _ => i + 1, // not an item position: recover one token
        };
        if item_test {
            self.mark_test(start, next);
        }
        next
    }

    /// Classifies one attribute body `[j, attr_end)` (indices of `[`
    /// … `]`): is it a test marker, does it attach docs?
    fn classify_attr(&self, j: usize, attr_end: usize) -> (bool, bool) {
        let mut idents = Vec::new();
        for k in j..attr_end {
            if self.toks[k].kind == TokenKind::Ident {
                idents.push(self.text(k));
            }
        }
        let first = idents.first().copied().unwrap_or("");
        let is_test = first == "test"
            || (first == "cfg" && idents.iter().any(|t| *t == "test"));
        let is_doc = first == "doc";
        (is_test, is_doc)
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        kind: ItemKind,
        name: String,
        vis: Visibility,
        line: usize,
        has_doc: bool,
        in_test: bool,
        in_trait_impl: bool,
        owner: Option<String>,
        sig: Option<(usize, usize)>,
        body: Option<(usize, usize)>,
    ) {
        self.facts.items.push(Item {
            kind,
            name,
            vis,
            line,
            has_doc,
            in_test,
            in_trait_impl,
            owner,
            sig,
            body,
        });
    }

    fn item_fn(
        &mut self,
        kw: usize,
        end: usize,
        vis: Visibility,
        line: usize,
        has_doc: bool,
        ctx: &Ctx,
    ) -> usize {
        let name_i = self.skip_trivia(kw + 1, end);
        let name = if name_i < end && self.toks[name_i].kind == TokenKind::Ident {
            self.text(name_i).to_string()
        } else {
            String::new()
        };
        // The signature runs to the body `{` or the terminating `;`.
        // Parameter defaults and where-clauses stay brace-free in this
        // codebase; the first `{` at angle-depth irrelevance is the
        // body.
        let mut i = name_i;
        while i < end && !self.is_punct(i, "{") && !self.is_punct(i, ";") {
            i += 1;
        }
        let sig = (kw, i);
        if i < end && self.is_punct(i, "{") {
            let body_end = self.skip_group(i, end, "{", "}");
            self.push(ItemKind::Fn, name, vis, line, has_doc, ctx.in_test, ctx.in_trait_impl, ctx.owner.clone(), Some(sig), Some((i, body_end)));
            body_end
        } else {
            self.push(ItemKind::Fn, name, vis, line, has_doc, ctx.in_test, ctx.in_trait_impl, ctx.owner.clone(), Some(sig), None);
            (i + 1).min(end)
        }
    }

    fn item_mod(
        &mut self,
        kw: usize,
        end: usize,
        vis: Visibility,
        line: usize,
        has_doc: bool,
        in_test: bool,
    ) -> usize {
        let name_i = self.skip_trivia(kw + 1, end);
        let name = if name_i < end && self.toks[name_i].kind == TokenKind::Ident {
            self.text(name_i).to_string()
        } else {
            String::new()
        };
        let mut i = name_i + 1;
        i = self.skip_trivia(i, end);
        if i < end && self.is_punct(i, "{") {
            let body_end = self.skip_group(i, end, "{", "}");
            self.push(ItemKind::Mod, name, vis, line, has_doc, in_test, false, None, None, Some((i, body_end)));
            // Recurse into the block (sans the enclosing braces).
            let ctx = Ctx { in_test, ..Ctx::default() };
            self.scan_block(i + 1, body_end.saturating_sub(1), &ctx);
            body_end
        } else {
            self.push(ItemKind::Mod, name, vis, line, has_doc, in_test, false, None, None, None);
            (i + 1).min(end)
        }
    }

    fn item_impl(&mut self, kw: usize, end: usize, in_test: bool) -> usize {
        // `impl<…> Type { … }` or `impl<…> Trait for Type { … }`.
        let mut i = kw + 1;
        let mut is_trait_impl = false;
        let mut after_for = kw + 1;
        while i < end && !self.is_punct(i, "{") && !self.is_punct(i, ";") {
            if self.is_ident(i, "for") {
                is_trait_impl = true;
                after_for = i + 1;
            }
            i += 1;
        }
        // The self type's name: the last plain ident of the header at
        // angle-bracket depth 0 (`Bar` in `impl<T> Trait for foo::Bar<T>
        // where …`), scanning the post-`for` region for trait impls and
        // the whole header otherwise, stopping at `where`.
        let owner = self.impl_self_type(after_for.max(kw + 1), i);
        if i < end && self.is_punct(i, "{") {
            let body_end = self.skip_group(i, end, "{", "}");
            let ctx = Ctx {
                in_test,
                in_trait_impl: is_trait_impl,
                owner,
            };
            self.scan_block(i + 1, body_end.saturating_sub(1), &ctx);
            body_end
        } else {
            (i + 1).min(end)
        }
    }

    /// Extracts the self-type name from an impl header region.
    fn impl_self_type(&self, from: usize, to: usize) -> Option<String> {
        let mut angle: isize = 0;
        let mut owner: Option<String> = None;
        for k in from..to.min(self.toks.len()) {
            let t = &self.toks[k];
            if t.kind == TokenKind::Punct {
                match t.text(self.src) {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident && angle <= 0 {
                let txt = t.text(self.src);
                if txt == "where" {
                    break;
                }
                if txt != "for" && txt != "dyn" && txt != "mut" {
                    owner = Some(txt.to_string());
                }
            }
        }
        owner
    }

    #[allow(clippy::too_many_arguments)]
    fn item_type_like(
        &mut self,
        kw: usize,
        end: usize,
        kind: ItemKind,
        vis: Visibility,
        line: usize,
        has_doc: bool,
        in_test: bool,
    ) -> usize {
        let name_i = self.skip_trivia(kw + 1, end);
        let name = if name_i < end && self.toks[name_i].kind == TokenKind::Ident {
            self.text(name_i).to_string()
        } else {
            String::new()
        };
        // Body: `{ … }` (fields/variants/methods — skipped as item
        // positions, but the span is recorded so the semantic layer
        // can read field declarations), tuple `( … );`, or unit `;`.
        let mut i = name_i + 1;
        while i < end {
            if self.is_punct(i, "{") {
                let next = self.skip_group(i, end, "{", "}");
                self.push(kind, name, vis, line, has_doc, in_test, false, None, None, Some((i, next)));
                return next;
            }
            if self.is_punct(i, "(") {
                i = self.skip_group(i, end, "(", ")");
                continue;
            }
            if self.is_punct(i, ";") {
                self.push(kind, name, vis, line, has_doc, in_test, false, None, None, None);
                return i + 1;
            }
            i += 1;
        }
        self.push(kind, name, vis, line, has_doc, in_test, false, None, None, None);
        end
    }

    #[allow(clippy::too_many_arguments)]
    fn item_terminated(
        &mut self,
        kw: usize,
        end: usize,
        kind: ItemKind,
        vis: Visibility,
        line: usize,
        has_doc: bool,
        in_test: bool,
    ) -> usize {
        let name_i = self.skip_trivia(kw + 1, end);
        let name = if name_i < end && self.toks[name_i].kind == TokenKind::Ident {
            self.text(name_i).to_string()
        } else {
            String::new()
        };
        let next = self.skip_to_semi(kw, end);
        self.push(kind, name, vis, line, has_doc, in_test, false, None, None, None);
        next
    }

    fn item_macro(
        &mut self,
        kw: usize,
        end: usize,
        vis: Visibility,
        line: usize,
        has_doc: bool,
        in_test: bool,
    ) -> usize {
        // `macro_rules! name { … }` (or `( … );` / `[ … ];`), or
        // `macro name { … }`.
        let mut i = self.skip_trivia(kw + 1, end);
        if self.is_punct(i, "!") {
            i = self.skip_trivia(i + 1, end);
        }
        let name = if i < end && self.toks[i].kind == TokenKind::Ident {
            self.text(i).to_string()
        } else {
            String::new()
        };
        i = self.skip_trivia(i + 1, end);
        let next = if self.is_punct(i, "{") {
            self.skip_group(i, end, "{", "}")
        } else if self.is_punct(i, "(") {
            self.skip_to_semi(self.skip_group(i, end, "(", ")"), end)
        } else if self.is_punct(i, "[") {
            self.skip_to_semi(self.skip_group(i, end, "[", "]"), end)
        } else {
            (i + 1).min(end)
        };
        self.push(ItemKind::MacroDef, name, vis, line, has_doc, in_test, false, None, None, None);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn facts(src: &str) -> FileFacts {
        analyze(src, &lexer::lex(src))
    }

    fn item<'a>(f: &'a FileFacts, name: &str) -> &'a Item {
        f.items
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no item `{name}` in {:?}", f.items))
    }

    #[test]
    fn recovers_pub_items_with_docs() {
        let src = "\
/// Documented.
pub fn yes() {}

pub fn no() {}

/// A type.
pub struct S { x: u32 }

pub(crate) const K: usize = 3;
static PRIVATE: u8 = 0;
";
        let f = facts(src);
        assert!(item(&f, "yes").has_doc);
        assert_eq!(item(&f, "yes").vis, Visibility::Pub);
        assert_eq!(item(&f, "yes").kind, ItemKind::Fn);
        assert!(!item(&f, "no").has_doc);
        assert_eq!(item(&f, "S").kind, ItemKind::Struct);
        assert_eq!(item(&f, "K").vis, Visibility::Restricted);
        assert_eq!(item(&f, "PRIVATE").vis, Visibility::Private);
        assert_eq!(item(&f, "PRIVATE").kind, ItemKind::Static);
    }

    #[test]
    fn doc_attachment_rules() {
        // Inner docs do not attach to the next item; an attribute
        // between doc and item keeps the attachment.
        let src = "\
//! module docs
pub fn first() {}

/// Documented through an attribute.
#[inline]
pub fn second() {}
";
        let f = facts(src);
        assert!(!item(&f, "first").has_doc);
        assert!(item(&f, "second").has_doc);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "\
pub fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
pub fn after() {}
";
        let f = facts(src);
        assert!(!item(&f, "live").in_test);
        assert!(item(&f, "helper").in_test);
        assert!(!item(&f, "after").in_test, "test region must close");
    }

    #[test]
    fn fn_qualifiers_and_signatures() {
        let src = "pub async unsafe fn q(x: u32) -> u32 { x }\npub const fn c() {}\nconst N: u8 = 1;\n";
        let f = facts(src);
        assert_eq!(item(&f, "q").kind, ItemKind::Fn);
        assert_eq!(item(&f, "c").kind, ItemKind::Fn, "const fn is a fn");
        assert_eq!(item(&f, "N").kind, ItemKind::Const);
        assert!(item(&f, "q").sig.is_some());
        assert!(item(&f, "q").body.is_some());
    }

    #[test]
    fn impl_blocks_and_trait_impls() {
        let src = "\
struct S;
impl S {
    pub fn inherent(&self) {}
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
";
        let f = facts(src);
        assert!(!item(&f, "inherent").in_trait_impl);
        assert!(item(&f, "fmt").in_trait_impl);
    }

    #[test]
    fn nested_mods_and_out_of_line_mods() {
        let src = "\
pub mod outer {
    //! inner docs
    pub mod inner {
        pub fn deep() {}
    }
}
pub mod external;
";
        let f = facts(src);
        assert_eq!(item(&f, "outer").kind, ItemKind::Mod);
        assert!(item(&f, "outer").body.is_some());
        assert_eq!(item(&f, "inner").kind, ItemKind::Mod);
        assert_eq!(item(&f, "deep").kind, ItemKind::Fn);
        assert!(item(&f, "external").body.is_none());
    }

    #[test]
    fn const_initializers_with_braces_do_not_confuse_nesting() {
        let src = "\
pub const T: &[(&str, u8)] = &[(\"a\", 1), (\"b\", 2)];
pub static S: fn() -> u8 = || { 42 };
pub fn after() {}
";
        let f = facts(src);
        assert_eq!(item(&f, "T").kind, ItemKind::Const);
        assert_eq!(item(&f, "after").kind, ItemKind::Fn);
    }

    #[test]
    fn enclosing_fn_finds_innermost_body() {
        let src = "pub fn approx_eq(a: f64, b: f64) -> bool { a == b }\n";
        let toks = lexer::lex(src);
        let f = analyze(src, &toks);
        // Find the `==` token.
        let eq = toks
            .iter()
            .position(|t| t.text(src) == "==")
            .expect("has ==");
        assert_eq!(f.enclosing_fn(eq).map(|i| i.name.as_str()), Some("approx_eq"));
    }

    #[test]
    fn macro_defs_are_recovered() {
        let src = "macro_rules! m { () => {} }\npub fn after() {}\n";
        let f = facts(src);
        assert_eq!(item(&f, "m").kind, ItemKind::MacroDef);
        assert_eq!(item(&f, "after").kind, ItemKind::Fn);
    }
}
