//! The semantic layer: brace tree, path/call resolution, bindings.
//!
//! [`crate::scan`] recovers *items*; this module recovers the three
//! structural facts the semantic rule family needs on top of them:
//!
//! * a **brace tree** ([`brace_tree`]) — the nesting structure of every
//!   `{ … }` group in the token stream, so rules can reason about
//!   scopes without re-counting delimiters;
//! * **call sites** ([`calls_in`]) — every `f(…)`, `path::f(…)`,
//!   `recv.m(…)`, and `recv.m::<T>(…)` in a token range, with the
//!   callee name, its last path qualifier, and whether it is a method
//!   call (the edges of [`crate::callgraph`]);
//! * **hash bindings** ([`hash_bindings`] / [`hash_fields`]) — the
//!   local `let` bindings, parameters, and struct fields whose declared
//!   type (or constructor) is `HashMap`/`HashSet`, which is what lets
//!   `nondet-iter` flag order-nondeterministic iteration without type
//!   inference.
//!
//! Like the lexer and the item scanner, everything here is *total*:
//! malformed input degrades (an unbalanced brace closes at end of
//! file), nothing panics. [`CodeView`] is the shared trivia-free
//! window the rules iterate over; it lived privately in `rules` until
//! the semantic layer needed it too.

use std::collections::BTreeSet;

use crate::engine::FileAnalysis;
use crate::lexer::TokenKind;

/// A trivia-free window over one file's token stream, with the
/// helpers every token-pattern rule needs.
pub struct CodeView<'a> {
    /// The analyzed file this view reads.
    pub fa: &'a FileAnalysis,
    /// `code[ci]` = index into `fa.tokens` of the ci-th non-trivia
    /// token.
    code: Vec<usize>,
}

impl<'a> CodeView<'a> {
    /// Builds the view over `fa`'s token stream.
    pub fn new(fa: &'a FileAnalysis) -> Self {
        let code = (0..fa.tokens.len())
            .filter(|&i| !fa.tokens[i].is_trivia())
            .collect();
        CodeView { fa, code }
    }

    /// Number of code (non-trivia) tokens.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the file has no code tokens.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Kind of the ci-th code token (None past the end).
    pub fn kind(&self, ci: usize) -> Option<TokenKind> {
        self.code.get(ci).map(|&i| self.fa.tokens[i].kind)
    }

    /// Text of the ci-th code token ("" past the end).
    pub fn text(&self, ci: usize) -> &str {
        self.code
            .get(ci)
            .map(|&i| self.fa.tokens[i].text(&self.fa.text))
            .unwrap_or("")
    }

    /// 1-based line of the ci-th code token (0 past the end).
    pub fn line(&self, ci: usize) -> usize {
        self.code.get(ci).map(|&i| self.fa.tokens[i].line).unwrap_or(0)
    }

    /// True when the ci-th code token lies in a `#[cfg(test)]` region.
    pub fn in_test(&self, ci: usize) -> bool {
        self.code
            .get(ci)
            .is_some_and(|&i| self.fa.facts.in_test.get(i).copied().unwrap_or(false))
    }

    /// True when the ci-th code token is the punctuation `p`.
    pub fn is_punct(&self, ci: usize, p: &str) -> bool {
        self.kind(ci) == Some(TokenKind::Punct) && self.text(ci) == p
    }

    /// True when the ci-th code token is the identifier `id`.
    pub fn is_ident(&self, ci: usize, id: &str) -> bool {
        self.kind(ci) == Some(TokenKind::Ident) && self.text(ci) == id
    }

    /// True when the ci-th code token is an identifier in `set`.
    pub fn ident_in(&self, ci: usize, set: &[&str]) -> bool {
        self.kind(ci) == Some(TokenKind::Ident) && set.contains(&self.text(ci))
    }

    /// Token index (into `fa.tokens`) of the ci-th code token.
    pub fn tok_idx(&self, ci: usize) -> usize {
        self.code.get(ci).copied().unwrap_or(0)
    }

    /// Code index of the first code token at or after raw token index
    /// `tok` (`len()` when none).
    pub fn ci_at_or_after(&self, tok: usize) -> usize {
        self.code.partition_point(|&i| i < tok)
    }
}

/// One node of the brace tree: a `{ … }` group and its nested groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BraceNode {
    /// Code index (into a [`CodeView`]) of the opening `{`.
    pub open: usize,
    /// Code index of the matching `}`; `view.len()` when the group
    /// never closes (malformed input degrades, never panics).
    pub close: usize,
    /// Nested groups, in source order.
    pub children: Vec<BraceNode>,
}

impl BraceNode {
    /// Depth-first size of this subtree (self included) — golden
    /// corpus helper.
    pub fn subtree_size(&self) -> usize {
        1 + self.children.iter().map(BraceNode::subtree_size).sum::<usize>()
    }
}

/// Builds the brace tree of a whole file: the forest of top-level
/// `{ … }` groups, each with its nested groups as children. Stray
/// closers are ignored; unclosed groups run to `view.len()`.
pub fn brace_tree(view: &CodeView<'_>) -> Vec<BraceNode> {
    let mut roots: Vec<BraceNode> = Vec::new();
    let mut stack: Vec<BraceNode> = Vec::new();
    for ci in 0..view.len() {
        if view.is_punct(ci, "{") {
            stack.push(BraceNode {
                open: ci,
                close: view.len(),
                children: Vec::new(),
            });
        } else if view.is_punct(ci, "}") {
            if let Some(mut node) = stack.pop() {
                node.close = ci;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => roots.push(node),
                }
            }
            // Stray `}` with an empty stack: recovered input, skip.
        }
    }
    // Unclosed groups fold into their parents (still spanning to EOF).
    while let Some(node) = stack.pop() {
        match stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => roots.push(node),
        }
    }
    roots
}

/// One resolved call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (last path segment): `new` for `Vec::new(…)`,
    /// `decode` for `x.decode(…)`.
    pub name: String,
    /// Last path segment before the callee, when path-qualified:
    /// `Vec` for `Vec::new(…)`, `shaping` for
    /// `ros_antenna::shaping::shaped_stack(…)`.
    pub qualifier: Option<String>,
    /// The call is a method call (`recv.name(…)`).
    pub method: bool,
    /// 1-based line of the callee name token.
    pub line: usize,
    /// Code index of the callee name token.
    pub ci: usize,
}

/// Keywords that look like `ident (` call heads but are control flow.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "break",
    "continue", "unsafe", "ref", "mut", "await", "yield", "fn", "impl", "where", "let", "pub",
    "dyn",
];

/// Skips a turbofish `::<…>` starting at `ci` (which must sit on the
/// `::`); returns the code index one past the closing `>`, or `ci`
/// when there is no turbofish. `>>` closes two angles (maximal munch).
pub fn skip_turbofish(view: &CodeView<'_>, ci: usize) -> usize {
    if !view.is_punct(ci, "::") || !view.is_punct(ci + 1, "<") {
        return ci;
    }
    let mut depth: isize = 0;
    let mut j = ci + 1;
    while j < view.len() {
        match view.text(j) {
            "<" if view.kind(j) == Some(TokenKind::Punct) => depth += 1,
            "<<" if view.kind(j) == Some(TokenKind::Punct) => depth += 2,
            ">" if view.kind(j) == Some(TokenKind::Punct) => depth -= 1,
            ">>" if view.kind(j) == Some(TokenKind::Punct) => depth -= 2,
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            return j;
        }
    }
    j
}

/// Extracts every call site in the code-index range `[start, end)`.
///
/// Recognized shapes: `f(…)`, `path::to::f(…)`, `recv.m(…)`,
/// `f::<T>(…)`, `recv.m::<T>(…)`. Macro invocations (`vec![…]`) are
/// *not* calls — the allocation scanner handles them separately.
pub fn calls_in(view: &CodeView<'_>, start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let end = end.min(view.len());
    for ci in start..end {
        if view.kind(ci) != Some(TokenKind::Ident) && view.kind(ci) != Some(TokenKind::RawIdent) {
            continue;
        }
        let name = view.text(ci).trim_start_matches("r#");
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // The callee name must be followed by `(`, optionally through
        // a turbofish.
        let after = skip_turbofish(view, ci + 1);
        if !view.is_punct(after, "(") {
            continue;
        }
        // A definition (`fn name(`) is not a call.
        if ci > 0 && view.is_ident(ci - 1, "fn") {
            continue;
        }
        let method = ci > 0 && view.is_punct(ci - 1, ".");
        let qualifier = if !method && ci >= 2 && view.is_punct(ci - 1, "::") {
            match view.kind(ci - 2) {
                Some(TokenKind::Ident | TokenKind::RawIdent) => {
                    Some(view.text(ci - 2).trim_start_matches("r#").to_string())
                }
                // `Vec::<u8>::new(…)`: walk back over the turbofish.
                Some(TokenKind::Punct) if view.text(ci - 2) == ">" || view.text(ci - 2) == ">>" => {
                    qualifier_before_generics(view, ci - 2)
                }
                _ => None,
            }
        } else {
            None
        };
        out.push(CallSite {
            name: name.to_string(),
            qualifier,
            method,
            line: view.line(ci),
            ci,
        });
    }
    out
}

/// Walks back over `<…>` ending at `close_ci` and returns the ident
/// preceding it (`Vec` in `Vec::<u8>::new`), if any.
fn qualifier_before_generics(view: &CodeView<'_>, close_ci: usize) -> Option<String> {
    let mut depth: isize = 0;
    let mut j = close_ci;
    loop {
        if view.kind(j) == Some(TokenKind::Punct) {
            match view.text(j) {
                ">" => depth += 1,
                ">>" => depth += 2,
                "<" => depth -= 1,
                "<<" => depth -= 2,
                _ => {}
            }
        }
        if depth <= 0 || j == 0 {
            break;
        }
        j -= 1;
    }
    // j sits on the opening `<`; before it: `::` then the ident.
    if j >= 2 && view.is_punct(j - 1, "::") && view.kind(j - 2) == Some(TokenKind::Ident) {
        Some(view.text(j - 2).to_string())
    } else {
        None
    }
}

/// The hash-collection type names whose iteration order is
/// nondeterministic.
pub const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Collects the names bound to `HashMap`/`HashSet` values in the code
/// range `[start, end)` — the receivers `nondet-iter` watches.
///
/// Three binding shapes are recognized, all by declared type or
/// constructor (no inference):
///
/// * `let [mut] name : …HashMap<…>… = …;` / `let [mut] name =
///   HashMap::new();` (any `HashMap`/`HashSet` token before the
///   statement's terminating `;` counts — over-approximation is fine,
///   the rule has a marker escape);
/// * `name : …HashMap<…>…` parameter/field declarations;
/// * `static NAME : …HashMap<…>… = …;`.
pub fn hash_bindings(view: &CodeView<'_>, start: usize, end: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let end = end.min(view.len());
    let mut ci = start;
    while ci < end {
        // `let [mut] name … ;` statements.
        if view.is_ident(ci, "let") || view.is_ident(ci, "static") {
            let mut j = ci + 1;
            if view.is_ident(j, "mut") {
                j += 1;
            }
            if view.kind(j) == Some(TokenKind::Ident) {
                let name = view.text(j).to_string();
                // Scan to the end of the statement (`;` at depth 0
                // relative to here, counting all bracket kinds).
                let mut k = j + 1;
                let mut depth: isize = 0;
                let mut is_hash = false;
                while k < end {
                    match view.text(k) {
                        "(" | "[" | "{" if view.kind(k) == Some(TokenKind::Punct) => depth += 1,
                        ")" | "]" | "}" if view.kind(k) == Some(TokenKind::Punct) => {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        }
                        ";" if depth == 0 && view.kind(k) == Some(TokenKind::Punct) => break,
                        t if view.kind(k) == Some(TokenKind::Ident)
                            && HASH_TYPES.contains(&t) =>
                        {
                            is_hash = true;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if is_hash {
                    out.insert(name);
                }
                ci = k;
                continue;
            }
        }
        // `name : …Hash…` parameter-style annotations (fn signatures).
        if view.kind(ci) == Some(TokenKind::Ident)
            && view.is_punct(ci + 1, ":")
            && !view.is_punct(ci + 2, ":")
        {
            // Scan the type up to `,` or `)` at angle/paren depth 0.
            let mut k = ci + 2;
            let mut depth: isize = 0;
            let mut is_hash = false;
            while k < end {
                match view.text(k) {
                    "(" | "<" if view.kind(k) == Some(TokenKind::Punct) => depth += 1,
                    "<<" if view.kind(k) == Some(TokenKind::Punct) => depth += 2,
                    ")" | ">" if view.kind(k) == Some(TokenKind::Punct) => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    ">>" if view.kind(k) == Some(TokenKind::Punct) => {
                        depth -= 2;
                        if depth < 0 {
                            break;
                        }
                    }
                    "," | "=" | "{" | ";" if depth == 0 && view.kind(k) == Some(TokenKind::Punct) => {
                        break
                    }
                    t if view.kind(k) == Some(TokenKind::Ident) && HASH_TYPES.contains(&t) => {
                        is_hash = true;
                    }
                    _ => {}
                }
                k += 1;
            }
            if is_hash {
                out.insert(view.text(ci).to_string());
            }
        }
        ci += 1;
    }
    out
}

/// Collects, across one file, the names of struct fields declared with
/// a `HashMap`/`HashSet` type. Name-based (like `dead-pub`'s reference
/// graph): a field named `cache` of hash type anywhere makes
/// `recv.cache.iter()` suspect everywhere.
pub fn hash_fields(view: &CodeView<'_>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for item in &view.fa.facts.items {
        if item.kind != crate::scan::ItemKind::Struct {
            continue;
        }
        let Some((s, e)) = item.body else { continue };
        let (cs, ce) = (view.ci_at_or_after(s), view.ci_at_or_after(e));
        // Field declarations are exactly the `name : Type` pairs the
        // parameter scan recognizes.
        out.extend(hash_bindings(view, cs, ce));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{FileAnalysis, FileRole};

    fn fa(src: &str) -> FileAnalysis {
        FileAnalysis::new(
            "crates/ros-em/src/s.rs".to_string(),
            "ros-em".to_string(),
            FileRole::Library,
            src.to_string(),
        )
    }

    #[test]
    fn brace_tree_nests_and_recovers() {
        let f = fa("fn a() { if x { y(); } } fn b() {}\n");
        let v = CodeView::new(&f);
        let roots = brace_tree(&v);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].children.len(), 1);
        assert!(roots[1].children.is_empty());
        // Stray closer and unclosed opener both degrade, never panic.
        let f = fa("} fn a() { {\n");
        let v = CodeView::new(&f);
        let roots = brace_tree(&v);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].close, v.len());
    }

    #[test]
    fn brace_contents_are_opaque_to_strings() {
        let f = fa("fn a() { let s = \"}\"; let c = '}'; }\n");
        let v = CodeView::new(&f);
        let roots = brace_tree(&v);
        assert_eq!(roots.len(), 1);
        assert!(roots[0].close < v.len(), "string braces must not close the group");
    }

    fn call_names(src: &str) -> Vec<(String, Option<String>, bool)> {
        let f = fa(src);
        let v = CodeView::new(&f);
        calls_in(&v, 0, v.len())
            .into_iter()
            .map(|c| (c.name, c.qualifier, c.method))
            .collect()
    }

    #[test]
    fn calls_free_qualified_method_turbofish() {
        let got = call_names("fn f() { g(); a::b::h(); x.m(); y.c::<u8>(); Vec::<u8>::new(); }\n");
        assert_eq!(
            got,
            vec![
                ("g".to_string(), None, false),
                ("h".to_string(), Some("b".to_string()), false),
                ("m".to_string(), None, true),
                ("c".to_string(), None, true),
                ("new".to_string(), Some("Vec".to_string()), false),
            ]
        );
    }

    #[test]
    fn calls_skip_keywords_and_definitions() {
        let got = call_names("fn f(x: u8) { if (x > 0) { while (x < 9) {} } match (x) { _ => {} } }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn hash_bindings_let_param_static() {
        let src = "\
fn f(seen: &mut HashSet<u32>, plain: &[u32]) {
    let mut cache: HashMap<usize, f64> = HashMap::new();
    let inferred = std::collections::HashMap::new();
    let sorted: BTreeMap<u32, u32> = BTreeMap::new();
    static TABLE: Mutex<HashMap<u8, u8>> = todo_placeholder();
}
";
        let f = fa(src);
        let v = CodeView::new(&f);
        let b = hash_bindings(&v, 0, v.len());
        assert!(b.contains("seen"));
        assert!(b.contains("cache"));
        assert!(b.contains("inferred"));
        assert!(b.contains("TABLE"));
        assert!(!b.contains("plain"));
        assert!(!b.contains("sorted"));
    }

    #[test]
    fn hash_fields_from_struct_bodies() {
        let src = "\
struct S {
    cache: HashMap<usize, f64>,
    order: Vec<u32>,
}
struct T(HashMap<u8, u8>);
";
        let f = fa(src);
        let v = CodeView::new(&f);
        let fields = hash_fields(&v);
        assert!(fields.contains("cache"));
        assert!(!fields.contains("order"));
    }

    #[test]
    fn code_view_maps_raw_token_indices() {
        let f = fa("// comment\nfn f() {}\n");
        let v = CodeView::new(&f);
        assert!(!v.is_empty());
        assert_eq!(v.ci_at_or_after(0), 0, "first code token after the comment");
        assert_eq!(v.text(0), "fn");
        assert!(v.tok_idx(0) > 0, "comment token precedes");
    }
}
