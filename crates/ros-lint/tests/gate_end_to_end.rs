//! End-to-end exercise of the ros-lint public API: build a synthetic
//! mini-workspace on disk, run the full gate against it (findings →
//! baseline → JSON artifact), then tighten the baseline and watch a
//! freshly introduced violation fail the gate — the exact workflow
//! `cargo run -p xtask -- lint` and verify.sh drive.

use std::fs;
use std::path::PathBuf;

use ros_lint::baseline::{self, Baseline};
use ros_lint::engine::{leading_inner_docs, load_workspace, GateOptions, GateOutcome};
use ros_lint::json::{self, ParseError};
use ros_lint::lexer::{lex, Token};
use ros_lint::rules::RuleInfo;
use ros_lint::scan;
use ros_lint::{run_gate, FileRole, RULES};

/// A throwaway workspace root under the target-adjacent temp dir.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("ros-lint-e2e-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir");
        TempWs { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("mkdir");
        }
        fs::write(path, contents).expect("write");
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const CLEAN_LIB: &str = "\
//! Demo crate.

/// Documented, and referenced from the test region below.
pub fn answer() -> u32 {
    41 + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::answer(), 42);
    }
}
";

#[test]
fn gate_passes_on_clean_tree_and_artifact_parses() {
    let ws = TempWs::new("clean");
    ws.write("crates/demo/src/lib.rs", CLEAN_LIB);

    let json_path = ws.root.join("target/lint.json");
    let opts = GateOptions {
        json_path: Some(json_path.clone()),
        update_baseline: false,
        no_baseline: true,
        clock: None,
    };
    let outcome: GateOutcome = run_gate(&ws.root, &opts).expect("gate runs");
    assert!(outcome.passed, "clean tree must pass:\n{}", outcome.human_report);
    assert!(outcome.human_report.contains("files clean"));

    // The artifact exists and round-trips through the bundled parser.
    let artifact = fs::read_to_string(&json_path).expect("artifact written");
    let v = json::parse(&artifact).expect("artifact parses");
    assert_eq!(v.get("clean"), Some(&json::Value::Bool(true)));
    let rules = v.get("rules").and_then(|x| x.as_arr()).expect("rules array");
    assert_eq!(rules.len(), RULES.len());
    // The rule catalog in the artifact mirrors the static RuleInfo set.
    let catalog: Vec<&RuleInfo> = RULES.iter().collect();
    for (entry, info) in rules.iter().zip(&catalog) {
        assert_eq!(entry.get("id").and_then(|x| x.as_str()), Some(info.id));
    }
}

#[test]
fn new_violation_fails_gate_until_baselined() {
    let ws = TempWs::new("debt");
    ws.write("crates/demo/src/lib.rs", CLEAN_LIB);
    ws.write(
        "crates/demo/src/debt.rs",
        "//! Debt module.\n\n/// Referenced by lib tests in spirit; unwraps regardless.\npub fn oops(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(super::oops(Some(1)), 1); }\n}\n",
    );

    // Without a baseline the unwrap is a fresh violation.
    let opts = GateOptions {
        json_path: None,
        update_baseline: false,
        no_baseline: false,
        clock: None,
    };
    let outcome = run_gate(&ws.root, &opts).expect("gate runs");
    assert!(!outcome.passed);
    assert!(outcome.human_report.contains("no-unwrap"));

    // Grandfather it, and the gate goes green with the debt tracked.
    let opts = GateOptions {
        json_path: None,
        update_baseline: true,
        no_baseline: false,
        clock: None,
    };
    let outcome = run_gate(&ws.root, &opts).expect("baseline update");
    assert!(outcome.passed);
    assert!(outcome.notes.iter().any(|n| n.contains("baseline updated")));
    assert!(outcome.human_report.contains("baselined finding(s) tracked"));

    // The written baseline loads as a Baseline and judges correctly.
    let bl: Baseline =
        baseline::load(&ws.root.join(baseline::BASELINE_FILE)).expect("baseline loads");
    let files = load_workspace(&ws.root).expect("walk");
    assert!(files.iter().all(|f| f.role != FileRole::Reference));
    let judged = bl.judge(&ros_lint::rules::check_all(&files));
    assert_eq!(judged.new_count(), 0);
    assert_eq!(judged.baselined_count(), 1);

    // A *second* fresh violation still fails: the baseline pins
    // per-(rule, file, message) counts, not a blanket waiver.
    ws.write(
        "crates/demo/src/more.rs",
        "//! More.\n\n/// Doc.\npub fn printy() { println!(\"nope\"); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::printy(); }\n}\n",
    );
    let opts = GateOptions {
        json_path: None,
        update_baseline: false,
        no_baseline: false,
        clock: None,
    };
    let outcome = run_gate(&ws.root, &opts).expect("gate runs");
    assert!(!outcome.passed);
    assert!(outcome.human_report.contains("no-println"));
}

#[test]
fn library_internals_compose_outside_the_gate() {
    // The pieces run_gate glues together are usable à la carte: lex a
    // source, keep its Token spans, scan the item structure, and ask
    // the module-docs question the doc-pub rule asks.
    let src = "//! docs\n/// D.\npub fn f() {}\n// trailing\n";
    let toks: Vec<Token> = lex(src);
    assert!(leading_inner_docs(src, &toks));
    assert!(toks.last().is_some_and(Token::is_trivia));
    let facts = scan::analyze(src, &toks);
    assert_eq!(facts.items.len(), 1);
    assert!(facts.items[0].has_doc);

    // The bundled JSON parser reports malformed input with a byte
    // offset, which is what the xtask `lint-artifact` check prints.
    let err: ParseError = json::parse("{\"a\": }").expect_err("malformed");
    assert!(err.at > 0 && !err.msg.is_empty());
}

#[test]
fn alloc_findings_propagate_transitively_and_respect_allow_markers() {
    // A two-crate workspace where the hot entry lives in `alpha` and
    // the allocations live two hops away in `beta`: the call graph
    // must carry hotness across the crate boundary, name the witness
    // entry in the message, and honor `lint: allow-alloc`.
    let ws = TempWs::new("alloc");
    ws.write(
        "crates/alpha/src/lib.rs",
        "//! Alpha crate.\n\n\
         /// Steady-state entry point.\n\
         // lint: hot-path\n\
         pub fn entry(n: u32) -> u32 {\n    beta_helper(n)\n}\n\n\
         /// Cross-crate shim.\n\
         pub fn beta_helper(n: u32) -> u32 {\n    beta::helper(n)\n}\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        assert_eq!(super::entry(0), 0);\n        assert_eq!(super::beta_helper(0), 0);\n    }\n}\n",
    );
    ws.write(
        "crates/beta/src/lib.rs",
        "//! Beta crate.\n\n\
         /// Allocates twice; only one allocation is sanctioned.\n\
         pub fn helper(n: u32) -> u32 {\n\
             let v: Vec<u32> = (0..n).collect();\n\
             // lint: allow-alloc(fixed-size scratch, measured negligible)\n\
             let w: Vec<u32> = Vec::new();\n\
             v.len() as u32 + w.len() as u32\n\
         }\n",
    );

    let opts = GateOptions {
        json_path: None,
        update_baseline: false,
        no_baseline: true,
        clock: None,
    };
    let outcome = run_gate(&ws.root, &opts).expect("gate runs");
    assert!(!outcome.passed, "{}", outcome.human_report);
    let alloc_lines: Vec<&str> = outcome
        .human_report
        .lines()
        .filter(|l| l.contains("[alloc-in-hot-path]"))
        .collect();
    // Exactly one finding: `.collect()` in beta::helper. The marked
    // `Vec::new()` right below it stays silent.
    assert_eq!(alloc_lines.len(), 1, "{}", outcome.human_report);
    assert!(
        alloc_lines[0].contains("crates/beta/src/lib.rs")
            && alloc_lines[0].contains("`.collect()`")
            && alloc_lines[0].contains("`helper`")
            && alloc_lines[0].contains("`entry`"),
        "unexpected finding line: {}",
        alloc_lines[0]
    );
}

/// Runs the gate baseline-free and returns the `[rule-id]` finding
/// lines from the human report, plus whether the gate passed.
fn gate_rule_lines(ws: &TempWs, rule: &str) -> (bool, Vec<String>) {
    let opts = GateOptions {
        json_path: None,
        update_baseline: false,
        no_baseline: true,
        clock: None,
    };
    let outcome = run_gate(&ws.root, &opts).expect("gate runs");
    let tag = format!("[{rule}]");
    let lines = outcome
        .human_report
        .lines()
        .filter(|l| l.contains(&tag))
        .map(str::to_string)
        .collect();
    (outcome.passed, lines)
}

#[test]
fn lock_order_e2e_catches_inversion_and_passes_after_fix() {
    let ws = TempWs::new("lockorder");
    // Two fns take the pair (journal, index) in opposite orders.
    ws.write(
        "crates/gamma/src/lib.rs",
        "//! Gamma crate.\n\n\
         /// Appends under both locks, journal first.\n\
         pub fn append(journal: &Slot, index: &Slot) {\n\
             let gj = journal.lock();\n\
             let gi = index.lock();\n\
         }\n\n\
         /// Compacts under both locks, index first: inverted.\n\
         pub fn compact(journal: &Slot, index: &Slot) {\n\
             let gi = index.lock();\n\
             let gj = journal.lock();\n\
         }\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        super::append(&j(), &i());\n        super::compact(&j(), &i());\n    }\n}\n",
    );
    let (passed, lines) = gate_rule_lines(&ws, "lock-order");
    assert!(!passed);
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines.iter().all(|l| l.contains("gamma:journal") && l.contains("gamma:index")), "{lines:?}");

    // Same workspace with `compact` brought into the global order.
    ws.write(
        "crates/gamma/src/lib.rs",
        "//! Gamma crate.\n\n\
         /// Appends under both locks, journal first.\n\
         pub fn append(journal: &Slot, index: &Slot) {\n\
             let gj = journal.lock();\n\
             let gi = index.lock();\n\
         }\n\n\
         /// Compacts under both locks, journal first too.\n\
         pub fn compact(journal: &Slot, index: &Slot) {\n\
             let gj = journal.lock();\n\
             let gi = index.lock();\n\
         }\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        super::append(&j(), &i());\n        super::compact(&j(), &i());\n    }\n}\n",
    );
    let (passed, lines) = gate_rule_lines(&ws, "lock-order");
    assert!(passed, "{lines:?}");
    assert!(lines.is_empty(), "{lines:?}");
}

#[test]
fn blocking_under_lock_e2e_catches_send_and_passes_after_fix() {
    let ws = TempWs::new("blocking");
    ws.write(
        "crates/delta/src/lib.rs",
        "//! Delta crate.\n\n\
         /// Publishes the current state to the consumer queue.\n\
         pub fn publish(state: &Slot, out: &Port) {\n\
             let g = state.lock();\n\
             out.tx.send(1);\n\
         }\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::publish(&s(), &p()); }\n}\n",
    );
    let (passed, lines) = gate_rule_lines(&ws, "blocking-under-lock");
    assert!(!passed);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(
        lines[0].contains("crates/delta/src/lib.rs:6") && lines[0].contains("delta:state"),
        "{lines:?}"
    );

    // Fixed: snapshot under the lock, send after releasing it.
    ws.write(
        "crates/delta/src/lib.rs",
        "//! Delta crate.\n\n\
         /// Publishes the current state to the consumer queue.\n\
         pub fn publish(state: &Slot, out: &Port) {\n\
             let g = state.lock();\n\
             let snapshot = g.value;\n\
             drop(g);\n\
             out.tx.send(snapshot);\n\
         }\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::publish(&s(), &p()); }\n}\n",
    );
    let (passed, lines) = gate_rule_lines(&ws, "blocking-under-lock");
    assert!(passed, "{lines:?}");
    assert!(lines.is_empty(), "{lines:?}");
}

#[test]
fn guard_across_hot_call_e2e_catches_cross_crate_span_and_passes_after_fix() {
    let ws = TempWs::new("hotguard");
    // The hot path lives in one crate; the guard that spans a call
    // into it lives in another.
    ws.write(
        "crates/hot/src/lib.rs",
        "//! Hot crate.\n\n\
         /// Steady-state entry.\n\
         // lint: hot-path\n\
         pub fn entry() {\n    step();\n}\n\n\
         /// One pipeline step.\n\
         pub fn step() {}\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::entry(); super::step(); }\n}\n",
    );
    let seeded = "//! Cold crate.\n\n\
         /// Maintenance entry: calls into the pipeline while locked.\n\
         pub fn maintain(cfg: &Slot) {\n\
             let g = cfg.lock();\n\
             hot::step();\n\
         }\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::maintain(&c()); }\n}\n";
    ws.write("crates/cold/src/lib.rs", seeded);
    let (passed, lines) = gate_rule_lines(&ws, "guard-across-hot-call");
    assert!(!passed);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(
        lines[0].contains("crates/cold/src/lib.rs:6")
            && lines[0].contains("cold:cfg")
            && lines[0].contains("`entry`"),
        "{lines:?}"
    );

    // Fixed: the guard is released before entering the hot region.
    ws.write(
        "crates/cold/src/lib.rs",
        "//! Cold crate.\n\n\
         /// Maintenance entry: releases the lock before the pipeline.\n\
         pub fn maintain(cfg: &Slot) {\n\
             let g = cfg.lock();\n\
             drop(g);\n\
             hot::step();\n\
         }\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::maintain(&c()); }\n}\n",
    );
    let (passed, lines) = gate_rule_lines(&ws, "guard-across-hot-call");
    assert!(passed, "{lines:?}");
    assert!(lines.is_empty(), "{lines:?}");
}

#[test]
fn stale_suppression_e2e_catches_dead_marker_and_passes_after_removal() {
    let ws = TempWs::new("stale");
    ws.write(
        "crates/eps/src/lib.rs",
        "//! Eps crate.\n\n\
         /// Compares within tolerance; the marker outlived the `==`.\n\
         // lint: allow-float-eq(legacy comparison)\n\
         pub fn close(a: f64, b: f64) -> bool {\n\
             (a - b).abs() < 1e-9\n\
         }\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(super::close(0.0, 0.0)); }\n}\n",
    );
    let (passed, lines) = gate_rule_lines(&ws, "stale-suppression");
    assert!(!passed);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(
        lines[0].contains("crates/eps/src/lib.rs:4") && lines[0].contains("float-eq"),
        "{lines:?}"
    );

    // Fixed: the marker is gone.
    ws.write(
        "crates/eps/src/lib.rs",
        "//! Eps crate.\n\n\
         /// Compares within tolerance.\n\
         pub fn close(a: f64, b: f64) -> bool {\n\
             (a - b).abs() < 1e-9\n\
         }\n\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(super::close(0.0, 0.0)); }\n}\n",
    );
    let (passed, lines) = gate_rule_lines(&ws, "stale-suppression");
    assert!(passed, "{lines:?}");
    assert!(lines.is_empty(), "{lines:?}");
}
